#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace repro::graph {
namespace {

CsrGraph path3() {
  // 0 - 1 - 2 with weights 5, 7.
  const std::vector<Edge> edges{{0, 1, 5}, {1, 2, 7}};
  return CsrGraph::from_edges(3, edges, /*symmetrize=*/true);
}

TEST(Csr, BuildSymmetric) {
  const CsrGraph g = path3();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // both directions
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.weights(0)[0], 5u);
}

TEST(Csr, BuildDirected) {
  const std::vector<Edge> edges{{0, 1, 1}, {0, 2, 1}};
  const CsrGraph g = CsrGraph::from_edges(3, edges, /*symmetrize=*/false);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Csr, DegreeStats) {
  const CsrGraph g = path3();
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_NEAR(g.average_degree(), 4.0 / 3.0, 1e-12);
  EXPECT_GT(g.degree_cv(), 0.0);
}

TEST(Csr, EmptyGraph) {
  const CsrGraph g = CsrGraph::from_edges(0, {}, true);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.average_degree(), 0.0);
}

TEST(Generators, RoadmapShape) {
  const CsrGraph g = roadmap(40, 40, 1);
  EXPECT_EQ(g.num_nodes(), 1600u);
  // Road networks: average degree between 2 and 4.
  EXPECT_GT(g.average_degree(), 2.0);
  EXPECT_LT(g.average_degree(), 4.0);
  EXPECT_LE(g.max_degree(), 10u);
}

TEST(Generators, RoadmapDeterministic) {
  const CsrGraph a = roadmap(20, 20, 7);
  const CsrGraph b = roadmap(20, 20, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  const CsrGraph c = roadmap(20, 20, 8);
  EXPECT_NE(a.num_edges(), c.num_edges());  // overwhelmingly likely
}

TEST(Generators, RandomKwayDegree) {
  const CsrGraph g = random_kway(5000, 8.0, 3);
  EXPECT_NEAR(g.average_degree(), 8.0, 0.2);
}

TEST(Generators, RmatSkewed) {
  const CsrGraph g = rmat(12, 8.0, 5);
  EXPECT_EQ(g.num_nodes(), 4096u);
  // Power-law-ish: max degree far above the average.
  EXPECT_GT(static_cast<double>(g.max_degree()), 8.0 * 5.0);
  EXPECT_GT(g.degree_cv(), 1.0);
}

TEST(Generators, TriangularMeshDegree) {
  const CsrGraph g = triangular_mesh(30, 30, 2);
  // Interior nodes have ~6 neighbours.
  EXPECT_GT(g.average_degree(), 4.5);
  EXPECT_LT(g.average_degree(), 6.5);
}

TEST(Bfs, LevelsOnPath) {
  const CsrGraph g = path3();
  const BfsProfile p = bfs(g, 0);
  EXPECT_EQ(p.levels[0], 0u);
  EXPECT_EQ(p.levels[1], 1u);
  EXPECT_EQ(p.levels[2], 2u);
  EXPECT_EQ(p.depth, 3u);
  EXPECT_EQ(p.reached, 3u);
  ASSERT_EQ(p.frontier_nodes.size(), 3u);
  EXPECT_EQ(p.frontier_nodes[0], 1u);
}

TEST(Bfs, FrontierEdgesSumToTouchedEdges) {
  const CsrGraph g = random_kway(2000, 6.0, 11);
  const BfsProfile p = bfs(g, 0);
  std::uint64_t edges = 0;
  for (const auto e : p.frontier_edges) edges += e;
  // Every reached node's adjacency is scanned exactly once.
  std::uint64_t expect = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (p.levels[n] != kUnreached) expect += g.degree(n);
  }
  EXPECT_EQ(edges, expect);
}

TEST(TopologyBfs, MatchesBfsLevels) {
  // The fixpoint must converge to the true BFS levels regardless of the
  // visibility parameter.
  const CsrGraph g = roadmap(25, 25, 9);
  const BfsProfile ref = bfs(g, 0);
  for (const double vis : {0.0, 0.3, 0.7, 1.0}) {
    const SweepProfile sp = topology_bfs(g, 0, vis, 17);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(sp.values[n], ref.levels[n]) << "node " << n << " vis " << vis;
    }
  }
}

TEST(TopologyBfs, HigherVisibilityFewerSweeps) {
  const CsrGraph g = roadmap(40, 40, 13);
  const SweepProfile lo = topology_bfs(g, 0, 0.1, 17);
  const SweepProfile hi = topology_bfs(g, 0, 0.9, 17);
  EXPECT_LT(hi.sweeps, lo.sweeps);
  EXPECT_GE(lo.sweeps, 1u);
}

TEST(TopologySssp, MatchesDijkstra) {
  const CsrGraph g = roadmap(20, 20, 21);
  const auto ref = dijkstra(g, 0);
  const SweepProfile sp = topology_sssp(g, 0, 0.5, 3);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (ref[n] == std::numeric_limits<std::uint64_t>::max()) {
      EXPECT_EQ(sp.values[n], kUnreached);
    } else {
      EXPECT_EQ(static_cast<std::uint64_t>(sp.values[n]), ref[n]);
    }
  }
}

TEST(Boruvka, PathGraphWeight) {
  const CsrGraph g = path3();
  const BoruvkaProfile p = boruvka(g);
  EXPECT_EQ(p.mst_weight, 12u);  // 5 + 7
  EXPECT_EQ(p.mst_edges, 2u);
}

TEST(Boruvka, SpanningTreeEdgeCount) {
  const CsrGraph g = roadmap(30, 30, 31);
  const std::uint64_t components = connected_components(g);
  const BoruvkaProfile p = boruvka(g);
  EXPECT_EQ(p.mst_edges, g.num_nodes() - components);
  // Boruvka halves components every round: logarithmic round count.
  EXPECT_LE(p.components_per_round.size(), 22u);
}

TEST(Boruvka, MatchesKruskalOnSmallGraph) {
  // Cross-check MST weight against a simple Kruskal implementation.
  const CsrGraph g = random_kway(200, 4.0, 37);
  const BoruvkaProfile p = boruvka(g);

  struct E {
    std::uint32_t w;
    NodeId a, b;
  };
  std::vector<E> edges;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto nbrs = g.neighbors(n);
    const auto wts = g.weights(n);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (n < nbrs[i]) edges.push_back({wts[i], n, nbrs[i]});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const E& x, const E& y) {
    return std::tie(x.w, x.a, x.b) < std::tie(y.w, y.a, y.b);
  });
  std::vector<NodeId> parent(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) parent[i] = i;
  const auto find = [&](NodeId x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::uint64_t weight = 0;
  for (const E& e : edges) {
    const NodeId ra = find(e.a), rb = find(e.b);
    if (ra != rb) {
      parent[rb] = ra;
      weight += e.w;
    }
  }
  EXPECT_EQ(p.mst_weight, weight);
}

TEST(ConnectedComponents, CountsIsolatedNodes) {
  const std::vector<Edge> edges{{0, 1, 1}};
  const CsrGraph g = CsrGraph::from_edges(4, edges, true);
  EXPECT_EQ(connected_components(g), 3u);  // {0,1}, {2}, {3}
}

TEST(Dijkstra, UnreachableIsInfinity) {
  const std::vector<Edge> edges{{0, 1, 1}};
  const CsrGraph g = CsrGraph::from_edges(3, edges, true);
  const auto d = dijkstra(g, 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace repro::graph
