#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/tablefmt.hpp"

namespace repro::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Rng rng{9};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng{11};
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, LognormalJitterMedianNearOne) {
  Rng rng{13};
  std::vector<double> vals;
  for (int i = 0; i < 10001; ++i) vals.push_back(rng.lognormal_jitter(0.01));
  EXPECT_NEAR(median(vals), 1.0, 0.002);
}

TEST(Rng, ForkIndependent) {
  Rng parent{5};
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child.next_u64(), child2.next_u64());
}

TEST(HashUnit, DeterministicAndUniformish) {
  EXPECT_EQ(hash_unit(1, 2, 3), hash_unit(1, 2, 3));
  EXPECT_NE(hash_unit(1, 2, 3), hash_unit(2, 1, 3));
  double sum = 0.0;
  for (std::uint64_t i = 0; i < 1000; ++i) sum += hash_unit(i, i * 3, 42);
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Stats, MedianOddEven) {
  std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 0.0);
}

TEST(Stats, PercentileSingleElement) {
  std::vector<double> v{5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Stats, BoxStatsOrdering) {
  std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 0.5};
  const BoxStats b = box_stats(v);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
  EXPECT_DOUBLE_EQ(b.min, 0.5);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
}

TEST(Stats, RelativeSpread) {
  std::vector<double> v{10.0, 10.5, 10.2};
  EXPECT_NEAR(relative_spread(v), 0.05, 1e-12);
}

TEST(Stats, MedianIndexPicksMiddleRun) {
  std::vector<double> v{30.0, 10.0, 20.0};
  EXPECT_EQ(median_index(v), 2u);  // 20.0 is the median
}

TEST(Stats, MeanStddev) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 0.001);
}

TEST(Stats, Geomean) {
  std::vector<double> v{1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(TableFmt, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.row().add("a").add(1.5, 1);
  t.row().add("bbbb").add(22.25, 2);
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
}

TEST(TableFmt, CsvOutput) {
  TextTable t({"a", "b"});
  t.row().add("x").add(2ll);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2\n");
}

TEST(TableFmt, AsciiBoxMarkers) {
  const std::string box = ascii_box(1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 6.0, 60);
  EXPECT_EQ(box.size(), 60u);
  EXPECT_NE(box.find('#'), std::string::npos);
  EXPECT_NE(box.find('='), std::string::npos);
  EXPECT_NE(box.find('|'), std::string::npos);
}

TEST(TableFmt, FormatFixed) {
  EXPECT_EQ(format_fixed(1.005, 2), "1.00");  // note: banker's-ish, just sanity
  EXPECT_EQ(format_fixed(2.5, 1), "2.5");
  EXPECT_EQ(format_ratio(1.2345), "1.23");
}

}  // namespace
}  // namespace repro::util
