// Observability layer tests (DESIGN.md §9):
//  - span nesting/ordering stays consistent under 8 concurrent threads
//    (run under -DREPRO_SANITIZE=thread via the obs/scheduler labels),
//  - metrics counters exactly mirror Study::cache_stats(),
//  - exported Chrome trace JSON is well-formed and contains per-stage
//    spans for every computed experiment,
//  - per-kernel energy attribution sums to the measured energy,
//  - and the core guarantee: measured values are bit-identical with
//    observability enabled vs. disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "core/study.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

namespace repro {
namespace {

using core::ExperimentJob;
using core::ExperimentResult;
using core::Scheduler;
using core::Study;
using sim::config_by_name;
using workloads::Registry;
using workloads::Workload;

// Every test that records must leave the global switch off and the
// buffers empty for the rest of the binary.
struct ObsOn {
  ObsOn() {
    obs::set_enabled(true);
    obs::Tracer::instance().clear();
  }
  ~ObsOn() {
    obs::set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

std::vector<ExperimentJob> small_matrix() {
  suites::register_all_workloads();
  std::vector<ExperimentJob> jobs;
  for (const char* name : {"NB", "SGEMM", "BP", "L-BFS"}) {
    const Workload* w = Registry::instance().find(name);
    EXPECT_NE(w, nullptr) << name;
    for (const char* cfg : {"default", "614"}) {
      jobs.push_back(ExperimentJob{w, 0, &config_by_name(cfg)});
    }
  }
  return jobs;
}

TEST(ObsMetrics, CounterGaugeHistogramBasics) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& c = registry.counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("test.counter"), 42u);
  EXPECT_EQ(registry.counter_value("test.never-touched"), 0u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("test.counter"), &c);

  obs::Gauge& g = registry.gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  obs::Histogram& h = registry.histogram("test.histogram");
  h.observe(0.001);
  h.observe(0.004);
  h.observe(0.25);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 0.255);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 0.25);
  registry.reset();
  EXPECT_EQ(registry.counter_value("test.counter"), 0u);
  EXPECT_EQ(registry.histogram_snapshot("test.histogram").count, 0u);
}

TEST(ObsMetrics, HistogramBucketBoundsAreMonotoneAndContainValues) {
  for (double v : {1e-9, 1e-6, 0.001, 0.5, 1.0, 3.0, 1000.0}) {
    const int b = obs::Histogram::bucket_of(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, obs::Histogram::kBuckets);
    // Bucket b covers [bound(b-1), bound(b)): lower bound inclusive, so
    // exact powers of two land in the bucket they open.
    EXPECT_LT(v, obs::Histogram::bucket_upper_bound(b)) << v;
    if (b > 0) {
      EXPECT_GE(v, obs::Histogram::bucket_upper_bound(b - 1)) << v;
    }
  }
  EXPECT_EQ(obs::Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(-1.0), 0);
  for (int i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_LT(obs::Histogram::bucket_upper_bound(i - 1),
              obs::Histogram::bucket_upper_bound(i));
  }
}

TEST(ObsTrace, DisabledRecordsNothingAndSpansAreInert) {
  obs::set_enabled(false);
  obs::Tracer::instance().clear();
  {
    obs::Span span("should-not-appear");
    span.arg("k", std::string_view("v")).arg("n", std::uint64_t{1});
    obs::instant("nor-this");
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

// 8 threads each record a strictly nested outer > mid > leaf span chain
// repeatedly; every recorded child interval must lie within a same-thread
// parent interval, and per-thread events must come out time-ordered.
TEST(ObsTrace, SpanNestingAndOrderingUnder8Threads) {
  ObsOn on;
  constexpr int kThreads = 8;
  constexpr int kRepeats = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kRepeats; ++i) {
        obs::Span outer("outer", "test");
        obs::instant("tick", "test");
        {
          obs::Span mid("mid", "test");
          obs::Span leaf("leaf", "test");
          leaf.arg("i", static_cast<std::uint64_t>(i));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::map<std::uint32_t, std::vector<obs::TraceEvent>> by_tid;
  for (const obs::TraceEvent& e : obs::Tracer::instance().snapshot()) {
    if (e.cat == "test") by_tid[e.tid].push_back(e);
  }
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));

  const auto contains = [](const obs::TraceEvent& parent,
                           const obs::TraceEvent& child) {
    return parent.ts_us <= child.ts_us &&
           child.ts_us + child.dur_us <= parent.ts_us + parent.dur_us;
  };
  for (const auto& [tid, events] : by_tid) {
    std::vector<const obs::TraceEvent*> outers, mids, leaves;
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].ts_us, events[i].ts_us) << "tid " << tid;
    }
    for (const obs::TraceEvent& e : events) {
      if (e.name == "outer") outers.push_back(&e);
      if (e.name == "mid") mids.push_back(&e);
      if (e.name == "leaf") leaves.push_back(&e);
    }
    EXPECT_EQ(outers.size(), static_cast<std::size_t>(kRepeats));
    EXPECT_EQ(mids.size(), static_cast<std::size_t>(kRepeats));
    EXPECT_EQ(leaves.size(), static_cast<std::size_t>(kRepeats));
    for (const obs::TraceEvent* mid : mids) {
      bool nested = false;
      for (const obs::TraceEvent* outer : outers) nested |= contains(*outer, *mid);
      EXPECT_TRUE(nested) << "mid span escaped every outer span, tid " << tid;
    }
    for (const obs::TraceEvent* leaf : leaves) {
      bool nested = false;
      for (const obs::TraceEvent* mid : mids) nested |= contains(*mid, *leaf);
      EXPECT_TRUE(nested) << "leaf span escaped every mid span, tid " << tid;
    }
  }
}

TEST(ObsMetrics, CacheCountersExactlyMatchStudyCacheStats) {
  ObsOn on;
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();

  Study study;
  const std::vector<ExperimentJob> jobs = small_matrix();
  const Scheduler scheduler{Scheduler::Options{4}};
  scheduler.run(study, jobs);
  // A warm second batch exercises the hit counters too.
  scheduler.run(study, jobs);

  const Study::CacheStats stats = study.cache_stats();
  EXPECT_GT(stats.result_misses, 0u);
  EXPECT_GT(stats.result_hits, 0u);
  EXPECT_EQ(registry.counter_value("study.trace_cache.hits"), stats.trace_hits);
  EXPECT_EQ(registry.counter_value("study.trace_cache.misses"),
            stats.trace_misses);
  EXPECT_EQ(registry.counter_value("study.result_cache.hits"),
            stats.result_hits);
  EXPECT_EQ(registry.counter_value("study.result_cache.misses"),
            stats.result_misses);
  // The scheduler's own counters: every submitted job was executed.
  EXPECT_EQ(registry.counter_value("scheduler.jobs"), 2 * jobs.size());
}

// Minimal JSON parser: validates syntax only (enough to prove the export
// never emits unescaped or truncated output).
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (c == '"') {
        ++i_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // unescaped
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i_;
            if (i_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[i_])))
              return false;
          }
        } else if (std::string_view(R"("\/bfnrt)").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++i_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek('-')) {
    }
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }
  bool literal(std::string_view word) {
    if (s_.substr(i_, word.size()) != word) return false;
    i_ += word.size();
    return true;
  }
  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
  }
  bool peek(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool expect(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

TEST(ObsTrace, JsonValidatorSanity) {
  EXPECT_TRUE(JsonValidator(R"({"a":[1,2.5,"x\n",{"b":null}],"c":true})").valid());
  EXPECT_FALSE(JsonValidator(R"({"a":1)").valid());
  EXPECT_FALSE(JsonValidator("{\"a\":\"\x01\"}").valid());
  EXPECT_FALSE(JsonValidator(R"({"a" 1})").valid());
}

TEST(ObsTrace, ChromeTraceExportIsWellFormedWithPerStageSpans) {
  ObsOn on;
  suites::register_all_workloads();
  Study study;
  const Workload* w = Registry::instance().find("SGEMM");
  ASSERT_NE(w, nullptr);
  // Names below exercise JSON escaping through the span args too.
  {
    obs::Span span("escape\"check\\", "test");
    span.arg("newline", std::string_view("a\nb"));
  }
  study.measure(*w, 0, config_by_name("default"));
  study.measure(*w, 0, config_by_name("ecc"));

  std::ostringstream os;
  obs::Tracer::instance().export_chrome_json(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  // Per-stage spans for every computed experiment.
  std::map<std::string, int> by_name;
  for (const obs::TraceEvent& e : obs::Tracer::instance().snapshot()) {
    ++by_name[e.name];
    EXPECT_GE(e.dur_us, 0.0) << e.name;
  }
  EXPECT_EQ(by_name["experiment"], 2);
  EXPECT_EQ(by_name["trace-build"], 2);
  EXPECT_EQ(by_name["timing"], 2);
  for (const char* stage :
       {"variability", "power-synthesis", "sensor-sampling",
        "k20power-analysis", "repetition"}) {
    EXPECT_EQ(by_name[stage], 2 * 3) << stage;  // repetitions per experiment
  }
}

TEST(ObsAttribution, KernelEnergiesSumToMeasuredEnergy) {
  suites::register_all_workloads();
  Study study;
  for (const char* name : {"NB", "LBM", "BH", "SGEMM"}) {
    const Workload* w = Registry::instance().find(name);
    ASSERT_NE(w, nullptr) << name;
    const sim::GpuConfig& config = config_by_name("default");
    const ExperimentResult& r = study.measure(*w, 0, config);
    ASSERT_TRUE(r.usable) << name;
    const obs::AttributionTable table = study.attribution(*w, 0, config);

    ASSERT_FALSE(table.kernels.empty()) << name;
    double energy = 0.0, share = 0.0, time = 0.0;
    for (const obs::KernelAttribution& k : table.kernels) {
      EXPECT_GT(k.model_energy_j, 0.0) << name << "/" << k.kernel;
      energy += k.energy_j;
      share += k.energy_share;
      time += k.time_s;
    }
    EXPECT_NEAR(energy, r.energy_j, 1e-9 * r.energy_j) << name;
    EXPECT_NEAR(energy, table.attributed_energy_j, 1e-12 * energy) << name;
    EXPECT_NEAR(share, 1.0, 1e-12) << name;
    const sim::TraceResult& trace = study.trace_result(*w, 0, config);
    EXPECT_NEAR(time, trace.active_time_s, 1e-9 * trace.active_time_s) << name;
    // Sorted by descending attributed energy.
    for (std::size_t i = 1; i < table.kernels.size(); ++i) {
      EXPECT_GE(table.kernels[i - 1].energy_j, table.kernels[i].energy_j);
    }
  }
}

TEST(ObsAttribution, UnusableExperimentFallsBackToModelEnergy) {
  suites::register_all_workloads();
  Study study;
  // L-BFS-wlc input 2 finishes too fast for the power sensor — the one
  // experiment the golden file records as usable=0.
  const Workload* w = Registry::instance().find("L-BFS-wlc");
  ASSERT_NE(w, nullptr);
  const sim::GpuConfig& config = config_by_name("default");
  const ExperimentResult& r = study.measure(*w, 2, config);
  ASSERT_FALSE(r.usable);
  const obs::AttributionTable table = study.attribution(*w, 2, config);
  ASSERT_FALSE(table.kernels.empty());
  EXPECT_NEAR(table.attributed_energy_j, table.model_energy_j,
              1e-12 * table.model_energy_j);
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// The core guarantee of the layer: enabling observability changes no
// measured value, bit for bit.
TEST(ObsGolden, MeasurementsBitIdenticalWithObsOnAndOff) {
  const std::vector<ExperimentJob> jobs = small_matrix();

  obs::set_enabled(false);
  Study off;
  const Scheduler scheduler{Scheduler::Options{4}};
  scheduler.run(off, jobs);

  std::vector<std::uint64_t> expected;
  for (const ExperimentJob& job : jobs) {
    const ExperimentResult& r =
        off.measure(*job.workload, job.input_index, *job.config);
    expected.push_back(bits(r.time_s));
    expected.push_back(bits(r.energy_j));
    expected.push_back(bits(r.power_w));
    expected.push_back(bits(r.true_active_s));
  }

  {
    ObsOn on;
    Study with_obs;
    scheduler.run(with_obs, jobs);
    std::size_t i = 0;
    for (const ExperimentJob& job : jobs) {
      const ExperimentResult& r =
          with_obs.measure(*job.workload, job.input_index, *job.config);
      EXPECT_EQ(expected[i++], bits(r.time_s));
      EXPECT_EQ(expected[i++], bits(r.energy_j));
      EXPECT_EQ(expected[i++], bits(r.power_w));
      EXPECT_EQ(expected[i++], bits(r.true_active_s));
    }
    EXPECT_GT(obs::Tracer::instance().event_count(), 0u);
  }
}

TEST(ObsExport, TextAndJsonlExportersRoundTrip) {
  ObsOn on;
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  registry.counter("export.counter").add(7);
  registry.gauge("export.gauge").set(1.25);
  registry.histogram("export.histogram").observe(0.5);

  std::ostringstream text;
  registry.export_text(text);
  EXPECT_NE(text.str().find("counter export.counter 7"), std::string::npos);
  EXPECT_NE(text.str().find("gauge export.gauge 1.25"), std::string::npos);
  EXPECT_NE(text.str().find("histogram export.histogram count=1"),
            std::string::npos);

  std::ostringstream jsonl;
  registry.export_jsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(JsonValidator(line).valid()) << line;
    ++parsed;
  }
  EXPECT_GE(parsed, 3);
}

// --- Sharded instruments (DESIGN.md §9) ---------------------------------

// 8 threads hammering one sharded counter must aggregate to the exact
// single-threaded sum once the writers join (per-cell monotone counters).
TEST(ObsMetrics, ShardedCounterAggregationMatchesSingleThreadedSum) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        counter.add(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // sum over t of (t+1) * kAddsPerThread = kAddsPerThread * 8*9/2.
  EXPECT_EQ(counter.value(), kAddsPerThread * kThreads * (kThreads + 1) / 2);
  EXPECT_EQ(counter.take(), kAddsPerThread * kThreads * (kThreads + 1) / 2);
  EXPECT_EQ(counter.value(), 0u);
}

// Concurrency invariant (meant for the tsan preset, label "obs"): while
// writers observe, every snapshot obeys count >= sum(buckets) and
// min <= max; after the writers join, totals are exact. Observed values
// are powers of two so the CAS-accumulated double sum is exact.
TEST(ObsMetrics, HistogramConcurrentObserveKeepsSnapshotInvariant) {
  obs::Histogram histogram;
  constexpr int kWriters = 4;
  constexpr int kObservesPerWriter = 50000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::HistogramSnapshot s = histogram.snapshot();
      if (s.count < s.bucket_total()) violations.fetch_add(1);
      if (s.count > 0 && s.min > s.max) violations.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&histogram, t] {
      const double v = std::ldexp(1.0, -t);  // 1, 0.5, 0.25, 0.125
      for (int i = 0; i < kObservesPerWriter; ++i) histogram.observe(v);
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(violations.load(), 0u);
  const obs::HistogramSnapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kWriters) * kObservesPerWriter);
  EXPECT_EQ(s.bucket_total(), s.count);
  // 50000 * (1 + 0.5 + 0.25 + 0.125); powers of two sum exactly.
  EXPECT_DOUBLE_EQ(s.sum, kObservesPerWriter * 1.875);
  EXPECT_DOUBLE_EQ(s.min, 0.125);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

// The dispatcher's per-cycle Batch accumulator must be observationally
// identical to observing each value directly.
TEST(ObsMetrics, HistogramBatchFlushMatchesDirectObserve) {
  const std::vector<double> values = {1e-9, 2.5e-7, 1e-6,  3.1e-6, 0.5,
                                      1.0,  7.25,   1e-12, 42.0,   1e-6};
  obs::Histogram direct;
  obs::Histogram batched;
  obs::Histogram::Batch batch;
  EXPECT_TRUE(batch.empty());
  for (const double v : values) {
    direct.observe(v);
    batch.observe(v);
  }
  EXPECT_FALSE(batch.empty());
  batch.flush(batched);
  EXPECT_TRUE(batch.empty());
  batch.flush(batched);  // empty flush is a no-op

  const obs::HistogramSnapshot a = direct.snapshot();
  const obs::HistogramSnapshot b = batched.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

// Reset contract (metrics.hpp): under concurrent adders, repeated
// snapshot_and_reset() epochs plus the residual must account for every
// increment exactly — none lost, none double-counted.
TEST(ObsMetrics, SnapshotAndResetNeverLosesOrDoubleCountsIncrements) {
  obs::Registry& registry = obs::Registry::instance();
  registry.reset();
  obs::Counter& counter = registry.counter("obs_test.reset_race");
  constexpr int kAdders = 4;
  constexpr std::uint64_t kAddsPerThread = 200000;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reaped{0};
  std::thread reaper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::RegistrySnapshot snap = registry.snapshot_and_reset();
      for (const auto& [name, value] : snap.counters) {
        if (name == "obs_test.reset_race") reaped.fetch_add(value);
      }
    }
  });
  std::vector<std::thread> adders;
  adders.reserve(kAdders);
  for (int t = 0; t < kAdders; ++t) {
    adders.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& t : adders) t.join();
  done.store(true, std::memory_order_release);
  reaper.join();

  EXPECT_EQ(reaped.load() + counter.take(), kAdders * kAddsPerThread);
  registry.reset();
}

// --- Ring-buffer tracer (DESIGN.md §9) ----------------------------------

// Recording past capacity drops the OLDEST events, keeps the newest, and
// accounts for every drop in dropped_count() exactly.
TEST(ObsTrace, RingBufferWrapDropsOldestWithExactCounter) {
  ObsOn on;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(64);
  constexpr int kRecorded = 200;
  for (int i = 0; i < kRecorded; ++i) {
    obs::instant("wrap" + std::to_string(i), "test");
  }
  EXPECT_EQ(tracer.event_count(), 64u);
  EXPECT_EQ(tracer.recorded_count(), static_cast<std::uint64_t>(kRecorded));
  EXPECT_EQ(tracer.dropped_count(), static_cast<std::uint64_t>(kRecorded - 64));

  // The retained window is exactly the newest 64 events, in order.
  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].name,
              "wrap" + std::to_string(kRecorded - 64 + i));
  }

  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_count(), 0u);
  tracer.set_capacity(obs::Tracer::kDefaultCapacity);
}

// --- Instruction-class energy law (DESIGN.md §9) ------------------------

// The pinned decomposition law over the full registry matrix, all four
// configurations: for every program x config and every kernel row,
// sum_c(class_energy_j[c]) + static_energy_j == model_energy_j, the table
// totals obey the same identity, and the energy_j column still sums to
// the measured (or, for unusable experiments, model) energy.
TEST(ObsAttribution, ClassEnergiesSumToComponentModelEnergy) {
  suites::register_all_workloads();
  const std::vector<ExperimentJob> jobs =
      core::registry_matrix({"default", "614", "324", "ecc"});
  ASSERT_FALSE(jobs.empty());

  Study study;
  const Scheduler scheduler{Scheduler::Options{8}};
  scheduler.run(study, jobs);  // warm the caches in parallel

  for (const ExperimentJob& job : jobs) {
    const std::string tag = std::string(job.workload->name()) + "/" +
                            std::to_string(job.input_index) + "/" +
                            job.config->name;
    const ExperimentResult& r =
        study.measure(*job.workload, job.input_index, *job.config);
    const obs::AttributionTable table =
        study.attribution(*job.workload, job.input_index, *job.config);
    ASSERT_FALSE(table.kernels.empty()) << tag;

    std::array<double, power::kNumInstClasses> column_totals{};
    double static_total = 0.0;
    double attributed = 0.0;
    for (const obs::KernelAttribution& k : table.kernels) {
      double class_sum = k.static_energy_j;
      for (std::size_t c = 0; c < power::kNumInstClasses; ++c) {
        EXPECT_GE(k.class_energy_j[c], 0.0) << tag << "/" << k.kernel;
        class_sum += k.class_energy_j[c];
        column_totals[c] += k.class_energy_j[c];
      }
      EXPECT_GE(k.static_energy_j, 0.0) << tag << "/" << k.kernel;
      // The law: class columns + static sum to the kernel's model energy.
      EXPECT_NEAR(class_sum, k.model_energy_j, 1e-9 * k.model_energy_j)
          << tag << "/" << k.kernel;
      static_total += k.static_energy_j;
      attributed += k.energy_j;
    }

    // Table totals are the column sums and obey the same identity.
    double table_class_sum = table.static_energy_j;
    for (std::size_t c = 0; c < power::kNumInstClasses; ++c) {
      EXPECT_NEAR(table.class_energy_j[c], column_totals[c],
                  1e-9 * (column_totals[c] + 1e-300))
          << tag;
      table_class_sum += table.class_energy_j[c];
    }
    EXPECT_NEAR(table.static_energy_j, static_total,
                1e-9 * (static_total + 1e-300))
        << tag;
    EXPECT_NEAR(table_class_sum, table.model_energy_j,
                1e-9 * table.model_energy_j)
        << tag;

    // The measured-energy pin is unchanged by the class decomposition.
    const double expected =
        r.usable && r.energy_j > 0.0 ? r.energy_j : table.model_energy_j;
    EXPECT_NEAR(attributed, expected, 1e-9 * expected) << tag;
    EXPECT_NEAR(attributed, table.attributed_energy_j, 1e-12 * attributed)
        << tag;
  }
}

// --- Histogram percentiles (serve SLO reporting, DESIGN.md §14) ------------
//
// percentile() interpolates linearly inside the log2 bucket that carries
// the rank; ranks on cumulative-count boundaries land EXACTLY on bucket
// edges, and the result is clamped to the observed [min, max] envelope.
// These pins are the contract the load harness and --metrics-every rely on.

TEST(ObsPercentile, EmptySnapshotIsZeroForEveryQuantile) {
  const obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.percentile(0.0), 0.0);
  EXPECT_EQ(empty.percentile(0.5), 0.0);
  EXPECT_EQ(empty.percentile(1.0), 0.0);
}

TEST(ObsPercentile, SingleBucketInterpolatesBetweenItsBounds) {
  // Four observations in the [0.5, 1) bucket, envelope spanning the full
  // bucket: quantiles interpolate linearly across [0.5, 1.0].
  obs::HistogramSnapshot s;
  s.count = 4;
  s.min = 0.5;
  s.max = 1.0;
  const int b = obs::Histogram::bucket_of(0.75);
  ASSERT_EQ(obs::Histogram::bucket_lower_bound(b), 0.5);
  ASSERT_EQ(obs::Histogram::bucket_upper_bound(b), 1.0);
  s.buckets[static_cast<std::size_t>(b)] = 4;
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.5);    // lower bucket edge, exactly
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 0.625); // rank 1 of 4
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.75);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1.0);    // upper bucket edge, exactly
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(s.percentile(-3.0), 0.5);
  EXPECT_DOUBLE_EQ(s.percentile(7.0), 1.0);
}

TEST(ObsPercentile, RankOnBucketBoundaryLandsExactlyOnTheSharedEdge) {
  // Two adjacent buckets, two observations each: q=0.5 is the cumulative
  // boundary between them and must return the shared edge (1.0) exactly —
  // no interpolation into either side.
  obs::HistogramSnapshot s;
  s.count = 4;
  s.min = 0.5;
  s.max = 2.0;
  s.buckets[static_cast<std::size_t>(obs::Histogram::bucket_of(0.75))] = 2;
  s.buckets[static_cast<std::size_t>(obs::Histogram::bucket_of(1.5))] = 2;
  ASSERT_EQ(obs::Histogram::bucket_upper_bound(obs::Histogram::bucket_of(0.75)),
            obs::Histogram::bucket_lower_bound(obs::Histogram::bucket_of(1.5)));
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.75), 1.5);  // rank 3: halfway into [1, 2)
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 2.0);
}

TEST(ObsPercentile, ResultClampsToObservedMinMaxEnvelope) {
  // The log2 edge buckets are coarse; the observed envelope tightens them.
  obs::Histogram h;
  h.observe(0.75);
  h.observe(0.75);
  h.observe(0.75);
  const obs::HistogramSnapshot s = h.snapshot();
  // Every quantile of a constant sample is that constant, even though the
  // carrying bucket spans [0.5, 1).
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.75);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.75);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 0.75);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 0.75);
}

TEST(ObsPercentile, ExportersCarryTheP50P95P99Fields) {
  obs::RegistrySnapshot snap;
  obs::HistogramSnapshot h;
  h.count = 4;
  h.sum = 3.0;
  h.min = 0.5;
  h.max = 1.0;
  h.buckets[static_cast<std::size_t>(obs::Histogram::bucket_of(0.75))] = 4;
  snap.histograms.emplace_back("test.latency", h);
  std::ostringstream text;
  obs::export_text(snap, text);
  EXPECT_NE(text.str().find("p50=0.75"), std::string::npos) << text.str();
  EXPECT_NE(text.str().find("p95=0.975"), std::string::npos) << text.str();
  std::ostringstream jsonl;
  obs::export_jsonl(snap, jsonl);
  EXPECT_NE(jsonl.str().find("\"p50\":0.75"), std::string::npos) << jsonl.str();
  EXPECT_NE(jsonl.str().find("\"p99\":0.995"), std::string::npos) << jsonl.str();
}

}  // namespace
}  // namespace repro
