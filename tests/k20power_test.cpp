#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "k20power/analyze.hpp"
#include "power/model.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "util/rng.hpp"

namespace repro::k20power {
namespace {

using sensor::Sample;
using sensor::Segment;
using sensor::Sensor;
using sensor::Waveform;

/// Synthetic run: idle 25 W, one rectangular burst.
std::vector<Sample> synthetic_run(double active_w, double start, double dur,
                                  double total, std::uint64_t seed = 3) {
  std::vector<Segment> segs{{0.0, start, 25.0, 25.0},
                            {start, start + dur, active_w, active_w},
                            {start + dur, total, 25.0, 25.0}};
  util::Rng rng{seed};
  const Sensor sensor;
  return sensor.record(Waveform{std::move(segs)}, rng);
}

TEST(Analyze, RecoversActiveRuntime) {
  const auto samples = synthetic_run(110.0, 5.0, 10.0, 25.0);
  const Measurement m = analyze(samples);
  ASSERT_TRUE(m.usable);
  EXPECT_NEAR(m.active_time_s, 10.0, 1.0);
}

TEST(Analyze, RecoversEnergyWithLagCompensation) {
  const auto samples = synthetic_run(110.0, 5.0, 10.0, 30.0);
  const Measurement m = analyze(samples);
  ASSERT_TRUE(m.usable);
  // True energy of the burst window: 110 W x 10 s. The lag-compensated
  // reconstruction carries a few percent of edge bias, like the real tool.
  EXPECT_NEAR(m.energy_j, 1100.0, 120.0);
  EXPECT_NEAR(m.avg_power_w, 110.0, 9.0);
}

TEST(Analyze, IdleEstimateNearTrueIdle) {
  const auto samples = synthetic_run(110.0, 5.0, 10.0, 30.0);
  const Measurement m = analyze(samples);
  EXPECT_NEAR(m.idle_w, 25.0, 1.0);
}

TEST(Analyze, ThresholdBetweenIdleAndPeak) {
  const auto samples = synthetic_run(110.0, 5.0, 10.0, 30.0);
  const Measurement m = analyze(samples);
  EXPECT_GT(m.threshold_w, m.idle_w);
  EXPECT_LT(m.threshold_w, m.peak_w);
}

TEST(Analyze, ShortRunRejected) {
  // A 0.3 s burst yields only ~3 active samples at 10 Hz - the paper's
  // reason for excluding L-BFS wlc/wlw (§V.B.1).
  const auto samples = synthetic_run(110.0, 5.0, 0.3, 12.0);
  const Measurement m = analyze(samples);
  EXPECT_FALSE(m.usable);
}

TEST(Analyze, LowRiseRejected) {
  // Power rise below the minimum threshold margin - the paper's reason
  // for excluding most codes at the 324 configuration.
  const auto samples = synthetic_run(28.0, 5.0, 10.0, 30.0);
  const Measurement m = analyze(samples);
  EXPECT_FALSE(m.usable);
}

TEST(Analyze, EmptyAndTinyInputs) {
  EXPECT_FALSE(analyze({}).usable);
  std::vector<Sample> two{{0.0, 25.0}, {1.0, 25.0}};
  EXPECT_FALSE(analyze(two).usable);
}

TEST(Analyze, FlatIdleTraceRejected) {
  std::vector<Sample> flat;
  for (int i = 0; i < 100; ++i) flat.push_back({i * 1.0, 25.0});
  EXPECT_FALSE(analyze(flat).usable);
}

TEST(Analyze, LongerRunMoreEnergy) {
  const Measurement short_run = analyze(synthetic_run(110.0, 5.0, 5.0, 25.0));
  const Measurement long_run = analyze(synthetic_run(110.0, 5.0, 15.0, 35.0));
  ASSERT_TRUE(short_run.usable);
  ASSERT_TRUE(long_run.usable);
  EXPECT_NEAR(long_run.energy_j / short_run.energy_j, 3.0, 0.35);
  EXPECT_NEAR(long_run.avg_power_w, short_run.avg_power_w, 10.0);
}

TEST(Analyze, ActiveSampleCountReported) {
  const Measurement m = analyze(synthetic_run(110.0, 5.0, 10.0, 30.0));
  EXPECT_GE(m.active_samples, 80);
  EXPECT_LE(m.active_samples, 120);
}

}  // namespace
}  // namespace repro::k20power
