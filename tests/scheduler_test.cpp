// Parallel == serial proof for the experiment scheduler.
//
// Every experiment's measurement stream is seeded purely from its cache
// key, so the work-stealing scheduler must produce byte-identical results
// to serial Study::measure regardless of thread count, execution order or
// repetition. These tests pin that guarantee: a model or scheduler change
// that lets ordering leak into results fails here instead of silently
// shifting every figure reproduction.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/study.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

namespace repro::core {
namespace {

using sim::config_by_name;
using workloads::Registry;
using workloads::Workload;

// A 6-workload x 4-config slice that spans suites, boundedness classes and
// regularity, including an experiment that is unusable at 324 MHz.
const std::vector<const char*>& slice_programs() {
  static const std::vector<const char*> programs{"NB",    "LBM", "SGEMM",
                                                 "L-BFS", "BP",  "TPACF"};
  return programs;
}

std::vector<ExperimentJob> slice_jobs() {
  suites::register_all_workloads();
  std::vector<const Workload*> workloads;
  for (const char* name : slice_programs()) {
    const Workload* w = Registry::instance().find(name);
    EXPECT_NE(w, nullptr) << name;
    workloads.push_back(w);
  }
  std::vector<const sim::GpuConfig*> configs;
  for (const char* cfg : {"default", "614", "324", "ecc"}) {
    configs.push_back(&config_by_name(cfg));
  }
  // Restrict to input 0 to keep the slice at exactly 6 x 4 experiments.
  std::vector<ExperimentJob> jobs;
  for (const Workload* w : workloads) {
    for (const sim::GpuConfig* c : configs) {
      jobs.push_back(ExperimentJob{w, 0, c});
    }
  }
  return jobs;
}

// Bit pattern of a double: EXPECT_EQ on doubles would already be exact,
// but comparing the raw bits also distinguishes -0.0/0.0 and makes the
// "byte-identical" claim literal.
std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

struct Snapshot {
  bool usable;
  std::uint64_t time, energy, power, true_active;
  std::size_t repetition_count;
};

std::map<std::string, Snapshot> snapshot(Study& study,
                                         const std::vector<ExperimentJob>& jobs) {
  std::map<std::string, Snapshot> out;
  for (const ExperimentJob& job : jobs) {
    const ExperimentResult& r =
        study.measure(*job.workload, job.input_index, *job.config);
    out[experiment_key(*job.workload, job.input_index, *job.config)] =
        Snapshot{r.usable,         bits(r.time_s),        bits(r.energy_j),
                 bits(r.power_w),  bits(r.true_active_s), r.repetitions.size()};
  }
  return out;
}

void expect_identical(const std::map<std::string, Snapshot>& a,
                      const std::map<std::string, Snapshot>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, sa] : a) {
    const auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    const Snapshot& sb = it->second;
    EXPECT_EQ(sa.usable, sb.usable) << key;
    EXPECT_EQ(sa.time, sb.time) << key;
    EXPECT_EQ(sa.energy, sb.energy) << key;
    EXPECT_EQ(sa.power, sb.power) << key;
    EXPECT_EQ(sa.true_active, sb.true_active) << key;
    EXPECT_EQ(sa.repetition_count, sb.repetition_count) << key;
  }
}

class SchedulerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerEquivalence, ParallelMatchesSerialBitwise) {
  const std::vector<ExperimentJob> jobs = slice_jobs();

  // Serial reference: plain Study::measure in submission order.
  Study serial;
  const auto expected = snapshot(serial, jobs);

  // Parallel run on a fresh Study at the parameterized thread count.
  Study parallel;
  const Scheduler scheduler{Scheduler::Options{GetParam()}};
  const BatchReport report = scheduler.run(parallel, jobs);
  EXPECT_EQ(report.threads, GetParam());
  EXPECT_EQ(report.jobs, jobs.size());
  EXPECT_EQ(report.results.size(), jobs.size());  // all keys distinct here

  const auto actual = snapshot(parallel, jobs);
  expect_identical(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, SchedulerEquivalence,
                         ::testing::Values(2, 8));

TEST(Scheduler, DeterministicAcrossInvocations) {
  const std::vector<ExperimentJob> jobs = slice_jobs();
  std::map<std::string, Snapshot> first;
  for (int invocation = 0; invocation < 3; ++invocation) {
    Study study;
    const Scheduler scheduler{Scheduler::Options{8}};
    scheduler.run(study, jobs);
    const auto snap = snapshot(study, jobs);
    if (invocation == 0) {
      first = snap;
    } else {
      expect_identical(first, snap);
    }
  }
}

TEST(Scheduler, StableAggregationOrder) {
  const std::vector<ExperimentJob> jobs = slice_jobs();
  std::vector<ExperimentJob> reversed(jobs.rbegin(), jobs.rend());

  Study a, b;
  const Scheduler scheduler{Scheduler::Options{4}};
  const BatchReport ra = scheduler.run(a, jobs);
  const BatchReport rb = scheduler.run(b, reversed);
  ASSERT_EQ(ra.results.size(), rb.results.size());
  for (std::size_t i = 0; i < ra.results.size(); ++i) {
    EXPECT_EQ(ra.results[i].key, rb.results[i].key);  // sorted, order-free
    EXPECT_EQ(bits(ra.results[i].result->time_s),
              bits(rb.results[i].result->time_s));
  }
  // Keys arrive sorted.
  for (std::size_t i = 1; i < ra.results.size(); ++i) {
    EXPECT_LT(ra.results[i - 1].key, ra.results[i].key);
  }
}

TEST(Scheduler, DuplicateJobsComputeOnce) {
  std::vector<ExperimentJob> jobs = slice_jobs();
  const std::size_t unique = jobs.size();
  jobs.insert(jobs.end(), jobs.begin(), jobs.begin() + 10);  // resubmit 10

  Study study;
  const Scheduler scheduler{Scheduler::Options{8}};
  const BatchReport report = scheduler.run(study, jobs);
  EXPECT_EQ(report.jobs, unique + 10);
  EXPECT_EQ(report.results.size(), unique);
  EXPECT_EQ(report.stats.result_misses, unique);
  EXPECT_EQ(report.stats.result_hits, 10u);
  std::uint64_t worker_jobs = 0;
  for (const WorkerMetrics& w : report.workers) worker_jobs += w.jobs;
  EXPECT_EQ(worker_jobs, jobs.size());
}

TEST(Scheduler, SharedStudyAcrossBatches) {
  const std::vector<ExperimentJob> jobs = slice_jobs();
  Study study;
  const Scheduler scheduler{Scheduler::Options{4}};
  const BatchReport cold = scheduler.run(study, jobs);
  const BatchReport warm = scheduler.run(study, jobs);
  EXPECT_EQ(cold.stats.result_misses, jobs.size());
  EXPECT_EQ(warm.stats.result_misses, 0u);
  EXPECT_EQ(warm.stats.result_hits, jobs.size());
  EXPECT_DOUBLE_EQ(warm.hit_rate(), 1.0);
}

TEST(Scheduler, ReportPrintsMetricsSurface) {
  Study study;
  const Scheduler scheduler{Scheduler::Options{2}};
  const BatchReport report = scheduler.run(study, slice_jobs());
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("24 jobs on 2 threads"), std::string::npos) << text;
  EXPECT_NE(text.find("hit rate"), std::string::npos);
  EXPECT_NE(text.find("worker  0"), std::string::npos);
  EXPECT_NE(text.find("worker  1"), std::string::npos);
  EXPECT_GE(report.busy_s(), 0.0);
  EXPECT_GT(report.wall_s, 0.0);
}

// Regression: a zero-job batch must produce a clean report — no
// divide-by-zero or NaN in hit_rate(), the per-worker averages, or the
// printed surface.
TEST(Scheduler, EmptyBatchReportHasNoNaNs) {
  Study study;
  const Scheduler scheduler{Scheduler::Options{4}};
  const BatchReport report = scheduler.run(study, {});
  EXPECT_EQ(report.jobs, 0u);
  EXPECT_EQ(report.results.size(), 0u);
  EXPECT_EQ(report.total_jobs(), 0u);
  EXPECT_EQ(report.total_steals(), 0u);
  EXPECT_DOUBLE_EQ(report.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(report.busy_s(), 0.0);
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("0 jobs on 4 threads"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
}

TEST(Scheduler, ReportSurfacesStealsAndPerJobAverage) {
  Study study;
  const Scheduler scheduler{Scheduler::Options{2}};
  const BatchReport report = scheduler.run(study, slice_jobs());
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("stolen"), std::string::npos) << text;
  EXPECT_NE(text.find("executed 24"), std::string::npos) << text;
  EXPECT_NE(text.find("ms/job"), std::string::npos) << text;
  EXPECT_EQ(report.total_jobs(), 24u);
}

TEST(Scheduler, ResolveThreadsPrefersRequestOverEnvironment) {
  EXPECT_EQ(Scheduler::resolve_threads(3), 3);
  EXPECT_GE(Scheduler::resolve_threads(0), 1);
}

TEST(Scheduler, RegistryMatrixCoversEveryInputAndConfig) {
  suites::register_all_workloads();
  const auto primaries = registry_matrix({"default", "614"});
  const auto with_variants =
      registry_matrix({"default", "614"}, /*include_variants=*/true);
  EXPECT_GT(with_variants.size(), primaries.size());
  std::size_t expected = 0;
  for (const Workload* w : Registry::instance().all()) {
    if (!w->variant().empty()) continue;
    expected += w->inputs().size() * 2;
  }
  EXPECT_EQ(primaries.size(), expected);
}

}  // namespace
}  // namespace repro::core
