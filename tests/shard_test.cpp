// Sharded serve tier tests (DESIGN.md §14):
//  - HashRing determinism, virtual-node balance, and the minimal-disruption
//    property warm handoff relies on,
//  - router passthrough bit-identity: a 4-worker tier answers every wire
//    line (exact and sampled) byte-for-byte like a 1-worker tier,
//  - worker death: reroute bit-identity, warm handoff of hot keys, and
//    cache-namespace disjointness across rebalancing,
//  - seeded kWorkerKill chaos: every request terminates truthfully.
//
// Workers here are in-process: one serve::Service per worker behind a
// socketpair served by serve::serve_fd on a thread — the same stream loop
// the forked worker processes run, minus the fork, so the whole suite is
// TSan-clean under the `shard` label.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/study.hpp"
#include "fault/fault.hpp"
#include "serve/service.hpp"
#include "serve/stream.hpp"
#include "serve/wire.hpp"
#include "shard/ring.hpp"
#include "shard/router.hpp"

namespace repro::shard {
namespace {

// --- Hash ring -------------------------------------------------------------

std::vector<std::string> sample_keys(std::size_t n) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("PROG" + std::to_string(i % 17) + "/" +
                   std::to_string(i % 3) + "/cfg" + std::to_string(i));
  }
  return keys;
}

TEST(ShardRing, OwnerIsAPureFunctionOfTheLiveWorkerSet) {
  HashRing forward;
  forward.add("w0");
  forward.add("w1");
  forward.add("w2");
  HashRing backward;
  backward.add("w2");
  backward.add("w0");
  backward.add("w1");
  backward.add("w1");  // re-adding is a no-op
  for (const std::string& key : sample_keys(500)) {
    EXPECT_EQ(forward.owner(key), backward.owner(key)) << key;
  }
  EXPECT_EQ(forward.workers(), backward.workers());

  // Remove + re-add restores the exact same ownership (points are a pure
  // function of the name) — the cross-process routing contract.
  HashRing churned;
  churned.add("w0");
  churned.add("w1");
  churned.add("w2");
  EXPECT_TRUE(churned.remove("w1"));
  EXPECT_FALSE(churned.remove("w1"));
  churned.add("w1");
  for (const std::string& key : sample_keys(500)) {
    EXPECT_EQ(forward.owner(key), churned.owner(key)) << key;
  }
}

TEST(ShardRing, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.owner("anything"), "");
  EXPECT_TRUE(ring.shares().empty());
}

TEST(ShardRing, VirtualNodesKeepSharesBalanced) {
  HashRing ring(64);
  for (int i = 0; i < 4; ++i) ring.add("w" + std::to_string(i));
  const std::map<std::string, double> shares = ring.shares();
  ASSERT_EQ(shares.size(), 4u);
  double total = 0.0;
  for (const auto& [name, share] : shares) {
    // 64 virtual nodes keep every worker within ~2x of the fair 0.25.
    EXPECT_GT(share, 0.10) << name;
    EXPECT_LT(share, 0.45) << name;
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ShardRing, RemovalOnlyMovesTheDeadWorkersKeys) {
  HashRing ring;
  for (int i = 0; i < 4; ++i) ring.add("w" + std::to_string(i));
  const std::vector<std::string> keys = sample_keys(1000);
  std::vector<std::string> before;
  for (const std::string& key : keys) {
    before.push_back(std::string(ring.owner(key)));
  }
  ASSERT_TRUE(ring.remove("w2"));
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::string_view after = ring.owner(keys[i]);
    if (before[i] == "w2") {
      EXPECT_NE(after, "w2");
      ++moved;
    } else {
      // The minimal-disruption property: every key owned by a survivor
      // keeps its owner. Warm handoff depends on this.
      EXPECT_EQ(after, before[i]) << keys[i];
    }
  }
  EXPECT_GT(moved, 0u) << "w2 owned nothing out of 1000 keys?";
}

// --- In-process worker tier ------------------------------------------------

struct TestWorker {
  std::string name;
  int worker_fd = -1;
  std::unique_ptr<serve::Service> service;
  std::thread thread;
};

/// N in-process workers behind socketpairs plus the router over them. The
/// kill hook shuts the worker's end of the pair down — the router observes
/// the death through the broken stream, exactly like a crashed process.
class TestTier {
 public:
  explicit TestTier(int n, Router::Options router_options = {}) {
    std::vector<WorkerEndpoint> endpoints;
    for (int i = 0; i < n; ++i) {
      int sv[2];
      EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
      auto worker = std::make_unique<TestWorker>();
      worker->name = "w" + std::to_string(i);
      worker->worker_fd = sv[1];
      serve::Service::Options options;
      options.threads = 1;
      options.cache_namespace = worker->name;
      worker->service = std::make_unique<serve::Service>(options);
      worker->thread = std::thread(
          [service = worker->service.get(), fd = sv[1]] {
            serve::serve_fd(*service, fd);
          });
      endpoints.push_back(WorkerEndpoint{
          worker->name, sv[0],
          [fd = sv[1]] { ::shutdown(fd, SHUT_RDWR); }});
      workers_.push_back(std::move(worker));
    }
    router_ = std::make_unique<Router>(router_options, std::move(endpoints));
  }

  ~TestTier() {
    router_.reset();  // closes the router fds; workers see EOF and exit
    for (const std::unique_ptr<TestWorker>& worker : workers_) {
      ::shutdown(worker->worker_fd, SHUT_RDWR);
      worker->thread.join();
      ::close(worker->worker_fd);
    }
  }

  Router& router() { return *router_; }

  /// Waits until the router observed `alive` live workers (deaths land
  /// asynchronously through the broken stream).
  void wait_for_alive(std::size_t alive) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (router_->health().alive != alive) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "router never observed the worker death";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

 private:
  std::vector<std::unique_ptr<TestWorker>> workers_;
  std::unique_ptr<Router> router_;
};

struct SliceEntry {
  const char* program;
  std::size_t input;
  const char* config;
};

// Same golden slice the serve tests pin: all five suites, all four configs.
constexpr SliceEntry kSlice[10] = {
    {"NB", 2, "default"},  {"LBM", 0, "614"},    {"SGEMM", 0, "default"},
    {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
    {"FFT", 0, "default"}, {"MD", 0, "614"},     {"L-BFS-wlc", 2, "default"},
    {"BH", 0, "default"},
};

std::string request_line(std::size_t slice_index, std::uint64_t id) {
  const SliceEntry& e = kSlice[slice_index % std::size(kSlice)];
  v1::ExperimentRequest request;
  request.program = e.program;
  request.input_index = e.input;
  request.config = e.config;
  request.id = id;
  return serve::format_request_line(request);
}

std::string slice_key(std::size_t slice_index) {
  const SliceEntry& e = kSlice[slice_index % std::size(kSlice)];
  return core::experiment_key(e.program, e.input, e.config);
}

/// Value bytes of one JSON field (quoted strings unwrapped), or "" —
/// used to compare measurement bytes independent of the cached flag.
std::string json_field(const std::string& line, const std::string& name) {
  const std::string marker = "\"" + name + "\":";
  std::size_t start = line.find(marker);
  if (start == std::string::npos) return {};
  start += marker.size();
  if (start >= line.size()) return {};
  std::size_t end;
  if (line[start] == '"') {
    ++start;
    end = line.find('"', start);
  } else {
    end = line.find_first_of(",}", start);
  }
  return end == std::string::npos ? std::string{}
                                  : line.substr(start, end - start);
}

// --- Byte-identity ---------------------------------------------------------

TEST(ShardRouter, FourWorkerTierAnswersByteIdenticalToOneWorker) {
  TestTier single(1);
  TestTier sharded(4);
  // Two rounds: round one is all misses, round two all hits — and because
  // routing is a pure function of the key, the cached flags line up too,
  // so the WHOLE line must match byte for byte.
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < std::size(kSlice); ++i) {
      const std::string line = request_line(i, i + 1);
      const std::string expected = single.router().route_line(line, i + 1);
      const std::string actual = sharded.router().route_line(line, i + 1);
      EXPECT_EQ(actual, expected) << line;
      EXPECT_EQ(json_field(actual, "cached"), round == 0 ? "false" : "true")
          << actual;
    }
  }
  const serve::RouterHealth health = sharded.router().health();
  EXPECT_EQ(health.routed, 2 * std::size(kSlice));
  EXPECT_EQ(health.failed, 0u);
  // The tier actually sharded: with 10 keys over 4 workers at least two
  // workers served traffic.
  std::size_t serving = 0;
  for (const serve::TopologyWorker& row : sharded.router().topology().ring) {
    if (row.routed > 0) ++serving;
  }
  EXPECT_GE(serving, 2u);
}

TEST(ShardRouter, SampledRequestsRouteByteIdenticalWithCiFields) {
  TestTier single(1);
  TestTier sharded(4);
  std::size_t sampled_responses = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    v1::ExperimentRequest request;
    const SliceEntry& e = kSlice[i];
    request.program = e.program;
    request.input_index = e.input;
    request.config = e.config;
    request.id = 100 + i;
    request.sampling.mode = i % 2 == 0 ? v1::SamplingMode::kStratified
                                       : v1::SamplingMode::kSystematic;
    request.sampling.fraction = 0.5;
    request.sampling.seed = 1234 + i;
    const std::string line = serve::format_request_line(request);
    const std::string expected = single.router().route_line(line, 100 + i);
    const std::string actual = sharded.router().route_line(line, 100 + i);
    EXPECT_EQ(actual, expected) << line;
    // Workloads with too few kernels degenerate to exact measurement
    // (sampled=false) — identically on both tiers; the ones that do
    // sample must carry their CI fields through the router verbatim.
    if (actual.find("\"sampled\":true") != std::string::npos) {
      EXPECT_NE(actual.find("\"time_ci_low\":"), std::string::npos) << actual;
      EXPECT_NE(actual.find("\"power_ci_high\":"), std::string::npos) << actual;
      ++sampled_responses;
    }
  }
  EXPECT_GT(sampled_responses, 0u) << "no request actually sampled";
}

TEST(ShardRouter, ThermalRequestsRouteByteIdenticalWithTelemetry) {
  // The router forwards thermal requests verbatim — routing is a pure
  // function of the experiment key, so a 4-worker tier answers byte
  // identically to a single worker, telemetry fields included.
  TestTier single(1);
  TestTier sharded(4);
  std::size_t throttled_responses = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      v1::ExperimentRequest request;
      const SliceEntry& e = kSlice[i];
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      request.id = 200 + i;
      request.thermal.enabled = true;
      // Slice runs only climb a few degrees over ambient; a ceiling just
      // above it makes the hot entries genuinely clamp on both tiers.
      request.thermal.ceiling_c = 31.0;
      request.thermal.hysteresis_c = 2.0;
      const std::string line = serve::format_request_line(request);
      const std::string expected = single.router().route_line(line, 200 + i);
      const std::string actual = sharded.router().route_line(line, 200 + i);
      EXPECT_EQ(actual, expected) << line;
      EXPECT_NE(actual.find("\"thermal\":true"), std::string::npos) << actual;
      EXPECT_NE(actual.find("\"peak_temp_c\":"), std::string::npos) << actual;
      EXPECT_EQ(json_field(actual, "cached"), round == 0 ? "false" : "true")
          << actual;
      if (actual.find("\"throttled\":true") != std::string::npos) {
        ++throttled_responses;
      }
    }
  }
  EXPECT_GT(throttled_responses, 0u) << "no request actually throttled";
}

TEST(ShardRouter, IdLessRequestsTakeTheClientLineNumber) {
  TestTier tier(2);
  v1::ExperimentRequest request;
  request.program = "BP";
  request.input_index = 0;
  request.config = "default";  // id left 0: line number fills it in
  const std::string response =
      tier.router().route_line(serve::format_request_line(request), 7);
  EXPECT_EQ(json_field(response, "id"), "7") << response;
  // Malformed lines resolve as structured errors carrying the line number.
  const std::string invalid = tier.router().route_line("not json", 9);
  EXPECT_EQ(json_field(invalid, "status"), "invalid") << invalid;
  EXPECT_EQ(json_field(invalid, "id"), "9") << invalid;
}

TEST(ShardRouter, RouteLinesKeepsResponsesInRequestOrder) {
  TestTier tier(4);
  std::vector<std::string> inbound;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < std::size(kSlice); ++i) {
      inbound.push_back(
          request_line(i, round * std::size(kSlice) + i + 1));
    }
  }
  std::vector<std::string> outbound;
  std::size_t cursor = 0;
  tier.router().route_lines(
      [&](std::string& line) {
        if (cursor >= inbound.size()) return false;
        line = inbound[cursor++];
        return true;
      },
      [&](const std::string& line) {
        outbound.push_back(line);
        return true;
      });
  ASSERT_EQ(outbound.size(), inbound.size());
  for (std::size_t i = 0; i < outbound.size(); ++i) {
    EXPECT_EQ(json_field(outbound[i], "id"), std::to_string(i + 1))
        << outbound[i];
    EXPECT_EQ(json_field(outbound[i], "status"), "ok") << outbound[i];
  }
}

// --- Topology / health endpoints -------------------------------------------

TEST(ShardRouter, TopologyAndHealthLinesTrackWorkerDeath) {
  TestTier tier(4);
  const std::string health_line =
      tier.router().route_line(R"({"v":1,"health":true})", 1);
  EXPECT_EQ(health_line.find(R"({"v":1,"health":true,"router":true,)"), 0u)
      << health_line;
  EXPECT_EQ(json_field(health_line, "workers"), "4") << health_line;
  EXPECT_EQ(json_field(health_line, "alive"), "4") << health_line;
  EXPECT_EQ(json_field(health_line, "epoch"), "0") << health_line;

  const std::string topology_line =
      tier.router().route_line(R"({"v":1,"topology":true})", 2);
  EXPECT_EQ(topology_line.find(R"({"v":1,"topology":true,)"), 0u)
      << topology_line;
  EXPECT_NE(topology_line.find("\"ring\":[{\"worker\":\"w0\""),
            std::string::npos)
      << topology_line;
  ASSERT_TRUE(serve::is_topology_request(R"({"v":1,"topology":true})"));
  EXPECT_FALSE(serve::is_topology_request(R"({"topology":false})"));
  EXPECT_FALSE(serve::is_topology_request(R"({"program":"NB"})"));

  ASSERT_TRUE(tier.router().kill_worker("w1"));
  EXPECT_FALSE(tier.router().kill_worker("nope"));
  tier.wait_for_alive(3);
  EXPECT_FALSE(tier.router().kill_worker("w1")) << "already dead";
  const std::string after =
      tier.router().route_line(R"({"v":1,"topology":true})", 3);
  EXPECT_EQ(json_field(after, "alive"), "3") << after;
  EXPECT_EQ(json_field(after, "epoch"), "1") << after;
  EXPECT_EQ(json_field(after, "rebalances"), "1") << after;
  EXPECT_NE(after.find("\"worker\":\"w1\",\"alive\":false,\"vnodes\":0"),
            std::string::npos)
      << after;
}

// --- Worker death / reroute ------------------------------------------------

TEST(ShardRouter, KilledOwnerReroutesBitIdentically) {
  Router::Options options;
  options.hot_key_threshold = 0;  // isolate reroute from warm handoff
  TestTier tier(4, options);
  const std::string line = request_line(2, 42);  // SGEMM/0/default
  const std::string first = tier.router().route_line(line, 42);
  ASSERT_EQ(json_field(first, "status"), "ok") << first;
  EXPECT_EQ(json_field(first, "cached"), "false");

  const std::string owner = tier.router().owner_of(slice_key(2));
  ASSERT_FALSE(owner.empty());
  ASSERT_TRUE(tier.router().kill_worker(owner));
  // No waiting: whether the death has been observed yet or not, the
  // request must end up on the new owner and recompute the exact bytes.
  const std::string second = tier.router().route_line(line, 42);
  EXPECT_EQ(second, first) << "rerouted response must be bit-identical";
  tier.wait_for_alive(3);
  EXPECT_NE(tier.router().owner_of(slice_key(2)), owner);
  EXPECT_EQ(tier.router().health().failed, 0u);
}

TEST(ShardRouter, RerouteBudgetExhaustionFailsTruthfully) {
  TestTier tier(2);
  // Kill everything: no live owner remains, so any request must resolve
  // as a truthful `failed` line — never a hang.
  ASSERT_TRUE(tier.router().kill_worker("w0"));
  ASSERT_TRUE(tier.router().kill_worker("w1"));
  tier.wait_for_alive(0);
  const std::string response = tier.router().route_line(request_line(0, 5), 5);
  EXPECT_EQ(json_field(response, "status"), "failed") << response;
  EXPECT_EQ(json_field(response, "id"), "5") << response;
  EXPECT_NE(response.find("shard worker lost"), std::string::npos) << response;
  EXPECT_GE(tier.router().health().failed, 1u);
  EXPECT_FALSE(tier.router().health().accepting);
}

// --- Warm handoff and cache namespaces -------------------------------------

TEST(ShardRouter, WarmHandoffPrimesTheNewOwnersCache) {
  Router::Options options;
  options.hot_key_threshold = 2;
  TestTier tier(4, options);
  const std::string line = request_line(4, 11);  // BP/0/default
  const std::string first = tier.router().route_line(line, 11);
  ASSERT_EQ(json_field(first, "status"), "ok") << first;
  const std::string second = tier.router().route_line(line, 11);
  EXPECT_EQ(json_field(second, "cached"), "true") << second;

  const std::string owner = tier.router().owner_of(slice_key(4));
  ASSERT_TRUE(tier.router().kill_worker(owner));
  // handoff_keys ticks once the prefetch is SUBMITTED (after the death is
  // fully processed); drain() then awaits its resolution.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (tier.router().health().handoff_keys < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "warm handoff never submitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  tier.router().drain();  // all handoff prefetches resolved

  // The new owner was pre-warmed: the next request HITS, and its bytes are
  // the new owner's own computation — identical to the original because
  // the measurement is deterministic.
  const std::string third = tier.router().route_line(line, 11);
  EXPECT_EQ(json_field(third, "cached"), "true") << third;
  for (const char* field : {"time_s", "energy_j", "power_w", "usable"}) {
    EXPECT_EQ(json_field(third, field), json_field(first, field)) << field;
  }
}

TEST(ShardRouter, RebalancedKeyNeverHitsTheNewOwnersCacheCold) {
  Router::Options options;
  options.hot_key_threshold = 0;  // no handoff: B must be provably cold
  TestTier tier(4, options);
  const std::string line = request_line(6, 23);  // FFT/0/default
  const std::string first = tier.router().route_line(line, 23);
  ASSERT_EQ(json_field(first, "status"), "ok");
  const std::string warm = tier.router().route_line(line, 23);
  EXPECT_EQ(json_field(warm, "cached"), "true") << warm;

  const std::string owner = tier.router().owner_of(slice_key(6));
  ASSERT_TRUE(tier.router().kill_worker(owner));
  tier.wait_for_alive(3);
  // Cache namespaces are disjoint: the key WAS cached on the dead worker,
  // but the new owner must miss — a hit here would mean worker A's bytes
  // leaked into worker B's cache across the rebalance.
  const std::string rerouted = tier.router().route_line(line, 23);
  EXPECT_EQ(json_field(rerouted, "cached"), "false") << rerouted;
  EXPECT_EQ(json_field(rerouted, "time_s"), json_field(first, "time_s"));
}

TEST(ShardService, CacheNamespacesMakeWorkerVersionsDisjoint) {
  serve::Service::Options a;
  a.threads = 1;
  a.cache_namespace = "w0";
  serve::Service::Options b = a;
  b.cache_namespace = "w1";
  serve::Service::Options plain = a;
  plain.cache_namespace.clear();
  serve::Service sa{a}, sb{b}, sp{plain};
  EXPECT_NE(sa.cache_version(), sb.cache_version());
  EXPECT_NE(sa.cache_version(), sp.cache_version());
  EXPECT_NE(sa.cache_version().find("ns=w0|"), std::string::npos)
      << sa.cache_version();
  // The empty namespace renders NO marker at all: single-process cache
  // keys are byte-identical to the pre-shard era.
  EXPECT_EQ(sp.cache_version().find("ns="), std::string::npos)
      << sp.cache_version();
}

// --- Seeded chaos ----------------------------------------------------------

TEST(ShardChaos, SeededWorkerKillsTerminateEveryRequestTruthfully) {
  // Reference bytes from an unfaulted single worker, keyed by slice index.
  std::vector<std::string> reference;
  {
    TestTier single(1);
    for (std::size_t i = 0; i < std::size(kSlice); ++i) {
      reference.push_back(
          single.router().route_line(request_line(i, i + 1), i + 1));
    }
  }
  std::uint64_t total_kills = 0;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    fault::PlanOptions plan_options;
    plan_options.seed = seed;
    plan_options.scheduler_rate = 0.0;  // worker kills only: measured bytes
    plan_options.sensor_rate = 0.0;     // stay fault-free and comparable
    plan_options.wire_rate = 0.0;
    plan_options.cache_rate = 0.0;
    plan_options.worker_rate = 0.15;
    const fault::FaultPlan plan(plan_options);
    const fault::ScopedPlan scoped(&plan);
    TestTier tier(4);
    std::size_t ok = 0, failed = 0;
    for (int round = 0; round < 3; ++round) {
      for (std::size_t i = 0; i < std::size(kSlice); ++i) {
        const std::string response =
            tier.router().route_line(request_line(i, i + 1), i + 1);
        const std::string status = json_field(response, "status");
        if (status == "ok") {
          ++ok;
          // Non-degraded responses are bit-identical in every measured
          // field, kills or not.
          for (const char* field :
               {"id", "key", "usable", "time_s", "energy_j", "power_w"}) {
            EXPECT_EQ(json_field(response, field),
                      json_field(reference[i], field))
                << "seed " << seed << " field " << field << ": " << response;
          }
        } else {
          // The only other terminal state is a truthful failure.
          ASSERT_EQ(status, "failed") << response;
          EXPECT_NE(response.find("shard worker lost"), std::string::npos)
              << response;
          ++failed;
        }
      }
    }
    const serve::RouterHealth health = tier.router().health();
    EXPECT_EQ(ok + failed, 3 * std::size(kSlice)) << "a request hung";
    EXPECT_EQ(health.failed, failed);
    total_kills += health.worker_kills;
    // Replayability: the schedule is a pure function of the seed.
    const fault::FaultPlan replay(plan_options);
    std::vector<std::string> keys;
    for (std::size_t i = 0; i < std::size(kSlice); ++i) {
      keys.push_back(slice_key(i));
    }
    EXPECT_EQ(plan.schedule_digest(keys, 3), replay.schedule_digest(keys, 3));
  }
  EXPECT_GT(total_kills, 0u)
      << "0.15 kill rate over 90 routed requests never fired";
}

}  // namespace
}  // namespace repro::shard
