#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.hpp"
#include "sim/coalesce.hpp"
#include "sim/device.hpp"
#include "sim/dram.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "sim/occupancy.hpp"
#include "sim/timing.hpp"

namespace repro::sim {
namespace {

using workloads::InstructionMix;
using workloads::KernelLaunch;

TEST(Device, K20cConstants) {
  const KeplerDevice& d = k20c();
  EXPECT_EQ(d.num_sms * d.fp32_lanes_per_sm, 2496);  // paper §IV.B
  EXPECT_NEAR(d.peak_dram_bw(2600.0), 208e9, 1e6);   // K20c: 208 GB/s
  // Paper: 324 config lowers memory bandwidth ~8x.
  EXPECT_NEAR(d.peak_dram_bw(2600.0) / d.peak_dram_bw(324.0), 8.02, 0.05);
}

TEST(Config, StandardFour) {
  const auto configs = standard_configs();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].name, "default");
  EXPECT_FALSE(configs[0].ecc);
  EXPECT_TRUE(config_by_name("ecc").ecc);
  EXPECT_EQ(config_by_name("614").core_mhz, 614.0);
  EXPECT_EQ(config_by_name("324").mem_mhz, 324.0);
  EXPECT_THROW(config_by_name("999"), std::invalid_argument);
}

TEST(Config, VoltageScalesWithFrequency) {
  // DVFS: lower clocks run at lower voltage (enables super-linear power
  // reductions, paper §V.A.1).
  EXPECT_LT(config_by_name("614").core_voltage,
            config_by_name("default").core_voltage);
  EXPECT_LT(config_by_name("324").core_voltage,
            config_by_name("614").core_voltage);
}

TEST(Occupancy, WarpLimited) {
  const Occupancy o = occupancy(k20c(), 1024, 16, 0);
  EXPECT_EQ(o.warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(o.fraction, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  const Occupancy o = occupancy(k20c(), 256, 128, 0);
  // 256 threads x 128 regs = 32768 regs/block -> 2 blocks/SM.
  EXPECT_EQ(o.blocks_per_sm, 2);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::kRegisters);
}

TEST(Occupancy, SharedMemoryLimited) {
  const Occupancy o = occupancy(k20c(), 128, 16, 24 * 1024);
  EXPECT_EQ(o.blocks_per_sm, 2);
  EXPECT_EQ(o.limiter, Occupancy::Limiter::kSharedMemory);
}

TEST(Occupancy, NeverZeroBlocks) {
  const Occupancy o = occupancy(k20c(), 1024, 255, 48 * 1024);
  EXPECT_GE(o.blocks_per_sm, 1);
}

TEST(Coalesce, FullyCoalescedWarp) {
  CoalescingAnalyzer a;
  std::vector<std::uint64_t> addrs;
  for (int lane = 0; lane < 32; ++lane) addrs.push_back(1024 + lane * 4);
  EXPECT_EQ(a.warp_access(addrs), 1);
  EXPECT_DOUBLE_EQ(a.stats().transactions_per_access(), 1.0);
}

TEST(Coalesce, FullyScatteredWarp) {
  CoalescingAnalyzer a;
  std::vector<std::uint64_t> addrs;
  for (int lane = 0; lane < 32; ++lane) addrs.push_back(lane * 4096);
  EXPECT_EQ(a.warp_access(addrs), 32);
}

TEST(Coalesce, StridedAccess) {
  // Stride-2 over 4-byte words: 32 lanes span 256 bytes = 2 segments.
  CoalescingAnalyzer a;
  std::vector<std::uint64_t> addrs;
  for (int lane = 0; lane < 32; ++lane) addrs.push_back(lane * 8);
  EXPECT_EQ(a.warp_access(addrs), 2);
}

TEST(Coalesce, StreamChunksIntoWarps) {
  CoalescingAnalyzer a;
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 64; ++i) addrs.push_back(i * 4);
  a.access_stream(addrs);
  EXPECT_EQ(a.stats().warp_accesses, 2u);
  EXPECT_EQ(a.stats().transactions, 2u);
}

TEST(Coalesce, EmptyAccessIgnored) {
  CoalescingAnalyzer a;
  EXPECT_EQ(a.warp_access({}), 0);
  EXPECT_EQ(a.stats().warp_accesses, 0u);
}

TEST(Cache, HitsAfterFill) {
  SetAssocCache c{1024, 128, 2};
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction) {
  SetAssocCache c{2 * 128, 128, 2};  // 1 set, 2 ways
  c.access(0);
  c.access(128);
  c.access(0);        // refresh line 0
  c.access(2 * 128);  // evicts line 128 (LRU)
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(128));
}

TEST(Cache, StreamingMissRate) {
  SetAssocCache c{64 * 1024, 128, 8};
  for (std::uint64_t addr = 0; addr < 1 << 20; addr += 128) c.access(addr);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(64, 128, 2), std::invalid_argument);
}

TEST(Dram, EccCostsBandwidthAndLatency) {
  const DramModel plain{k20c(), config_by_name("default")};
  const DramModel ecc{k20c(), config_by_name("ecc")};
  EXPECT_LT(ecc.effective_bandwidth(), plain.effective_bandwidth());
  EXPECT_GT(ecc.latency_s(), plain.latency_s());
  EXPECT_GT(ecc.bus_bytes_per_transaction(), plain.bus_bytes_per_transaction());
  EXPECT_NEAR(ecc.usable_memory_bytes() / plain.usable_memory_bytes(), 0.875,
              1e-9);  // paper: ECC reserves 12.5%
}

TEST(Dram, LatencyGrowsAtLowClock) {
  const DramModel fast{k20c(), config_by_name("default")};
  const DramModel slow{k20c(), config_by_name("324")};
  EXPECT_GT(slow.latency_s(), 2.0 * fast.latency_s());
}

// ---- Timing engine behaviour classes -------------------------------------

KernelLaunch compute_kernel() {
  KernelLaunch k;
  k.name = "compute";
  k.blocks = 4096;
  k.threads_per_block = 256;
  k.mix.fp32 = 20000.0;
  k.mix.int_alu = 1000.0;
  k.mix.global_loads = 8.0;
  k.mix.global_stores = 4.0;
  return k;
}

KernelLaunch memory_kernel() {
  KernelLaunch k;
  k.name = "memory";
  k.blocks = 4096;
  k.threads_per_block = 256;
  k.mix.fp32 = 8.0;
  k.mix.global_loads = 64.0;
  k.mix.global_stores = 32.0;
  k.mix.l2_hit_rate = 0.1;
  k.mix.mlp = 10.0;
  return k;
}

TEST(Timing, ComputeKernelScalesWithCoreClock) {
  const auto base = time_kernel(k20c(), config_by_name("default"), compute_kernel());
  const auto slow = time_kernel(k20c(), config_by_name("614"), compute_kernel());
  EXPECT_FALSE(base.memory_bound());
  // 705/614 = 1.148: compute-bound slowdown ~15% (paper §V.A.1).
  EXPECT_NEAR(slow.time_s / base.time_s, 1.148, 0.02);
}

TEST(Timing, MemoryKernelIgnoresCoreClock) {
  const auto base = time_kernel(k20c(), config_by_name("default"), memory_kernel());
  const auto slow = time_kernel(k20c(), config_by_name("614"), memory_kernel());
  EXPECT_TRUE(base.memory_bound());
  EXPECT_NEAR(slow.time_s / base.time_s, 1.0, 0.03);
}

TEST(Timing, MemoryKernelTracksMemoryClock) {
  const auto base = time_kernel(k20c(), config_by_name("614"), memory_kernel());
  const auto slow = time_kernel(k20c(), config_by_name("324"), memory_kernel());
  // Paper §V.A.2: bandwidth-bound codes slow down up to ~8x.
  EXPECT_GT(slow.time_s / base.time_s, 6.0);
  EXPECT_LT(slow.time_s / base.time_s, 9.0);
}

TEST(Timing, EverythingSlowsAtLeast1_9xAt324) {
  // Paper §V.A.2: all programs slow by >= ~1.9x from 614 to 324.
  for (const auto& make : {compute_kernel, memory_kernel}) {
    const auto base = time_kernel(k20c(), config_by_name("614"), make());
    const auto slow = time_kernel(k20c(), config_by_name("324"), make());
    EXPECT_GE(slow.time_s / base.time_s, 1.85);
  }
}

TEST(Timing, EccSlowsMemoryBoundOnly) {
  const auto mem_plain = time_kernel(k20c(), config_by_name("default"), memory_kernel());
  const auto mem_ecc = time_kernel(k20c(), config_by_name("ecc"), memory_kernel());
  EXPECT_GT(mem_ecc.time_s / mem_plain.time_s, 1.05);
  EXPECT_LT(mem_ecc.time_s / mem_plain.time_s, 1.30);  // paper: within ~12.5-28%

  const auto cmp_plain = time_kernel(k20c(), config_by_name("default"), compute_kernel());
  const auto cmp_ecc = time_kernel(k20c(), config_by_name("ecc"), compute_kernel());
  EXPECT_NEAR(cmp_ecc.time_s / cmp_plain.time_s, 1.0, 0.01);
}

TEST(Timing, DivergenceSlowsKernel) {
  KernelLaunch k = compute_kernel();
  const auto base = time_kernel(k20c(), config_by_name("default"), k);
  k.mix.divergence = 2.0;
  const auto div = time_kernel(k20c(), config_by_name("default"), k);
  EXPECT_NEAR(div.time_s / base.time_s, 2.0, 0.15);
}

TEST(Timing, UncoalescedCostsBandwidth) {
  KernelLaunch k = memory_kernel();
  const auto base = time_kernel(k20c(), config_by_name("default"), k);
  k.mix.load_transactions_per_access = 8.0;
  const auto scattered = time_kernel(k20c(), config_by_name("default"), k);
  EXPECT_GT(scattered.time_s, 3.0 * base.time_s);
  EXPECT_GT(scattered.activity.dram_transactions,
            3.0 * base.activity.dram_transactions);
}

TEST(Timing, ImbalanceAmortizesOverWaves) {
  KernelLaunch k = compute_kernel();
  k.imbalance = 3.0;
  k.blocks = 104;  // exactly one wave (8 resident blocks/SM x 13)
  const auto one_wave = time_kernel(k20c(), config_by_name("default"), k);
  KernelLaunch balanced = k;
  balanced.imbalance = 1.0;
  const auto flat = time_kernel(k20c(), config_by_name("default"), balanced);
  EXPECT_NEAR(one_wave.time_s / flat.time_s, 3.0, 0.3);

  k.blocks = 20800;  // 100 waves: skew amortizes
  balanced.blocks = 20800;
  const auto many = time_kernel(k20c(), config_by_name("default"), k);
  const auto many_flat = time_kernel(k20c(), config_by_name("default"), balanced);
  EXPECT_LT(many.time_s / many_flat.time_s, 1.05);
}

TEST(Timing, LaunchOverheadFloorsTinyKernels) {
  KernelLaunch k;
  k.blocks = 1;
  k.threads_per_block = 32;
  k.mix.int_alu = 1.0;
  const auto r = time_kernel(k20c(), config_by_name("default"), k);
  EXPECT_GE(r.time_s, k20c().kernel_launch_overhead_s);
}

TEST(Timing, ActivityCountsScaleWithThreads) {
  KernelLaunch k = compute_kernel();
  const auto base = time_kernel(k20c(), config_by_name("default"), k);
  k.blocks *= 2.0;
  const auto doubled = time_kernel(k20c(), config_by_name("default"), k);
  EXPECT_NEAR(doubled.activity.fp32_ops / base.activity.fp32_ops, 2.0, 1e-9);
  EXPECT_NEAR(doubled.activity.warp_instructions / base.activity.warp_instructions,
              2.0, 1e-9);
}

TEST(Engine, MergesBackToBackSameKernel) {
  workloads::LaunchTrace trace{compute_kernel(), compute_kernel(), memory_kernel()};
  const TraceResult r = run_trace(k20c(), config_by_name("default"), trace);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].kernel_name, "compute");
  EXPECT_EQ(r.phases[1].kernel_name, "memory");
  EXPECT_GT(r.active_time_s, 0.0);
  EXPECT_NEAR(r.phases[0].duration_s + r.phases[1].duration_s, r.active_time_s,
              1e-12);
}

TEST(Engine, HostGapsPreventMergingAndExtendSpan) {
  KernelLaunch a = compute_kernel();
  KernelLaunch b = compute_kernel();
  b.host_gap_before_s = 0.5;
  const TraceResult r = run_trace(k20c(), config_by_name("default"), {a, b});
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_NEAR(r.total_span_s - r.active_time_s, 0.5, 1e-12);
}

}  // namespace
}  // namespace repro::sim
