// DVFS grid + sweet-spot recommender suite (DESIGN.md §15). The contracts
// under test:
//
//   * Naming: canonical names are value-derived and injective; the four
//     paper configurations map to their paper names byte-identically, and
//     `normalized` rejects paper names with non-paper values.
//   * Voltage rule: exact at the paper anchors (core 324/614/705, mem
//     324/2600), so rule-voltage grid points through a paper frequency
//     reproduce the paper operating point exactly.
//   * Grid expansion: axis/grid validation is strict (descending, oversized
//     and non-finite axes throw), expansion is core-major and always
//     includes the axis max.
//   * Selection: `pick` is the exact argmin of each objective over the
//     usable points, with grid-order tie-breaking and the perf_cap time
//     cap enforced as a feasibility constraint — and Session::recommend
//     returns exactly that argmin over its own sweep.
//   * Analytic honesty: the V^2 f projection tracks the detailed pipeline
//     within 15% absolute and 12% across-configuration spread on time and
//     energy at the four paper operating points (the spread is what
//     dominance pruning rests on: a common per-program bias cancels out
//     of every dominance comparison).
//   * Determinism: sampled sweeps are bit-reproducible across fresh
//     sessions with equal seeds.
//   * Registration: register_config canonicalizes, auto-names, returns
//     paper specs byte-identically, and rejects name collisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "dvfs/dvfs.hpp"
#include "repro/api.hpp"
#include "sim/gpuconfig.hpp"
#include "suites/factories.hpp"
#include "workloads/registry.hpp"

namespace repro {
namespace {

// --- canonical naming + voltage rule ---------------------------------------

TEST(DvfsNaming, PaperConfigsMapToPaperNames) {
  for (const sim::GpuConfig& config : sim::standard_configs()) {
    EXPECT_EQ(dvfs::canonical_name(config), config.name);
  }
}

TEST(DvfsNaming, CustomPointsGetValueDerivedNames) {
  sim::GpuConfig c;
  c.core_mhz = 540.0;
  c.mem_mhz = 2600.0;
  c.core_voltage = dvfs::core_voltage_rule(540.0);
  c.mem_voltage = dvfs::mem_voltage_rule(2600.0);
  EXPECT_EQ(dvfs::canonical_name(c), "cfg:540x2600");

  // Deviating from the rule voltage must show up in the name (the name is
  // the cache identity, so distinct values may never alias).
  sim::GpuConfig v = c;
  v.core_voltage = 1.10;
  const std::string name = dvfs::canonical_name(v);
  EXPECT_NE(name, dvfs::canonical_name(c));
  EXPECT_NE(name.find('@'), std::string::npos);

  sim::GpuConfig e = c;
  e.ecc = true;
  EXPECT_EQ(dvfs::canonical_name(e), "cfg:540x2600+ecc");
}

TEST(DvfsNaming, VoltageRuleExactAtPaperAnchors) {
  EXPECT_DOUBLE_EQ(dvfs::core_voltage_rule(324.0), 0.85);
  EXPECT_DOUBLE_EQ(dvfs::core_voltage_rule(614.0), 0.93);
  EXPECT_DOUBLE_EQ(dvfs::core_voltage_rule(705.0), 1.00);
  EXPECT_DOUBLE_EQ(dvfs::mem_voltage_rule(324.0), 0.88);
  EXPECT_DOUBLE_EQ(dvfs::mem_voltage_rule(2600.0), 1.00);
  // Monotone between anchors, clamped to the validity range outside.
  EXPECT_LT(dvfs::core_voltage_rule(400.0), dvfs::core_voltage_rule(600.0));
  EXPECT_GE(dvfs::core_voltage_rule(100.0), dvfs::kMinVoltage);
  EXPECT_LE(dvfs::core_voltage_rule(1500.0), dvfs::kMaxVoltage);
}

TEST(DvfsNaming, NormalizedValidatesAndAutoNames) {
  sim::GpuConfig c;
  c.name.clear();
  c.core_mhz = 540.0;
  c.mem_mhz = 2600.0;
  c.core_voltage = dvfs::core_voltage_rule(540.0);
  c.mem_voltage = dvfs::mem_voltage_rule(2600.0);
  EXPECT_EQ(dvfs::normalized(c).name, "cfg:540x2600");

  sim::GpuConfig bad = c;
  bad.core_mhz = 50.0;  // below kMinCoreMhz
  EXPECT_THROW(dvfs::normalized(bad), std::invalid_argument);
  bad = c;
  bad.core_voltage = 2.0;  // above kMaxVoltage
  EXPECT_THROW(dvfs::normalized(bad), std::invalid_argument);

  // A paper name is only accepted with exactly the paper values.
  sim::GpuConfig imposter = c;
  imposter.name = "default";
  EXPECT_THROW(dvfs::normalized(imposter), std::invalid_argument);
  const sim::GpuConfig& paper = sim::config_by_name("default");
  const sim::GpuConfig roundtrip = dvfs::normalized(paper);
  EXPECT_EQ(roundtrip.name, paper.name);
  EXPECT_EQ(roundtrip.core_mhz, paper.core_mhz);
  EXPECT_EQ(roundtrip.mem_mhz, paper.mem_mhz);
  EXPECT_EQ(roundtrip.core_voltage, paper.core_voltage);
  EXPECT_EQ(roundtrip.mem_voltage, paper.mem_voltage);
  EXPECT_EQ(roundtrip.ecc, paper.ecc);
}

// --- axis + grid expansion --------------------------------------------------

TEST(DvfsGrid, AxisExpansionIncludesMax) {
  const std::vector<double> pts =
      dvfs::axis_points({324.0, 705.0, 100.0}, "core");
  ASSERT_EQ(pts.size(), 5u);  // 324, 424, 524, 624 + the max itself
  EXPECT_DOUBLE_EQ(pts.front(), 324.0);
  EXPECT_DOUBLE_EQ(pts.back(), 705.0);

  const std::vector<double> single =
      dvfs::axis_points({2600.0, 2600.0, 0.0}, "mem");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single.front(), 2600.0);
}

TEST(DvfsGrid, AxisValidationIsStrict) {
  EXPECT_THROW(dvfs::axis_points({705.0, 324.0, 50.0}, "core"),
               std::invalid_argument);  // descending
  EXPECT_THROW(dvfs::axis_points({324.0, 705.0, -50.0}, "core"),
               std::invalid_argument);  // negative step
  EXPECT_THROW(dvfs::axis_points({324.0, 705.0, 0.0}, "core"),
               std::invalid_argument);  // zero step on a real range
  EXPECT_THROW(dvfs::axis_points({100.0, 1500.0, 1.0}, "core"),
               std::invalid_argument);  // > kMaxAxisPoints
}

TEST(DvfsGrid, MakeGridIsCoreMajorWithRuleVoltagesAndPaperNames) {
  dvfs::GridSpec spec;
  spec.core = {324.0, 705.0, 381.0};   // {324, 705}
  spec.mem = {324.0, 2600.0, 2276.0};  // {324, 2600}
  const std::vector<sim::GpuConfig> grid = dvfs::make_grid(spec);
  ASSERT_EQ(grid.size(), 4u);
  // Core-major: mem varies fastest within one core frequency.
  EXPECT_EQ(grid[0].core_mhz, 324.0);
  EXPECT_EQ(grid[0].mem_mhz, 324.0);
  EXPECT_EQ(grid[1].core_mhz, 324.0);
  EXPECT_EQ(grid[1].mem_mhz, 2600.0);
  EXPECT_EQ(grid[3].core_mhz, 705.0);
  EXPECT_EQ(grid[3].mem_mhz, 2600.0);
  // Grid points through paper frequencies ARE the paper operating points.
  EXPECT_EQ(grid[0].name, "324");
  EXPECT_EQ(grid[3].name, "default");
  for (const sim::GpuConfig& c : grid) {
    EXPECT_EQ(c.core_voltage, dvfs::core_voltage_rule(c.core_mhz)) << c.name;
    EXPECT_EQ(c.mem_voltage, dvfs::mem_voltage_rule(c.mem_mhz)) << c.name;
  }

  dvfs::GridSpec oversized;
  oversized.core = {324.0, 705.0, 10.0};  // 39 points
  oversized.mem = {324.0, 2600.0, 200.0};  // 12 points -> 468 > 256
  EXPECT_THROW(dvfs::make_grid(oversized), std::invalid_argument);
}

// --- selection (synthetic, exactly checkable) -------------------------------

TEST(DvfsPick, ExactArgminPerObjectiveWithCapAndTies) {
  // time/energy chosen so each objective has a distinct argmin:
  //   energy:  index 2 (E=4)
  //   EDP:     index 1 (6*1.5=9 vs 10*1 and 4*4)
  //   ED^2 P:  index 0 (10 vs 13.5 vs 64)
  //   perf_cap(1.10): cap = 1.1s -> only index 0 qualifies.
  std::vector<dvfs::MetricPoint> pts(4);
  pts[0] = {true, 1.0, 10.0};
  pts[1] = {true, 1.5, 6.0};
  pts[2] = {true, 4.0, 4.0};
  pts[3] = {false, 0.1, 0.1};  // unusable: never selectable

  EXPECT_EQ(dvfs::pick(pts, dvfs::Objective::kMinEnergy, 1.10).index, 2);
  EXPECT_EQ(dvfs::pick(pts, dvfs::Objective::kMinEdp, 1.10).index, 1);
  EXPECT_EQ(dvfs::pick(pts, dvfs::Objective::kMinEd2p, 1.10).index, 0);
  const dvfs::Choice cap = dvfs::pick(pts, dvfs::Objective::kPerfCap, 1.10);
  EXPECT_EQ(cap.index, 0);
  EXPECT_DOUBLE_EQ(cap.cap_time_s, 1.10);
  // Widening the cap admits the lower-energy points again.
  EXPECT_EQ(dvfs::pick(pts, dvfs::Objective::kPerfCap, 4.0).index, 2);

  // Exact ties break toward grid order.
  std::vector<dvfs::MetricPoint> tie(2);
  tie[0] = {true, 2.0, 5.0};
  tie[1] = {true, 2.0, 5.0};
  EXPECT_EQ(dvfs::pick(tie, dvfs::Objective::kMinEdp, 1.10).index, 0);

  EXPECT_EQ(dvfs::pick({}, dvfs::Objective::kMinEnergy, 1.10).index, -1);
}

TEST(DvfsPick, PruneMaskAndParetoMask) {
  // Point 1 is ~20% worse than point 0 in both metrics: pruned at a 10%
  // margin, kept at a 30% margin. Point 2 trades time for energy and is
  // never pruned.
  std::vector<dvfs::Analytic> an(3);
  an[0] = {1.0, 10.0, 10.0};
  an[1] = {1.2, 12.0, 10.0};
  an[2] = {2.0, 5.0, 2.5};
  const std::vector<char> tight = dvfs::prune_mask(an, 0.10);
  EXPECT_EQ(tight[0], 0);
  EXPECT_EQ(tight[1], 1);
  EXPECT_EQ(tight[2], 0);
  const std::vector<char> loose = dvfs::prune_mask(an, 0.30);
  EXPECT_EQ(loose[1], 0);
  EXPECT_THROW(dvfs::prune_mask(an, -0.1), std::invalid_argument);

  std::vector<dvfs::MetricPoint> pts(3);
  pts[0] = {true, 1.0, 10.0};
  pts[1] = {true, 1.2, 12.0};  // dominated by 0
  pts[2] = {true, 2.0, 5.0};
  const std::vector<char> frontier = dvfs::pareto_mask(pts);
  EXPECT_EQ(frontier[0], 1);
  EXPECT_EQ(frontier[1], 0);
  EXPECT_EQ(frontier[2], 1);
}

// --- end-to-end via the facade ----------------------------------------------

v1::SweepOptions small_exact_sweep() {
  v1::SweepOptions options;
  options.core_mhz = {324.0, 705.0, 127.0};  // {324, 451, 578, 705}
  options.mem_mhz = {2600.0, 2600.0, 0.0};
  options.prune = false;  // measure everything: the argmin check is global
  options.sampling.mode = v1::SamplingMode::kExact;
  options.sampling.fraction = 1.0;
  return options;
}

TEST(DvfsSession, RecommendIsTheExactArgminOfItsSweep) {
  v1::Session session;
  const v1::SweepOptions options = small_exact_sweep();
  const v1::SweepResult sweep = session.sweep("SGEMM", 0, options);
  ASSERT_EQ(sweep.points.size(), 4u);
  for (const v1::SweepPoint& p : sweep.points) {
    ASSERT_TRUE(p.measured && p.result.usable) << p.config.name;
  }

  const v1::Objective objectives[] = {
      v1::Objective::kMinEnergy, v1::Objective::kMinEdp,
      v1::Objective::kMinEd2p, v1::Objective::kPerfCap};
  for (const v1::Objective objective : objectives) {
    v1::RecommendOptions ropt;
    ropt.objective = objective;
    ropt.perf_cap_rel = 1.10;
    ropt.sweep = options;
    const v1::Recommendation rec = session.recommend("SGEMM", 0, ropt);
    ASSERT_TRUE(rec.ok) << rec.error;

    // Recompute the argmin by hand over the (bit-identical, cached) sweep.
    double cap_s = 0.0;
    if (objective == v1::Objective::kPerfCap) {
      double fastest = sweep.points[0].result.time_s;
      for (const v1::SweepPoint& p : sweep.points) {
        fastest = std::min(fastest, p.result.time_s);
      }
      cap_s = ropt.perf_cap_rel * fastest;
    }
    const v1::SweepPoint* best = nullptr;
    double best_value = 0.0;
    for (const v1::SweepPoint& p : sweep.points) {
      if (objective == v1::Objective::kPerfCap && p.result.time_s > cap_s) {
        continue;
      }
      const double t = p.result.time_s, e = p.result.energy_j;
      double value = e;
      if (objective == v1::Objective::kMinEdp) value = e * t;
      if (objective == v1::Objective::kMinEd2p) value = e * t * t;
      if (best == nullptr || value < best_value) {
        best = &p;
        best_value = value;
      }
    }
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(rec.config.name, best->config.name)
        << v1::to_string(objective);
    EXPECT_EQ(rec.objective_value, best_value) << v1::to_string(objective);
    EXPECT_EQ(rec.time_s, best->result.time_s);
    EXPECT_EQ(rec.energy_j, best->result.energy_j);
  }
}

TEST(DvfsSession, AnalyticProjectionTracksDetailedAtPaperPoints) {
  // Two layered honesty claims at the four paper operating points:
  // absolute agreement within 15% (the projection skips the sensor path,
  // noise and repetition structure, so a constant offset per program is
  // expected), and — the property dominance pruning actually rests on —
  // cross-point consistency: the analytic/exact ratio varies by < 12%
  // across configurations of one program, so a common multiplicative bias
  // cancels out of every dominance comparison.
  suites::register_all_workloads();
  core::Study study;
  for (const char* program : {"SGEMM", "LBM"}) {
    const workloads::Workload* w =
        workloads::Registry::instance().find(program);
    ASSERT_NE(w, nullptr) << program;
    double min_time_ratio = 0.0, max_time_ratio = 0.0;
    double min_energy_ratio = 0.0, max_energy_ratio = 0.0;
    bool first = true;
    for (const sim::GpuConfig& config : sim::standard_configs()) {
      const dvfs::Analytic analytic = dvfs::project(study, *w, 0, config);
      const core::ExperimentResult exact = study.measure(*w, 0, config);
      ASSERT_TRUE(exact.usable) << program << "/" << config.name;
      const double time_ratio = analytic.time_s / exact.time_s;
      const double energy_ratio = analytic.energy_j / exact.energy_j;
      EXPECT_NEAR(time_ratio, 1.0, 0.15) << program << "/" << config.name;
      EXPECT_NEAR(energy_ratio, 1.0, 0.15) << program << "/" << config.name;
      if (first) {
        min_time_ratio = max_time_ratio = time_ratio;
        min_energy_ratio = max_energy_ratio = energy_ratio;
        first = false;
      } else {
        min_time_ratio = std::min(min_time_ratio, time_ratio);
        max_time_ratio = std::max(max_time_ratio, time_ratio);
        min_energy_ratio = std::min(min_energy_ratio, energy_ratio);
        max_energy_ratio = std::max(max_energy_ratio, energy_ratio);
      }
    }
    EXPECT_LT(max_time_ratio / min_time_ratio, 1.12) << program;
    EXPECT_LT(max_energy_ratio / min_energy_ratio, 1.12) << program;
  }
}

TEST(DvfsSession, SampledSweepIsBitReproducibleAcrossSessions) {
  v1::SweepOptions options;
  options.core_mhz = {324.0, 705.0, 127.0};
  options.prune = true;
  options.sampling.mode = v1::SamplingMode::kStratified;
  options.sampling.fraction = 0.10;
  options.sampling.seed = 7;

  v1::Session a, b;
  const v1::SweepResult ra = a.sweep("BP", 0, options);
  const v1::SweepResult rb = b.sweep("BP", 0, options);
  ASSERT_EQ(ra.points.size(), rb.points.size());
  EXPECT_EQ(ra.pruned, rb.pruned);
  EXPECT_EQ(ra.measured, rb.measured);
  for (std::size_t i = 0; i < ra.points.size(); ++i) {
    const v1::SweepPoint& pa = ra.points[i];
    const v1::SweepPoint& pb = rb.points[i];
    EXPECT_EQ(pa.config.name, pb.config.name);
    EXPECT_EQ(pa.pruned, pb.pruned);
    EXPECT_EQ(pa.measured, pb.measured);
    // EXPECT_EQ on doubles is exact comparison — that is the point.
    EXPECT_EQ(pa.analytic_time_s, pb.analytic_time_s) << pa.config.name;
    EXPECT_EQ(pa.analytic_energy_j, pb.analytic_energy_j) << pa.config.name;
    if (pa.measured) {
      EXPECT_EQ(pa.result.time_s, pb.result.time_s) << pa.config.name;
      EXPECT_EQ(pa.result.energy_j, pb.result.energy_j) << pa.config.name;
      EXPECT_EQ(pa.result.power_w, pb.result.power_w) << pa.config.name;
    }
  }
}

TEST(DvfsSession, RegisterConfigCanonicalizesAndRejectsCollisions) {
  v1::Session session;

  // Auto-naming: an empty name becomes the canonical grid name, and the
  // registered name is usable everywhere a config name is.
  v1::GpuConfigSpec custom;
  custom.name.clear();
  custom.core_mhz = 540.0;
  custom.mem_mhz = 2600.0;
  custom.core_voltage = dvfs::core_voltage_rule(540.0);
  custom.mem_voltage = dvfs::mem_voltage_rule(2600.0);
  const v1::GpuConfigSpec registered = session.register_config(custom);
  EXPECT_EQ(registered.name, "cfg:540x2600");
  const v1::MeasurementResult by_name =
      session.measure("SGEMM", 0, "cfg:540x2600");
  EXPECT_TRUE(by_name.usable);

  // Re-registering identical values is idempotent; a different operating
  // point under a taken name is a collision.
  EXPECT_EQ(session.register_config(registered).name, "cfg:540x2600");
  v1::GpuConfigSpec clash = registered;
  clash.core_voltage = 1.05;
  clash.name = "cfg:540x2600";
  EXPECT_THROW(session.register_config(clash), std::invalid_argument);

  // Paper configs register as themselves, byte-identically.
  for (const v1::GpuConfigSpec& paper : v1::standard_configs()) {
    const v1::GpuConfigSpec echoed = session.register_config(paper);
    EXPECT_EQ(echoed.name, paper.name);
    EXPECT_EQ(echoed.core_mhz, paper.core_mhz);
    EXPECT_EQ(echoed.mem_mhz, paper.mem_mhz);
    EXPECT_EQ(echoed.core_voltage, paper.core_voltage);
    EXPECT_EQ(echoed.mem_voltage, paper.mem_voltage);
    EXPECT_EQ(echoed.ecc, paper.ecc);
  }
  v1::GpuConfigSpec imposter = v1::standard_configs()[0];
  imposter.core_mhz = 600.0;
  EXPECT_THROW(session.register_config(imposter), std::invalid_argument);

  // Validation is strict, not clamping.
  v1::GpuConfigSpec out_of_range = custom;
  out_of_range.name.clear();
  out_of_range.core_mhz = 50.0;
  EXPECT_THROW(session.register_config(out_of_range), std::invalid_argument);
}

}  // namespace
}  // namespace repro
