// Registry-wide workload tests: a parameterized sweep over every
// (program, input) pair checks the structural invariants every benchmark
// implementation must satisfy, plus targeted tests for the paper's
// specific behavioural claims.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

namespace repro::workloads {
namespace {

struct Case {
  const Workload* workload;
  std::size_t input;
  std::string label;
};

std::vector<Case> all_cases() {
  suites::register_all_workloads();
  std::vector<Case> cases;
  for (const Workload* w : Registry::instance().all()) {
    const auto inputs = w->inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      std::string label = std::string(w->name()) + "_in" + std::to_string(i);
      for (char& c : label) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      cases.push_back({w, i, std::move(label)});
    }
  }
  return cases;
}

ExecContext default_ctx() {
  ExecContext ctx;
  return ctx;
}

class WorkloadSweep : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadSweep, TraceNonEmptyAndSane) {
  const Case& c = GetParam();
  const LaunchTrace trace = c.workload->trace(c.input, default_ctx());
  ASSERT_FALSE(trace.empty());
  for (const KernelLaunch& k : trace) {
    EXPECT_FALSE(k.name.empty());
    EXPECT_GT(k.blocks, 0.0);
    EXPECT_GT(k.threads_per_block, 0);
    EXPECT_LE(k.threads_per_block, 1024);
    EXPECT_GE(k.imbalance, 1.0);
    EXPECT_GE(k.host_gap_before_s, 0.0);
    const InstructionMix& m = k.mix;
    EXPECT_GE(m.fp32, 0.0);
    EXPECT_GE(m.fp64, 0.0);
    EXPECT_GE(m.int_alu, 0.0);
    EXPECT_GE(m.sfu, 0.0);
    EXPECT_GE(m.global_loads, 0.0);
    EXPECT_GE(m.global_stores, 0.0);
    EXPECT_GE(m.load_transactions_per_access, 1.0);
    EXPECT_LE(m.load_transactions_per_access, 32.0);
    EXPECT_GE(m.store_transactions_per_access, 1.0);
    EXPECT_LE(m.store_transactions_per_access, 32.0);
    EXPECT_GE(m.l2_hit_rate, 0.0);
    EXPECT_LE(m.l2_hit_rate, 1.0);
    EXPECT_GE(m.divergence, 1.0);
    EXPECT_GT(m.active_lane_fraction, 0.0);
    EXPECT_LE(m.active_lane_fraction, 1.0);
    EXPECT_GT(m.mlp, 0.0);
    EXPECT_GE(m.shared_conflict_factor, 1.0);
    EXPECT_GE(m.atomic_contention, 1.0);
  }
}

TEST_P(WorkloadSweep, TraceDeterministic) {
  const Case& c = GetParam();
  const LaunchTrace a = c.workload->trace(c.input, default_ctx());
  const LaunchTrace b = c.workload->trace(c.input, default_ctx());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].blocks, b[i].blocks);
    EXPECT_DOUBLE_EQ(a[i].mix.fp32, b[i].mix.fp32);
    EXPECT_DOUBLE_EQ(a[i].mix.global_loads, b[i].mix.global_loads);
  }
}

TEST_P(WorkloadSweep, SimulatesToPositiveTime) {
  const Case& c = GetParam();
  const LaunchTrace trace = c.workload->trace(c.input, default_ctx());
  const auto result =
      sim::run_trace(sim::k20c(), sim::config_by_name("default"), trace);
  EXPECT_GT(result.active_time_s, 0.0);
  EXPECT_LT(result.active_time_s, 600.0) << "unreasonably long active runtime";
  EXPECT_GT(result.total_activity.warp_instructions, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, WorkloadSweep,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.label;
                         });

// ---- Registry-level invariants --------------------------------------------

TEST(Registry, Has34PrimaryProgramsIn5Suites) {
  suites::register_all_workloads();
  const Registry& r = Registry::instance();
  int primaries = 0;
  for (const Workload* w : r.all()) {
    if (w->variant().empty()) ++primaries;
  }
  EXPECT_EQ(primaries, 34);  // paper abstract: 34 applications
  EXPECT_EQ(r.suites().size(), 5u);
}

TEST(Registry, SuiteMembershipMatchesPaperTable1) {
  suites::register_all_workloads();
  const Registry& r = Registry::instance();
  const auto count_primaries = [&](std::string_view suite) {
    int n = 0;
    for (const Workload* w : r.by_suite(suite)) {
      if (w->variant().empty()) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_primaries("LonestarGPU"), 7);
  EXPECT_EQ(count_primaries("Parboil"), 9);
  EXPECT_EQ(count_primaries("Rodinia"), 7);
  EXPECT_EQ(count_primaries("SHOC"), 7);
  EXPECT_EQ(count_primaries("CUDA SDK"), 4);
}

TEST(Registry, NamesUniqueAndFindable) {
  suites::register_all_workloads();
  const Registry& r = Registry::instance();
  std::set<std::string> names;
  for (const Workload* w : r.all()) {
    EXPECT_TRUE(names.insert(std::string(w->name())).second)
        << "duplicate: " << w->name();
    EXPECT_EQ(r.find(w->name()), w);
  }
  EXPECT_EQ(r.find("no-such-program"), nullptr);
}

TEST(Registry, RegisterAllIdempotent) {
  suites::register_all_workloads();
  const std::size_t n = Registry::instance().size();
  suites::register_all_workloads();
  EXPECT_EQ(Registry::instance().size(), n);
}

TEST(Registry, KernelCountsMatchPaperTable1) {
  suites::register_all_workloads();
  const Registry& r = Registry::instance();
  const std::pair<const char*, int> expected[] = {
      {"EIP", 2},  {"EP", 2},    {"NB", 1},    {"SC", 3},   {"BH", 9},
      {"L-BFS", 5}, {"DMR", 4},  {"MST", 7},   {"PTA", 40}, {"SSSP", 2},
      {"NSP", 3},  {"P-BFS", 3}, {"CUTCP", 1}, {"HISTO", 4}, {"LBM", 1},
      {"MRIQ", 2}, {"SAD", 3},   {"SGEMM", 1}, {"STEN", 1}, {"TPACF", 1},
      {"BP", 2},   {"R-BFS", 2}, {"GE", 2},    {"MUM", 3},  {"NN", 1},
      {"NW", 2},   {"PF", 1},    {"S-BFS", 9}, {"FFT", 2},  {"MF", 20},
      {"MD", 1},   {"QTC", 6},   {"ST", 5},    {"S2D", 1},
  };
  for (const auto& [name, kernels] : expected) {
    const Workload* w = r.find(name);
    ASSERT_NE(w, nullptr) << name;
    EXPECT_EQ(w->num_global_kernels(), kernels) << name;
  }
}

// ---- Paper-specific behavioural claims ------------------------------------

TEST(IrregularBehaviour, VisibilityRespondsToClocks) {
  ExecContext def;
  ExecContext c614 = def;
  c614.core_mhz = 614.0;
  ExecContext c324 = def;
  c324.core_mhz = 324.0;
  c324.mem_mhz = 324.0;
  // Positive gamma: relatively faster memory at 614 raises visibility.
  EXPECT_GT(c614.visibility(0.5, 1.0), def.visibility(0.5, 1.0));
  // Negative gamma flips the direction.
  EXPECT_LT(c614.visibility(0.5, -1.0), def.visibility(0.5, -1.0));
  // 324 lowers the memory/core ratio drastically.
  EXPECT_LT(c324.visibility(0.5, 1.0), def.visibility(0.5, 1.0));
  // Always clamped to a sane range.
  EXPECT_GE(c324.visibility(0.9, 5.0), 0.02);
  EXPECT_LE(c614.visibility(0.9, 5.0), 0.98);
}

TEST(IrregularBehaviour, TopologyBfsTraceChangesWithConfig) {
  suites::register_all_workloads();
  const Workload* lbfs = Registry::instance().find("L-BFS");
  ASSERT_NE(lbfs, nullptr);
  ExecContext def;
  ExecContext c614 = def;
  c614.core_mhz = 614.0;
  const auto a = lbfs->trace(2, def);
  const auto b = lbfs->trace(2, c614);
  // Irregular codes change their sweep count with the clocks (paper
  // §V.A.1); the traces must differ in length.
  EXPECT_NE(a.size(), b.size());
}

TEST(RegularBehaviour, RegularTraceConfigInvariant) {
  suites::register_all_workloads();
  for (const char* name : {"NB", "SGEMM", "LBM", "STEN"}) {
    const Workload* w = Registry::instance().find(name);
    ASSERT_NE(w, nullptr) << name;
    ExecContext def;
    ExecContext c324 = def;
    c324.core_mhz = 324.0;
    c324.mem_mhz = 324.0;
    const auto a = w->trace(0, def);
    const auto b = w->trace(0, c324);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].blocks, b[i].blocks) << name;
    }
  }
}

TEST(Variants, LBfsFamilyComplete) {
  suites::register_all_workloads();
  const Registry& r = Registry::instance();
  EXPECT_EQ(r.find("L-BFS")->variant(), "");
  EXPECT_EQ(r.find("L-BFS-atomic")->variant(), "atomic");
  EXPECT_EQ(r.find("L-BFS-wla")->variant(), "wla");
  EXPECT_EQ(r.find("L-BFS-wlw")->variant(), "wlw");
  EXPECT_EQ(r.find("L-BFS-wlc")->variant(), "wlc");
  EXPECT_EQ(r.find("SSSP-wln")->variant(), "wln");
  EXPECT_EQ(r.find("SSSP-wlc")->variant(), "wlc");
}

TEST(Items, BfsImplementationsReportPaperScaleCounts) {
  suites::register_all_workloads();
  const Registry& r = Registry::instance();
  const auto usa = r.find("L-BFS")->items(2);
  EXPECT_DOUBLE_EQ(usa.vertices, 24e6);
  EXPECT_DOUBLE_EQ(usa.edges, 58e6);
  EXPECT_GT(r.find("P-BFS")->items(0).vertices, 0.0);
  EXPECT_GT(r.find("R-BFS")->items(1).vertices, 0.0);
  EXPECT_GT(r.find("S-BFS")->items(0).vertices, 0.0);
}

TEST(EccAnomaly, OnlyNbAdjustsPower) {
  suites::register_all_workloads();
  for (const Workload* w : Registry::instance().all()) {
    if (w->name() == "NB") {
      EXPECT_LT(w->ecc_power_adjustment(), 1.0);
    } else {
      EXPECT_DOUBLE_EQ(w->ecc_power_adjustment(), 1.0) << w->name();
    }
  }
}

}  // namespace
}  // namespace repro::workloads
