// Thermal model suite (DESIGN.md §16). The physics and contracts under
// test:
//
//   * Closed form: under constant power P the lumped-RC die settles at
//     exactly T_ambient + P * (R_die_heatsink + R_heatsink_ambient) — the
//     discrete Euler fixed point IS the continuous one, so the check is
//     tight, not approximate.
//   * Monotonicity: peak die temperature is monotone in ambient and in
//     dissipated power.
//   * Cooling: after the power drops, the excess temperature decays
//     monotonically and log-linearly (single dominant mode once the fast
//     die node settles).
//   * Leakage feedback: the fixed-point iteration converges within the
//     pass budget and is bit-deterministic; k = 0 converges on pass 0 and
//     leaves the waveform byte-untouched (the bit-identity pin).
//   * Governor: the ladder is filtered/ordered/deduped; the throttle flag
//     is truthful (set iff a clamp actually happened), clamp events carry
//     the ceiling crossing, and hysteresis releases only after cooling
//     below ceiling - hysteresis.
//   * Study integration: thermal-off is bit-identical to a default study
//     across the registry matrix; k = 0 without throttling reproduces the
//     constant-leakage energy bit-exactly; attribution keeps the
//     sum(class) + static == model law under temperature-dependent
//     leakage.
//   * Facade: v1::Session validates thermal knobs strictly, rejects
//     thermal+sampled combinations, and recommend's exclude_throttled
//     drops clamped points from both the argmin and the perf-cap
//     baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/study.hpp"
#include "dvfs/dvfs.hpp"
#include "repro/api.hpp"
#include "sensor/waveform.hpp"
#include "sim/gpuconfig.hpp"
#include "suites/factories.hpp"
#include "thermal/thermal.hpp"
#include "workloads/registry.hpp"

namespace repro {
namespace {

sensor::Waveform constant_waveform(double watts, double duration_s) {
  return sensor::Waveform({{0.0, duration_s, watts, watts}});
}

thermal::ThermalScenario enabled_scenario() {
  thermal::ThermalScenario scenario;
  scenario.enabled = true;
  scenario.leakage.k_per_c = 0.0;  // tests opt into feedback explicitly
  return scenario;
}

double die_temp_at(const thermal::ThermalResult& result, double t_s) {
  const std::size_t index = static_cast<std::size_t>(
      std::lround(t_s / result.dt_s));
  EXPECT_LT(index, result.die_temp_c.size());
  return result.die_temp_c[index];
}

// --- RC physics -------------------------------------------------------------

TEST(ThermalRc, SteadyStateMatchesClosedForm) {
  const thermal::ThermalScenario scenario = enabled_scenario();
  const double power_w = 100.0;
  sensor::Waveform waveform = constant_waveform(power_w, 3000.0);
  const thermal::ThermalResult result = thermal::simulate(
      waveform, scenario, sim::config_by_name("default"), 25.0, 8.0);

  ASSERT_TRUE(result.enabled);
  ASSERT_TRUE(result.converged);
  ASSERT_GE(result.die_temp_c.size(), 2u);

  // The Euler fixed point equals the continuous steady state, and 3000 s
  // is > 100 slow time constants, so the check is tight.
  const double steady_die =
      scenario.ambient_c +
      power_w * thermal::total_resistance_k_per_w(scenario.rc);
  EXPECT_NEAR(result.die_temp_c.back(), steady_die, 1e-6);
  EXPECT_NEAR(result.peak_die_c, steady_die, 1e-6);
  // The heatsink node settles at ambient + P * R_heatsink_ambient.
  EXPECT_NEAR(result.peak_heatsink_c,
              scenario.ambient_c +
                  power_w * scenario.rc.r_heatsink_ambient_k_per_w,
              1e-6);

  // Heating under constant power is monotone non-decreasing throughout.
  for (std::size_t i = 1; i < result.die_temp_c.size(); ++i) {
    ASSERT_GE(result.die_temp_c[i], result.die_temp_c[i - 1] - 1e-12) << i;
  }
  // No feedback, no governor: the trace itself is untouched.
  EXPECT_EQ(result.leakage_extra_j, 0.0);
  EXPECT_FALSE(result.throttled);
}

TEST(ThermalRc, PeakIsMonotoneInAmbientAndPower) {
  const sim::GpuConfig& running = sim::config_by_name("default");
  const auto peak = [&](double ambient_c, double power_w) {
    thermal::ThermalScenario scenario = enabled_scenario();
    scenario.ambient_c = ambient_c;
    sensor::Waveform waveform = constant_waveform(power_w, 400.0);
    return thermal::simulate(waveform, scenario, running, 20.0, 5.0)
        .peak_die_c;
  };
  EXPECT_LT(peak(15.0, 120.0), peak(25.0, 120.0));
  EXPECT_LT(peak(25.0, 120.0), peak(40.0, 120.0));
  EXPECT_LT(peak(25.0, 60.0), peak(25.0, 120.0));
  EXPECT_LT(peak(25.0, 120.0), peak(25.0, 180.0));
}

TEST(ThermalRc, CoolingDecaysMonotonicallyAndLogLinearly) {
  const thermal::ThermalScenario scenario = enabled_scenario();
  sensor::Waveform waveform{{
      {0.0, 300.0, 200.0, 200.0},
      {300.0, 600.0, 0.0, 0.0},
  }};
  const thermal::ThermalResult result = thermal::simulate(
      waveform, scenario, sim::config_by_name("default"), 0.0, 0.0);
  ASSERT_TRUE(result.converged);

  // Monotone decay over the whole power-off stretch.
  const std::size_t off = static_cast<std::size_t>(
      std::lround(300.0 / result.dt_s));
  for (std::size_t i = off + 1; i < result.die_temp_c.size(); ++i) {
    ASSERT_LE(result.die_temp_c[i], result.die_temp_c[i - 1] + 1e-12) << i;
  }

  // Once the fast die node has settled (a few seconds), a single mode
  // dominates: the excess over ambient decays log-linearly, i.e. equal
  // time offsets shrink the excess by equal factors.
  const double e1 = die_temp_at(result, 340.0) - scenario.ambient_c;
  const double e2 = die_temp_at(result, 380.0) - scenario.ambient_c;
  const double e3 = die_temp_at(result, 420.0) - scenario.ambient_c;
  ASSERT_GT(e3, 0.0);
  EXPECT_NEAR((e2 / e1) / (e3 / e2), 1.0, 0.02);
}

// --- leakage feedback -------------------------------------------------------

TEST(ThermalLeakage, FixedPointConvergesAndIsDeterministic) {
  thermal::ThermalScenario scenario = enabled_scenario();
  scenario.leakage.k_per_c = 0.012;
  scenario.leakage.t0_c = 45.0;
  const sim::GpuConfig& running = sim::config_by_name("default");

  const auto run = [&]() {
    sensor::Waveform waveform = constant_waveform(150.0, 600.0);
    return thermal::simulate(waveform, scenario, running, 25.0, 7.0);
  };
  const thermal::ThermalResult a = run();
  ASSERT_TRUE(a.converged);
  EXPECT_GE(a.iterations, 2);          // feedback needs at least one refit
  EXPECT_LE(a.iterations, scenario.max_iterations);
  EXPECT_NE(a.leakage_extra_j, 0.0);   // the delta actually entered

  // Bit determinism: same inputs, same trajectory, to the last bit.
  const thermal::ThermalResult b = run();
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.peak_die_c, b.peak_die_c);
  EXPECT_EQ(a.leakage_extra_j, b.leakage_extra_j);
  ASSERT_EQ(a.die_temp_c.size(), b.die_temp_c.size());
  for (std::size_t i = 0; i < a.die_temp_c.size(); ++i) {
    ASSERT_EQ(a.die_temp_c[i], b.die_temp_c[i]) << i;
  }
}

TEST(ThermalLeakage, KZeroLeavesWaveformByteUntouched) {
  const thermal::ThermalScenario scenario = enabled_scenario();  // k = 0
  sensor::Waveform waveform{{
      {0.0, 10.0, 25.0, 25.0},
      {10.0, 40.0, 140.0, 140.0},
      {40.0, 60.0, 25.0, 25.0},
  }};
  const std::vector<sensor::Segment> before = waveform.segments();
  const thermal::ThermalResult result = thermal::simulate(
      waveform, scenario, sim::config_by_name("default"), 25.0, 8.0);

  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 1);  // pass 0 already is the fixed point
  EXPECT_EQ(result.leakage_extra_j, 0.0);
  EXPECT_FALSE(result.throttled);
  ASSERT_EQ(waveform.segments().size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(waveform.segments()[i].t0, before[i].t0) << i;
    EXPECT_EQ(waveform.segments()[i].t1, before[i].t1) << i;
    EXPECT_EQ(waveform.segments()[i].w0, before[i].w0) << i;
    EXPECT_EQ(waveform.segments()[i].w1, before[i].w1) << i;
  }
}

TEST(ThermalLeakage, WindowExtraMatchesCumulativeIntegral) {
  thermal::ThermalScenario scenario = enabled_scenario();
  scenario.leakage.k_per_c = 0.012;
  sensor::Waveform waveform = constant_waveform(150.0, 600.0);
  const thermal::ThermalResult result = thermal::simulate(
      waveform, scenario, sim::config_by_name("default"), 25.0, 7.0);
  ASSERT_TRUE(result.converged);
  ASSERT_GE(result.cum_extra_j.size(), 2u);

  const double total = result.cum_extra_j.back();
  const double scale = std::abs(total) + 1.0;
  EXPECT_NEAR(thermal::window_extra_j(result, 0.0, 600.0), total,
              1e-12 * scale);
  // Additive over a partition of the window.
  const double split = thermal::window_extra_j(result, 0.0, 123.4) +
                       thermal::window_extra_j(result, 123.4, 456.7) +
                       thermal::window_extra_j(result, 456.7, 600.0);
  EXPECT_NEAR(split, total, 1e-9 * scale);
  // Out-of-range queries clamp to the timeline, reversed bounds swap.
  EXPECT_EQ(thermal::window_extra_j(result, -50.0, 700.0),
            thermal::window_extra_j(result, 0.0, 600.0));
  EXPECT_EQ(thermal::window_extra_j(result, 400.0, 100.0),
            thermal::window_extra_j(result, 100.0, 400.0));
}

// --- governor ---------------------------------------------------------------

std::vector<thermal::LadderConfig> paper_ladder_candidates() {
  return {
      {"614", 614.0, 0.93},
      {"324", 324.0, 0.85},
  };
}

TEST(ThermalGovernor, BuildLadderFiltersOrdersAndDedupes) {
  const sim::GpuConfig& running = sim::config_by_name("default");  // 705 MHz
  const std::vector<thermal::LadderConfig> candidates = {
      {"324", 324.0, 0.85},
      {"boost", 800.0, 1.05},     // above the running clock: filtered
      {"614", 614.0, 0.93},
      {"614-alias", 614.0, 0.93}, // same operating point: deduped
      {"bad", 0.0, 1.0},          // non-positive clock: filtered
      {"324", 324.0, 0.85},       // name duplicate: deduped
  };
  const std::vector<thermal::LadderConfig> ladder =
      thermal::build_ladder(running, candidates);
  ASSERT_EQ(ladder.size(), 2u);
  EXPECT_EQ(ladder[0].name, "614");  // next-lower-first
  EXPECT_EQ(ladder[1].name, "324");

  // Nothing below the lowest paper clock: empty ladder, nothing to clamp.
  EXPECT_TRUE(
      thermal::build_ladder(sim::config_by_name("324"), candidates).empty());
}

TEST(ThermalGovernor, SustainedLoadClampsDownTheLadder) {
  thermal::ThermalScenario scenario = enabled_scenario();
  scenario.governor.ceiling_c = 45.0;
  scenario.governor.hysteresis_c = 5.0;
  scenario.ladder = paper_ladder_candidates();
  const sim::GpuConfig& running = sim::config_by_name("default");

  // Unthrottled steady state would be 25 + 150 * 0.245 = 61.75 C; even
  // one step down (614 MHz) still settles above the ceiling, so the
  // governor must walk to the bottom of the ladder and stay there.
  sensor::Waveform waveform = constant_waveform(150.0, 600.0);
  const double base_energy_j = waveform.energy_j(0.0, 600.0);
  const thermal::ThermalResult result =
      thermal::simulate(waveform, scenario, running, 30.0, 0.0);

  ASSERT_TRUE(result.throttled);
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.events[0].config_name, "614");
  EXPECT_EQ(result.events[1].config_name, "324");
  EXPECT_GE(result.events[0].temp_c, scenario.governor.ceiling_c);
  EXPECT_GT(result.events[1].t_s, result.events[0].t_s);
  // The sustained load never cools below ceiling - hysteresis: no release.
  EXPECT_LT(result.events[0].release_t_s, 0.0);
  EXPECT_LT(result.events[1].release_t_s, 0.0);
  // Bounded overshoot past the ceiling (one Euler step of headroom).
  EXPECT_GE(result.peak_die_c, scenario.governor.ceiling_c);
  EXPECT_LT(result.peak_die_c, scenario.governor.ceiling_c + 5.0);

  // The clamp rewrote the trace: total energy dropped by exactly the
  // cumulative (applied - base) integral, which is negative here.
  EXPECT_LT(result.cum_extra_j.back(), 0.0);
  EXPECT_NEAR(waveform.energy_j(0.0, 600.0),
              base_energy_j + result.cum_extra_j.back(),
              1e-9 * base_energy_j);
}

TEST(ThermalGovernor, BurstReleasesAfterHysteresis) {
  thermal::ThermalScenario scenario = enabled_scenario();
  scenario.governor.ceiling_c = 45.0;
  scenario.governor.hysteresis_c = 5.0;
  scenario.ladder = paper_ladder_candidates();

  // A hot burst followed by a near-idle stretch: the governor clamps
  // during the burst and must release every clamp once the die cools
  // below ceiling - hysteresis.
  sensor::Waveform waveform{{
      {0.0, 60.0, 200.0, 200.0},
      {60.0, 460.0, 35.0, 35.0},
  }};
  const thermal::ThermalResult result = thermal::simulate(
      waveform, scenario, sim::config_by_name("default"), 30.0, 0.0);

  ASSERT_TRUE(result.throttled);
  ASSERT_FALSE(result.events.empty());
  for (const thermal::ThrottleEvent& event : result.events) {
    EXPECT_GE(event.release_t_s, 0.0) << event.config_name;
    EXPECT_GT(event.release_t_s, event.t_s) << event.config_name;
    // Release only fires below the hysteresis band.
    EXPECT_LE(die_temp_at(result, event.release_t_s),
              scenario.governor.ceiling_c - scenario.governor.hysteresis_c +
                  1e-9)
        << event.config_name;
  }
}

TEST(ThermalGovernor, TruthfulFlagWhenCeilingNeverCrossed) {
  thermal::ThermalScenario scenario = enabled_scenario();
  scenario.governor.ceiling_c = 80.0;  // steady state is 61.75 C
  scenario.ladder = paper_ladder_candidates();
  sensor::Waveform waveform = constant_waveform(150.0, 600.0);
  const std::vector<sensor::Segment> before = waveform.segments();
  const thermal::ThermalResult result = thermal::simulate(
      waveform, scenario, sim::config_by_name("default"), 30.0, 0.0);

  EXPECT_FALSE(result.throttled);
  EXPECT_TRUE(result.events.empty());
  EXPECT_LT(result.peak_die_c, scenario.governor.ceiling_c);
  // No clamp and k = 0: the trace stays byte-untouched.
  ASSERT_EQ(waveform.segments().size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(waveform.segments()[i].w0, before[i].w0) << i;
  }
}

// --- study integration ------------------------------------------------------

void expect_same_measurement(const core::ExperimentResult& a,
                             const core::ExperimentResult& b) {
  EXPECT_EQ(a.usable, b.usable);
  EXPECT_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.power_w, b.power_w);
  EXPECT_EQ(a.true_active_s, b.true_active_s);
  EXPECT_EQ(a.time_spread, b.time_spread);
  EXPECT_EQ(a.energy_spread, b.energy_spread);
}

TEST(ThermalStudy, DisabledScenarioIsBitIdenticalAcrossMatrix) {
  suites::register_all_workloads();
  core::Study plain;
  core::Study::Options options;
  options.thermal.ambient_c = 55.0;  // knobs set, but enabled stays false
  options.thermal.governor.ceiling_c = 60.0;
  options.thermal.leakage.k_per_c = 0.05;
  core::Study disabled{options};

  for (const char* program : {"SGEMM", "LBM"}) {
    const workloads::Workload* w =
        workloads::Registry::instance().find(program);
    ASSERT_NE(w, nullptr) << program;
    for (const sim::GpuConfig& config : sim::standard_configs()) {
      const core::ExperimentResult& a = plain.measure(*w, 0, config);
      const core::ExperimentResult& b = disabled.measure(*w, 0, config);
      expect_same_measurement(a, b);
      EXPECT_FALSE(b.thermal) << program << "/" << config.name;
      EXPECT_FALSE(b.throttled) << program << "/" << config.name;
    }
  }
}

TEST(ThermalStudy, KZeroReproducesConstantLeakageEnergyExactly) {
  suites::register_all_workloads();
  core::Study plain;
  core::Study::Options options;
  options.thermal.enabled = true;
  options.thermal.leakage.k_per_c = 0.0;  // no feedback, no governor
  core::Study thermal_study{options};

  const workloads::Workload* w = workloads::Registry::instance().find("SGEMM");
  ASSERT_NE(w, nullptr);
  const sim::GpuConfig& config = sim::config_by_name("default");
  const core::ExperimentResult& a = plain.measure(*w, 0, config);
  const core::ExperimentResult& b = thermal_study.measure(*w, 0, config);

  expect_same_measurement(a, b);  // EXPECT_EQ on doubles: bit-exact
  EXPECT_TRUE(b.thermal);
  EXPECT_FALSE(b.throttled);
  EXPECT_EQ(b.throttle_events, 0);
  EXPECT_GT(b.peak_temp_c, options.thermal.ambient_c);
}

TEST(ThermalStudy, AttributionLawHoldsUnderLeakageFeedback) {
  suites::register_all_workloads();
  core::Study::Options options;
  options.thermal.enabled = true;
  options.thermal.leakage.k_per_c = 0.012;
  core::Study study{options};

  const workloads::Workload* w = workloads::Registry::instance().find("SGEMM");
  ASSERT_NE(w, nullptr);
  const obs::AttributionTable table =
      study.attribution(*w, 0, sim::config_by_name("default"));
  ASSERT_FALSE(table.kernels.empty());
  ASSERT_GT(table.model_energy_j, 0.0);

  double total = table.static_energy_j;
  for (const double c : table.class_energy_j) total += c;
  EXPECT_NEAR(total, table.model_energy_j, 1e-9 * table.model_energy_j);
  for (const obs::KernelAttribution& k : table.kernels) {
    double kernel_total = k.static_energy_j;
    for (const double c : k.class_energy_j) kernel_total += c;
    EXPECT_NEAR(kernel_total, k.model_energy_j,
                1e-9 * std::abs(k.model_energy_j) + 1e-12)
        << k.kernel;
  }
}

// --- facade + recommender ---------------------------------------------------

TEST(ThermalApi, MeasureValidatesAndReportsTelemetry) {
  v1::Session session;
  v1::ExperimentRequest request;
  request.program = "SGEMM";
  request.config = "default";
  request.thermal.enabled = true;

  const v1::MeasurementResult result = session.measure(request);
  ASSERT_TRUE(result.usable);
  EXPECT_TRUE(result.thermal);
  EXPECT_GT(result.peak_temp_c, request.thermal.ambient_c);

  // k = 0 thermal energy is bit-equal to the plain pipeline.
  v1::ExperimentRequest k_zero = request;
  k_zero.thermal.leak_k_per_c = 0.0;
  const v1::MeasurementResult frozen = session.measure(k_zero);
  const v1::MeasurementResult plain = session.measure("SGEMM", 0, "default");
  EXPECT_EQ(frozen.time_s, plain.time_s);
  EXPECT_EQ(frozen.energy_j, plain.energy_j);
  EXPECT_EQ(frozen.power_w, plain.power_w);
  EXPECT_TRUE(frozen.thermal);
  EXPECT_FALSE(plain.thermal);

  // Thermal scenarios are exact-only.
  v1::ExperimentRequest sampled = request;
  sampled.sampling.mode = v1::SamplingMode::kStratified;
  EXPECT_THROW(session.measure(sampled), std::invalid_argument);

  // Strict knob validation.
  v1::ExperimentRequest bad = request;
  bad.thermal.ambient_c = 200.0;
  EXPECT_THROW(session.measure(bad), std::invalid_argument);
  bad = request;
  bad.thermal.ceiling_c = bad.thermal.ambient_c - 1.0;  // at or below ambient
  EXPECT_THROW(session.measure(bad), std::invalid_argument);
  bad = request;
  bad.thermal.leak_k_per_c = 2.0;
  EXPECT_THROW(session.measure(bad), std::invalid_argument);
  bad = request;
  bad.thermal.hysteresis_c = -1.0;
  EXPECT_THROW(session.measure(bad), std::invalid_argument);
}

TEST(ThermalPick, ExcludeThrottledDropsClampedPoints) {
  std::vector<dvfs::MetricPoint> pts(3);
  pts[0] = {true, 1.0, 10.0, true};   // fastest, but throttled
  pts[1] = {true, 1.5, 6.0, false};
  pts[2] = {true, 4.0, 4.0, true};    // cheapest, but throttled

  // Default: throttled points stay eligible (pre-thermal behaviour).
  EXPECT_EQ(dvfs::pick(pts, dvfs::Objective::kMinEnergy, 1.10).index, 2);
  EXPECT_EQ(dvfs::pick(pts, dvfs::Objective::kPerfCap, 1.10).index, 0);

  // Excluding throttled points removes them from the argmin AND from the
  // perf-cap fastest baseline (the cap must reflect sustainable points).
  EXPECT_EQ(
      dvfs::pick(pts, dvfs::Objective::kMinEnergy, 1.10, true).index, 1);
  const dvfs::Choice cap =
      dvfs::pick(pts, dvfs::Objective::kPerfCap, 1.10, true);
  EXPECT_EQ(cap.index, 1);
  EXPECT_DOUBLE_EQ(cap.cap_time_s, 1.10 * 1.5);

  // Everything throttled: no eligible point.
  std::vector<dvfs::MetricPoint> all(1);
  all[0] = {true, 1.0, 1.0, true};
  EXPECT_EQ(dvfs::pick(all, dvfs::Objective::kMinEnergy, 1.10, true).index,
            -1);
}

TEST(ThermalApi, SweepCarriesTelemetryAndRecommendExcludesThrottled) {
  v1::Session session;
  v1::SweepOptions options;
  options.core_mhz = {324.0, 705.0, 381.0};  // {324, 705}
  options.mem_mhz = {2600.0, 2600.0, 0.0};
  options.prune = false;
  options.thermal.enabled = true;
  options.thermal.leak_k_per_c = 0.0;

  // Calibration pass without a ceiling: read each point's natural peak.
  const v1::SweepResult open = session.sweep("SGEMM", 0, options);
  ASSERT_EQ(open.points.size(), 2u);
  double peak_low = 0.0, peak_high = 0.0;
  for (const v1::SweepPoint& p : open.points) {
    ASSERT_TRUE(p.measured && p.result.usable) << p.config.name;
    EXPECT_TRUE(p.result.thermal) << p.config.name;
    EXPECT_FALSE(p.result.sampled) << p.config.name;  // forced exact
    EXPECT_FALSE(p.result.throttled) << p.config.name;
    if (p.config.name == "cfg:324x2600") peak_low = p.result.peak_temp_c;
    if (p.config.name == "default") peak_high = p.result.peak_temp_c;
  }
  ASSERT_GT(peak_low, options.thermal.ambient_c);
  ASSERT_GT(peak_high, peak_low);  // more power at the higher clock

  // A ceiling between the two peaks throttles only the high point (the
  // low point has no lower ladder rung anyway, and never crosses).
  options.thermal.ceiling_c = 0.5 * (peak_low + peak_high);
  const v1::SweepResult capped = session.sweep("SGEMM", 0, options);
  ASSERT_EQ(capped.points.size(), 2u);
  for (const v1::SweepPoint& p : capped.points) {
    ASSERT_TRUE(p.measured && p.result.usable) << p.config.name;
    if (p.config.name == "default") {
      EXPECT_TRUE(p.result.throttled);
      EXPECT_GT(p.result.throttle_events, 0);
    } else {
      EXPECT_FALSE(p.result.throttled) << p.config.name;
    }
  }

  // Under a tight perf cap the throttled fast point wins by default, but
  // exclude_throttled re-bases the cap on sustainable points only.
  v1::RecommendOptions ropt;
  ropt.objective = v1::Objective::kPerfCap;
  ropt.perf_cap_rel = 1.05;
  ropt.sweep = options;
  const v1::Recommendation lax = session.recommend("SGEMM", 0, ropt);
  ASSERT_TRUE(lax.ok) << lax.error;
  EXPECT_EQ(lax.config.name, "default");

  ropt.exclude_throttled = true;
  const v1::Recommendation strict = session.recommend("SGEMM", 0, ropt);
  ASSERT_TRUE(strict.ok) << strict.error;
  EXPECT_EQ(strict.config.name, "cfg:324x2600");
}

}  // namespace
}  // namespace repro
