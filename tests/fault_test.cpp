// Unit suite for the deterministic fault injector (src/fault/,
// DESIGN.md §12). The chaos harness (chaos_test.cpp, tools/chaos_smoke)
// exercises the injector end to end; this file pins the primitive
// contracts it relies on: decide() is a pure function of
// (seed, site, key, occurrence), draws advance per-(site, key) counters
// deterministically under concurrency, applied counts are exact, and the
// wire mutator always changes the bytes it claims to change.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace fault = repro::fault;
using fault::Fault;
using fault::FaultPlan;
using fault::Kind;
using fault::PlanOptions;
using fault::Site;

namespace {

constexpr Site kAllSites[] = {Site::kScheduler, Site::kSensor, Site::kWire,
                              Site::kCache};

std::vector<std::string> sample_keys() {
  return {"NB/2/default", "LBM/0/614", "SGEMM/0/default", "TPACF/0/ecc",
          "L-BFS/2/324"};
}

}  // namespace

TEST(FaultPlan, DecideIsPureAcrossInstances) {
  PlanOptions options;
  options.seed = 0xfeedULL;
  const FaultPlan a{options};
  const FaultPlan b{options};
  for (const Site site : kAllSites) {
    for (const std::string& key : sample_keys()) {
      for (std::uint64_t occ = 0; occ < 32; ++occ) {
        const Fault fa = a.decide(site, key, occ);
        const Fault fb = b.decide(site, key, occ);
        EXPECT_EQ(fa.kind, fb.kind);
        EXPECT_EQ(fa.magnitude, fb.magnitude);
      }
    }
  }
}

TEST(FaultPlan, DecideIsIndependentOfDrawHistory) {
  PlanOptions options;
  options.seed = 7;
  const FaultPlan fresh{options};
  const FaultPlan warmed{options};
  // Exhaust draws on unrelated keys; decisions for "NB/2/default" must not
  // move (the schedule depends on the occurrence index, not global order).
  for (int i = 0; i < 100; ++i) {
    warmed.draw(Site::kSensor, "LBM/0/614");
    warmed.draw(Site::kScheduler, "BH/0/default");
  }
  for (std::uint64_t occ = 0; occ < 16; ++occ) {
    const Fault a = fresh.decide(Site::kSensor, "NB/2/default", occ);
    const Fault b = warmed.decide(Site::kSensor, "NB/2/default", occ);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.magnitude, b.magnitude);
  }
}

TEST(FaultPlan, DrawAdvancesThePerKeyOccurrenceCounter) {
  PlanOptions options;
  options.seed = 99;
  const FaultPlan plan{options};
  EXPECT_EQ(plan.occurrences(Site::kSensor, "NB/2/default"), 0u);
  for (std::uint64_t occ = 0; occ < 20; ++occ) {
    const Fault drawn = plan.draw(Site::kSensor, "NB/2/default");
    const Fault decided = plan.decide(Site::kSensor, "NB/2/default", occ);
    EXPECT_EQ(drawn.kind, decided.kind);
    EXPECT_EQ(drawn.magnitude, decided.magnitude);
  }
  EXPECT_EQ(plan.occurrences(Site::kSensor, "NB/2/default"), 20u);
  // Sites and keys have independent counters.
  EXPECT_EQ(plan.occurrences(Site::kScheduler, "NB/2/default"), 0u);
  EXPECT_EQ(plan.occurrences(Site::kSensor, "LBM/0/614"), 0u);
}

TEST(FaultPlan, RateZeroNeverFiresRateOneAlwaysFires) {
  PlanOptions off;
  off.seed = 5;
  off.scheduler_rate = off.sensor_rate = off.wire_rate = off.cache_rate = 0.0;
  PlanOptions on = off;
  on.scheduler_rate = on.sensor_rate = on.wire_rate = on.cache_rate = 1.0;
  const FaultPlan never{off};
  const FaultPlan always{on};
  for (const Site site : kAllSites) {
    for (std::uint64_t occ = 0; occ < 64; ++occ) {
      EXPECT_EQ(never.decide(site, "NB/2/default", occ).kind, Kind::kNone);
      EXPECT_NE(always.decide(site, "NB/2/default", occ).kind, Kind::kNone);
    }
  }
}

TEST(FaultPlan, KindsMatchTheirSite) {
  PlanOptions options;
  options.seed = 11;
  options.scheduler_rate = options.sensor_rate = 1.0;
  options.wire_rate = options.cache_rate = 1.0;
  const FaultPlan plan{options};
  for (std::uint64_t occ = 0; occ < 64; ++occ) {
    const Kind scheduler = plan.decide(Site::kScheduler, "k", occ).kind;
    EXPECT_TRUE(scheduler == Kind::kJobAbort || scheduler == Kind::kJobDelay);
    const Kind sensor = plan.decide(Site::kSensor, "k", occ).kind;
    EXPECT_TRUE(sensor == Kind::kSampleDrop ||
                sensor == Kind::kSampleDuplicate ||
                sensor == Kind::kStuckIdleRate);
    const Kind wire = plan.decide(Site::kWire, "k", occ).kind;
    EXPECT_TRUE(wire == Kind::kWireTruncate || wire == Kind::kWireCorrupt);
    EXPECT_EQ(plan.decide(Site::kCache, "k", occ).kind, Kind::kCacheEvict);
  }
}

TEST(FaultPlan, ScheduleDigestReproducibleAndSeedSensitive) {
  const std::vector<std::string> keys = sample_keys();
  PlanOptions options;
  options.seed = 2026;
  const FaultPlan a{options};
  const FaultPlan b{options};
  const std::string digest = a.schedule_digest(keys, 16);
  EXPECT_EQ(digest, b.schedule_digest(keys, 16));
  EXPECT_FALSE(digest.empty());  // default rates fire somewhere in 16x5x4

  PlanOptions other = options;
  other.seed = 2027;
  const FaultPlan c{other};
  EXPECT_NE(digest, c.schedule_digest(keys, 16));
}

TEST(FaultPlan, AppliedIsRecordedExactly) {
  PlanOptions options;
  options.seed = 3;
  const FaultPlan plan{options};
  EXPECT_EQ(plan.applied(Site::kSensor, "k"), 0u);
  EXPECT_EQ(plan.applied_total(), 0u);
  plan.record_applied(Site::kSensor, "k");
  plan.record_applied(Site::kSensor, "k");
  plan.record_applied(Site::kCache, "other");
  EXPECT_EQ(plan.applied(Site::kSensor, "k"), 2u);
  EXPECT_EQ(plan.applied(Site::kCache, "other"), 1u);
  EXPECT_EQ(plan.applied(Site::kSensor, "other"), 0u);
  EXPECT_EQ(plan.applied_total(Site::kSensor), 2u);
  EXPECT_EQ(plan.applied_total(), 3u);
}

TEST(FaultPlan, ConcurrentDrawsOnDistinctKeysStayDeterministic) {
  // TSan target: many threads drawing against their own keys concurrently
  // must each see exactly the schedule decide() prescribes for their key.
  PlanOptions options;
  options.seed = 0xabcdef;
  const FaultPlan plan{options};
  constexpr int kThreads = 8;
  constexpr std::uint64_t kDraws = 200;
  std::vector<std::thread> workers;
  // Not vector<bool>: distinct bit references share bytes, which is a
  // data race of the test's own making.
  std::array<std::atomic<bool>, kThreads> match{};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&plan, &match, t] {
      const std::string key = "key-" + std::to_string(t);
      bool all = true;
      for (std::uint64_t occ = 0; occ < kDraws; ++occ) {
        const Fault drawn = plan.draw(Site::kScheduler, key);
        const Fault expected = plan.decide(Site::kScheduler, key, occ);
        all = all && drawn.kind == expected.kind &&
              drawn.magnitude == expected.magnitude;
      }
      match[static_cast<std::size_t>(t)] = all;
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(match[static_cast<std::size_t>(t)].load()) << "thread " << t;
  }
}

TEST(FaultPlan, ConcurrentDrawsOnOneKeyPartitionTheOccurrences) {
  // Concurrent draws against a SHARED key race for occurrence indices, but
  // the union of indices handed out is exactly 0..N-1 with no duplicates.
  PlanOptions options;
  options.seed = 17;
  const FaultPlan plan{options};
  constexpr int kThreads = 8;
  constexpr std::uint64_t kDrawsPerThread = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&plan] {
      for (std::uint64_t i = 0; i < kDrawsPerThread; ++i) {
        plan.draw(Site::kCache, "shared");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(plan.occurrences(Site::kCache, "shared"),
            kThreads * kDrawsPerThread);
}

TEST(ScopedPlan, InstallsAndRestores) {
  EXPECT_EQ(fault::active(), nullptr);
  PlanOptions options;
  options.seed = 1;
  const FaultPlan outer{options};
  {
    fault::ScopedPlan scope{&outer};
    EXPECT_EQ(fault::active(), &outer);
    const FaultPlan inner{options};
    {
      fault::ScopedPlan nested{&inner};
      EXPECT_EQ(fault::active(), &inner);
    }
    EXPECT_EQ(fault::active(), &outer);
  }
  EXPECT_EQ(fault::active(), nullptr);
}

TEST(KeyScope, IsThreadLocalAndNests) {
  EXPECT_TRUE(fault::context_key().empty());
  {
    fault::KeyScope outer{"outer-key"};
    EXPECT_EQ(fault::context_key(), "outer-key");
    {
      fault::KeyScope inner{"inner-key"};
      EXPECT_EQ(fault::context_key(), "inner-key");
    }
    EXPECT_EQ(fault::context_key(), "outer-key");
    std::thread([&] {
      // A sibling thread never sees this thread's scope.
      EXPECT_TRUE(fault::context_key().empty());
    }).join();
  }
  EXPECT_TRUE(fault::context_key().empty());
}

TEST(ApplyWire, TruncateAndCorruptAlwaysChangeTheLine) {
  PlanOptions options;
  options.seed = 21;
  const FaultPlan plan{options};
  const std::string line =
      R"({"v":1,"id":7,"program":"NB","input":2,"config":"default"})";
  for (std::uint64_t magnitude : {0ULL, 1ULL, 57ULL, 0x123456789abcULL}) {
    Fault truncate{Kind::kWireTruncate, magnitude};
    const std::string t = fault::apply_wire(plan, "k", truncate, line);
    EXPECT_LT(t.size(), line.size());
    EXPECT_EQ(t, line.substr(0, magnitude % line.size()));

    Fault corrupt{Kind::kWireCorrupt, magnitude};
    const std::string c = fault::apply_wire(plan, "k", corrupt, line);
    EXPECT_EQ(c.size(), line.size());
    EXPECT_NE(c, line);
    // Exactly one byte differs, at the deterministic position.
    std::size_t diffs = 0, where = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (c[i] != line[i]) {
        ++diffs;
        where = i;
      }
    }
    EXPECT_EQ(diffs, 1u);
    EXPECT_EQ(where, magnitude % line.size());
  }
  // Every mutation above was recorded as applied.
  EXPECT_EQ(plan.applied(Site::kWire, "k"), 8u);
}

TEST(ApplyWire, NoFaultAndEmptyLinesPassThrough) {
  PlanOptions options;
  options.seed = 22;
  const FaultPlan plan{options};
  const std::string line = "{\"v\":1}";
  EXPECT_EQ(fault::apply_wire(plan, "k", Fault{}, line), line);
  EXPECT_EQ(fault::apply_wire(plan, "k", Fault{Kind::kWireCorrupt, 9}, ""),
            "");
  EXPECT_EQ(plan.applied(Site::kWire, "k"), 0u);
}

TEST(FilterWireLine, NoOpWithoutAnActivePlan) {
  ASSERT_EQ(fault::active(), nullptr);
  const std::string line = "{\"v\":1,\"health\":true}";
  EXPECT_EQ(fault::filter_wire_line("inbound", line), line);
}

TEST(FilterWireLine, DrawsTheWireScheduleUnderAPlan) {
  PlanOptions options;
  options.seed = 31;
  options.wire_rate = 1.0;  // every line mutates
  const FaultPlan plan{options};
  fault::ScopedPlan scope{&plan};
  const std::string line =
      R"({"v":1,"id":1,"program":"NB","input":2,"config":"default"})";
  const std::string first = fault::filter_wire_line("inbound", line);
  EXPECT_NE(first, line);
  EXPECT_EQ(plan.occurrences(Site::kWire, "inbound"), 1u);
  EXPECT_EQ(plan.applied(Site::kWire, "inbound"), 1u);
  // Replay: a fresh plan with the same seed mutates identically.
  const FaultPlan twin{options};
  const std::string replay =
      fault::apply_wire(twin, "inbound", twin.decide(Site::kWire, "inbound", 0),
                        line);
  EXPECT_EQ(first, replay);
}
