#include <gtest/gtest.h>

#include <algorithm>

#include "power/model.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "util/rng.hpp"

namespace repro::sensor {
namespace {

Waveform square_wave(double idle, double active, double start, double dur,
                     double total) {
  std::vector<Segment> segs{{0.0, start, idle, idle},
                            {start, start + dur, active, active},
                            {start + dur, total, idle, idle}};
  return Waveform{std::move(segs)};
}

TEST(Waveform, PowerAtInterpolates) {
  Waveform w{{{0.0, 1.0, 0.0, 10.0}}};
  EXPECT_DOUBLE_EQ(w.power_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.power_at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(w.power_at(1.5), 10.0);  // clamped past the end
  EXPECT_DOUBLE_EQ(w.power_at(-1.0), 0.0);
}

TEST(Waveform, EnergyIntegralExact) {
  const Waveform w = square_wave(25.0, 100.0, 2.0, 3.0, 10.0);
  EXPECT_NEAR(w.energy_j(2.0, 5.0), 300.0, 1e-9);
  EXPECT_NEAR(w.energy_j(0.0, 10.0), 25.0 * 7.0 + 300.0, 1e-9);
}

TEST(Waveform, EnergySwappedBounds) {
  const Waveform w = square_wave(25.0, 100.0, 2.0, 3.0, 10.0);
  EXPECT_NEAR(w.energy_j(5.0, 2.0), 300.0, 1e-9);
}

// Regression (ISSUE 3): zero-length segments (t0 == t1) model instantaneous
// level changes and exactly-on-boundary queries resolve to the *following*
// segment; power_at and Cursor must agree bit-for-bit on both.
TEST(Waveform, ZeroLengthSegmentsAndBoundariesCursorAgrees) {
  const Waveform w{{{0.0, 1.0, 10.0, 20.0},
                    {1.0, 1.0, 55.0, 55.0},   // zero-length mid-timeline
                    {1.0, 2.0, 30.0, 40.0},
                    {2.0, 2.0, 77.0, 99.0}}};  // zero-length at the end
  // A boundary query never lands inside the zero-length segment: t = 1.0
  // resolves to the segment starting there, t = 2.0 clamps to the end.
  EXPECT_DOUBLE_EQ(w.power_at(1.0), 30.0);
  EXPECT_DOUBLE_EQ(w.power_at(2.0), 99.0);   // back().w1 past the end
  EXPECT_DOUBLE_EQ(w.power_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(w.power_at(1.5), 35.0);

  auto cursor = w.cursor();
  for (const double t : {-1.0, 0.0, 0.5, 1.0, 1.25, 1.5, 2.0, 3.0}) {
    EXPECT_EQ(w.power_at(t), cursor.power_at(t)) << "t=" << t;
  }
  // Zero-length segments carry no energy; boundary-aligned integrals agree.
  EXPECT_NEAR(w.energy_j(0.0, 2.0), 15.0 + 35.0, 1e-12);
  EXPECT_NEAR(w.energy_j(1.0, 1.0), 0.0, 0.0);
}

TEST(Waveform, ZeroLengthLeadingSegment) {
  const Waveform w{{{0.0, 0.0, 5.0, 7.0}, {0.0, 1.0, 10.0, 20.0}}};
  auto cursor = w.cursor();
  for (const double t : {-1.0, 0.0, 0.25, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(w.power_at(t), cursor.power_at(t)) << "t=" << t;
  }
  // t <= front().t0 clamps to the zero-length segment's w0.
  EXPECT_DOUBLE_EQ(w.power_at(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(w.power_at(0.0), 5.0);
}

TEST(Waveform, RecordIntoReusesBufferIdentically) {
  const Waveform w = square_wave(25.0, 100.0, 2.0, 5.0, 12.0);
  const Sensor sensor;
  util::Rng rng1{21}, rng2{21}, rng3{21};
  const auto fresh = sensor.record(w, rng1);

  std::vector<Sample> reused;
  sensor.record_into(w, rng2, reused);
  ASSERT_EQ(fresh.size(), reused.size());

  // A second record_into on the same (dirty) buffer must clear and refill
  // with the identical stream.
  sensor.record_into(w, rng3, reused);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i].t, reused[i].t);
    EXPECT_EQ(fresh[i].w, reused[i].w);
  }
}

TEST(Synthesize, StructureLeadPhasesTail) {
  using namespace repro;
  sim::TraceResult trace;
  sim::Phase phase;
  phase.kernel_name = "k";
  phase.duration_s = 5.0;
  phase.activity.fp32_ops = 2496.0 * 705e6 * 5.0;
  phase.activity.warp_instructions = phase.activity.fp32_ops / 32.0;
  trace.phases.push_back(phase);
  trace.active_time_s = 5.0;

  const power::PowerModel model;
  const auto& cfg = sim::config_by_name("default");
  const Waveform w = synthesize(trace, cfg, model);

  const double idle = model.static_power_w(cfg);
  EXPECT_NEAR(w.power_at(0.5), idle, 1e-9);        // lead-in
  EXPECT_GT(w.power_at(4.0), 85.0);                // kernel phase
  EXPECT_NEAR(w.power_at(w.duration() - 0.1), idle, 1.5);  // settled tail
  EXPECT_GT(w.duration(), 7.0);  // lead-in + kernel + tail + trail idle
}

TEST(Synthesize, HostGapsAtTailPower) {
  using namespace repro;
  sim::TraceResult trace;
  sim::Phase a;
  a.kernel_name = "a";
  a.duration_s = 2.0;
  trace.phases.push_back(a);
  sim::Phase b = a;
  b.kernel_name = "b";
  b.host_gap_before_s = 1.0;
  trace.phases.push_back(b);

  const power::PowerModel model;
  const auto& cfg = sim::config_by_name("default");
  const Waveform w = synthesize(trace, cfg, model);
  // The gap sits between the phases: 2.0 (lead) + 2.0 (a) + gap.
  EXPECT_NEAR(w.power_at(4.5), model.tail_power_w(cfg), 1e-9);
}

TEST(Sensor, AdaptiveSamplingRates) {
  // Below the gate: ~1 Hz. Above: ~10 Hz.
  const Waveform w = square_wave(25.0, 100.0, 10.0, 10.0, 30.0);
  util::Rng rng{3};
  const Sensor sensor;
  const auto samples = sensor.record(w, rng);
  int idle_samples = 0, active_samples = 0;
  for (const Sample& s : samples) {
    if (s.t < 9.0) ++idle_samples;
    if (s.t > 11.0 && s.t < 19.0) ++active_samples;
  }
  EXPECT_NEAR(idle_samples, 9, 2);     // ~1 Hz
  EXPECT_NEAR(active_samples, 80, 10); // ~10 Hz
}

TEST(Sensor, LagSmoothsStep) {
  const Waveform w = square_wave(25.0, 125.0, 5.0, 10.0, 25.0);
  util::Rng rng{5};
  SensorOptions opt;
  opt.noise_sigma_w = 0.0;
  const Sensor sensor{opt};
  const auto samples = sensor.record(w, rng);
  // Right after the step the reading must be well below the true level.
  for (const Sample& s : samples) {
    if (s.t > 5.0 && s.t < 5.3) {
      EXPECT_LT(s.w, 80.0);
    }
    // And the reading converges near the top before the step ends.
    if (s.t > 9.0 && s.t < 14.0) {
      EXPECT_GT(s.w, 118.0);
    }
  }
}

TEST(Sensor, QuantizesToTenthWatt) {
  const Waveform w = square_wave(25.0, 100.0, 2.0, 5.0, 12.0);
  util::Rng rng{7};
  const Sensor sensor;
  for (const Sample& s : sensor.record(w, rng)) {
    const double scaled = s.w * 10.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-6);
  }
}

TEST(Sensor, DeterministicGivenSeed) {
  const Waveform w = square_wave(25.0, 100.0, 2.0, 5.0, 12.0);
  util::Rng rng1{11}, rng2{11};
  const Sensor sensor;
  const auto a = sensor.record(w, rng1);
  const auto b = sensor.record(w, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].t, b[i].t);
    EXPECT_DOUBLE_EQ(a[i].w, b[i].w);
  }
}

TEST(Sensor, EmptyWaveform) {
  util::Rng rng{1};
  const Sensor sensor;
  EXPECT_TRUE(sensor.record(Waveform{{}}, rng).empty());
}

}  // namespace
}  // namespace repro::sensor
