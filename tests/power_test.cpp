#include <gtest/gtest.h>

#include "power/model.hpp"
#include "sim/gpuconfig.hpp"
#include "sim/timing.hpp"

namespace repro::power {
namespace {

using sim::Activity;
using sim::config_by_name;

/// Activity of one second of fully-saturated fp32 issue on the K20c.
Activity saturated_fp32_second() {
  Activity a;
  a.fp32_ops = 2496.0 * 705e6;  // lanes x clock
  a.warp_instructions = a.fp32_ops / 32.0;
  return a;
}

/// One second of full-bandwidth DRAM streaming.
Activity saturated_dram_second() {
  Activity a;
  a.dram_transactions = 208e9 * 0.8 / 128.0;
  a.l2_transactions = a.dram_transactions;
  a.dram_bus_bytes = a.dram_transactions * 128.0;
  a.warp_instructions = a.dram_transactions;
  return a;
}

TEST(PowerModel, IdleNearPaperValue) {
  // Paper §IV.C: idle power is "less than about 26 W".
  const PowerModel m;
  const double idle = m.static_power_w(config_by_name("default"));
  EXPECT_GT(idle, 20.0);
  EXPECT_LT(idle, 26.0);
}

TEST(PowerModel, ComputeSaturatedNear100W) {
  // Paper §V.C: compute-bound SDK codes draw ~100 W on average.
  const PowerModel m;
  const auto p = m.phase_power(saturated_fp32_second(), 1.0, config_by_name("default"));
  EXPECT_GT(p.total_w, 85.0);
  EXPECT_LT(p.total_w, 130.0);
}

TEST(PowerModel, BoardCapAt225W) {
  const PowerModel m;
  Activity a = saturated_fp32_second();
  a.fp32_ops *= 10.0;
  const auto p = m.phase_power(a, 1.0, config_by_name("default"));
  EXPECT_LE(p.total_w, 225.0);
}

TEST(PowerModel, DvfsSuperlinearPowerDrop) {
  // Paper §V.A.1: compute-bound codes can save MORE power than the 13%
  // clock cut because the voltage drops too.
  const PowerModel m;
  Activity fast = saturated_fp32_second();
  Activity slow = fast;
  // Same kernel at 614 MHz: same total ops, longer duration.
  const double t614 = 705.0 / 614.0;
  const auto p_default =
      m.phase_power(fast, 1.0, config_by_name("default"));
  const auto p_614 = m.phase_power(slow, t614, config_by_name("614"));
  const double ratio = p_614.total_w / p_default.total_w;
  EXPECT_LT(ratio, 0.87);  // more than the 13% clock reduction
  EXPECT_GT(ratio, 0.70);
}

TEST(PowerModel, PowerHalvesAt324ForComputeBound) {
  // Paper §V.A.2: "power decreases quite uniformly to about half".
  const PowerModel m;
  const Activity a = saturated_fp32_second();
  const auto p614 = m.phase_power(a, 705.0 / 614.0, config_by_name("614"));
  const auto p324 = m.phase_power(a, 705.0 / 324.0, config_by_name("324"));
  EXPECT_NEAR(p324.total_w / p614.total_w, 0.53, 0.10);
}

TEST(PowerModel, DramStreamingBetween70And110W) {
  const PowerModel m;
  const auto p = m.phase_power(saturated_dram_second(), 1.0, config_by_name("default"));
  EXPECT_GT(p.total_w, 60.0);
  EXPECT_LT(p.total_w, 110.0);
}

TEST(PowerModel, EccChargesPerTransaction) {
  const PowerModel m;
  const Activity a = saturated_dram_second();
  const double e_plain = m.dynamic_energy_j(a, config_by_name("default"));
  const double e_ecc = m.dynamic_energy_j(a, config_by_name("ecc"));
  EXPECT_GT(e_ecc, e_plain * 1.05);
}

TEST(PowerModel, LeakageFallsWithVoltage) {
  const PowerModel m;
  EXPECT_LT(m.static_power_w(config_by_name("324")),
            m.static_power_w(config_by_name("default")));
}

TEST(PowerModel, TailAboveIdleBelowActive) {
  const PowerModel m;
  const auto& cfg = config_by_name("default");
  const double tail = m.tail_power_w(cfg);
  EXPECT_GT(tail, m.static_power_w(cfg));
  EXPECT_LT(tail, 60.0);  // paper Fig. 1: tail sits below the 55 W threshold
}

TEST(PowerModel, TailScalesWithClock) {
  const PowerModel m;
  EXPECT_LT(m.tail_power_w(config_by_name("324")),
            m.tail_power_w(config_by_name("default")));
}

TEST(PowerModel, DynamicEnergyAdditive) {
  const PowerModel m;
  const auto& cfg = config_by_name("default");
  Activity a = saturated_fp32_second();
  Activity b = saturated_dram_second();
  Activity ab = a;
  ab += b;
  EXPECT_NEAR(m.dynamic_energy_j(ab, cfg),
              m.dynamic_energy_j(a, cfg) + m.dynamic_energy_j(b, cfg), 1e-6);
}

TEST(PowerModel, AtomicsCostEnergy) {
  const PowerModel m;
  const auto& cfg = config_by_name("default");
  Activity a;
  a.atomic_ops = 1e9;
  EXPECT_GT(m.dynamic_energy_j(a, cfg), 0.5);
}

TEST(PhasePowerMemo, CachesDistinctActivitiesSeparately) {
  const PowerModel m;
  const auto& cfg = config_by_name("default");
  PhasePowerMemo memo{m, cfg};
  const Activity fp = saturated_fp32_second();
  const Activity mem = saturated_dram_second();
  // Distinct activities must not alias; repeats must hit the cache.
  const double p_fp = memo.phase_power(fp, 1.0).total_w;
  const double p_mem = memo.phase_power(mem, 1.0).total_w;
  EXPECT_NE(p_fp, p_mem);
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(p_fp, memo.phase_power(fp, 1.0).total_w);
  EXPECT_EQ(p_mem, memo.phase_power(mem, 1.0).total_w);
  EXPECT_EQ(memo.hits(), 2u);
  EXPECT_EQ(memo.lookups(), 4u);
  EXPECT_EQ(m.phase_power(fp, 1.0, cfg).total_w, p_fp);
  EXPECT_EQ(m.phase_power(mem, 1.0, cfg).total_w, p_mem);
}

TEST(PhasePowerMemo, EccAdjustAppliedOnlyUnderEcc) {
  const PowerModel m;
  const Activity a = saturated_fp32_second();
  // Non-ECC config: the adjustment factor must be inert (matches the
  // model's own guard).
  {
    const auto& cfg = config_by_name("default");
    PhasePowerMemo memo{m, cfg, 1.18};
    EXPECT_EQ(m.phase_power(a, 1.0, cfg, 1.18).total_w,
              memo.phase_power(a, 1.0).total_w);
    EXPECT_EQ(m.phase_power(a, 1.0, cfg).total_w,
              memo.phase_power(a, 1.0).total_w);
  }
  {
    const auto& cfg = config_by_name("ecc");
    PhasePowerMemo memo{m, cfg, 1.18};
    EXPECT_EQ(m.phase_power(a, 1.0, cfg, 1.18).total_w,
              memo.phase_power(a, 1.0).total_w);
    EXPECT_NE(m.phase_power(a, 1.0, cfg).total_w,
              memo.phase_power(a, 1.0).total_w);
  }
}

TEST(PhasePowerMemo, PerConfigScalarsMatchModel) {
  const PowerModel m;
  for (const char* name : {"default", "614", "324", "ecc"}) {
    const auto& cfg = config_by_name(name);
    PhasePowerMemo memo{m, cfg};
    EXPECT_EQ(m.static_power_w(cfg), memo.static_power_w()) << name;
    EXPECT_EQ(m.tail_power_w(cfg), memo.tail_power_w()) << name;
  }
}

// The pinned partition law (model.hpp): the instruction-class energies are
// a partition of the component-level dynamic energy — for any activity and
// configuration, total_j() equals dynamic_energy_j exactly up to rounding
// of the re-associated terms, with every class non-negative.
TEST(PowerModel, ClassEnergiesPartitionDynamicEnergy) {
  const PowerModel m;
  Activity mixed = saturated_fp32_second();
  mixed += saturated_dram_second();
  mixed.fp64_ops = 1e10;
  mixed.int_ops = 5e10;
  mixed.sfu_ops = 2e9;
  mixed.shared_accesses = 3e9;
  mixed.atomic_ops = 1e8;
  for (const Activity& a :
       {saturated_fp32_second(), saturated_dram_second(), mixed}) {
    for (const char* name : {"default", "614", "324", "ecc"}) {
      const auto& cfg = config_by_name(name);
      const ClassEnergies classes = m.class_energies_j(a, cfg);
      const double dynamic = m.dynamic_energy_j(a, cfg);
      for (const double v : classes.j) EXPECT_GE(v, 0.0) << name;
      EXPECT_NEAR(classes.total_j(), dynamic, 1e-9 * dynamic) << name;
    }
  }
  // The split lands where the activity says: a pure-fp32 bundle puts its
  // largest class column under fp32, a streaming bundle under ldst_global.
  const auto& cfg = config_by_name("default");
  const ClassEnergies fp = m.class_energies_j(saturated_fp32_second(), cfg);
  EXPECT_GT(fp[InstClass::kFp32], fp[InstClass::kLdstGlobal]);
  const ClassEnergies mem = m.class_energies_j(saturated_dram_second(), cfg);
  EXPECT_GT(mem[InstClass::kLdstGlobal], mem[InstClass::kFp32]);
}

// The memo's cached class split is bit-identical to the model's.
TEST(PhasePowerMemo, ClassEnergiesMatchModelAndCache) {
  const PowerModel m;
  const auto& cfg = config_by_name("614");
  PhasePowerMemo memo{m, cfg};
  const Activity a = saturated_fp32_second();
  const ClassEnergies direct = m.class_energies_j(a, cfg);
  const ClassEnergies& cached = memo.class_energies(a);
  for (int c = 0; c < kNumInstClasses; ++c) {
    EXPECT_EQ(direct.j[static_cast<std::size_t>(c)],
              cached.j[static_cast<std::size_t>(c)]);
  }
  // A repeat must return the same cached object.
  EXPECT_EQ(&cached, &memo.class_energies(a));
}

}  // namespace
}  // namespace repro::power
