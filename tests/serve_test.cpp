// Serving-layer tests (DESIGN.md §11): bit-identity of served results
// against direct core::Study computation (cold, cached, and raced by 8
// concurrent clients), structured deadline/shed/cancel fault injection,
// LRU bounds, cache versioning, and the JSONL wire format (round-trip
// properties plus a golden snapshot of the exact byte encoding).
//
// The concurrency tests are in the `serve` ctest label and run under
// -DREPRO_SANITIZE=thread in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/study.hpp"
#include "repro/api.hpp"
#include "sample/sample.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

#ifndef REPRO_GOLDEN_DIR
#error "REPRO_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace repro::serve {
namespace {

struct SliceEntry {
  const char* program;
  std::size_t input;
  const char* config;
};

// The same 10-experiment slice the golden snapshot pins: all five suites,
// all four configurations, and one unusable experiment (L-BFS-wlc).
constexpr SliceEntry kSlice[10] = {
    {"NB", 2, "default"},  {"LBM", 0, "614"},    {"SGEMM", 0, "default"},
    {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
    {"FFT", 0, "default"}, {"MD", 0, "614"},     {"L-BFS-wlc", 2, "default"},
    {"BH", 0, "default"},
};

std::vector<v1::ExperimentRequest> slice_requests() {
  std::vector<v1::ExperimentRequest> requests;
  for (std::size_t i = 0; i < std::size(kSlice); ++i) {
    v1::ExperimentRequest r;
    r.program = kSlice[i].program;
    r.input_index = kSlice[i].input;
    r.config = kSlice[i].config;
    r.id = i + 1;
    requests.push_back(std::move(r));
  }
  return requests;
}

/// The ground truth the service must reproduce byte-for-byte: a direct
/// core::Study computation with the same (default) study options.
std::vector<core::ExperimentResult> direct_results() {
  suites::register_all_workloads();
  core::Study study;
  std::vector<core::ExperimentResult> results;
  for (const SliceEntry& e : kSlice) {
    const workloads::Workload* w =
        workloads::Registry::instance().find(e.program);
    EXPECT_NE(w, nullptr) << e.program;
    results.push_back(study.measure(*w, e.input, sim::config_by_name(e.config)));
  }
  return results;
}

void expect_bit_identical(const v1::MeasurementResult& served,
                          const core::ExperimentResult& direct,
                          const std::string& context) {
  EXPECT_EQ(served.usable, direct.usable) << context;
  // EXPECT_EQ on doubles is exact comparison — that is the point.
  EXPECT_EQ(served.time_s, direct.time_s) << context;
  EXPECT_EQ(served.energy_j, direct.energy_j) << context;
  EXPECT_EQ(served.power_w, direct.power_w) << context;
  EXPECT_EQ(served.true_active_s, direct.true_active_s) << context;
  EXPECT_EQ(served.time_spread, direct.time_spread) << context;
  EXPECT_EQ(served.energy_spread, direct.energy_spread) << context;
}

// --- Bit-identity ----------------------------------------------------------

TEST(ServeIdentity, ColdBatchMatchesDirectStudyBitForBit) {
  const std::vector<core::ExperimentResult> expected = direct_results();
  Service service;
  const std::vector<Response> responses = service.run_batch(slice_requests());
  ASSERT_EQ(responses.size(), std::size(kSlice));
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    EXPECT_EQ(r.id, i + 1);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_FALSE(r.cached) << "cold batch must compute, not hit";
    EXPECT_EQ(r.key, core::experiment_key(kSlice[i].program, kSlice[i].input,
                                          kSlice[i].config));
    expect_bit_identical(r.result, expected[i], r.key);
  }
  const Service::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, std::size(kSlice));
  EXPECT_EQ(stats.completed, std::size(kSlice));
  EXPECT_EQ(stats.cache.misses, std::size(kSlice));
  EXPECT_EQ(stats.cache.hits, 0u);
}

TEST(ServeIdentity, WarmBatchServesCachedBitIdenticalResults) {
  const std::vector<core::ExperimentResult> expected = direct_results();
  Service service;
  service.run_batch(slice_requests());  // populate the LRU
  const std::vector<Response> responses = service.run_batch(slice_requests());
  ASSERT_EQ(responses.size(), std::size(kSlice));
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_TRUE(r.cached) << r.key << " should be an LRU hit";
    expect_bit_identical(r.result, expected[i], r.key + " (cached)");
  }
  EXPECT_EQ(service.stats().cache.hits, std::size(kSlice));
}

TEST(ServeIdentity, EightConcurrentClientsAllGetBitIdenticalResults) {
  const std::vector<core::ExperimentResult> expected = direct_results();
  Service service;
  constexpr int kClients = 8;
  std::vector<std::vector<Response>> responses(kClients);
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&service, &responses, c] {
        // Each client walks the slice from a different offset so the
        // service sees interleaved duplicate requests.
        std::vector<Service::Ticket> tickets;
        for (std::size_t k = 0; k < std::size(kSlice); ++k) {
          const std::size_t i = (k + static_cast<std::size_t>(c)) % std::size(kSlice);
          v1::ExperimentRequest r;
          r.program = kSlice[i].program;
          r.input_index = kSlice[i].input;
          r.config = kSlice[i].config;
          r.id = i + 1;
          tickets.push_back(service.submit(std::move(r)));
        }
        for (const Service::Ticket& t : tickets) {
          responses[static_cast<std::size_t>(c)].push_back(t.wait());
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(responses[c].size(), std::size(kSlice));
    for (const Response& r : responses[c]) {
      ASSERT_EQ(r.status, Status::kOk) << r.error;
      ASSERT_GE(r.id, 1u);
      const std::size_t i = r.id - 1;  // id encodes the slice index
      expect_bit_identical(r.result, expected[i],
                           r.key + " via client " + std::to_string(c));
    }
  }
  EXPECT_EQ(service.stats().completed,
            static_cast<std::uint64_t>(kClients) * std::size(kSlice));
}

// --- Fault injection -------------------------------------------------------

Service::Options paused_options() {
  Service::Options options;
  options.start_paused = true;
  options.threads = 1;
  return options;
}

v1::ExperimentRequest small_request(std::uint64_t id,
                                    const char* config = "default") {
  v1::ExperimentRequest r;
  r.program = "BP";
  r.input_index = 0;
  r.config = config;
  r.id = id;
  return r;
}

TEST(ServeFaults, ExpiredDeadlineResolvesToStructuredError) {
  Service service{paused_options()};
  v1::ExperimentRequest request = small_request(7);
  request.deadline_ms = 1.0;
  const Service::Ticket ticket = service.submit(request);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.resume();
  const Response& r = ticket.wait();
  EXPECT_EQ(r.status, Status::kDeadlineExpired);
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.key, "BP/0/default");
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.result.usable);
  EXPECT_EQ(service.stats().expired, 1u);
}

TEST(ServeFaults, OverflowShedsTheOldestQueuedRequest) {
  Service::Options options = paused_options();
  options.queue_limit = 2;
  Service service{options};
  const Service::Ticket first = service.submit(small_request(1));
  const Service::Ticket second = service.submit(small_request(2, "614"));
  const Service::Ticket third = service.submit(small_request(3, "ecc"));

  // The OLDEST request is shed, immediately, with a structured response.
  const Response& shed = first.wait();
  EXPECT_EQ(shed.status, Status::kShed);
  EXPECT_EQ(shed.id, 1u);
  EXPECT_EQ(shed.key, "BP/0/default");
  EXPECT_NE(shed.error.find("admission queue full"), std::string::npos)
      << shed.error;

  service.resume();
  EXPECT_EQ(second.wait().status, Status::kOk);
  EXPECT_EQ(third.wait().status, Status::kOk);
  const Service::Stats stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServeFaults, CancelResolvesQueuedButNotFinishedRequests) {
  Service service{paused_options()};
  const Service::Ticket queued = service.submit(small_request(1));
  EXPECT_TRUE(service.cancel(queued));
  EXPECT_FALSE(service.cancel(queued)) << "second cancel must report too-late";
  const Response& r = queued.wait();
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_FALSE(r.error.empty());

  service.resume();
  const Service::Ticket done = service.submit(small_request(2));
  EXPECT_EQ(done.wait().status, Status::kOk);
  EXPECT_FALSE(service.cancel(done)) << "finished requests cannot be cancelled";
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ServeFaults, DestructionResolvesEveryOutstandingTicket) {
  Service::Ticket orphan_a, orphan_b;
  {
    Service service{paused_options()};
    orphan_a = service.submit(small_request(1));
    orphan_b = service.submit(small_request(2, "614"));
  }  // destroyed while paused: nothing ever dispatched
  EXPECT_EQ(orphan_a.wait().status, Status::kCancelled);
  EXPECT_EQ(orphan_b.wait().status, Status::kCancelled);
  EXPECT_NE(orphan_b.wait().error.find("stopped"), std::string::npos);
}

TEST(ServeFaults, UnknownAndInvalidRequestsGetStructuredErrors) {
  Service service;
  std::vector<v1::ExperimentRequest> requests(3);
  requests[0].program = "NOPE";
  requests[0].config = "default";
  requests[0].id = 1;
  requests[1].program = "NB";
  requests[1].config = "warp9";
  requests[1].id = 2;
  requests[2].program = "NB";
  requests[2].input_index = 99;
  requests[2].config = "default";
  requests[2].id = 3;
  const std::vector<Response> responses = service.run_batch(requests);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, Status::kUnknownProgram);
  EXPECT_EQ(responses[1].status, Status::kUnknownConfig);
  EXPECT_EQ(responses[2].status, Status::kInvalidRequest);
  for (const Response& r : responses) {
    EXPECT_FALSE(r.error.empty());
    EXPECT_FALSE(r.result.usable);
  }
  EXPECT_EQ(service.stats().failed, 3u);
}

// --- Cache bounds and versioning -------------------------------------------

TEST(ServeCache, LruStaysBoundedAndEvictsLeastRecentlyUsed) {
  Service::Options options;
  options.threads = 1;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  Service service{options};
  // Three distinct experiments through a capacity-2 cache, one dispatch
  // cycle each (run_batch waits, so cycles cannot merge).
  service.run_batch({small_request(1, "default")});
  service.run_batch({small_request(2, "614")});
  service.run_batch({small_request(3, "ecc")});
  Service::Stats stats = service.stats();
  EXPECT_LE(stats.cache.size, 2u);
  EXPECT_GE(stats.cache.evictions, 1u);

  // The oldest entry was evicted: re-requesting it recomputes...
  const std::vector<Response> recomputed =
      service.run_batch({small_request(4, "default")});
  EXPECT_EQ(recomputed[0].status, Status::kOk);
  EXPECT_FALSE(recomputed[0].cached);
  // ...and the recomputation lands back in the LRU.
  const std::vector<Response> rehit =
      service.run_batch({small_request(5, "default")});
  EXPECT_EQ(rehit[0].status, Status::kOk);
  EXPECT_TRUE(rehit[0].cached);
}

TEST(ServeCache, VersionPrefixTracksStudyOptionsAndModel) {
  Service baseline;
  EXPECT_EQ(baseline.cache_version().rfind("serve1:", 0), 0u)
      << baseline.cache_version();

  Service::Options same;
  Service same_service{same};
  EXPECT_EQ(baseline.cache_version(), same_service.cache_version());

  Service::Options reseeded;
  reseeded.study.measurement_seed = 0xC0FFEE + 1;
  Service reseeded_service{reseeded};
  EXPECT_NE(baseline.cache_version(), reseeded_service.cache_version());

  Service::Options more_reps;
  more_reps.study.repetitions = 5;
  Service more_reps_service{more_reps};
  EXPECT_NE(baseline.cache_version(), more_reps_service.cache_version());
  EXPECT_NE(reseeded_service.cache_version(), more_reps_service.cache_version());
}

TEST(ServeCache, ResultCacheLruSemantics) {
  ResultCache cache{ResultCache::Options{2, 1}};
  v1::MeasurementResult a, b, c, out;
  a.time_s = 1.0;
  b.time_s = 2.0;
  c.time_s = 3.0;
  EXPECT_EQ(cache.insert("a", a), 0u);
  EXPECT_EQ(cache.insert("b", b), 0u);
  EXPECT_TRUE(cache.lookup("a", out));  // refreshes "a" to most-recent
  EXPECT_EQ(out.time_s, 1.0);
  EXPECT_EQ(cache.insert("c", c), 1u);  // evicts "b", the least-recent
  EXPECT_FALSE(cache.lookup("b", out));
  EXPECT_TRUE(cache.lookup("a", out));
  EXPECT_TRUE(cache.lookup("c", out));
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

// --- Wire format -----------------------------------------------------------

TEST(ServeWire, RequestLineRoundTripsAdversarialStrings) {
  const std::vector<std::string> names = {
      "NB",      "L-BFS",       "a/b",         "x%2Fy",        "",
      "\"q\"",   "back\\slash", "tab\there",   "line\nbreak",  "\x01\x1f",
      "ü-umlaut", "漢字",        "sp ace",      "%",            "{brace}",
  };
  for (const std::string& program : names) {
    for (const std::string& config : names) {
      v1::ExperimentRequest request;
      request.program = program;
      request.input_index = 12;
      request.config = config;
      request.deadline_ms = 1500.25;
      request.id = 42;
      v1::ExperimentRequest decoded;
      std::string error;
      ASSERT_TRUE(
          parse_request_line(format_request_line(request), decoded, error))
          << error << " for " << format_request_line(request);
      EXPECT_EQ(decoded.program, request.program);
      EXPECT_EQ(decoded.input_index, request.input_index);
      EXPECT_EQ(decoded.config, request.config);
      EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
      EXPECT_EQ(decoded.id, request.id);
    }
  }
}

TEST(ServeWire, ParserAcceptsUnicodeEscapesAndUnknownFields) {
  v1::ExperimentRequest out;
  std::string error;
  // \uXXXX and surrogate pairs decode to UTF-8; unknown fields and
  // whitespace are ignored; id/input/deadline are optional.
  ASSERT_TRUE(parse_request_line(
      R"({ "program" : "ü😀" , "config":"default", "future_field": null, "other": true })",
      out, error))
      << error;
  EXPECT_EQ(out.program, "\xC3\xBC\xF0\x9F\x98\x80");
  EXPECT_EQ(out.config, "default");
  EXPECT_EQ(out.id, 0u);
  EXPECT_EQ(out.input_index, 0u);
  EXPECT_EQ(out.deadline_ms, 0.0);
}

TEST(ServeWire, ParserRejectsMalformedLines) {
  const std::vector<std::string> bad = {
      "",
      "not json",
      "{",
      "{}",                                          // missing program/config
      R"({"program":"NB"})",                         // missing config
      R"({"config":"default"})",                     // missing program
      R"({"program":7,"config":"default"})",         // program not a string
      R"({"program":"NB","config":"default","v":2})",   // wrong version
      R"({"program":"NB","config":"default","id":-1})", // negative id
      R"({"program":"NB","config":"default","input":1.5})",   // fractional
      R"({"program":"NB","config":"default","deadline_ms":-5})",
      R"({"program":"NB","config":{"nested":1}})",   // nested value
      R"({"program":"NB","config":[1]})",            // array value
      R"({"program":"NB","config":"default"} extra)",  // trailing content
      R"({"program":"\ud800x","config":"default"})",   // unpaired surrogate
      R"({"program":"NB" "config":"default"})",      // missing comma
  };
  for (const std::string& line : bad) {
    v1::ExperimentRequest out;
    std::string error;
    EXPECT_FALSE(parse_request_line(line, out, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

// --- Sampled requests on the wire (DESIGN.md §13) --------------------------

TEST(ServeWireSampled, SampledRequestRoundTripsAndExactOmitsFields) {
  v1::ExperimentRequest request;
  request.program = "TPACF";
  request.input_index = 0;
  request.config = "ecc";
  request.id = 9;
  request.sampling.mode = v1::SamplingMode::kStratified;
  request.sampling.fraction = 0.125;
  request.sampling.target_rel_error = 0.04;
  request.sampling.seed = 31;
  const std::string line = format_request_line(request);
  EXPECT_NE(line.find("\"sample_mode\":\"stratified\""), std::string::npos)
      << line;
  v1::ExperimentRequest decoded;
  std::string error;
  ASSERT_TRUE(parse_request_line(line, decoded, error)) << error;
  EXPECT_EQ(decoded.sampling.mode, v1::SamplingMode::kStratified);
  EXPECT_EQ(decoded.sampling.fraction, 0.125);
  EXPECT_EQ(decoded.sampling.target_rel_error, 0.04);
  EXPECT_EQ(decoded.sampling.seed, 31u);
  EXPECT_EQ(format_request_line(decoded), line) << "unstable re-encode";

  request.sampling.mode = v1::SamplingMode::kSystematic;
  const std::string systematic = format_request_line(request);
  ASSERT_TRUE(parse_request_line(systematic, decoded, error)) << error;
  EXPECT_EQ(decoded.sampling.mode, v1::SamplingMode::kSystematic);

  // Exact requests carry no sampling fields at all: the pre-sampling wire
  // bytes are unchanged.
  v1::ExperimentRequest exact;
  exact.program = "NB";
  exact.config = "default";
  EXPECT_EQ(format_request_line(exact).find("sample_"), std::string::npos);
  // "sample_mode":"exact" parses as an explicit no-op.
  ASSERT_TRUE(parse_request_line(
      R"({"program":"NB","config":"default","sample_mode":"exact"})", decoded,
      error))
      << error;
  EXPECT_EQ(decoded.sampling.mode, v1::SamplingMode::kExact);
}

TEST(ServeWireSampled, ParserRejectsMalformedSamplingFields) {
  const std::vector<std::string> bad = {
      R"({"program":"NB","config":"default","sample_mode":"rabbit"})",
      R"({"program":"NB","config":"default","sample_mode":7})",
      R"({"program":"NB","config":"default","sample_mode":null})",
      R"({"program":"NB","config":"default","sample_fraction":0})",
      R"({"program":"NB","config":"default","sample_fraction":1.5})",
      R"({"program":"NB","config":"default","sample_fraction":-0.25})",
      R"({"program":"NB","config":"default","sample_fraction":"x"})",
      R"({"program":"NB","config":"default","sample_target_rel_err":1})",
      R"({"program":"NB","config":"default","sample_target_rel_err":-0.1})",
      R"({"program":"NB","config":"default","sample_seed":-3})",
      R"({"program":"NB","config":"default","sample_seed":1.5})",
      R"({"program":"NB","config":"default","sample_seed":"7"})",
  };
  for (const std::string& line : bad) {
    v1::ExperimentRequest out;
    std::string error;
    EXPECT_FALSE(parse_request_line(line, out, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(ServeWireSampled, ResponseCarriesCiFieldsOnlyWhenSampled) {
  Response r;
  r.id = 4;
  r.status = Status::kOk;
  r.key = "TPACF/0/ecc";
  r.result.usable = true;
  r.result.time_s = 39.4;
  EXPECT_EQ(format_response_line(r).find("\"sampled\""), std::string::npos);
  EXPECT_EQ(format_response_line(r).find("_ci_"), std::string::npos);

  // Dyadic rationals so the %.17g encoding of each value is the short
  // literal spelled in the expectations below.
  r.result.sampled = true;
  r.result.sample_fraction = 0.25;
  r.result.time_ci = {38.5, 40.5};
  r.result.energy_ci = {2813.5, 2990.5};
  r.result.power_ci = {71.25, 75.875};
  const std::string line = format_response_line(r);
  for (const char* field :
       {"\"sampled\":true", "\"sample_fraction\":0.25",
        "\"time_ci_low\":38.5", "\"time_ci_high\":40.5",
        "\"energy_ci_low\":2813.5", "\"energy_ci_high\":2990.5",
        "\"power_ci_low\":71.25", "\"power_ci_high\":75.875"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field << " in " << line;
  }
}

// --- Thermal requests on the wire (DESIGN.md §16) ---------------------------

TEST(ServeWireThermal, ThermalRequestRoundTripsAndDefaultOmitsFields) {
  v1::ExperimentRequest request;
  request.program = "SGEMM";
  request.input_index = 0;
  request.config = "default";
  request.id = 11;
  request.thermal.enabled = true;
  request.thermal.ambient_c = 30.5;
  request.thermal.ceiling_c = 42.25;
  request.thermal.hysteresis_c = 3.5;
  request.thermal.leak_k_per_c = 0.015625;
  request.thermal.leak_t0_c = 40.0;
  const std::string line = format_request_line(request);
  EXPECT_NE(line.find("\"thermal\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"thermal_ceiling_c\":42.25"), std::string::npos)
      << line;

  v1::ExperimentRequest decoded;
  std::string error;
  ASSERT_TRUE(parse_request_line(line, decoded, error)) << error;
  EXPECT_TRUE(decoded.thermal.enabled);
  EXPECT_EQ(decoded.thermal.ambient_c, 30.5);
  EXPECT_EQ(decoded.thermal.ceiling_c, 42.25);
  EXPECT_EQ(decoded.thermal.hysteresis_c, 3.5);
  EXPECT_EQ(decoded.thermal.leak_k_per_c, 0.015625);
  EXPECT_EQ(decoded.thermal.leak_t0_c, 40.0);
  EXPECT_EQ(format_request_line(decoded), line) << "unstable re-encode";

  // Non-thermal requests carry no thermal fields at all: the pre-thermal
  // wire bytes are unchanged.
  v1::ExperimentRequest plain;
  plain.program = "NB";
  plain.config = "default";
  EXPECT_EQ(format_request_line(plain).find("thermal"), std::string::npos);
}

TEST(ServeWireThermal, ParserRejectsMalformedThermalFields) {
  const std::vector<std::string> bad = {
      // Type errors.
      R"({"program":"NB","config":"default","thermal":1})",
      R"({"program":"NB","config":"default","thermal":true,"thermal_ambient_c":"hot"})",
      // Range errors (validated only when thermal is enabled).
      R"({"program":"NB","config":"default","thermal":true,"thermal_ambient_c":200})",
      R"({"program":"NB","config":"default","thermal":true,"thermal_ceiling_c":20})",
      R"({"program":"NB","config":"default","thermal":true,"thermal_ceiling_c":160})",
      R"({"program":"NB","config":"default","thermal":true,"thermal_hysteresis_c":-1})",
      R"({"program":"NB","config":"default","thermal":true,"thermal_leak_k":2})",
      R"({"program":"NB","config":"default","thermal":true,"thermal_leak_t0_c":-90})",
      // Thermal scenarios are exact-only.
      R"({"program":"NB","config":"default","thermal":true,"sample_mode":"stratified"})",
  };
  for (const std::string& line : bad) {
    v1::ExperimentRequest out;
    std::string error;
    EXPECT_FALSE(parse_request_line(line, out, error)) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
  // The same knobs with thermal disabled parse fine (values are inert).
  v1::ExperimentRequest out;
  std::string error;
  EXPECT_TRUE(parse_request_line(
      R"({"program":"NB","config":"default","thermal_ambient_c":200})", out,
      error))
      << error;
  EXPECT_FALSE(out.thermal.enabled);
}

TEST(ServeWireThermal, ResponseCarriesThermalFieldsOnlyWhenThermal) {
  Response r;
  r.id = 6;
  r.status = Status::kOk;
  r.key = "SGEMM/0/default";
  r.result.usable = true;
  r.result.time_s = 8.9;
  EXPECT_EQ(format_response_line(r).find("thermal"), std::string::npos);
  EXPECT_EQ(format_response_line(r).find("throttled"), std::string::npos);

  r.result.thermal = true;
  r.result.throttled = true;
  r.result.peak_temp_c = 36.125;
  r.result.throttle_events = 2;
  const std::string line = format_response_line(r);
  for (const char* field :
       {"\"thermal\":true", "\"throttled\":true", "\"peak_temp_c\":36.125",
        "\"throttle_events\":2"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field << " in " << line;
  }
}

TEST(ServeWireThermal, GridRequestsRoundTripThermalAndExcludeThrottled) {
  SweepRequest sweep_request;
  sweep_request.id = 30;
  sweep_request.program = "BP";
  sweep_request.options.thermal.enabled = true;
  sweep_request.options.thermal.ambient_c = 35.0;
  sweep_request.options.thermal.ceiling_c = 50.5;
  const std::string sweep_line = format_sweep_request_line(sweep_request);
  EXPECT_NE(sweep_line.find("\"thermal\":true"), std::string::npos)
      << sweep_line;
  SweepRequest sweep_decoded;
  std::string error;
  ASSERT_TRUE(parse_sweep_request(sweep_line, sweep_decoded, error)) << error;
  EXPECT_TRUE(sweep_decoded.options.thermal.enabled);
  EXPECT_EQ(sweep_decoded.options.thermal.ambient_c, 35.0);
  EXPECT_EQ(sweep_decoded.options.thermal.ceiling_c, 50.5);
  EXPECT_EQ(format_sweep_request_line(sweep_decoded), sweep_line);
  // Non-thermal sweep requests stay free of thermal bytes.
  EXPECT_EQ(format_sweep_request_line(SweepRequest{}).find("thermal"),
            std::string::npos);
  // Grid-level range validation is a structured parse error.
  SweepRequest rejected;
  EXPECT_FALSE(parse_sweep_request(
      R"({"sweep":"BP","thermal":true,"thermal_leak_k":2})", rejected, error));
  EXPECT_FALSE(error.empty());

  RecommendRequest recommend_request;
  recommend_request.id = 31;
  recommend_request.program = "BP";
  recommend_request.exclude_throttled = true;
  recommend_request.options.thermal.enabled = true;
  const std::string rec_line =
      format_recommend_request_line(recommend_request);
  EXPECT_NE(rec_line.find("\"exclude_throttled\":true"), std::string::npos)
      << rec_line;
  RecommendRequest rec_decoded;
  ASSERT_TRUE(parse_recommend_request(rec_line, rec_decoded, error)) << error;
  EXPECT_TRUE(rec_decoded.exclude_throttled);
  EXPECT_TRUE(rec_decoded.options.thermal.enabled);
  EXPECT_EQ(format_recommend_request_line(rec_decoded), rec_line);
  // The flag is emitted only when set.
  EXPECT_EQ(
      format_recommend_request_line(RecommendRequest{}).find("exclude_"),
      std::string::npos);
}

TEST(ServeThermal, ServedThermalResultMatchesDirectSessionCall) {
  v1::ExperimentRequest request;
  request.id = 1;
  request.program = "SGEMM";
  request.input_index = 0;
  request.config = "default";
  request.thermal.enabled = true;
  request.thermal.ceiling_c = 31.0;  // slice runs peak a few C over ambient
  request.thermal.hysteresis_c = 2.0;

  Service service;
  const Response cold = service.run_batch({request})[0];
  ASSERT_EQ(cold.status, Status::kOk) << cold.error;
  ASSERT_TRUE(cold.result.thermal);

  v1::Session session;
  const v1::MeasurementResult direct = session.measure(request);
  EXPECT_EQ(cold.result.time_s, direct.time_s);
  EXPECT_EQ(cold.result.energy_j, direct.energy_j);
  EXPECT_EQ(cold.result.power_w, direct.power_w);
  EXPECT_EQ(cold.result.throttled, direct.throttled);
  EXPECT_EQ(cold.result.peak_temp_c, direct.peak_temp_c);
  EXPECT_EQ(cold.result.throttle_events, direct.throttle_events);

  // A repeat hits the thermal cache namespace and serves the same bytes.
  v1::ExperimentRequest again = request;
  again.id = 2;
  const Response warm = service.run_batch({again})[0];
  ASSERT_EQ(warm.status, Status::kOk) << warm.error;
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.result.energy_j, cold.result.energy_j);
  EXPECT_EQ(warm.result.peak_temp_c, cold.result.peak_temp_c);

  // Namespace isolation: the plain request for the same key is untouched
  // by the cached thermal result — it measures and reports no telemetry.
  v1::ExperimentRequest plain = request;
  plain.id = 3;
  plain.thermal = v1::ThermalOptions{};
  const Response exact = service.run_batch({plain})[0];
  ASSERT_EQ(exact.status, Status::kOk) << exact.error;
  EXPECT_FALSE(exact.cached);
  EXPECT_FALSE(exact.result.thermal);
  const v1::MeasurementResult plain_direct =
      session.measure("SGEMM", 0, "default");
  EXPECT_EQ(exact.result.energy_j, plain_direct.energy_j);

  // Programmatic thermal+sampled submissions get a structured rejection
  // (the wire parser already refuses them upstream).
  v1::ExperimentRequest invalid = request;
  invalid.id = 4;
  invalid.sampling.mode = v1::SamplingMode::kStratified;
  const Response rejected = service.run_batch({invalid})[0];
  EXPECT_EQ(rejected.status, Status::kInvalidRequest);
  EXPECT_FALSE(rejected.error.empty());
}

// --- Sampled serving: cache-namespace isolation ----------------------------

v1::ExperimentRequest sampled_request(std::uint64_t id, std::uint64_t seed) {
  v1::ExperimentRequest request;
  request.program = "TPACF";
  request.input_index = 0;
  request.config = "ecc";
  request.id = id;
  request.sampling.mode = v1::SamplingMode::kStratified;
  request.sampling.fraction = 0.10;
  request.sampling.seed = seed;
  return request;
}

TEST(ServeSampled, SampledAndExactNamespacesNeverAliasEitherDirection) {
  Service service;
  v1::ExperimentRequest exact;
  exact.program = "TPACF";
  exact.input_index = 0;
  exact.config = "ecc";
  exact.id = 1;

  // Sampled first, then exact: the exact request must be a fresh miss (a
  // sampled estimate must never be served where exact bytes were promised).
  const Response s1 = service.run_batch({sampled_request(2, 5)})[0];
  ASSERT_EQ(s1.status, Status::kOk) << s1.error;
  EXPECT_FALSE(s1.cached);
  EXPECT_TRUE(s1.result.sampled);
  EXPECT_GT(s1.result.time_ci.high, s1.result.time_ci.low);

  const Response e1 = service.run_batch({exact})[0];
  ASSERT_EQ(e1.status, Status::kOk) << e1.error;
  EXPECT_FALSE(e1.cached) << "exact request must not hit the sampled entry";
  EXPECT_FALSE(e1.result.sampled);

  // ...and in the other direction both namespaces now hit independently,
  // each serving its own bytes.
  const Response s2 = service.run_batch({sampled_request(3, 5)})[0];
  ASSERT_EQ(s2.status, Status::kOk) << s2.error;
  EXPECT_TRUE(s2.cached);
  EXPECT_TRUE(s2.result.sampled);
  EXPECT_EQ(s2.result.time_s, s1.result.time_s);
  EXPECT_EQ(s2.result.energy_j, s1.result.energy_j);
  EXPECT_EQ(s2.result.time_ci.low, s1.result.time_ci.low);
  EXPECT_EQ(s2.result.time_ci.high, s1.result.time_ci.high);
  EXPECT_EQ(s2.result.energy_ci.low, s1.result.energy_ci.low);
  EXPECT_EQ(s2.result.power_ci.high, s1.result.power_ci.high);
  EXPECT_EQ(s2.result.sample_fraction, s1.result.sample_fraction);

  const Response e2 = service.run_batch({exact})[0];
  ASSERT_EQ(e2.status, Status::kOk) << e2.error;
  EXPECT_TRUE(e2.cached);
  EXPECT_FALSE(e2.result.sampled);

  // The exact entry is bit-identical to a direct Study computation: the
  // sampled traffic did not perturb the exact contract.
  suites::register_all_workloads();
  core::Study study;
  const workloads::Workload* w = workloads::Registry::instance().find("TPACF");
  ASSERT_NE(w, nullptr);
  expect_bit_identical(e2.result, study.measure(*w, 0, sim::config_by_name("ecc")),
                       "exact after sampled");

  // Distinct sampling parameters are distinct cache entries.
  const Response other_seed = service.run_batch({sampled_request(4, 6)})[0];
  ASSERT_EQ(other_seed.status, Status::kOk) << other_seed.error;
  EXPECT_FALSE(other_seed.cached) << "seed is part of the cache namespace";
}

TEST(ServeSampled, ServedSampledResultIsBitIdenticalToDirectLibraryCall) {
  Service service;
  const Response served = service.run_batch({sampled_request(1, 5)})[0];
  ASSERT_EQ(served.status, Status::kOk) << served.error;
  ASSERT_TRUE(served.result.sampled);

  suites::register_all_workloads();
  core::Study study;
  const workloads::Workload* w = workloads::Registry::instance().find("TPACF");
  ASSERT_NE(w, nullptr);
  sample::SampleOptions options;
  options.mode = sample::Mode::kStratified;
  options.fraction = 0.10;
  options.seed = 5;
  const sample::SampledResult direct = sample::measure_sampled(
      study, *w, 0, sim::config_by_name("ecc"), options);
  ASSERT_TRUE(direct.sampled);
  EXPECT_EQ(served.result.time_s, direct.base.time_s);
  EXPECT_EQ(served.result.energy_j, direct.base.energy_j);
  EXPECT_EQ(served.result.power_w, direct.base.power_w);
  EXPECT_EQ(served.result.sample_fraction, direct.fraction);
  EXPECT_EQ(served.result.time_ci.low, direct.time_ci.low);
  EXPECT_EQ(served.result.time_ci.high, direct.time_ci.high);
  EXPECT_EQ(served.result.energy_ci.low, direct.energy_ci.low);
  EXPECT_EQ(served.result.energy_ci.high, direct.energy_ci.high);
  EXPECT_EQ(served.result.power_ci.low, direct.power_ci.low);
  EXPECT_EQ(served.result.power_ci.high, direct.power_ci.high);
}

// The exact bytes of the wire format: request and response lines for the
// golden slice plus every error status, compared against
// tests/golden/serve_wire.txt. Regenerate with REPRO_UPDATE_GOLDEN=1 and
// review the diff — field order and %.17g formatting are the contract.
TEST(ServeWireGolden, EncodingMatchesSnapshot) {
  const std::vector<core::ExperimentResult> expected = direct_results();
  std::string actual;
  for (const v1::ExperimentRequest& request : slice_requests()) {
    actual += format_request_line(request);
    actual += '\n';
  }
  for (std::size_t i = 0; i < std::size(kSlice); ++i) {
    Response r;
    r.id = i + 1;
    r.status = Status::kOk;
    r.cached = false;
    r.key = core::experiment_key(kSlice[i].program, kSlice[i].input,
                                 kSlice[i].config);
    const core::ExperimentResult& d = expected[i];
    r.result.usable = d.usable;
    r.result.time_s = d.time_s;
    r.result.energy_j = d.energy_j;
    r.result.power_w = d.power_w;
    r.result.true_active_s = d.true_active_s;
    r.result.time_spread = d.time_spread;
    r.result.energy_spread = d.energy_spread;
    actual += format_response_line(r);
    actual += '\n';
  }
  // One line per error status, with escapes exercised in key and error.
  const struct {
    Status status;
    const char* key;
    const char* error;
  } errors[] = {
      {Status::kShed, "BP/0/default",
       "admission queue full (limit 2); shed by newer arrival"},
      {Status::kDeadlineExpired, "BP/0/default",
       "deadline expired before dispatch"},
      {Status::kCancelled, "", "cancelled by client"},
      {Status::kUnknownProgram, "", "unknown program: N\"B\\"},
      {Status::kUnknownConfig, "NB/0/warp9", "unknown config: warp9"},
      {Status::kInvalidRequest, "", "input index 99 out of range\n(3 inputs)"},
      {Status::kFailed, "NB/2/default",
       "fault-injected abort; 2 of 2 retries used"},
  };
  std::uint64_t id = std::size(kSlice);
  for (const auto& e : errors) {
    Response r;
    r.id = ++id;
    r.status = e.status;
    r.key = e.key;
    r.error = e.error;
    actual += format_response_line(r);
    actual += '\n';
  }
  // Degradation annotations on ok lines (DESIGN.md §12) and the health
  // snapshot encoding are part of the pinned contract too.
  for (const Degradation degradation :
       {Degradation::kRetried, Degradation::kDegraded}) {
    Response r;
    r.id = ++id;
    r.status = Status::kOk;
    r.degradation = degradation;
    r.retries = degradation == Degradation::kRetried ? 1 : 2;
    r.key = "NB/2/default";
    r.result = v1::MeasurementResult{};
    actual += format_response_line(r);
    actual += '\n';
  }
  HealthSnapshot health;
  health.accepting = true;
  health.submitted = 40;
  health.completed = 37;
  health.retried = 4;
  health.degraded = 2;
  health.failed = 1;
  health.queue_depth = 3;
  health.faults_injected = 9;
  actual += format_health_line(health);
  actual += '\n';
  // Sampled-mode lines (DESIGN.md §13), appended after the original
  // contract so every pre-sampling line above stays byte-identical. The
  // response uses fixed representative values: this pins the encoding,
  // not the estimator.
  {
    v1::ExperimentRequest request;
    request.id = ++id;
    request.program = "TPACF";
    request.input_index = 0;
    request.config = "ecc";
    request.sampling.mode = v1::SamplingMode::kStratified;
    request.sampling.fraction = 0.1;
    request.sampling.target_rel_error = 0.05;
    request.sampling.seed = 31;
    actual += format_request_line(request);
    actual += '\n';
    Response r;
    r.id = id;
    r.status = Status::kOk;
    r.key = "TPACF/0/ecc";
    r.result.usable = true;
    r.result.time_s = 39.426881705472482;
    r.result.energy_j = 2903.1716292099677;
    r.result.power_w = 73.63398581683636;
    r.result.true_active_s = 38.915873015873005;
    r.result.time_spread = 0.0036011084887988468;
    r.result.energy_spread = 0.0049115267668058399;
    r.result.sampled = true;
    r.result.sample_fraction = 0.1;
    r.result.time_ci = {38.309473312462373, 40.544290098482591};
    r.result.energy_ci = {2813.8404183314986, 2992.5028400884368};
    r.result.power_ci = {71.244600617722765, 76.023371015949955};
    actual += format_response_line(r);
    actual += '\n';
  }
  // Shard-tier monitoring lines (DESIGN.md §14), appended after the
  // sampled block: router health and ring topology. Values are fixed and
  // representative (one dead worker, mid-rebalance) — this pins the
  // encoding, not any live tier.
  {
    RouterHealth router_health;
    router_health.accepting = true;
    router_health.workers = 4;
    router_health.alive = 3;
    router_health.epoch = 1;
    router_health.routed = 120;
    router_health.rerouted = 5;
    router_health.worker_kills = 1;
    router_health.handoff_keys = 2;
    router_health.failed = 0;
    actual += format_router_health_line(router_health);
    actual += '\n';
    TopologySnapshot topology;
    topology.epoch = 1;
    topology.workers = 4;
    topology.alive = 3;
    topology.rebalances = 1;
    topology.handoff_keys = 2;
    // Dyadic shares so the %.17g rendering is short and exact.
    const struct {
      const char* name;
      bool alive;
      int vnodes;
      double share;
      std::uint64_t routed;
    } rows[] = {
        {"w0", true, 64, 0.375, 50},
        {"w1", false, 0, 0.0, 10},
        {"w2", true, 64, 0.3125, 35},
        {"w3", true, 64, 0.3125, 25},
    };
    for (const auto& row : rows) {
      TopologyWorker worker;
      worker.name = row.name;
      worker.alive = row.alive;
      worker.virtual_nodes = row.vnodes;
      worker.owned_share = row.share;
      worker.routed = row.routed;
      topology.ring.push_back(std::move(worker));
    }
    actual += format_topology_line(topology);
    actual += '\n';
  }
  // DVFS operating-point lines (DESIGN.md §15), appended after the shard
  // block so every pre-existing line stays byte-identical: an inline
  // "config":{...} experiment request, a sweep request/response pair, a
  // recommend request/response pair, and the structured sweep/recommend
  // errors. Dyadic values keep the %.17g rendering short and exact — this
  // pins the encoding, not the recommender.
  {
    v1::ExperimentRequest inline_request;
    inline_request.id = ++id;
    inline_request.program = "SGEMM";
    inline_request.input_index = 0;
    inline_request.has_config_spec = true;
    inline_request.config_spec.name = "cfg:540x2600@0.90625x1";
    inline_request.config_spec.core_mhz = 540.0;
    inline_request.config_spec.mem_mhz = 2600.0;
    inline_request.config_spec.core_voltage = 0.90625;
    inline_request.config_spec.mem_voltage = 1.0;
    inline_request.config_spec.ecc = false;
    inline_request.config = inline_request.config_spec.name;
    actual += format_request_line(inline_request);
    actual += '\n';

    SweepRequest sweep_request;
    sweep_request.id = ++id;
    sweep_request.program = "BP";
    sweep_request.input_index = 0;
    sweep_request.options.core_mhz = {324.0, 705.0, 50.0};
    sweep_request.options.mem_mhz = {2600.0, 2600.0, 0.0};
    sweep_request.options.prune_margin = 0.125;
    sweep_request.options.sampling.mode = v1::SamplingMode::kStratified;
    sweep_request.options.sampling.fraction = 0.25;
    sweep_request.options.sampling.seed = 9;
    actual += format_sweep_request_line(sweep_request);
    actual += '\n';

    v1::SweepResult sweep;
    sweep.program = "BP";
    sweep.input_index = 0;
    sweep.grid_points = 2;
    sweep.pruned = 1;
    sweep.measured = 1;
    v1::SweepPoint pruned_point;
    pruned_point.config.name = "cfg:324x2600";
    pruned_point.config.core_mhz = 324.0;
    pruned_point.config.mem_mhz = 2600.0;
    pruned_point.config.core_voltage = 0.84375;
    pruned_point.config.mem_voltage = 1.0;
    pruned_point.analytic_time_s = 2.5;
    pruned_point.analytic_energy_j = 312.5;
    pruned_point.analytic_power_w = 125.0;
    pruned_point.pruned = true;
    sweep.points.push_back(pruned_point);
    v1::SweepPoint measured_point;
    measured_point.config.name = "default";
    measured_point.config.core_mhz = 705.0;
    measured_point.config.mem_mhz = 2600.0;
    measured_point.analytic_time_s = 1.25;
    measured_point.analytic_energy_j = 200.0;
    measured_point.analytic_power_w = 160.0;
    measured_point.measured = true;
    measured_point.pareto = true;
    measured_point.cached = true;
    measured_point.retries = 1;
    measured_point.result.usable = true;
    measured_point.result.time_s = 1.21875;
    measured_point.result.energy_j = 195.3125;
    measured_point.result.power_w = 160.25641025641025;
    measured_point.result.sampled = true;
    measured_point.result.sample_fraction = 0.25;
    measured_point.result.time_ci = {1.1875, 1.25};
    measured_point.result.energy_ci = {190.625, 200.0};
    measured_point.result.power_ci = {156.25, 164.0625};
    sweep.points.push_back(measured_point);
    actual += format_sweep_line(sweep_request.id, sweep,
                                Degradation::kRetried, 1);
    actual += '\n';

    RecommendRequest recommend_request;
    recommend_request.id = ++id;
    recommend_request.program = "BP";
    recommend_request.input_index = 0;
    recommend_request.objective = v1::Objective::kPerfCap;
    recommend_request.perf_cap_rel = 1.25;
    recommend_request.options = sweep_request.options;
    actual += format_recommend_request_line(recommend_request);
    actual += '\n';

    v1::Recommendation recommendation;
    recommendation.ok = true;
    recommendation.objective = v1::Objective::kPerfCap;
    recommendation.config = measured_point.config;
    recommendation.objective_value = 195.3125;
    recommendation.time_s = 1.21875;
    recommendation.energy_j = 195.3125;
    recommendation.power_w = 160.25641025641025;
    recommendation.sweep.program = "BP";
    recommendation.sweep.input_index = 0;
    recommendation.sweep.grid_points = 2;
    recommendation.sweep.pruned = 1;
    recommendation.sweep.measured = 1;
    actual += format_recommend_line(recommend_request.id, recommendation,
                                    Degradation::kNone, 0);
    actual += '\n';

    actual += format_sweep_error_line(++id, Status::kUnknownProgram,
                                      "unknown program: XXL");
    actual += '\n';
    actual += format_recommend_error_line(
        ++id, Status::kInvalidRequest, "perf_cap_rel 0.5 must be >= 1");
    actual += '\n';
  }
  // Thermal-scenario lines (DESIGN.md §16), appended after the DVFS block
  // so every pre-thermal line stays byte-identical: a thermal experiment
  // request/response pair (telemetry fields included), a thermal sweep
  // request with one throttled measured point, and a recommend request
  // carrying the exclude_throttled constraint. Dyadic values keep the
  // %.17g rendering short and exact — this pins the encoding, not the
  // thermal model.
  {
    v1::ThermalOptions scenario;
    scenario.enabled = true;
    scenario.ambient_c = 30.5;
    scenario.ceiling_c = 42.25;
    scenario.hysteresis_c = 3.5;
    scenario.leak_k_per_c = 0.015625;
    scenario.leak_t0_c = 40.0;

    v1::ExperimentRequest thermal_request;
    thermal_request.id = ++id;
    thermal_request.program = "SGEMM";
    thermal_request.input_index = 0;
    thermal_request.config = "default";
    thermal_request.thermal = scenario;
    actual += format_request_line(thermal_request);
    actual += '\n';

    Response r;
    r.id = id;
    r.status = Status::kOk;
    r.key = "SGEMM/0/default";
    r.result.usable = true;
    r.result.time_s = 8.875;
    r.result.energy_j = 1150.25;
    r.result.power_w = 129.605633802816901;
    r.result.true_active_s = 8.75;
    r.result.time_spread = 0.00390625;
    r.result.energy_spread = 0.0078125;
    r.result.thermal = true;
    r.result.throttled = true;
    r.result.peak_temp_c = 42.84375;
    r.result.throttle_events = 2;
    actual += format_response_line(r);
    actual += '\n';

    SweepRequest sweep_request;
    sweep_request.id = ++id;
    sweep_request.program = "SGEMM";
    sweep_request.input_index = 0;
    sweep_request.options.core_mhz = {324.0, 705.0, 381.0};
    sweep_request.options.mem_mhz = {2600.0, 2600.0, 0.0};
    sweep_request.options.prune = false;
    sweep_request.options.thermal = scenario;
    actual += format_sweep_request_line(sweep_request);
    actual += '\n';

    v1::SweepResult sweep;
    sweep.program = "SGEMM";
    sweep.input_index = 0;
    sweep.grid_points = 1;
    sweep.measured = 1;
    v1::SweepPoint point;
    point.config.name = "default";
    point.config.core_mhz = 705.0;
    point.config.mem_mhz = 2600.0;
    point.analytic_time_s = 8.5;
    point.analytic_energy_j = 1100.0;
    point.analytic_power_w = 129.411764705882348;
    point.measured = true;
    point.pareto = true;
    point.result.usable = true;
    point.result.time_s = 8.875;
    point.result.energy_j = 1150.25;
    point.result.power_w = 129.605633802816901;
    point.result.thermal = true;
    point.result.throttled = true;
    point.result.peak_temp_c = 42.84375;
    point.result.throttle_events = 2;
    sweep.points.push_back(point);
    actual += format_sweep_line(sweep_request.id, sweep, Degradation::kNone, 0);
    actual += '\n';

    RecommendRequest recommend_request;
    recommend_request.id = ++id;
    recommend_request.program = "SGEMM";
    recommend_request.input_index = 0;
    recommend_request.objective = v1::Objective::kPerfCap;
    recommend_request.perf_cap_rel = 1.25;
    recommend_request.exclude_throttled = true;
    recommend_request.options = sweep_request.options;
    actual += format_recommend_request_line(recommend_request);
    actual += '\n';
  }

  const std::string path = std::string(REPRO_GOLDEN_DIR) + "/serve_wire.txt";
  if (repro::Options::global().update_golden) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with REPRO_UPDATE_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "wire-format mismatch: the JSONL encoding is a published contract; "
         "if the change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 "
         "and review the diff";
}

// --- Degradation / health wire encoding ------------------------------------

TEST(ServeWire, DegradationAndRetriesAppearOnlyOnOkLines) {
  Response ok;
  ok.id = 5;
  ok.status = Status::kOk;
  ok.key = "NB/2/default";
  ok.degradation = Degradation::kRetried;
  ok.retries = 2;
  const std::string ok_line = format_response_line(ok);
  EXPECT_NE(ok_line.find("\"degradation\":\"retried\""), std::string::npos);
  EXPECT_NE(ok_line.find("\"retries\":2"), std::string::npos);

  Response failed;
  failed.id = 6;
  failed.status = Status::kFailed;
  failed.key = "NB/2/default";
  failed.error = "fault-injected abort; 2 of 2 retries used";
  const std::string failed_line = format_response_line(failed);
  EXPECT_NE(failed_line.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_EQ(failed_line.find("\"degradation\":"), std::string::npos);
  EXPECT_EQ(failed_line.find("\"retries\":"), std::string::npos);
}

TEST(ServeWire, HealthRequestDetection) {
  EXPECT_TRUE(is_health_request(R"({"v":1,"health":true})"));
  EXPECT_TRUE(is_health_request(R"({ "health" : true })"));
  EXPECT_TRUE(is_health_request(R"({"health":true,"future":null})"));
  EXPECT_FALSE(is_health_request(R"({"health":false})"));
  EXPECT_FALSE(is_health_request(R"({"health":"true"})"));
  EXPECT_FALSE(is_health_request(R"({"v":1,"program":"NB"})"));
  EXPECT_FALSE(is_health_request("{}"));
  EXPECT_FALSE(is_health_request(""));
  EXPECT_FALSE(is_health_request("not json"));
  EXPECT_FALSE(is_health_request(R"({"health":true} extra)"));
}

// --- Mutation-style parser properties --------------------------------------
//
// The wire parser's robustness contract, proven by exhaustive single-byte
// mutation of canonical lines: every mutant either (a) is rejected with a
// structured, non-empty error, or (b) parses to a request that DIFFERS
// from the original — except when the mutation lands inside a key-name
// token, where flipping a byte legally turns the field into an ignored
// unknown field (forward compatibility) and the request falls back to the
// field's default. The canonical line pins id/input/deadline to values
// whose defaults differ (id 7, input 2) or whose %.17g rendering is exact
// and short (deadline 0), so "parses equal" can only ever come from the
// documented key-name exemption — never from silent value corruption.

namespace {

v1::ExperimentRequest mutation_canonical() {
  v1::ExperimentRequest request;
  request.id = 7;
  request.program = "NB";
  request.input_index = 2;
  request.config = "default";
  request.deadline_ms = 0.0;
  return request;
}

bool requests_equal(const v1::ExperimentRequest& a,
                    const v1::ExperimentRequest& b) {
  return a.id == b.id && a.program == b.program &&
         a.input_index == b.input_index && a.config == b.config &&
         a.deadline_ms == b.deadline_ms;
}

// Byte ranges of the key-name tokens (quotes included) — the only places
// where a mutation may legally leave the parsed request unchanged.
std::vector<std::pair<std::size_t, std::size_t>> key_name_ranges(
    const std::string& line) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (const char* name :
       {"\"v\":", "\"id\":", "\"program\":", "\"input\":", "\"config\":",
        "\"deadline_ms\":"}) {
    const std::size_t at = line.find(name);
    EXPECT_NE(at, std::string::npos) << name;
    ranges.emplace_back(at, at + std::strlen(name) - 1);  // minus the ':'
  }
  return ranges;
}

bool in_key_name(const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
                 std::size_t pos) {
  for (const auto& [begin, end] : ranges) {
    if (pos >= begin && pos < end) return true;
  }
  return false;
}

}  // namespace

TEST(ServeWireMutation, SubstitutedRequestBytesNeverParseSilentlyEqual) {
  const v1::ExperimentRequest canonical = mutation_canonical();
  const std::string line = format_request_line(canonical);
  const auto exempt = key_name_ranges(line);
  std::size_t rejected = 0, changed = 0, exempt_equal = 0;
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x20, 0x80, 0xff}) {
      std::string mutated = line;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      v1::ExperimentRequest out;
      std::string error;
      if (!parse_request_line(mutated, out, error)) {
        EXPECT_FALSE(error.empty()) << "silent rejection of: " << mutated;
        ++rejected;
        continue;
      }
      if (requests_equal(out, canonical)) {
        // The only legal way to mutate a line and parse the same request:
        // the byte was part of a key name, turning a known field into an
        // ignored unknown one whose default matches the canonical value.
        EXPECT_TRUE(in_key_name(exempt, pos))
            << "byte " << pos << " of " << line << " mutated to " << mutated
            << " parsed silently equal outside a key-name token";
        ++exempt_equal;
      } else {
        ++changed;
      }
    }
  }
  // The sweep saw all three outcomes (otherwise the property is vacuous).
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(changed, 0u);
  EXPECT_GT(exempt_equal, 0u);
}

TEST(ServeWireMutation, DeletedRequestBytesNeverParseSilentlyEqual) {
  const v1::ExperimentRequest canonical = mutation_canonical();
  const std::string line = format_request_line(canonical);
  const auto exempt = key_name_ranges(line);
  std::size_t rejected = 0, changed = 0, exempt_equal = 0;
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    std::string mutated = line;
    mutated.erase(pos, 1);
    v1::ExperimentRequest out;
    std::string error;
    if (!parse_request_line(mutated, out, error)) {
      EXPECT_FALSE(error.empty()) << "silent rejection of: " << mutated;
      ++rejected;
      continue;
    }
    if (requests_equal(out, canonical)) {
      EXPECT_TRUE(in_key_name(exempt, pos))
          << "deleting byte " << pos << " of " << line
          << " parsed silently equal outside a key-name token";
      ++exempt_equal;
    } else {
      ++changed;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(changed + exempt_equal, 0u);
}

TEST(ServeWireMutation, TruncatedRequestLinesAreAlwaysRejected) {
  const std::string line = format_request_line(mutation_canonical());
  for (std::size_t length = 0; length < line.size(); ++length) {
    v1::ExperimentRequest out;
    std::string error;
    EXPECT_FALSE(parse_request_line(line.substr(0, length), out, error))
        << "proper prefix of length " << length << " parsed";
    EXPECT_FALSE(error.empty()) << length;
  }
}

TEST(ServeWireMutation, FieldRemovalIsRejectedOrVisiblyDifferent) {
  const v1::ExperimentRequest canonical = mutation_canonical();
  // Drop each field wholesale: required fields reject; id/input change the
  // parsed request; v and deadline_ms (at their defaults) are the
  // documented optional-field exemption.
  const struct {
    const char* field;
    bool must_reject;
    bool may_equal;
  } cases[] = {
      {"\"program\":\"NB\",", true, false},
      {"\"config\":\"default\",", true, false},
      {"\"id\":7,", false, false},
      {"\"input\":2,", false, false},
      {"\"v\":1,", false, true},
      {",\"deadline_ms\":0", false, true},
  };
  const std::string line = format_request_line(canonical);
  for (const auto& c : cases) {
    const std::size_t at = line.find(c.field);
    ASSERT_NE(at, std::string::npos) << c.field;
    std::string mutated = line;
    mutated.erase(at, std::strlen(c.field));
    v1::ExperimentRequest out;
    std::string error;
    const bool parsed = parse_request_line(mutated, out, error);
    if (c.must_reject) {
      EXPECT_FALSE(parsed) << mutated;
      EXPECT_FALSE(error.empty()) << mutated;
    } else {
      ASSERT_TRUE(parsed) << error << " for " << mutated;
      EXPECT_EQ(requests_equal(out, canonical), c.may_equal) << mutated;
    }
  }
}

TEST(ServeWireMutation, MutatedResponseLinesNeverParseAsRequests) {
  // Response lines carry no program/config, so no single-byte mutation can
  // turn one into a valid request — feeding server output back into the
  // server must always produce a structured rejection, never an accidental
  // experiment.
  Response response;
  response.id = 9;
  response.status = Status::kOk;
  response.key = "NB/2/default";
  response.degradation = Degradation::kRetried;
  response.retries = 1;
  response.result.usable = true;
  response.result.time_s = 1.5;
  response.result.energy_j = 250.0;
  response.result.power_w = 96.5;
  const std::string line = format_response_line(response);
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x20, 0xff}) {
      std::string mutated = line;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      v1::ExperimentRequest out;
      std::string error;
      EXPECT_FALSE(parse_request_line(mutated, out, error)) << mutated;
      EXPECT_FALSE(error.empty()) << mutated;
    }
    std::string deleted = line;
    deleted.erase(pos, 1);
    v1::ExperimentRequest out;
    std::string error;
    EXPECT_FALSE(parse_request_line(deleted, out, error)) << deleted;
  }
}

namespace {

// Generic key-name ranges: every `"token":` in the line, nested objects
// included (the DVFS request forms carry many more fields than the
// hand-listed experiment canonical above). String VALUES never match —
// they are followed by ',' or '}', not ':'.
std::vector<std::pair<std::size_t, std::size_t>> json_key_ranges(
    const std::string& line) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '"') continue;
    const std::size_t close = line.find('"', i + 1);
    if (close == std::string::npos) break;
    if (close + 1 < line.size() && line[close + 1] == ':') {
      ranges.emplace_back(i, close + 1);
    }
    i = close;
  }
  return ranges;
}

bool sweep_options_equal(const v1::SweepOptions& a, const v1::SweepOptions& b) {
  return a.core_mhz.min == b.core_mhz.min && a.core_mhz.max == b.core_mhz.max &&
         a.core_mhz.step == b.core_mhz.step && a.mem_mhz.min == b.mem_mhz.min &&
         a.mem_mhz.max == b.mem_mhz.max && a.mem_mhz.step == b.mem_mhz.step &&
         a.ecc == b.ecc && a.prune == b.prune &&
         a.prune_margin == b.prune_margin &&
         a.sampling.mode == b.sampling.mode &&
         a.sampling.fraction == b.sampling.fraction &&
         a.sampling.target_rel_error == b.sampling.target_rel_error &&
         a.sampling.seed == b.sampling.seed;
}

// Canonical DVFS requests for mutation: values picked off their defaults
// (and dyadic, so the %.17g rendering is exact), leaving the documented
// key-name exemption as the only way a mutant can parse equal.
SweepRequest sweep_mutation_canonical() {
  SweepRequest request;
  request.id = 21;
  request.program = "NB";
  request.input_index = 2;
  request.options.core_mhz = {350.0, 700.0, 70.0};
  request.options.mem_mhz = {324.0, 2600.0, 2276.0};
  request.options.prune_margin = 0.125;
  request.options.sampling.mode = v1::SamplingMode::kSystematic;
  request.options.sampling.fraction = 0.25;
  request.options.sampling.target_rel_error = 0.0625;
  request.options.sampling.seed = 9;
  return request;
}

}  // namespace

TEST(ServeWireMutation, SweepRequestMutantsNeverParseSilentlyEqual) {
  const SweepRequest canonical = sweep_mutation_canonical();
  const std::string line = format_sweep_request_line(canonical);
  const auto exempt = json_key_ranges(line);
  std::size_t rejected = 0, changed = 0, exempt_equal = 0;
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x20, 0x80, 0xff}) {
      std::string mutated = line;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      SweepRequest out;
      std::string error;
      if (!parse_sweep_request(mutated, out, error)) {
        EXPECT_FALSE(error.empty()) << "silent rejection of: " << mutated;
        ++rejected;
        continue;
      }
      if (out.id == canonical.id && out.program == canonical.program &&
          out.input_index == canonical.input_index &&
          sweep_options_equal(out.options, canonical.options)) {
        EXPECT_TRUE(in_key_name(exempt, pos))
            << "byte " << pos << " of " << line << " mutated to " << mutated
            << " parsed silently equal outside a key-name token";
        ++exempt_equal;
      } else {
        ++changed;
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(changed, 0u);
  EXPECT_GT(exempt_equal, 0u);
  // Proper prefixes are always structured rejections.
  for (std::size_t length = 0; length < line.size(); ++length) {
    SweepRequest out;
    std::string error;
    EXPECT_FALSE(parse_sweep_request(line.substr(0, length), out, error))
        << "proper prefix of length " << length << " parsed";
  }
}

TEST(ServeWireMutation, RecommendRequestMutantsNeverParseSilentlyEqual) {
  RecommendRequest canonical;
  canonical.id = 22;
  canonical.program = "LBM";
  canonical.input_index = 3;
  canonical.objective = v1::Objective::kPerfCap;
  canonical.perf_cap_rel = 1.25;
  canonical.options = sweep_mutation_canonical().options;
  const std::string line = format_recommend_request_line(canonical);
  const auto exempt = json_key_ranges(line);
  std::size_t rejected = 0, changed = 0, exempt_equal = 0;
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x20, 0x80, 0xff}) {
      std::string mutated = line;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      RecommendRequest out;
      std::string error;
      if (!parse_recommend_request(mutated, out, error)) {
        EXPECT_FALSE(error.empty()) << "silent rejection of: " << mutated;
        ++rejected;
        continue;
      }
      if (out.id == canonical.id && out.program == canonical.program &&
          out.input_index == canonical.input_index &&
          out.objective == canonical.objective &&
          out.perf_cap_rel == canonical.perf_cap_rel &&
          sweep_options_equal(out.options, canonical.options)) {
        EXPECT_TRUE(in_key_name(exempt, pos))
            << "byte " << pos << " of " << line << " mutated to " << mutated
            << " parsed silently equal outside a key-name token";
        ++exempt_equal;
      } else {
        ++changed;
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(changed, 0u);
  EXPECT_GT(exempt_equal, 0u);
}

TEST(ServeWireMutation, MutatedSweepResponsesNeverParseAsSweepRequests) {
  // A sweep response says "sweep":true where a request says
  // "sweep":"<program>" — no single-byte mutation can cross that gap, so
  // echoed server output is always a structured rejection.
  v1::SweepResult sweep;
  sweep.program = "NB";
  sweep.input_index = 2;
  sweep.grid_points = 1;
  sweep.measured = 1;
  v1::SweepPoint point;
  point.config.name = "default";
  point.measured = true;
  point.result.usable = true;
  point.result.time_s = 1.5;
  point.result.energy_j = 250.0;
  point.result.power_w = 96.5;
  sweep.points.push_back(point);
  const std::string line =
      format_sweep_line(9, sweep, Degradation::kNone, 0);
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x20, 0xff}) {
      std::string mutated = line;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      SweepRequest out;
      std::string error;
      EXPECT_FALSE(parse_sweep_request(mutated, out, error)) << mutated;
      EXPECT_FALSE(error.empty()) << mutated;
    }
  }
}

// --- Observability endpoints (DESIGN.md §9) --------------------------------

TEST(ServeWire, MetricsRequestDetection) {
  EXPECT_TRUE(is_metrics_request(R"({"v":1,"metrics":true})"));
  EXPECT_TRUE(is_metrics_request(R"({ "metrics" : true })"));
  EXPECT_TRUE(is_metrics_request(R"({"metrics":true,"future":null})"));
  EXPECT_FALSE(is_metrics_request(R"({"metrics":false})"));
  EXPECT_FALSE(is_metrics_request(R"({"metrics":"true"})"));
  EXPECT_FALSE(is_metrics_request(R"({"v":1,"program":"NB"})"));
  EXPECT_FALSE(is_metrics_request("{}"));
  EXPECT_FALSE(is_metrics_request(""));
  EXPECT_FALSE(is_metrics_request("not json"));
  EXPECT_FALSE(is_metrics_request(R"({"metrics":true} extra)"));
}

TEST(ServeWire, MetricsLineRendersRegistrySnapshot) {
  obs::RegistrySnapshot snap;
  snap.counters.emplace_back("serve.cache.hits", 41);
  snap.gauges.emplace_back("serve.queue.depth", 3.0);
  obs::HistogramSnapshot h;
  h.count = 2;
  h.sum = 3.0;
  h.min = 1.0;
  h.max = 2.0;
  snap.histograms.emplace_back("serve.request.wall_s", h);
  const std::string line = format_metrics_line(snap);
  EXPECT_EQ(line.find("{\"v\":1,\"metrics\":true,\"counters\":{"), 0u);
  EXPECT_NE(line.find("\"serve.cache.hits\":41"), std::string::npos) << line;
  EXPECT_NE(line.find("\"serve.queue.depth\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"serve.request.wall_s\":{\"count\":2"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"mean\":1.5"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '}');
}

TEST(ServeWire, AttributionRequestDetectionAndParse) {
  EXPECT_TRUE(is_attribution_request(
      R"({"v":1,"attribution":"NB","input":2,"config":"default"})"));
  EXPECT_TRUE(is_attribution_request(R"({ "attribution" : "BP" })"));
  // The attribution value must be a program name STRING; anything else
  // falls through to the normal parse path.
  EXPECT_FALSE(is_attribution_request(R"({"attribution":true})"));
  EXPECT_FALSE(is_attribution_request(R"({"v":1,"program":"NB"})"));
  EXPECT_FALSE(is_attribution_request("{}"));
  EXPECT_FALSE(is_attribution_request(""));
  EXPECT_FALSE(is_attribution_request("not json"));
  EXPECT_FALSE(is_attribution_request(R"({"attribution":"NB"} extra)"));

  v1::ExperimentRequest out;
  std::string error;
  ASSERT_TRUE(parse_attribution_request(
      R"({"v":1,"id":9,"attribution":"NB","input":2,"config":"614"})", out,
      error))
      << error;
  EXPECT_EQ(out.id, 9u);
  EXPECT_EQ(out.program, "NB");
  EXPECT_EQ(out.input_index, 2u);
  EXPECT_EQ(out.config, "614");

  // Input defaults to 0; config is required.
  v1::ExperimentRequest defaults;
  ASSERT_TRUE(parse_attribution_request(
      R"({"attribution":"BP","config":"default"})", defaults, error))
      << error;
  EXPECT_EQ(defaults.input_index, 0u);

  v1::ExperimentRequest bad;
  EXPECT_FALSE(parse_attribution_request(R"({"attribution":"BP"})", bad,
                                         error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_attribution_request(
      R"({"attribution":"BP","config":"default","input":"x"})", bad, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_attribution_request(
      R"({"v":2,"attribution":"BP","config":"default"})", bad, error));
  EXPECT_EQ(error, "unsupported wire version");
}

TEST(ServeObs, AttributeAnswersWithClassLawAndStructuredErrors) {
  suites::register_all_workloads();
  Service service;
  v1::ExperimentRequest request;
  request.program = "BP";
  request.input_index = 0;
  request.config = "default";
  const Service::AttributionResult ok = service.attribute(request);
  ASSERT_EQ(ok.status, Status::kOk) << ok.error;
  EXPECT_EQ(ok.key, core::experiment_key("BP", 0, "default"));
  ASSERT_FALSE(ok.table.kernels.empty());
  // The pinned decomposition law holds on the wire-facing table too.
  for (const v1::AttributionRow& k : ok.table.kernels) {
    double class_sum = k.static_energy_j;
    for (const double v : k.class_energy_j) class_sum += v;
    EXPECT_NEAR(class_sum, k.model_energy_j, 1e-9 * k.model_energy_j)
        << k.kernel;
  }
  const std::string line = format_attribution_line(ok.key, ok.table);
  EXPECT_EQ(line.find("{\"v\":1,\"attribution\":true,\"key\":"), 0u);
  EXPECT_NE(line.find("\"classes\":[\"fp32\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"class_energy_j\":["), std::string::npos) << line;
  EXPECT_NE(line.find("\"kernels\":[{"), std::string::npos) << line;

  request.program = "NOPE";
  const Service::AttributionResult bad = service.attribute(request);
  EXPECT_EQ(bad.status, Status::kUnknownProgram);
  EXPECT_FALSE(bad.error.empty());
  const std::string err =
      format_attribution_error_line(bad.status, bad.key, bad.error);
  EXPECT_NE(err.find("\"status\":\"unknown_program\""), std::string::npos)
      << err;
}

}  // namespace
}  // namespace repro::serve
