// Property-based tests: invariants of the timing engine, the power model
// and the measurement pipeline over parameter sweeps of randomized
// kernels and waveforms, plus config-ordering laws over every registered
// program. These are the "laws of physics" the characterization study
// relies on; a model change that breaks one of them silently invalidates
// the paper comparisons.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/study.hpp"
#include "k20power/analyze.hpp"
#include "power/model.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "sim/timing.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace repro {
namespace {

using sim::config_by_name;
using sim::k20c;
using sim::time_kernel;
using workloads::KernelLaunch;

/// Deterministic randomized kernel for a given seed: covers the whole
/// InstructionMix parameter space the workloads use.
KernelLaunch random_kernel(std::uint64_t seed) {
  util::Rng rng{seed};
  KernelLaunch k;
  k.name = "random";
  k.blocks = 64.0 * std::pow(10.0, rng.uniform(0.0, 4.0));
  k.threads_per_block = 32 << rng.uniform_index(6);  // 32..1024
  k.regs_per_thread = 16 + static_cast<int>(rng.uniform_index(80));
  k.shared_bytes_per_block = static_cast<int>(rng.uniform_index(3)) * 8192;
  k.imbalance = 1.0 + rng.uniform() * 2.0;
  auto& m = k.mix;
  m.fp32 = rng.uniform() * 2000.0;
  m.fp64 = rng.uniform() * 200.0;
  m.int_alu = rng.uniform() * 1000.0;
  m.sfu = rng.uniform() * 100.0;
  m.fma_fraction = rng.uniform();
  m.global_loads = rng.uniform() * 100.0;
  m.global_stores = rng.uniform() * 50.0;
  m.load_transactions_per_access = 1.0 + rng.uniform() * 16.0;
  m.store_transactions_per_access = 1.0 + rng.uniform() * 16.0;
  m.l2_hit_rate = rng.uniform();
  m.shared_accesses = rng.uniform() * 100.0;
  m.shared_conflict_factor = 1.0 + rng.uniform() * 4.0;
  m.atomics = rng.uniform() * 4.0;
  m.atomic_contention = 1.0 + rng.uniform() * 4.0;
  m.divergence = 1.0 + rng.uniform() * 4.0;
  m.active_lane_fraction = 0.2 + rng.uniform() * 0.8;
  m.mlp = 0.25 + rng.uniform() * 10.0;
  m.syncs = rng.uniform() * 10.0;
  return k;
}

class TimingLaws : public ::testing::TestWithParam<int> {};

TEST_P(TimingLaws, TimePositiveAndFinite) {
  const KernelLaunch k = random_kernel(GetParam());
  for (const auto& cfg : sim::standard_configs()) {
    const auto r = time_kernel(k20c(), cfg, k);
    EXPECT_GT(r.time_s, 0.0);
    EXPECT_TRUE(std::isfinite(r.time_s));
    EXPECT_TRUE(std::isfinite(r.activity.warp_instructions));
  }
}

TEST_P(TimingLaws, LowerClocksNeverFaster) {
  const KernelLaunch k = random_kernel(GetParam());
  const auto def = time_kernel(k20c(), config_by_name("default"), k);
  const auto c614 = time_kernel(k20c(), config_by_name("614"), k);
  const auto c324 = time_kernel(k20c(), config_by_name("324"), k);
  EXPECT_GE(c614.time_s, def.time_s * 0.999);
  EXPECT_GE(c324.time_s, c614.time_s * 0.999);
}

TEST_P(TimingLaws, EccNeverFaster) {
  const KernelLaunch k = random_kernel(GetParam());
  const auto plain = time_kernel(k20c(), config_by_name("default"), k);
  const auto ecc = time_kernel(k20c(), config_by_name("ecc"), k);
  EXPECT_GE(ecc.time_s, plain.time_s * 0.999);
  // And within the paper's expected bound for non-pathological kernels.
  EXPECT_LE(ecc.time_s, plain.time_s * 1.35);
}

TEST_P(TimingLaws, MoreBlocksMoreTimeAndActivity) {
  KernelLaunch k = random_kernel(GetParam());
  const auto base = time_kernel(k20c(), config_by_name("default"), k);
  k.blocks *= 4.0;
  const auto bigger = time_kernel(k20c(), config_by_name("default"), k);
  EXPECT_GT(bigger.time_s, base.time_s);
  EXPECT_NEAR(bigger.activity.dram_transactions,
              4.0 * base.activity.dram_transactions,
              1e-6 * (1.0 + base.activity.dram_transactions));
}

TEST_P(TimingLaws, WorseCoalescingNeverFaster) {
  KernelLaunch k = random_kernel(GetParam());
  k.mix.global_loads = std::max(k.mix.global_loads, 4.0);
  const auto base = time_kernel(k20c(), config_by_name("default"), k);
  k.mix.load_transactions_per_access =
      std::min(32.0, k.mix.load_transactions_per_access * 2.0);
  const auto scattered = time_kernel(k20c(), config_by_name("default"), k);
  EXPECT_GE(scattered.time_s, base.time_s * 0.999);
  EXPECT_GE(scattered.activity.dram_bus_bytes, base.activity.dram_bus_bytes);
}

TEST_P(TimingLaws, BetterCachingNeverMoreDramTraffic) {
  KernelLaunch k = random_kernel(GetParam());
  const auto base = time_kernel(k20c(), config_by_name("default"), k);
  k.mix.l2_hit_rate = std::min(1.0, k.mix.l2_hit_rate + 0.3);
  const auto cached = time_kernel(k20c(), config_by_name("default"), k);
  EXPECT_LE(cached.activity.dram_transactions,
            base.activity.dram_transactions + 1e-9);
  EXPECT_LE(cached.memory_time_s, base.memory_time_s * 1.001);
}

TEST_P(TimingLaws, PowerWithinPhysicalEnvelope) {
  const KernelLaunch k = random_kernel(GetParam());
  const power::PowerModel model;
  for (const auto& cfg : sim::standard_configs()) {
    const auto r = time_kernel(k20c(), cfg, k);
    const auto p = model.phase_power(r.activity, r.time_s, cfg);
    EXPECT_GE(p.total_w, model.static_power_w(cfg));
    EXPECT_LE(p.total_w, 225.0);  // board cap
  }
}

TEST_P(TimingLaws, EnergyAt614NeverBlowsUp) {
  // Paper §V.A.1: when only the core clock drops, energy never rises
  // anywhere near as much as the runtime. Model-level analogue: dynamic
  // energy is duration-independent and voltage drops, so total energy can
  // only grow via the static floor integrated over the longer runtime.
  const KernelLaunch k = random_kernel(GetParam());
  const power::PowerModel model;
  const auto& def = config_by_name("default");
  const auto& c614 = config_by_name("614");
  const auto rd = time_kernel(k20c(), def, k);
  const auto r6 = time_kernel(k20c(), c614, k);
  const double e_def = model.phase_power(rd.activity, rd.time_s, def).total_w * rd.time_s;
  const double e_614 = model.phase_power(r6.activity, r6.time_s, c614).total_w * r6.time_s;
  const double time_ratio = r6.time_s / rd.time_s;
  EXPECT_LE(e_614 / e_def, std::max(time_ratio * 0.97, 1.02));
}

INSTANTIATE_TEST_SUITE_P(RandomKernels, TimingLaws, ::testing::Range(1, 41));

// ---- Measurement pipeline round-trip laws ---------------------------------

struct BurstCase {
  double watts;
  double duration_s;
};

class MeasurementRoundTrip : public ::testing::TestWithParam<BurstCase> {};

TEST_P(MeasurementRoundTrip, RecoversBurst) {
  const BurstCase c = GetParam();
  std::vector<sensor::Segment> segs{
      {0.0, 3.0, 24.9, 24.9},
      {3.0, 3.0 + c.duration_s, c.watts, c.watts},
      {3.0 + c.duration_s, 3.0 + c.duration_s + 6.0, 24.9, 24.9}};
  const sensor::Waveform w{std::move(segs)};
  util::Rng rng{static_cast<std::uint64_t>(c.watts * 100 + c.duration_s)};
  const sensor::Sensor sensor;
  const auto samples = sensor.record(w, rng);
  const auto m = k20power::analyze(samples, k20power::options_for_tail(30.0));
  ASSERT_TRUE(m.usable) << c.watts << " W, " << c.duration_s << " s";
  // Lag smearing biases short windows low; tolerance shrinks with length.
  const double rel_tol = 0.08 + 0.45 / c.duration_s;
  EXPECT_NEAR(m.active_time_s, c.duration_s, 0.15 * c.duration_s + 0.8);
  EXPECT_NEAR(m.avg_power_w, c.watts, rel_tol * c.watts);
  EXPECT_NEAR(m.energy_j, c.watts * c.duration_s,
              (rel_tol + 0.05) * c.watts * c.duration_s);
}

INSTANTIATE_TEST_SUITE_P(
    Bursts, MeasurementRoundTrip,
    ::testing::Values(BurstCase{60.0, 5.0}, BurstCase{60.0, 20.0},
                      BurstCase{90.0, 3.0}, BurstCase{90.0, 12.0},
                      BurstCase{120.0, 5.0}, BurstCase{120.0, 40.0},
                      BurstCase{160.0, 8.0}, BurstCase{200.0, 15.0}),
    [](const ::testing::TestParamInfo<BurstCase>& info) {
      return "w" + std::to_string(static_cast<int>(info.param.watts)) + "_s" +
             std::to_string(static_cast<int>(info.param.duration_s));
    });

// ---- Measurement fast-path bit-identity laws ------------------------------
//
// The cursor/index fast path (DESIGN.md §10) must be bit-identical to the
// pre-optimization implementations, which live on here as test-only
// oracles: ref_power_at is the original binary-search lookup, ref_energy_j
// the original whole-timeline linear scan. If one of these laws breaks,
// the optimization is wrong — never regenerate goldens to paper over it
// (EXPERIMENTS.md).

/// Pre-cursor Waveform::power_at, byte-for-byte.
double ref_power_at(const sensor::Waveform& w, double t) {
  const auto& segments = w.segments();
  if (segments.empty()) return 0.0;
  if (t <= segments.front().t0) return segments.front().w0;
  if (t >= segments.back().t1) return segments.back().w1;
  auto it = std::upper_bound(
      segments.begin(), segments.end(), t,
      [](double value, const sensor::Segment& s) { return value < s.t1; });
  if (it == segments.end()) return segments.back().w1;
  const sensor::Segment& s = *it;
  const double span = s.t1 - s.t0;
  if (span <= 0.0) return s.w0;
  const double frac = std::clamp((t - s.t0) / span, 0.0, 1.0);
  return s.w0 + frac * (s.w1 - s.w0);
}

/// Pre-index Waveform::energy_j: rescans every segment per query.
double ref_energy_j(const sensor::Waveform& w, double a, double b) {
  if (b < a) std::swap(a, b);
  double total = 0.0;
  for (const sensor::Segment& s : w.segments()) {
    const double lo = std::max(a, s.t0);
    const double hi = std::min(b, s.t1);
    if (hi <= lo) continue;
    const double span = s.t1 - s.t0;
    const auto at = [&](double t) {
      if (span <= 0.0) return s.w0;
      return s.w0 + (t - s.t0) / span * (s.w1 - s.w0);
    };
    total += 0.5 * (at(lo) + at(hi)) * (hi - lo);
  }
  return total;
}

/// Randomized contiguous waveform: flats, ramps, discontinuous level
/// changes and occasional zero-length segments, like synthesize produces
/// (plus the degenerate shapes it doesn't).
sensor::Waveform random_waveform(std::uint64_t seed) {
  util::Rng rng{seed};
  const int n = 1 + static_cast<int>(rng.uniform_index(40));
  std::vector<sensor::Segment> segs;
  segs.reserve(static_cast<std::size_t>(n));
  double t = rng.uniform() * 2.0;
  double w = rng.uniform() * 50.0;
  for (int i = 0; i < n; ++i) {
    const double dur = rng.bernoulli(0.2) ? 0.0 : rng.uniform() * 3.0;
    const double w1 = rng.bernoulli(0.5) ? w : rng.uniform() * 200.0;
    segs.push_back({t, t + dur, w, w1});
    t += dur;
    w = rng.bernoulli(0.3) ? w1 : rng.uniform() * 200.0;  // jump or continue
  }
  return sensor::Waveform{std::move(segs)};
}

/// Monotone query schedule over the waveform: every segment boundary
/// (exact doubles) plus random interior/outside points, sorted.
std::vector<double> monotone_queries(const sensor::Waveform& w,
                                     std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<double> ts;
  ts.push_back(-1.0);
  for (const sensor::Segment& s : w.segments()) {
    ts.push_back(s.t0);  // exactly-on-boundary queries
    ts.push_back(s.t1);
    ts.push_back(s.t0 + rng.uniform() * (s.t1 - s.t0));
  }
  for (int i = 0; i < 64; ++i) {
    ts.push_back(rng.uniform(-0.5, w.duration() + 0.5));
  }
  std::sort(ts.begin(), ts.end());
  return ts;
}

class FastPathLaws : public ::testing::TestWithParam<int> {};

TEST_P(FastPathLaws, CursorAndPowerAtBitIdenticalToReference) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const sensor::Waveform w = random_waveform(seed);
  auto cursor = w.cursor();
  for (const double t : monotone_queries(w, seed ^ 0xABCDULL)) {
    const double ref = ref_power_at(w, t);
    EXPECT_EQ(ref, w.power_at(t)) << "power_at at t=" << t;
    EXPECT_EQ(ref, cursor.power_at(t)) << "cursor at t=" << t;
  }
  // reset() rewinds: the same sweep again must reproduce the same bits.
  cursor.reset();
  for (const double t : monotone_queries(w, seed ^ 0xABCDULL)) {
    EXPECT_EQ(ref_power_at(w, t), cursor.power_at(t));
  }
}

TEST_P(FastPathLaws, IndexedEnergyBitIdenticalToLinearScan) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const sensor::Waveform w = random_waveform(seed);
  util::Rng rng{seed ^ 0x9e37ULL};
  const auto check = [&](double a, double b) {
    EXPECT_EQ(ref_energy_j(w, a, b), w.energy_j(a, b))
        << "energy over [" << a << ", " << b << "]";
  };
  check(-1.0, w.duration() + 1.0);  // full timeline
  for (const sensor::Segment& s : w.segments()) {
    check(s.t0, s.t1);             // exactly one segment
    check(s.t0, w.duration());     // boundary-aligned suffix
    check(0.0, s.t1);              // boundary-aligned prefix
  }
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-0.5, w.duration() + 0.5);
    const double b = rng.uniform(-0.5, w.duration() + 0.5);
    check(a, b);  // includes reversed bounds
  }
}

TEST_P(FastPathLaws, MemoPhasePowerBitIdenticalToModel) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const KernelLaunch k = random_kernel(seed);
  const power::PowerModel model;
  for (const auto& cfg : sim::standard_configs()) {
    const auto r = time_kernel(k20c(), cfg, k);
    power::PhasePowerMemo memo{model, cfg, 1.12};
    for (const double duration : {1e-15, 1e-3, r.time_s, 12.5}) {
      const power::PhasePower ref =
          model.phase_power(r.activity, duration, cfg, 1.12);
      // Twice: the second call is served from the dynamic-energy cache.
      for (int pass = 0; pass < 2; ++pass) {
        const power::PhasePower fast = memo.phase_power(r.activity, duration);
        EXPECT_EQ(ref.total_w, fast.total_w);
        EXPECT_EQ(ref.dynamic_w, fast.dynamic_w);
        EXPECT_EQ(ref.leakage_w, fast.leakage_w);
        EXPECT_EQ(ref.board_w, fast.board_w);
        EXPECT_EQ(ref.dram_background_w, fast.dram_background_w);
      }
    }
    EXPECT_GT(memo.hits(), 0u);
    EXPECT_EQ(memo.static_power_w(), model.static_power_w(cfg));
    EXPECT_EQ(memo.tail_power_w(), model.tail_power_w(cfg));
  }
}

TEST_P(FastPathLaws, CursorRecordingBitIdenticalToBinarySearchSweep) {
  // The production Sensor::record (cursor) against a reference recording
  // that calls the binary-search power_at on every integration step: the
  // sample streams must match bit-for-bit, sample counts included.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const sensor::Waveform w = random_waveform(seed);
  if (w.duration() <= 0.0) return;
  const sensor::Sensor sensor;
  const auto& opt = sensor.options();

  util::Rng ref_rng{seed ^ 0x5a5aULL};
  std::vector<sensor::Sample> ref;
  {
    double reading = ref_power_at(w, 0.0);
    double next_sample = ref_rng.uniform() * opt.idle_period_s;
    const double dt = opt.integration_dt_s;
    for (double t = 0.0; t <= w.duration(); t += dt) {
      const double p = ref_power_at(w, t);
      reading += (p - reading) * std::min(dt / opt.lag_tau_s, 1.0);
      if (t + 1e-12 >= next_sample) {
        double reported = reading + ref_rng.normal(0.0, opt.noise_sigma_w);
        reported = std::max(reported, 0.0);
        reported = std::round(reported / opt.quantum_w) * opt.quantum_w;
        ref.push_back({t, reported});
        next_sample = t + (reading >= opt.gate_w ? opt.active_period_s
                                                 : opt.idle_period_s);
      }
    }
  }

  util::Rng fast_rng{seed ^ 0x5a5aULL};
  const auto fast = sensor.record(w, fast_rng);
  ASSERT_EQ(ref.size(), fast.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].t, fast[i].t);
    EXPECT_EQ(ref[i].w, fast[i].w);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWaveforms, FastPathLaws, ::testing::Range(1, 33));

// ---- Whole-registry config-ordering laws ----------------------------------

class ProgramLaws : public ::testing::TestWithParam<const workloads::Workload*> {};

std::vector<const workloads::Workload*> primary_programs() {
  suites::register_all_workloads();
  std::vector<const workloads::Workload*> out;
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    if (w->variant().empty()) out.push_back(w);
  }
  return out;
}

TEST_P(ProgramLaws, GroundTruthTimeOrderingAcrossConfigs) {
  const workloads::Workload* w = GetParam();
  workloads::ExecContext ctx;
  const auto run = [&](const char* name) {
    const auto& cfg = config_by_name(name);
    ctx.core_mhz = cfg.core_mhz;
    ctx.mem_mhz = cfg.mem_mhz;
    ctx.ecc = cfg.ecc;
    return sim::run_trace(k20c(), cfg, w->trace(0, ctx)).active_time_s;
  };
  const double t_def = run("default");
  const double t_614 = run("614");
  const double t_324 = run("324");
  const double t_ecc = run("ecc");
  // Regular codes obey strict ordering; irregular codes may speed up at
  // 614 (paper §V.A.1) but never by more than their timing sensitivity.
  if (w->regularity() == workloads::Regularity::kRegular) {
    EXPECT_GE(t_614, t_def * 0.999) << w->name();
  } else {
    EXPECT_GE(t_614, t_def * 0.70) << w->name();
  }
  EXPECT_GE(t_324, t_614 * 1.5) << w->name();  // paper: >= 1.9x w/ slack
  EXPECT_GE(t_ecc, t_def * 0.999) << w->name();
  EXPECT_LE(t_ecc, t_def * 1.40) << w->name();
}

TEST_P(ProgramLaws, EccOnlyAffectsMemoryTraffic) {
  const workloads::Workload* w = GetParam();
  workloads::ExecContext ctx;
  const auto& def = config_by_name("default");
  const auto& ecc = config_by_name("ecc");
  const auto plain = sim::run_trace(k20c(), def, w->trace(0, ctx));
  workloads::ExecContext ecc_ctx;
  ecc_ctx.ecc = true;
  const auto with_ecc = sim::run_trace(k20c(), ecc, w->trace(0, ecc_ctx));
  // Arithmetic work is ECC-invariant (same algorithm); only DRAM-side
  // counts and times change. Compare whichever arithmetic class the
  // program actually uses; slack covers irregular iteration-count changes.
  const double plain_arith = plain.total_activity.fp32_ops +
                             plain.total_activity.fp64_ops +
                             plain.total_activity.int_ops;
  const double ecc_arith = with_ecc.total_activity.fp32_ops +
                           with_ecc.total_activity.fp64_ops +
                           with_ecc.total_activity.int_ops;
  ASSERT_GT(plain_arith, 0.0) << w->name();
  EXPECT_NEAR(ecc_arith / plain_arith, 1.0, 0.35) << w->name();
  EXPECT_GE(with_ecc.total_activity.dram_bus_bytes,
            plain.total_activity.dram_bus_bytes * 0.999)
      << w->name();
}

INSTANTIATE_TEST_SUITE_P(AllPrimaries, ProgramLaws,
                         ::testing::ValuesIn(primary_programs()),
                         [](const ::testing::TestParamInfo<const workloads::Workload*>& info) {
                           std::string name(info.param->name());
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// --- Metamorphic physics invariants over the full pipeline -----------------
//
// Paper-level laws checked per registered primary program through the REAL
// measurement pipeline (trace -> sim -> waveform synthesis -> sensor ->
// K20Power analysis), not just on random kernels/waveforms:
//  1. the indexed Waveform::energy_j is bit-identical to the segment
//     integral on every synthesized program waveform,
//  2. the MEASURED active runtime never increases as the core clock rises
//     324 -> 614 -> 705 (regular codes; irregular codes keep the paper's
//     §V.A.1 carve-out, like GroundTruthTimeOrderingAcrossConfigs),
//  3. `ecc` never reports a lower active runtime than `default`.
// Everything here is deterministic (fixed measurement seed), so the slack
// factors below are pinned against actual pipeline output, not noise
// headroom guesses.

class MetamorphicLaws
    : public ::testing::TestWithParam<const workloads::Workload*> {
 protected:
  // One shared Study: measure() caches per (program, input, config), so
  // the three laws reuse each other's measurements instead of re-running
  // the pipeline per test.
  static core::Study& study() {
    static core::Study s;
    return s;
  }
  static const core::ExperimentResult& measured(const workloads::Workload& w,
                                                const char* config) {
    return study().measure(w, 0, config_by_name(config));
  }
};

TEST_P(MetamorphicLaws, SynthesizedEnergyIndexBitIdenticalToIntegral) {
  const workloads::Workload* w = GetParam();
  const power::PowerModel model;
  for (const auto& cfg : sim::standard_configs()) {
    workloads::ExecContext ctx;
    ctx.core_mhz = cfg.core_mhz;
    ctx.mem_mhz = cfg.mem_mhz;
    ctx.ecc = cfg.ecc;
    const sim::TraceResult trace = sim::run_trace(k20c(), cfg, w->trace(0, ctx));
    const sensor::Waveform wave = sensor::synthesize(
        trace, cfg, model, cfg.ecc ? w->ecc_power_adjustment() : 1.0);
    ASSERT_GT(wave.duration(), 0.0) << w->name() << "/" << cfg.name;
    EXPECT_EQ(ref_energy_j(wave, 0.0, wave.duration()),
              wave.energy_j(0.0, wave.duration()))
        << w->name() << "/" << cfg.name;
    // Boundary-aligned prefixes/suffixes hit the index partial-segment
    // paths; stride bounds the cost on kernel-heavy programs.
    const auto& segs = wave.segments();
    const std::size_t stride = 1 + segs.size() / 32;
    for (std::size_t i = 0; i < segs.size(); i += stride) {
      EXPECT_EQ(ref_energy_j(wave, segs[i].t0, wave.duration()),
                wave.energy_j(segs[i].t0, wave.duration()))
          << w->name() << "/" << cfg.name << " suffix from segment " << i;
      EXPECT_EQ(ref_energy_j(wave, 0.0, segs[i].t1),
                wave.energy_j(0.0, segs[i].t1))
          << w->name() << "/" << cfg.name << " prefix to segment " << i;
    }
  }
}

TEST_P(MetamorphicLaws, MeasuredActiveRuntimeNonIncreasingAsCoreClockRises) {
  const workloads::Workload& w = *GetParam();
  const auto& m324 = measured(w, "324");
  const auto& m614 = measured(w, "614");
  const auto& mdef = measured(w, "default");
  ASSERT_TRUE(mdef.usable) << w.name();
  // 324 MHz runs may be excluded by the analyzer (the paper's exclusion
  // rule, §IV.C); the ordering applies between usable measurements only.
  if (m324.usable && m614.usable) {
    EXPECT_GE(m324.time_s, m614.time_s * 1.5) << w.name();
  }
  if (m614.usable) {
    if (w.regularity() == workloads::Regularity::kRegular) {
      EXPECT_GE(m614.time_s, mdef.time_s * 0.98) << w.name();
    } else {
      EXPECT_GE(m614.time_s, mdef.time_s * 0.70) << w.name();
    }
  }
}

TEST_P(MetamorphicLaws, EccNeverReportsLowerActiveRuntimeThanDefault) {
  const workloads::Workload& w = *GetParam();
  const auto& mdef = measured(w, "default");
  const auto& mecc = measured(w, "ecc");
  // The ground-truth ordering holds unconditionally...
  EXPECT_GE(mecc.true_active_s, mdef.true_active_s * 0.999) << w.name();
  // ...and the measured ordering whenever both runs are usable.
  if (mdef.usable && mecc.usable) {
    EXPECT_GE(mecc.time_s, mdef.time_s * 0.98) << w.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrimaries, MetamorphicLaws,
                         ::testing::ValuesIn(primary_programs()),
                         [](const ::testing::TestParamInfo<const workloads::Workload*>& info) {
                           std::string name(info.param->name());
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// --- Cache-key injectivity -------------------------------------------------
//
// The experiment key seeds the measurement stream, so two distinct
// (program, input, config) triples aliasing to one key would silently
// share results AND noise. These properties pin the escaping scheme in
// core::experiment_key.

TEST(ExperimentKey, NoCollisionAcrossRegistryMatrix) {
  suites::register_all_workloads();
  std::map<std::string, std::string> seen;  // key -> human description
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    const std::size_t num_inputs = w->inputs().size();
    for (std::size_t i = 0; i < num_inputs; ++i) {
      for (const sim::GpuConfig& config : sim::standard_configs()) {
        const std::string key = core::experiment_key(*w, i, config);
        const std::string desc = std::string(w->name()) + " input " +
                                 std::to_string(i) + " @" + config.name;
        const auto [it, inserted] = seen.emplace(key, desc);
        EXPECT_TRUE(inserted) << "key '" << key << "' aliases '" << it->second
                              << "' and '" << desc << "'";
      }
    }
  }
  EXPECT_GE(seen.size(), 34u * 4u);  // every paper program, all configs
}

TEST(ExperimentKey, SeparatorInNamesCannotAlias) {
  // Naive joining would map both of these to "x/0/0/y".
  EXPECT_NE(core::experiment_key("x/0", 0, "y"),
            core::experiment_key("x", 0, "0/y"));
  // Escape characters themselves must not create new aliases.
  EXPECT_NE(core::experiment_key("x%2F", 0, "y"),
            core::experiment_key("x/", 0, "y"));
  EXPECT_NE(core::experiment_key("a%", 0, "b"),
            core::experiment_key("a", 0, "%b"));
  // A future suite-qualified name ("SHOC/FFT") stays distinct from a name
  // that literally spells the escape sequence.
  EXPECT_NE(core::experiment_key("SHOC/FFT", 1, "default"),
            core::experiment_key("SHOC%2FFFT", 1, "default"));
}

TEST(ExperimentKey, FuzzedTriplesAreInjective) {
  // Exhaustive small-alphabet fuzz over the characters that interact with
  // the key format. Any collision between distinct triples fails.
  const std::vector<std::string> parts = [] {
    const char alphabet[] = {'a', '/', '%', '2', 'F'};
    std::vector<std::string> out{""};
    for (int len = 1; len <= 3; ++len) {
      std::vector<std::string> next;
      for (const std::string& prefix : out) {
        if (prefix.size() != static_cast<std::size_t>(len - 1)) continue;
        for (const char c : alphabet) next.push_back(prefix + c);
      }
      out.insert(out.end(), next.begin(), next.end());
    }
    return out;
  }();
  std::map<std::string, std::tuple<std::string, std::size_t, std::string>> seen;
  for (const std::string& program : parts) {
    for (const std::size_t input : {std::size_t{0}, std::size_t{1}, std::size_t{12}}) {
      for (const std::string& config : parts) {
        const std::string key = core::experiment_key(program, input, config);
        const auto triple = std::make_tuple(program, input, config);
        const auto [it, inserted] = seen.emplace(key, triple);
        EXPECT_TRUE(inserted)
            << "collision on '" << key << "': ('" << program << "', " << input
            << ", '" << config << "') vs ('" << std::get<0>(it->second)
            << "', " << std::get<1>(it->second) << ", '"
            << std::get<2>(it->second) << "')";
      }
    }
  }
}

TEST(ExperimentKey, UnescapedNamesKeepHistoricalFormat) {
  // Names in use today contain no '/' or '%', so their keys — and hence
  // every seeded measurement stream — are identical to the original
  // name/input/config joining.
  EXPECT_EQ(core::experiment_key("NB", 2, "default"), "NB/2/default");
  EXPECT_EQ(core::experiment_key("L-BFS", 0, "324"), "L-BFS/0/324");
}

// --- Key round trip (serving-layer contract) -------------------------------
//
// The serving layer echoes canonical keys to clients and indexes its
// result cache by them, so parse(experiment_key(p, i, c)) must be a total
// round trip over ADVERSARIAL part strings, and parse must reject every
// non-canonical spelling (a second spelling of the same experiment would
// split the cache and alias seeds).

TEST(ExperimentKey, ParseRoundTripsAdversarialParts) {
  const std::vector<std::string> parts = {
      "",        "a",         "NB",       "L-BFS",     "a/b",
      "/",       "//",        "%",        "%%",        "%2F",
      "%25",     "a%2Fb",     "x/%/y",    "default",   "sweep-651",
      "%2f",     "a b",       "\tname",   "ü-umlaut",  "漢字",
      "name\n",  "\"quoted\"", "back\\slash", "a%/b%25/c",
  };
  const std::vector<std::size_t> inputs = {0, 1, 12, 9999,
                                           std::size_t{1} << 40};
  for (const std::string& program : parts) {
    for (const std::size_t input : inputs) {
      for (const std::string& config : parts) {
        const std::string key = core::experiment_key(program, input, config);
        core::ExperimentKeyParts decoded;
        ASSERT_TRUE(core::parse_experiment_key(key, decoded))
            << "canonical key '" << key << "' failed to parse";
        EXPECT_EQ(decoded.program, program) << key;
        EXPECT_EQ(decoded.input_index, input) << key;
        EXPECT_EQ(decoded.config, config) << key;
      }
    }
  }
}

TEST(ExperimentKey, ParseRejectsNonCanonicalKeys) {
  const std::vector<std::string> bad = {
      "",                 // empty
      "NB",               // one part
      "NB/2",             // two parts
      "NB/2/default/x",   // four parts
      "NB/x/default",     // non-numeric index
      "NB/2x/default",    // trailing junk in index
      "NB//default",      // empty index
      "NB/-1/default",    // sign
      "NB/+1/default",    // sign
      "NB/ 2/default",    // whitespace
      "NB/02/default",    // zero-padded (non-canonical spelling of 2)
      "NB/18446744073709551616/default",  // overflows uint64
      "N%2fB/2/default",  // lowercase hex escape (non-canonical)
      "N%2GB/2/default",  // invalid escape
      "N%B/2/default",    // truncated escape
      "NB%/2/default",    // escape cut by separator
      "NB/2/def%",        // escape cut by end of string
  };
  for (const std::string& key : bad) {
    core::ExperimentKeyParts decoded{"sentinel", 77, "sentinel"};
    EXPECT_FALSE(core::parse_experiment_key(key, decoded))
        << "non-canonical key '" << key << "' parsed";
    // Failed parses leave the output untouched.
    EXPECT_EQ(decoded.program, "sentinel") << key;
    EXPECT_EQ(decoded.input_index, 77u) << key;
    EXPECT_EQ(decoded.config, "sentinel") << key;
  }
}

TEST(ExperimentKey, ParseAcceptsOnlyTheCanonicalSpelling) {
  // "0" is canonical; every other decimal spelling of zero is rejected, so
  // at most ONE key string maps to any experiment.
  core::ExperimentKeyParts decoded;
  EXPECT_TRUE(core::parse_experiment_key("NB/0/default", decoded));
  EXPECT_FALSE(core::parse_experiment_key("NB/00/default", decoded));
  EXPECT_FALSE(core::parse_experiment_key("NB/000/default", decoded));
  // An escaped key round-trips through parse -> re-encode identically.
  const std::string key = core::experiment_key("x/y", 3, "a%b");
  ASSERT_TRUE(core::parse_experiment_key(key, decoded));
  EXPECT_EQ(core::experiment_key(decoded.program, decoded.input_index,
                                 decoded.config),
            key);
}

}  // namespace
}  // namespace repro
