// Behavioural tests for the benchmark-suite implementations: each
// program family's trace must reflect its real algorithm's structure
// (iteration counts, frontier profiles, convergence, input ordering) and
// the paper's per-program observations.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "suites/common.hpp"
#include "util/rng.hpp"

#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::KernelLaunch;
using workloads::LaunchTrace;
using workloads::Registry;
using workloads::Workload;

const Workload& prog(const char* name) {
  register_all_workloads();
  const Workload* w = Registry::instance().find(name);
  EXPECT_NE(w, nullptr) << name;
  return *w;
}

double true_time(const Workload& w, std::size_t input, const char* config) {
  const auto& cfg = sim::config_by_name(config);
  ExecContext ctx;
  ctx.core_mhz = cfg.core_mhz;
  ctx.mem_mhz = cfg.mem_mhz;
  ctx.ecc = cfg.ecc;
  return sim::run_trace(sim::k20c(), cfg, w.trace(input, ctx)).active_time_s;
}

std::set<std::string> kernel_names(const LaunchTrace& trace) {
  std::set<std::string> names;
  for (const KernelLaunch& k : trace) names.insert(k.name);
  return names;
}

// ---- LonestarGPU -----------------------------------------------------------

TEST(Lonestar, BfsVariantOrdering) {
  // Paper Table 3: atomic and wla beat the default; wlw/wlc are fastest.
  const double t_def = true_time(prog("L-BFS"), 2, "default");
  const double t_atomic = true_time(prog("L-BFS-atomic"), 2, "default");
  const double t_wla = true_time(prog("L-BFS-wla"), 2, "default");
  const double t_wlw = true_time(prog("L-BFS-wlw"), 2, "default");
  const double t_wlc = true_time(prog("L-BFS-wlc"), 2, "default");
  EXPECT_LT(t_atomic, t_def * 0.6);
  EXPECT_LT(t_wla, t_def * 0.85);
  EXPECT_LT(t_wlw, t_def * 0.05);  // unmeasurably fast, as in the paper
  EXPECT_LT(t_wlc, t_wlw * 1.5);   // Merrill's version is the fastest class
}

TEST(Lonestar, SsspVariantOrdering) {
  const double t_def = true_time(prog("SSSP"), 2, "default");
  const double t_wlc = true_time(prog("SSSP-wlc"), 2, "default");
  const double t_wln = true_time(prog("SSSP-wln"), 2, "default");
  EXPECT_LT(t_wlc, t_def * 0.75);
  EXPECT_GT(t_wln, t_def * 1.7);  // paper: ~2.4x worse
}

TEST(Lonestar, RoadMapInputsScaleRuntime) {
  // GL (2.7M) < W-USA (6M) < USA (24M) in runtime, for every road-map code.
  for (const char* name : {"L-BFS", "SSSP", "MST"}) {
    const double gl = true_time(prog(name), 0, "default");
    const double w = true_time(prog(name), 1, "default");
    const double usa = true_time(prog(name), 2, "default");
    EXPECT_LT(gl, w) << name;
    EXPECT_LT(w, usa) << name;
  }
}

TEST(Lonestar, TopologyDrivenSweepStructure) {
  // The L-BFS trace is one init kernel plus one kernel per sweep, all
  // sweeps the same size (topology-driven codes touch every node).
  const LaunchTrace trace = prog("L-BFS").trace(0, ExecContext{});
  ASSERT_GT(trace.size(), 10u);
  EXPECT_EQ(trace.front().name, "bfs_init");
  for (std::size_t i = 2; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].name, "bfs_sweep");
    EXPECT_DOUBLE_EQ(trace[i].blocks, trace[1].blocks);
  }
}

TEST(Lonestar, MstEmitsBoruvkaRoundPipeline) {
  const auto names = kernel_names(prog("MST").trace(0, ExecContext{}));
  EXPECT_TRUE(names.count("mst_find_min"));
  EXPECT_TRUE(names.count("mst_union"));
  EXPECT_TRUE(names.count("mst_compact"));
}

TEST(Lonestar, MstRoundsShrink) {
  // Boruvka halves the component count per round: the find-min kernels
  // must shrink monotonically (modulo the retry factor).
  const LaunchTrace trace = prog("MST").trace(0, ExecContext{});
  double last = 1e300;
  int rounds = 0;
  for (const KernelLaunch& k : trace) {
    if (k.name != "mst_union") continue;
    EXPECT_LE(k.blocks, last * 1.01);
    last = k.blocks;
    ++rounds;
  }
  EXPECT_GE(rounds, 4);
  EXPECT_LE(rounds, 40);  // logarithmic in nodes
}

TEST(Lonestar, DmrRefinementConverges) {
  // dmr_refine kernels must eventually vanish (mesh reaches quality).
  const LaunchTrace trace = prog("DMR").trace(0, ExecContext{});
  bool saw_refine = false;
  for (const KernelLaunch& k : trace) {
    if (k.name == "dmr_refine") saw_refine = true;
  }
  EXPECT_TRUE(saw_refine);
  EXPECT_EQ(trace.back().name, "dmr_check_bad");  // final clean check
}

TEST(Lonestar, DmrMeshGrowsMonotonically) {
  const LaunchTrace trace = prog("DMR").trace(1, ExecContext{});
  double last = 0.0;
  for (const KernelLaunch& k : trace) {
    if (k.name != "dmr_check_bad") continue;
    EXPECT_GE(k.blocks, last * 0.999);  // refinement only adds triangles
    last = k.blocks;
  }
}

TEST(Lonestar, PtaInputDependentIterations) {
  // Paper §VI rec. 5: PTA behaviour is strongly input-dependent.
  const auto t_vim = prog("PTA").trace(0, ExecContext{});
  const auto t_tshark = prog("PTA").trace(2, ExecContext{});
  EXPECT_NE(t_vim.size(), t_tshark.size());
}

TEST(Lonestar, NspIterativeStructure) {
  const auto names = kernel_names(prog("NSP").trace(0, ExecContext{}));
  EXPECT_TRUE(names.count("nsp_update_surveys"));
  EXPECT_TRUE(names.count("nsp_update_bias"));
}

TEST(Lonestar, BhTimestepPipeline) {
  const LaunchTrace trace = prog("BH").trace(1, ExecContext{});
  const auto names = kernel_names(trace);
  for (const char* k : {"bh_bounding_box", "bh_build_tree", "bh_summarize",
                        "bh_sort", "bh_force", "bh_integrate"}) {
    EXPECT_TRUE(names.count(k)) << k;
  }
  // 10 timesteps x 6 kernels.
  EXPECT_EQ(trace.size(), 60u);
}

TEST(Lonestar, BhForceDominatesCompute) {
  const LaunchTrace trace = prog("BH").trace(1, ExecContext{});
  double force_flops = 0.0, other_flops = 0.0;
  for (const KernelLaunch& k : trace) {
    const double flops = k.mix.fp32 * k.total_threads();
    (k.name == "bh_force" ? force_flops : other_flops) += flops;
  }
  EXPECT_GT(force_flops, other_flops);
}

// ---- Parboil / Rodinia / SHOC structure ------------------------------------

TEST(Parboil, PbfsLevelsMatchRoadmapDiameter) {
  // Data-driven BFS: one kernel per level; a road map has a huge diameter.
  const LaunchTrace trace = prog("P-BFS").trace(0, ExecContext{});
  EXPECT_GT(trace.size(), 50u);
}

TEST(Parboil, LbmOneKernelPerTimestep) {
  EXPECT_EQ(prog("LBM").trace(0, ExecContext{}).size(), 3000u);
  EXPECT_EQ(prog("LBM").trace(1, ExecContext{}).size(), 100u);
}

TEST(Parboil, LbmIsDoublePrecisionStreaming) {
  const LaunchTrace trace = prog("LBM").trace(0, ExecContext{});
  const KernelLaunch& k = trace.front();
  EXPECT_GT(k.mix.fp64, 0.0);
  EXPECT_DOUBLE_EQ(k.mix.fp32, 0.0);
  EXPECT_LT(k.mix.l2_hit_rate, 0.3);  // streaming
}

TEST(Parboil, HistoFourKernelPipeline) {
  const auto names = kernel_names(prog("HISTO").trace(0, ExecContext{}));
  EXPECT_EQ(names.size(), 4u);  // matches its Table 1 kernel count
}

TEST(Rodinia, GaussianGridsShrinkAcrossElimination) {
  const LaunchTrace trace = prog("GE").trace(0, ExecContext{});
  // fan2 kernels shrink as (n - row)^2.
  double first = -1.0, last = -1.0;
  for (const KernelLaunch& k : trace) {
    if (k.name != "ge_fan2") continue;
    if (first < 0.0) first = k.blocks;
    last = k.blocks;
  }
  EXPECT_GT(first, last * 100.0);
}

TEST(Rodinia, NwWavefrontRampsUp) {
  const LaunchTrace trace = prog("NW").trace(0, ExecContext{});
  double first = -1.0, peak = 0.0;
  for (const KernelLaunch& k : trace) {
    if (k.name != "nw_kernel1") continue;
    if (first < 0.0) first = k.blocks;
    peak = std::max(peak, k.blocks);
  }
  EXPECT_GT(peak, first * 4.0);  // anti-diagonal waves grow then shrink
}

TEST(Rodinia, MumQueryLengthScalesWork) {
  const auto t100 = prog("MUM").trace(0, ExecContext{});
  const auto t25 = prog("MUM").trace(1, ExecContext{});
  // 100bp queries walk ~4x deeper than 25bp ones.
  EXPECT_NEAR(t100.front().mix.global_loads / t25.front().mix.global_loads,
              4.0, 0.2);
}

TEST(Shoc, SbfsVertexParallelEveryLevel) {
  // SHOC's BFS launches one thread per vertex every iteration - the root
  // of its Table 4 inefficiency.
  const LaunchTrace trace = prog("S-BFS").trace(0, ExecContext{});
  double frontier_blocks = -1.0;
  for (const KernelLaunch& k : trace) {
    if (k.name != "sbfs_frontier") continue;
    if (frontier_blocks < 0.0) frontier_blocks = k.blocks;
    EXPECT_DOUBLE_EQ(k.blocks, frontier_blocks);  // grid never shrinks
  }
  EXPECT_GT(frontier_blocks, 0.0);
}

TEST(Shoc, MaxflopsVariantsCoverSpAndDp) {
  const LaunchTrace trace = prog("MF").trace(0, ExecContext{});
  bool saw_sp = false, saw_dp = false, saw_fma = false;
  for (const KernelLaunch& k : trace) {
    if (k.mix.fp32 > 0.0) saw_sp = true;
    if (k.mix.fp64 > 0.0) saw_dp = true;
    if (k.mix.fma_fraction > 0.5) saw_fma = true;
    EXPECT_GT(k.host_gap_before_s, 0.0);  // host verify between reps
  }
  EXPECT_TRUE(saw_sp);
  EXPECT_TRUE(saw_dp);
  EXPECT_TRUE(saw_fma);
}

TEST(Shoc, QtcRoundsShrink) {
  const LaunchTrace trace = prog("QTC").trace(0, ExecContext{});
  // Within one repetition, each committed cluster removes points.
  double first = -1.0, smallest = 1e300;
  for (const KernelLaunch& k : trace) {
    if (k.name != "qtc_find_clusters") continue;
    if (first < 0.0) first = k.blocks;
    smallest = std::min(smallest, k.blocks);
  }
  EXPECT_LT(smallest, first * 0.5);
}

TEST(Shoc, SortDigitPassPipeline) {
  const auto names = kernel_names(prog("ST").trace(0, ExecContext{}));
  EXPECT_TRUE(names.count("sort_histogram"));
  EXPECT_TRUE(names.count("sort_scan_counters"));
  EXPECT_TRUE(names.count("sort_reorder"));
}

// ---- CUDA SDK ---------------------------------------------------------------

TEST(Sdk, EpGeneratesBatchesEipDoesNot) {
  const auto eip = kernel_names(prog("EIP").trace(0, ExecContext{}));
  const auto ep = kernel_names(prog("EP").trace(0, ExecContext{}));
  EXPECT_FALSE(eip.count("ep_generate_batch"));
  EXPECT_TRUE(ep.count("ep_generate_batch"));
}

TEST(Sdk, NbodyQuadraticWorkInBodies) {
  const auto small = prog("NB").trace(0, ExecContext{});
  const auto large = prog("NB").trace(2, ExecContext{});
  // Per-thread interaction work scales with n (all-pairs).
  EXPECT_NEAR(large.front().mix.fp32 / small.front().mix.fp32, 10.0, 0.5);
}

TEST(Sdk, ScanThreeKernelPipeline) {
  const auto names = kernel_names(prog("SC").trace(0, ExecContext{}));
  EXPECT_EQ(names.size(), 3u);
}

// ---- Cache-model-derived locality -------------------------------------------

TEST(Common, L2HitRateSmallWorkingSetHitsAlways) {
  // 64 KB working set revisited: everything after the first pass hits.
  std::vector<std::uint64_t> stream;
  for (int pass = 0; pass < 8; ++pass) {
    for (std::uint64_t a = 0; a < 64 * 1024; a += 128) stream.push_back(a);
  }
  EXPECT_GT(l2_hit_rate_from_stream(stream), 0.85);
}

TEST(Common, L2HitRateHugeRandomSetMostlyMisses) {
  util::Rng rng{3};
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 200000; ++i) {
    stream.push_back(rng.uniform_index(1ULL << 30));  // 1 GB footprint
  }
  EXPECT_LT(l2_hit_rate_from_stream(stream), 0.05);
}

TEST(Common, S2DUsesCacheDerivedHitRate) {
  // The 9-point pattern with three resident rows must land well above the
  // no-reuse floor (1/9 compulsory misses bounded by line granularity).
  const LaunchTrace trace = prog("S2D").trace(0, ExecContext{});
  EXPECT_GT(trace.front().mix.l2_hit_rate, 0.85);
  EXPECT_LT(trace.front().mix.l2_hit_rate, 1.0);
}

// ---- Cross-device invariance (paper §IV.B) ----------------------------------

TEST(CrossDevice, RelativeEffectsHoldOnK40) {
  // The paper found identical findings on K20c/K20m/K20x/K40 after
  // scaling. Check: the default->614 runtime ratio of a compute-bound and
  // a memory-bound trace agree across devices within a few percent.
  register_all_workloads();
  const Workload& nb = prog("NB");
  const Workload& lbm = prog("LBM");
  const auto ratio = [](const sim::KeplerDevice& dev, const Workload& w) {
    ExecContext ctx;
    const auto& def = sim::config_by_name("default");
    const auto& c614 = sim::config_by_name("614");
    const double t_def = sim::run_trace(dev, def, w.trace(0, ctx)).active_time_s;
    ExecContext ctx614;
    ctx614.core_mhz = 614.0;
    const double t_614 =
        sim::run_trace(dev, c614, w.trace(0, ctx614)).active_time_s;
    return t_614 / t_def;
  };
  EXPECT_NEAR(ratio(sim::k20c(), nb), ratio(sim::k40(), nb), 0.03);
  EXPECT_NEAR(ratio(sim::k20c(), lbm), ratio(sim::k40(), lbm), 0.03);
}

TEST(CrossDevice, K40IsFaster) {
  register_all_workloads();
  ExecContext ctx;
  const auto& def = sim::config_by_name("default");
  const auto trace = prog("LBM").trace(0, ctx);
  EXPECT_LT(sim::run_trace(sim::k40(), def, trace).active_time_s,
            sim::run_trace(sim::k20c(), def, trace).active_time_s);
}

}  // namespace
}  // namespace repro::suites
