// Chaos suite (DESIGN.md §12): the golden experiment slice replayed under
// hundreds of seeded fault schedules, asserting the resilience contract on
// every single request:
//
//   - every request terminates (run_batch returns a response per request),
//   - every ok/retried response is BIT-identical to the fault-free golden
//     computed before any plan was installed,
//   - statuses are truthful: degraded implies an applied sensor fault for
//     that key, failed implies applied scheduler aborts, and the Service
//     stats agree with the per-response tally,
//   - the same seed reproduces the same run: sequential (threads=1, one
//     request at a time) replays are byte-equal transcripts, and
//     independent same-seed plans agree on the whole schedule digest.
//
// The seed space is sharded across TEST_P instances so ctest -j runs the
// hundred-seed sweep concurrently; each shard covers 10 seeds. The suite
// carries the `fault` ctest label and runs under both TSan and ASan in CI.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "fault/fault.hpp"
#include "repro/api.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

namespace repro::serve {
namespace {

namespace fault = repro::fault;

struct SliceEntry {
  const char* program;
  std::size_t input;
  const char* config;
};

// The golden-slice matrix (tests/golden_test.cpp): every suite, every
// configuration, regular and irregular programs.
constexpr SliceEntry kSlice[10] = {
    {"NB", 2, "default"},  {"LBM", 0, "614"},    {"SGEMM", 0, "default"},
    {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
    {"FFT", 0, "default"}, {"MD", 0, "614"},     {"L-BFS-wlc", 2, "default"},
    {"BH", 0, "default"},
};

std::vector<std::string> slice_keys() {
  std::vector<std::string> keys;
  for (const SliceEntry& e : kSlice) {
    keys.push_back(core::experiment_key(e.program, e.input, e.config));
  }
  return keys;
}

// Two rounds of the slice per run: round two hits the cache, which is what
// exposes it to eviction storms and the degraded-not-cached rule.
std::vector<v1::ExperimentRequest> chaos_batch() {
  std::vector<v1::ExperimentRequest> batch;
  for (int round = 0; round < 2; ++round) {
    for (const SliceEntry& e : kSlice) {
      v1::ExperimentRequest r;
      r.program = e.program;
      r.input_index = e.input;
      r.config = e.config;
      r.id = batch.size() + 1;
      batch.push_back(std::move(r));
    }
  }
  return batch;
}

// Fault-free golden, computed exactly once and strictly before any plan is
// active (guarded below): the oracle every ok/retried response must match.
const std::map<std::string, v1::MeasurementResult>& golden() {
  static const std::map<std::string, v1::MeasurementResult> oracle = [] {
    EXPECT_EQ(fault::active(), nullptr)
        << "golden oracle computed under an active fault plan";
    std::map<std::string, v1::MeasurementResult> results;
    v1::Session session;
    for (const SliceEntry& e : kSlice) {
      v1::ExperimentRequest request;
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      results[core::experiment_key(e.program, e.input, e.config)] =
          session.measure(request);
    }
    return results;
  }();
  return oracle;
}

void expect_bit_identical(const v1::MeasurementResult& a,
                          const v1::MeasurementResult& b,
                          const std::string& context) {
  EXPECT_EQ(a.usable, b.usable) << context;
  // EXPECT_EQ on doubles is exact comparison — that is the point.
  EXPECT_EQ(a.time_s, b.time_s) << context;
  EXPECT_EQ(a.energy_j, b.energy_j) << context;
  EXPECT_EQ(a.power_w, b.power_w) << context;
  EXPECT_EQ(a.true_active_s, b.true_active_s) << context;
  EXPECT_EQ(a.time_spread, b.time_spread) << context;
  EXPECT_EQ(a.energy_spread, b.energy_spread) << context;
}

Service::Options chaos_options(int max_retries) {
  Service::Options options;
  options.max_retries = max_retries;
  options.retry_backoff_ms = 0.0;  // chaos runs do not sleep
  return options;
}

// Runs the chaos batch under one seeded plan and asserts the full
// resilience contract. Returns the responses for further inspection.
std::vector<Response> run_seed(std::uint64_t seed, int max_retries) {
  const std::map<std::string, v1::MeasurementResult>& oracle = golden();
  const std::vector<v1::ExperimentRequest> batch = chaos_batch();
  const std::vector<std::string> keys = slice_keys();
  const std::string context = "seed " + std::to_string(seed);

  fault::PlanOptions plan_options;
  plan_options.seed = seed;
  fault::FaultPlan plan{plan_options};
  fault::ScopedPlan scope{&plan};

  std::vector<Response> responses;
  Service::Stats stats;
  {
    Service service{chaos_options(max_retries)};
    responses = service.run_batch(batch);
    stats = service.stats();
  }

  // Termination: one terminal response per request, in request order.
  EXPECT_EQ(responses.size(), batch.size()) << context;

  std::uint64_t ok = 0, retried = 0, degraded = 0, failed = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    const std::string& key = keys[i % keys.size()];
    const std::string where = context + ", request " + std::to_string(r.id) +
                              " (" + key + ")";
    EXPECT_EQ(r.id, batch[i].id) << where;
    if (r.status == Status::kOk) {
      ++ok;
      switch (r.degradation) {
        case Degradation::kDegraded:
          ++degraded;
          // Truthfulness: degraded requires an applied sensor fault, and
          // the retry budget must have been spent.
          EXPECT_GT(plan.applied(fault::Site::kSensor, key), 0u) << where;
          EXPECT_EQ(r.retries, max_retries) << where;
          break;
        case Degradation::kRetried:
          ++retried;
          EXPECT_GT(r.retries, 0) << where;
          expect_bit_identical(r.result, oracle.at(key), where);
          break;
        case Degradation::kNone:
          EXPECT_EQ(r.retries, 0) << where;
          expect_bit_identical(r.result, oracle.at(key), where);
          break;
      }
    } else if (r.status == Status::kFailed) {
      ++failed;
      // Truthfulness: failed requires applied scheduler aborts.
      EXPECT_GT(plan.applied(fault::Site::kScheduler, key), 0u) << where;
      EXPECT_FALSE(r.error.empty()) << where;
    } else {
      ADD_FAILURE() << where << ": unexpected status "
                    << to_string(r.status);
    }
  }

  // The service's own accounting agrees with the response tally.
  EXPECT_EQ(stats.submitted, batch.size()) << context;
  EXPECT_EQ(stats.completed, ok) << context;
  EXPECT_EQ(stats.retried, retried) << context;
  EXPECT_EQ(stats.degraded, degraded) << context;
  EXPECT_EQ(stats.faulted, failed) << context;
  return responses;
}

// --- The hundred-seed sweep, sharded for ctest -j --------------------------

class ChaosSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSweep, EveryRequestTerminatesTruthfullyAndCleanOnesMatchGolden) {
  const int shard = GetParam();
  for (int n = 0; n < 10; ++n) {
    // Seeds 1..100 across 10 shards. Retry budget 2: most faults recover.
    run_seed(static_cast<std::uint64_t>(shard * 10 + n + 1), 2);
  }
}

TEST_P(ChaosSweep, ZeroRetryBudgetDegradesAndFailsTruthfully) {
  const int shard = GetParam();
  // Same seeds, no resilience: aborts fail immediately, taints degrade
  // immediately. Exercises the terminal paths the retry budget usually
  // hides; every invariant still holds.
  run_seed(static_cast<std::uint64_t>(shard * 10 + 1), 0);
}

INSTANTIATE_TEST_SUITE_P(Shards, ChaosSweep, ::testing::Range(0, 10));

// --- Sampled-mode chaos (DESIGN.md §13) ------------------------------------

v1::SamplingOptions chaos_sampling() {
  v1::SamplingOptions sampling;
  sampling.mode = v1::SamplingMode::kStratified;
  sampling.fraction = 0.10;
  sampling.seed = 5;
  return sampling;
}

std::vector<v1::ExperimentRequest> sampled_chaos_batch() {
  std::vector<v1::ExperimentRequest> batch = chaos_batch();
  for (v1::ExperimentRequest& r : batch) r.sampling = chaos_sampling();
  return batch;
}

// Fault-free sampled golden (same sampling parameters as the batch),
// computed once and strictly before any plan is active.
const std::map<std::string, v1::MeasurementResult>& sampled_golden() {
  static const std::map<std::string, v1::MeasurementResult> oracle = [] {
    EXPECT_EQ(fault::active(), nullptr)
        << "sampled golden oracle computed under an active fault plan";
    std::map<std::string, v1::MeasurementResult> results;
    v1::Session session;
    for (const SliceEntry& e : kSlice) {
      results[core::experiment_key(e.program, e.input, e.config)] =
          session.measure_sampled(e.program, e.input, e.config,
                                  chaos_sampling());
    }
    return results;
  }();
  return oracle;
}

void expect_sampled_identical(const v1::MeasurementResult& a,
                              const v1::MeasurementResult& b,
                              const std::string& context) {
  expect_bit_identical(a, b, context);
  EXPECT_EQ(a.sampled, b.sampled) << context;
  EXPECT_EQ(a.sample_fraction, b.sample_fraction) << context;
  EXPECT_EQ(a.time_ci.low, b.time_ci.low) << context;
  EXPECT_EQ(a.time_ci.high, b.time_ci.high) << context;
  EXPECT_EQ(a.energy_ci.low, b.energy_ci.low) << context;
  EXPECT_EQ(a.energy_ci.high, b.energy_ci.high) << context;
  EXPECT_EQ(a.power_ci.low, b.power_ci.low) << context;
  EXPECT_EQ(a.power_ci.high, b.power_ci.high) << context;
}

// The resilience contract for sampled requests. The sampled dispatch path
// has no abort site, so kFailed is impossible — every request ends kOk
// (no deadlines are set here). Clean and retried responses are
// bit-identical to the fault-free sampled golden INCLUDING the confidence
// intervals; degraded responses require an applied sensor fault and are
// never cached, so any cache hit — including a round-two hit after a
// degraded round-one response forced a recompute — serves clean bytes.
void run_sampled_seed(std::uint64_t seed, int max_retries) {
  const std::map<std::string, v1::MeasurementResult>& oracle = sampled_golden();
  const std::vector<v1::ExperimentRequest> batch = sampled_chaos_batch();
  const std::vector<std::string> keys = slice_keys();
  const std::string context = "sampled seed " + std::to_string(seed);

  fault::PlanOptions plan_options;
  plan_options.seed = seed;
  fault::FaultPlan plan{plan_options};
  fault::ScopedPlan scope{&plan};

  std::vector<Response> responses;
  Service::Stats stats;
  {
    Service service{chaos_options(max_retries)};
    responses = service.run_batch(batch);
    stats = service.stats();
  }

  EXPECT_EQ(responses.size(), batch.size()) << context;
  std::uint64_t ok = 0, retried = 0, degraded = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    const std::string& key = keys[i % keys.size()];
    const std::string where = context + ", request " + std::to_string(r.id) +
                              " (" + key + ")";
    EXPECT_EQ(r.id, batch[i].id) << where;
    ASSERT_EQ(r.status, Status::kOk)
        << where << ": sampled dispatch has no abort site, got "
        << to_string(r.status) << " (" << r.error << ")";
    ++ok;
    switch (r.degradation) {
      case Degradation::kDegraded:
        ++degraded;
        EXPECT_GT(plan.applied(fault::Site::kSensor, key), 0u) << where;
        EXPECT_EQ(r.retries, max_retries) << where;
        EXPECT_FALSE(r.cached)
            << where << ": degraded results must never be served from cache";
        break;
      case Degradation::kRetried:
        ++retried;
        EXPECT_GT(r.retries, 0) << where;
        expect_sampled_identical(r.result, oracle.at(key), where);
        break;
      case Degradation::kNone:
        EXPECT_EQ(r.retries, 0) << where;
        expect_sampled_identical(r.result, oracle.at(key), where);
        break;
    }
    if (r.cached) {
      // The degraded-not-cached rule, observed from the outside: a hit
      // can only ever serve clean golden bytes.
      EXPECT_EQ(r.degradation, Degradation::kNone) << where;
      expect_sampled_identical(r.result, oracle.at(key), where);
    }
  }
  EXPECT_EQ(stats.submitted, batch.size()) << context;
  EXPECT_EQ(stats.completed, ok) << context;
  EXPECT_EQ(stats.retried, retried) << context;
  EXPECT_EQ(stats.degraded, degraded) << context;
  EXPECT_EQ(stats.faulted, 0u) << context;
}

class ChaosSampledSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSampledSweep, SampledRequestsTerminateTruthfullyAndNeverFail) {
  const int shard = GetParam();
  for (int n = 0; n < 2; ++n) {
    // Seeds 1..20 across 10 shards, retry budget 2.
    run_sampled_seed(static_cast<std::uint64_t>(shard * 2 + n + 1), 2);
  }
}

TEST_P(ChaosSampledSweep, ZeroRetryBudgetDegradesTruthfully) {
  const int shard = GetParam();
  // No resilience: taints degrade immediately; every invariant holds.
  run_sampled_seed(static_cast<std::uint64_t>(shard * 2 + 1), 0);
}

INSTANTIATE_TEST_SUITE_P(Shards, ChaosSampledSweep, ::testing::Range(0, 10));

// --- Thermal-scenario chaos (DESIGN.md §16) ---------------------------------

v1::ThermalOptions chaos_thermal() {
  v1::ThermalOptions thermal;
  thermal.enabled = true;
  // Slice runs are short against the ~20 s heatsink time constant, so the
  // die only climbs a few degrees over ambient; a ceiling just above
  // ambient is what makes the hot entries genuinely clamp.
  thermal.ceiling_c = 31.0;
  thermal.hysteresis_c = 2.0;
  return thermal;
}

std::vector<v1::ExperimentRequest> thermal_chaos_batch() {
  std::vector<v1::ExperimentRequest> batch = chaos_batch();
  for (v1::ExperimentRequest& r : batch) r.thermal = chaos_thermal();
  return batch;
}

// Fault-free thermal golden (same scenario as the batch), computed once
// and strictly before any plan is active.
const std::map<std::string, v1::MeasurementResult>& thermal_golden() {
  static const std::map<std::string, v1::MeasurementResult> oracle = [] {
    EXPECT_EQ(fault::active(), nullptr)
        << "thermal golden oracle computed under an active fault plan";
    std::map<std::string, v1::MeasurementResult> results;
    v1::Session session;
    for (const SliceEntry& e : kSlice) {
      v1::ExperimentRequest request;
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      request.thermal = chaos_thermal();
      results[core::experiment_key(e.program, e.input, e.config)] =
          session.measure(request);
    }
    return results;
  }();
  return oracle;
}

void expect_thermal_identical(const v1::MeasurementResult& a,
                              const v1::MeasurementResult& b,
                              const std::string& context) {
  expect_bit_identical(a, b, context);
  EXPECT_EQ(a.thermal, b.thermal) << context;
  EXPECT_EQ(a.throttled, b.throttled) << context;
  EXPECT_EQ(a.peak_temp_c, b.peak_temp_c) << context;
  EXPECT_EQ(a.throttle_events, b.throttle_events) << context;
}

// The resilience contract for thermal requests. Like the sampled path,
// thermal dispatch has no abort site, so every request terminates kOk.
// Clean and retried responses are bit-identical to the fault-free thermal
// golden INCLUDING the telemetry; the telemetry itself stays truthful
// under faults: `throttled` iff clamp events were recorded, and a clamp
// implies the die actually crossed the ceiling.
void run_thermal_seed(std::uint64_t seed, int max_retries) {
  const std::map<std::string, v1::MeasurementResult>& oracle = thermal_golden();
  const std::vector<v1::ExperimentRequest> batch = thermal_chaos_batch();
  const std::vector<std::string> keys = slice_keys();
  const std::string context = "thermal seed " + std::to_string(seed);

  fault::PlanOptions plan_options;
  plan_options.seed = seed;
  fault::FaultPlan plan{plan_options};
  fault::ScopedPlan scope{&plan};

  std::vector<Response> responses;
  Service::Stats stats;
  {
    Service service{chaos_options(max_retries)};
    responses = service.run_batch(batch);
    stats = service.stats();
  }

  EXPECT_EQ(responses.size(), batch.size()) << context;
  std::uint64_t ok = 0, retried = 0, degraded = 0;
  bool any_throttled = false;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    const std::string& key = keys[i % keys.size()];
    const std::string where = context + ", request " + std::to_string(r.id) +
                              " (" + key + ")";
    EXPECT_EQ(r.id, batch[i].id) << where;
    ASSERT_EQ(r.status, Status::kOk)
        << where << ": thermal dispatch has no abort site, got "
        << to_string(r.status) << " (" << r.error << ")";
    ++ok;
    // Truthful telemetry, even on degraded responses.
    EXPECT_TRUE(r.result.thermal) << where;
    EXPECT_EQ(r.result.throttled, r.result.throttle_events > 0) << where;
    if (r.result.throttled) {
      any_throttled = true;
      EXPECT_GE(r.result.peak_temp_c, chaos_thermal().ceiling_c) << where;
    }
    switch (r.degradation) {
      case Degradation::kDegraded:
        ++degraded;
        EXPECT_GT(plan.applied(fault::Site::kSensor, key), 0u) << where;
        EXPECT_EQ(r.retries, max_retries) << where;
        EXPECT_FALSE(r.cached)
            << where << ": degraded results must never be served from cache";
        break;
      case Degradation::kRetried:
        ++retried;
        EXPECT_GT(r.retries, 0) << where;
        expect_thermal_identical(r.result, oracle.at(key), where);
        break;
      case Degradation::kNone:
        EXPECT_EQ(r.retries, 0) << where;
        expect_thermal_identical(r.result, oracle.at(key), where);
        break;
    }
    if (r.cached) {
      EXPECT_EQ(r.degradation, Degradation::kNone) << where;
      expect_thermal_identical(r.result, oracle.at(key), where);
    }
  }
  // The ceiling is chosen so the hot slice entries genuinely clamp: the
  // sweep exercises the governor, not just the RC integrator.
  EXPECT_TRUE(any_throttled) << context;
  EXPECT_EQ(stats.submitted, batch.size()) << context;
  EXPECT_EQ(stats.completed, ok) << context;
  EXPECT_EQ(stats.retried, retried) << context;
  EXPECT_EQ(stats.degraded, degraded) << context;
  EXPECT_EQ(stats.faulted, 0u) << context;
}

class ChaosThermalSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChaosThermalSweep, ThermalRequestsTerminateTruthfullyAndNeverFail) {
  const int shard = GetParam();
  for (int n = 0; n < 2; ++n) {
    // Seeds 1..10 across 5 shards, retry budget 2.
    run_thermal_seed(static_cast<std::uint64_t>(shard * 2 + n + 1), 2);
  }
}

TEST_P(ChaosThermalSweep, ZeroRetryBudgetDegradesTruthfully) {
  const int shard = GetParam();
  run_thermal_seed(static_cast<std::uint64_t>(shard * 2 + 1), 0);
}

INSTANTIATE_TEST_SUITE_P(Shards, ChaosThermalSweep, ::testing::Range(0, 5));

TEST(ChaosThermalReplay, SameSeedReproducesTheRunByteForByte) {
  // Sequential replay of a thermal chaos run is a byte-identical wire
  // transcript — the thermal telemetry fields included.
  const auto transcript = [](std::uint64_t seed) {
    fault::PlanOptions plan_options;
    plan_options.seed = seed;
    fault::FaultPlan plan{plan_options};
    fault::ScopedPlan scope{&plan};

    Service::Options options = chaos_options(2);
    options.threads = 1;
    Service service{options};
    std::string text;
    for (const v1::ExperimentRequest& request : thermal_chaos_batch()) {
      const Service::Ticket ticket = service.submit(request);
      text += format_response_line(ticket.wait());
      text += '\n';
    }
    return text;
  };
  for (const std::uint64_t seed : {5ULL, 23ULL}) {
    const std::string first = transcript(seed);
    const std::string second = transcript(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_FALSE(first.empty());
    // The transcript actually carries thermal telemetry bytes.
    EXPECT_NE(first.find("\"thermal\":true"), std::string::npos);
  }
}

// --- Replay determinism ----------------------------------------------------

// The printed-seed contract: replaying a seed sequentially (threads=1, one
// request at a time) produces a byte-identical response transcript.
std::string sequential_transcript(std::uint64_t seed) {
  fault::PlanOptions plan_options;
  plan_options.seed = seed;
  fault::FaultPlan plan{plan_options};
  fault::ScopedPlan scope{&plan};

  Service::Options options = chaos_options(2);
  options.threads = 1;
  Service service{options};
  std::string transcript;
  for (const v1::ExperimentRequest& request : chaos_batch()) {
    const Service::Ticket ticket = service.submit(request);
    transcript += format_response_line(ticket.wait());
    transcript += '\n';
  }
  return transcript;
}

TEST(ChaosReplay, SameSeedReproducesTheRunByteForByte) {
  for (const std::uint64_t seed : {3ULL, 17ULL, 42ULL}) {
    const std::string first = sequential_transcript(seed);
    const std::string second = sequential_transcript(seed);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_FALSE(first.empty());
  }
}

TEST(ChaosReplay, DifferentSeedsProduceDifferentSchedules) {
  // Not a tautology: the schedule digest is the replayability witness the
  // failure report prints, so distinct seeds must actually diverge on it.
  const std::vector<std::string> keys = slice_keys();
  fault::PlanOptions a_options;
  a_options.seed = 1001;
  fault::PlanOptions b_options;
  b_options.seed = 1002;
  const fault::FaultPlan a{a_options};
  const fault::FaultPlan b{b_options};
  EXPECT_NE(a.schedule_digest(keys, 16), b.schedule_digest(keys, 16));
  const fault::FaultPlan a_twin{a_options};
  EXPECT_EQ(a.schedule_digest(keys, 16), a_twin.schedule_digest(keys, 16));
}

// --- Wire chaos ------------------------------------------------------------

TEST(ChaosWire, MutatedRequestLinesNeverCrashTheParser) {
  // Exhaustively mutate a canonical request line the way the wire site
  // does (every truncation length, every single-byte flip position) and
  // feed each through the full inbound path: the parser must return a
  // clean verdict — parsed or structured error — for every mutation.
  v1::ExperimentRequest canonical;
  canonical.id = 7;
  canonical.program = "NB";
  canonical.input_index = 2;
  canonical.config = "default";
  const std::string line = format_request_line(canonical);

  fault::PlanOptions plan_options;
  plan_options.seed = 77;
  const fault::FaultPlan plan{plan_options};
  std::size_t rejected = 0, parsed = 0;
  for (std::size_t pos = 0; pos < line.size(); ++pos) {
    const fault::Fault truncate{fault::Kind::kWireTruncate, pos};
    const fault::Fault corrupt{fault::Kind::kWireCorrupt, pos};
    for (const fault::Fault& f : {truncate, corrupt}) {
      const std::string mutated = fault::apply_wire(plan, "inbound", f, line);
      v1::ExperimentRequest out;
      std::string error;
      if (parse_request_line(mutated, out, error)) {
        ++parsed;
      } else {
        ++rejected;
        EXPECT_FALSE(error.empty()) << "silent rejection of: " << mutated;
      }
      // Health sniffing must be equally robust.
      is_health_request(mutated);
    }
  }
  // Sanity: the sweep actually exercised both outcomes.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(rejected + parsed, line.size());
}

TEST(ChaosWire, EndToEndInboundFaultsYieldStructuredResponses) {
  // A service fed heavily corrupted wire traffic answers every line that
  // still parses and never deadlocks or crashes; corrupt lines that reach
  // the service as different-but-valid requests are indistinguishable
  // from legitimate traffic, which is exactly the contract.
  fault::PlanOptions plan_options;
  plan_options.seed = 202;
  plan_options.wire_rate = 1.0;
  fault::FaultPlan plan{plan_options};
  fault::ScopedPlan scope{&plan};

  Service service{chaos_options(2)};
  const std::vector<v1::ExperimentRequest> batch = chaos_batch();
  std::size_t answered = 0, rejected = 0;
  for (const v1::ExperimentRequest& request : batch) {
    const std::string mutated =
        fault::filter_wire_line("inbound", format_request_line(request));
    if (mutated.empty()) continue;  // truncated to nothing
    v1::ExperimentRequest out;
    std::string error;
    if (!parse_request_line(mutated, out, error)) {
      ++rejected;
      continue;
    }
    Service::Ticket ticket = service.submit(out);
    const Response& response = ticket.wait();  // ticket owns the storage
    ++answered;
    // Whatever the mutation produced, the response is terminal and typed.
    EXPECT_NE(to_string(response.status), std::string_view("unknown"));
  }
  EXPECT_EQ(plan.applied(fault::Site::kWire, "inbound"),
            plan.occurrences(fault::Site::kWire, "inbound"));
  EXPECT_GT(rejected + answered, 0u);
}

}  // namespace
}  // namespace repro::serve
