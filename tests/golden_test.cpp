// Golden-result snapshot: median time/energy/power of a fixed
// 10-experiment slice, compared exactly (full double precision) against
// tests/golden/experiments.txt. Any refactor of the simulator, power
// model, sensor or study harness that silently shifts results fails here
// before it can corrupt the figure reproductions.
//
// To regenerate after an INTENTIONAL model change:
//   REPRO_UPDATE_GOLDEN=1 ./test_golden
// then review the diff of tests/golden/experiments.txt like any other
// code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/study.hpp"
#include "repro/api.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

#ifndef REPRO_GOLDEN_DIR
#error "REPRO_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace repro::core {
namespace {

struct SliceEntry {
  const char* program;
  std::size_t input;
  const char* config;
};

// Fixed slice spanning all five suites, all four configurations, regular
// and irregular codes, and one experiment that is unusable (the
// data-driven L-BFS-wlc variant finishes too fast for the power sensor,
// paper §V.B.1) so the snapshot also pins the unusable path.
constexpr SliceEntry kSlice[10] = {
    {"NB", 2, "default"},  {"LBM", 0, "614"},    {"SGEMM", 0, "default"},
    {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
    {"FFT", 0, "default"}, {"MD", 0, "614"},     {"L-BFS-wlc", 2, "default"},
    {"BH", 0, "default"},
};

// %.17g round-trips IEEE-754 doubles exactly, so string equality here is
// value equality of the underlying bits (modulo -0.0, which never occurs:
// all metrics are nonnegative).
std::string format_line(const std::string& key, const ExperimentResult& r) {
  char line[256];
  std::snprintf(line, sizeof line,
                "%s usable=%d time_s=%.17g energy_j=%.17g power_w=%.17g\n",
                key.c_str(), r.usable ? 1 : 0, r.time_s, r.energy_j, r.power_w);
  return line;
}

std::string render_slice() {
  suites::register_all_workloads();
  Study study;
  std::string out;
  for (const SliceEntry& e : kSlice) {
    const workloads::Workload* w = workloads::Registry::instance().find(e.program);
    EXPECT_NE(w, nullptr) << e.program;
    const sim::GpuConfig& config = sim::config_by_name(e.config);
    const ExperimentResult& r = study.measure(*w, e.input, config);
    out += format_line(experiment_key(*w, e.input, config), r);
  }
  return out;
}

TEST(Golden, ExperimentSliceMatchesSnapshot) {
  const std::string path = std::string(REPRO_GOLDEN_DIR) + "/experiments.txt";
  const std::string actual = render_slice();

  if (repro::Options::global().update_golden) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with REPRO_UPDATE_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "golden mismatch: a sim/power/sensor/study change shifted recorded "
         "results; if intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and "
         "review the diff";
}

}  // namespace
}  // namespace repro::core
