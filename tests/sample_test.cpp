// Statistical-calibration suite of the sampled "rabbit" mode (DESIGN.md
// §13). The error-bound contract under test:
//
//   * Coverage: the stated nominal-95% confidence intervals must cover the
//     full-timing golden value at >= 90% empirical rate per metric, over
//     hundreds of seeded runs of the golden slice. Shards split the slice
//     across test cases so ctest -j (and the TSan preset) parallelizes.
//   * Exactness: exact mode and fraction >= 1 are passthroughs, bit-identical
//     to core::Study::measure for every registered program and configuration.
//   * Determinism: equal (study seeds, experiment, options) produce bit-equal
//     results, across repeated calls and across Study instances.
//   * Convergence: the sampling component of the energy half-width shrinks
//     roughly as 1/sqrt(sampled seconds) as the fraction rises.
//
// Everything here is deterministic: there are no flaky statistical
// assertions, only fixed seeds with margins validated at calibration time.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "repro/api.hpp"
#include "sample/sample.hpp"
#include "sim/gpuconfig.hpp"
#include "suites/factories.hpp"
#include "workloads/registry.hpp"

namespace repro::sample {
namespace {

const workloads::Workload* find_workload(const char* name) {
  suites::register_all_workloads();
  return workloads::Registry::instance().find(name);
}

void expect_base_bit_identical(const core::ExperimentResult& actual,
                               const core::ExperimentResult& golden,
                               const std::string& context) {
  EXPECT_EQ(actual.usable, golden.usable) << context;
  // EXPECT_EQ on doubles is exact comparison — that is the point.
  EXPECT_EQ(actual.time_s, golden.time_s) << context;
  EXPECT_EQ(actual.energy_j, golden.energy_j) << context;
  EXPECT_EQ(actual.power_w, golden.power_w) << context;
  EXPECT_EQ(actual.true_active_s, golden.true_active_s) << context;
  EXPECT_EQ(actual.time_spread, golden.time_spread) << context;
  EXPECT_EQ(actual.energy_spread, golden.energy_spread) << context;
}

bool covers(const Interval& ci, double value) {
  return value >= ci.low && value <= ci.high;
}

// --- Coverage calibration --------------------------------------------------

// One shard: `n_seeds` sampled runs of one golden-slice experiment, the
// empirical CI coverage per metric checked against the >= 90% contract.
// Experiments whose traces are too small to sample (passthrough) instead
// assert bit-identity on every seed.
void run_calibration(const char* program, std::size_t input,
                     const char* config, Mode mode, int n_seeds) {
  const workloads::Workload* w = find_workload(program);
  ASSERT_NE(w, nullptr) << program;
  const sim::GpuConfig& c = sim::config_by_name(config);
  core::Study study;
  const core::ExperimentResult golden = study.measure(*w, input, c);
  ASSERT_TRUE(golden.usable) << program;

  int sampled_runs = 0, cov_t = 0, cov_e = 0, cov_p = 0;
  for (int s = 0; s < n_seeds; ++s) {
    SampleOptions options;
    options.mode = mode;
    options.fraction = 0.10;
    options.seed = 1000 + static_cast<std::uint64_t>(s);
    const SampledResult r = measure_sampled(study, *w, input, c, options);
    const std::string context = std::string(program) + "/" + config +
                                " seed=" + std::to_string(options.seed);
    if (!r.sampled) {
      // Too few clusters to sample: the passthrough contract applies.
      expect_base_bit_identical(r.base, golden, context + " (passthrough)");
      continue;
    }
    ++sampled_runs;
    ASSERT_TRUE(r.base.usable) << context;
    EXPECT_GT(r.fraction, 0.0) << context;
    EXPECT_LE(r.fraction, 1.0) << context;
    EXPECT_GE(r.clusters_sampled, 2u) << context;
    EXPECT_LE(r.clusters_sampled, r.clusters) << context;
    EXPECT_FALSE(r.strata.empty()) << context;
    // The interval must be a proper interval around the estimate.
    EXPECT_LT(r.time_ci.low, r.time_ci.high) << context;
    EXPECT_LT(r.energy_ci.low, r.energy_ci.high) << context;
    EXPECT_LT(r.power_ci.low, r.power_ci.high) << context;
    EXPECT_TRUE(covers(r.time_ci, r.base.time_s)) << context;
    EXPECT_TRUE(covers(r.energy_ci, r.base.energy_j)) << context;
    EXPECT_TRUE(covers(r.power_ci, r.base.power_w)) << context;
    // Deterministic accuracy sanity: the calibration sweep measured the
    // worst actual relative error across the matrix below 5%; 10% here
    // leaves margin without weakening the coverage assertion below.
    EXPECT_LT(std::abs(r.base.time_s - golden.time_s) / golden.time_s, 0.10)
        << context;
    EXPECT_LT(std::abs(r.base.energy_j - golden.energy_j) / golden.energy_j,
              0.10)
        << context;
    cov_t += covers(r.time_ci, golden.time_s);
    cov_e += covers(r.energy_ci, golden.energy_j);
    cov_p += covers(r.power_ci, golden.power_w);
  }
  if (sampled_runs == 0) return;  // pure passthrough slice entry
  const int need = static_cast<int>(std::ceil(0.90 * sampled_runs));
  EXPECT_GE(cov_t, need) << program << ": time CI coverage "
                         << cov_t << "/" << sampled_runs;
  EXPECT_GE(cov_e, need) << program << ": energy CI coverage "
                         << cov_e << "/" << sampled_runs;
  EXPECT_GE(cov_p, need) << program << ": power CI coverage "
                         << cov_p << "/" << sampled_runs;
}

// The golden slice (one entry per shard, 30 seeds each), stratified mode.
// Together with the systematic shards below this exercises 310 seeded
// calibration runs.
TEST(SampleCalibration, StratifiedNB) {
  run_calibration("NB", 2, "default", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedLBM) {
  run_calibration("LBM", 0, "614", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedSGEMM) {
  run_calibration("SGEMM", 0, "default", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedTPACF) {
  run_calibration("TPACF", 0, "ecc", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedBP) {
  run_calibration("BP", 0, "default", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedLBFS) {
  run_calibration("L-BFS", 2, "324", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedFFT) {
  run_calibration("FFT", 0, "default", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedMD) {
  run_calibration("MD", 0, "614", Mode::kStratified, 30);
}
TEST(SampleCalibration, StratifiedBH) {
  run_calibration("BH", 0, "default", Mode::kStratified, 30);
}
TEST(SampleCalibration, SystematicTPACF) {
  run_calibration("TPACF", 0, "ecc", Mode::kSystematic, 20);
}
TEST(SampleCalibration, SystematicBH) {
  run_calibration("BH", 0, "default", Mode::kSystematic, 20);
}

// --- Exact-mode bit-identity ----------------------------------------------

// Exact mode AND fraction >= 1 must reproduce the golden `Measurements`
// bit-for-bit for every registered program (variants included, every
// input) under one configuration per shard.
void expect_exact_identity(const char* config_name) {
  suites::register_all_workloads();
  const sim::GpuConfig& c = sim::config_by_name(config_name);
  core::Study study;
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    for (std::size_t i = 0; i < w->inputs().size(); ++i) {
      const core::ExperimentResult golden = study.measure(*w, i, c);
      const std::string key = core::experiment_key(*w, i, c);

      SampleOptions exact;  // sampling disabled
      exact.mode = Mode::kExact;
      exact.fraction = 0.25;
      exact.seed = 9;
      const SampledResult a = measure_sampled(study, *w, i, c, exact);

      SampleOptions full;  // a sampled mode asked for the whole trace
      full.mode = Mode::kStratified;
      full.fraction = 1.0;
      full.seed = 7;
      const SampledResult b = measure_sampled(study, *w, i, c, full);

      for (const SampledResult* r : {&a, &b}) {
        EXPECT_FALSE(r->sampled) << key;
        EXPECT_EQ(r->fraction, 1.0) << key;
        expect_base_bit_identical(r->base, golden, key);
      }
    }
  }
}

TEST(SampleExactIdentity, EveryProgramDefault) {
  expect_exact_identity("default");
}
TEST(SampleExactIdentity, EveryProgram614) { expect_exact_identity("614"); }
TEST(SampleExactIdentity, EveryProgram324) { expect_exact_identity("324"); }
TEST(SampleExactIdentity, EveryProgramEcc) { expect_exact_identity("ecc"); }

// --- Determinism -----------------------------------------------------------

void expect_sampled_bit_equal(const SampledResult& a, const SampledResult& b,
                              const std::string& context) {
  EXPECT_EQ(a.sampled, b.sampled) << context;
  EXPECT_EQ(a.fraction, b.fraction) << context;
  EXPECT_EQ(a.passes, b.passes) << context;
  EXPECT_EQ(a.clusters, b.clusters) << context;
  EXPECT_EQ(a.clusters_sampled, b.clusters_sampled) << context;
  expect_base_bit_identical(a.base, b.base, context);
  EXPECT_EQ(a.time_ci.low, b.time_ci.low) << context;
  EXPECT_EQ(a.time_ci.high, b.time_ci.high) << context;
  EXPECT_EQ(a.energy_ci.low, b.energy_ci.low) << context;
  EXPECT_EQ(a.energy_ci.high, b.energy_ci.high) << context;
  EXPECT_EQ(a.power_ci.low, b.power_ci.low) << context;
  EXPECT_EQ(a.power_ci.high, b.power_ci.high) << context;
  ASSERT_EQ(a.strata.size(), b.strata.size()) << context;
  for (std::size_t i = 0; i < a.strata.size(); ++i) {
    EXPECT_EQ(a.strata[i].kernel, b.strata[i].kernel) << context;
    EXPECT_EQ(a.strata[i].clusters, b.strata[i].clusters) << context;
    EXPECT_EQ(a.strata[i].sampled, b.strata[i].sampled) << context;
    EXPECT_EQ(a.strata[i].structural_s, b.strata[i].structural_s) << context;
    EXPECT_EQ(a.strata[i].sampled_s, b.strata[i].sampled_s) << context;
    EXPECT_EQ(a.strata[i].energy_ratio, b.strata[i].energy_ratio) << context;
  }
}

TEST(SampleDeterminism, SameSeedBitEqualAcrossCallsAndStudies) {
  // QTC is the phase-dense workload (300k launches, ~150 clusters): its
  // estimates genuinely move with the seed, so bit-equality is non-trivial.
  const workloads::Workload* w = find_workload("QTC");
  ASSERT_NE(w, nullptr);
  const sim::GpuConfig& c = sim::config_by_name("default");
  core::Study study_a, study_b;
  for (const std::uint64_t seed : {1ull, 7ull, 123ull}) {
    SampleOptions options;
    options.mode = Mode::kStratified;
    options.fraction = 0.10;
    options.seed = seed;
    const std::string context = "QTC/0/default seed=" + std::to_string(seed);
    const SampledResult first = measure_sampled(study_a, *w, 0, c, options);
    const SampledResult again = measure_sampled(study_a, *w, 0, c, options);
    const SampledResult other = measure_sampled(study_b, *w, 0, c, options);
    ASSERT_TRUE(first.sampled) << context;
    expect_sampled_bit_equal(first, again, context + " (repeat call)");
    expect_sampled_bit_equal(first, other, context + " (fresh study)");
  }
}

TEST(SampleDeterminism, DifferentSeedsSelectDifferentClusters) {
  const workloads::Workload* w = find_workload("QTC");
  ASSERT_NE(w, nullptr);
  const sim::GpuConfig& c = sim::config_by_name("default");
  core::Study study;
  std::vector<double> estimates;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SampleOptions options;
    options.mode = Mode::kStratified;
    options.fraction = 0.10;
    options.seed = seed;
    const SampledResult r = measure_sampled(study, *w, 0, c, options);
    ASSERT_TRUE(r.sampled);
    estimates.push_back(r.base.energy_j);
  }
  // The seed must actually steer selection: at least one pair of seeds
  // yields a different estimate (all-equal would mean a dead knob).
  bool any_differ = false;
  for (std::size_t i = 1; i < estimates.size(); ++i) {
    any_differ = any_differ || estimates[i] != estimates[0];
  }
  EXPECT_TRUE(any_differ) << "4 seeds produced identical estimates";
}

// --- Half-width convergence ------------------------------------------------

// Stratified-sampling theory: the sampling variance of the energy ratio
// estimator scales with the unsampled remainder over the sampled count, so
// the guard-corrected energy half-width at fraction 0.4 must be well below
// the one at fraction 0.1 (~1/sqrt(n) in sampled seconds; the calibration
// sweep measured ratios of 0.60-0.78 on these entries, bound 0.90 with
// the raw widths strictly decreasing).
void expect_energy_half_width_shrinks(const char* program, std::size_t input,
                                      const char* config) {
  const workloads::Workload* w = find_workload(program);
  ASSERT_NE(w, nullptr) << program;
  const sim::GpuConfig& c = sim::config_by_name(config);
  core::Study study;
  const double guard_rel = SampleOptions{}.guard_rel;
  double hw_small = 0.0, hw_large = 0.0, deguarded_small = 0.0,
         deguarded_large = 0.0;
  const int n_seeds = 10;
  for (int s = 0; s < n_seeds; ++s) {
    for (const double fraction : {0.10, 0.40}) {
      SampleOptions options;
      options.mode = Mode::kStratified;
      options.fraction = fraction;
      options.seed = 500 + static_cast<std::uint64_t>(s);
      const SampledResult r = measure_sampled(study, *w, input, c, options);
      ASSERT_TRUE(r.sampled) << program << " fraction=" << fraction;
      const double hw = 0.5 * (r.energy_ci.high - r.energy_ci.low);
      const double guard = guard_rel * std::abs(r.base.energy_j);
      (fraction < 0.25 ? hw_small : hw_large) += hw / n_seeds;
      (fraction < 0.25 ? deguarded_small : deguarded_large) +=
          (hw - guard) / n_seeds;
    }
  }
  EXPECT_LT(hw_large, hw_small) << program;
  EXPECT_GT(deguarded_small, 0.0) << program;
  EXPECT_LT(deguarded_large, 0.90 * deguarded_small) << program;
}

TEST(SampleHalfWidth, EnergyShrinksWithFractionQTC) {
  expect_energy_half_width_shrinks("QTC", 0, "default");
}
TEST(SampleHalfWidth, EnergyShrinksWithFractionLBFS) {
  expect_energy_half_width_shrinks("L-BFS", 2, "324");
}

// --- Escalation ------------------------------------------------------------

TEST(SampleEscalation, TargetRelErrorEscalatesOrFallsBackExactly) {
  const workloads::Workload* w = find_workload("BH");
  ASSERT_NE(w, nullptr);
  const sim::GpuConfig& c = sim::config_by_name("default");
  core::Study study;
  const core::ExperimentResult golden = study.measure(*w, 0, c);

  // An impossible target must end in the exact passthrough, bit-identical.
  SampleOptions impossible;
  impossible.mode = Mode::kStratified;
  impossible.fraction = 0.10;
  impossible.target_rel_error = 1e-9;
  const SampledResult fallback = measure_sampled(study, *w, 0, c, impossible);
  EXPECT_FALSE(fallback.sampled);
  expect_base_bit_identical(fallback.base, golden, "impossible target");

  // A loose target is met on the first pass without escalation.
  SampleOptions loose;
  loose.mode = Mode::kStratified;
  loose.fraction = 0.10;
  loose.target_rel_error = 0.5;
  const SampledResult easy = measure_sampled(study, *w, 0, c, loose);
  ASSERT_TRUE(easy.sampled);
  EXPECT_EQ(easy.passes, 1);
}

// --- Environment knobs -----------------------------------------------------

TEST(SampleOptionsEnv, KnobsParseThroughGlobalOptions) {
  // Options::from_env is the repo's single getenv site; the REPRO_SAMPLE_*
  // knobs must land in repro::Options (and from there seed from_global).
  ::setenv("REPRO_SAMPLE_MODE", "stratified", 1);
  ::setenv("REPRO_SAMPLE_FRACTION", "0.25", 1);
  ::setenv("REPRO_SAMPLE_TARGET_REL_ERR", "0.03", 1);
  ::setenv("REPRO_SAMPLE_SEED", "77", 1);
  const repro::Options parsed = repro::Options::from_env();
  EXPECT_EQ(parsed.sample_mode, "stratified");
  EXPECT_EQ(parsed.sample_fraction, 0.25);
  EXPECT_EQ(parsed.sample_target_rel_error, 0.03);
  EXPECT_EQ(parsed.sample_seed, 77u);

  ::setenv("REPRO_SAMPLE_MODE", "", 1);
  ::setenv("REPRO_SAMPLE_FRACTION", "bogus", 1);
  ::setenv("REPRO_SAMPLE_TARGET_REL_ERR", "-1", 1);
  ::setenv("REPRO_SAMPLE_SEED", "notanumber", 1);
  const repro::Options defaulted = repro::Options::from_env();
  EXPECT_EQ(defaulted.sample_mode, "exact");
  EXPECT_EQ(defaulted.sample_fraction, 0.0);
  EXPECT_EQ(defaulted.sample_target_rel_error, 0.0);
  EXPECT_EQ(defaulted.sample_seed, 0u);
  ::unsetenv("REPRO_SAMPLE_MODE");
  ::unsetenv("REPRO_SAMPLE_FRACTION");
  ::unsetenv("REPRO_SAMPLE_TARGET_REL_ERR");
  ::unsetenv("REPRO_SAMPLE_SEED");
}

// --- Mode parsing ----------------------------------------------------------

TEST(SampleMode, ParseAndFormatRoundTrip) {
  for (const Mode mode :
       {Mode::kExact, Mode::kStratified, Mode::kSystematic}) {
    Mode parsed{};
    EXPECT_TRUE(parse_mode(to_string(mode), parsed));
    EXPECT_EQ(parsed, mode);
  }
  Mode untouched = Mode::kSystematic;
  EXPECT_FALSE(parse_mode("rabbit", untouched));
  EXPECT_EQ(untouched, Mode::kSystematic);
  EXPECT_FALSE(parse_mode("", untouched));
}

TEST(SampleMode, StudentTQuantileTable) {
  EXPECT_NEAR(student_t975(1), 12.706, 1e-3);
  EXPECT_NEAR(student_t975(2), 4.303, 1e-3);
  EXPECT_NEAR(student_t975(10), 2.228, 1e-3);
  EXPECT_NEAR(student_t975(30), 2.042, 1e-3);
  EXPECT_NEAR(student_t975(1000), 1.96, 1e-6);
  // Clamped, not UB, for degenerate degrees of freedom.
  EXPECT_EQ(student_t975(0), student_t975(1));
  EXPECT_EQ(student_t975(-5), student_t975(1));
}

}  // namespace
}  // namespace repro::sample
