// End-to-end tests of the study harness and the suite aggregation,
// including the paper's headline directional claims on a few programs.
#include <gtest/gtest.h>

#include "core/aggregate.hpp"
#include "core/study.hpp"
#include "core/variability.hpp"
#include "sim/gpuconfig.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace repro::core {
namespace {

using sim::config_by_name;
using workloads::Registry;
using workloads::Workload;

const Workload& prog(const char* name) {
  suites::register_all_workloads();
  const Workload* w = Registry::instance().find(name);
  EXPECT_NE(w, nullptr) << name;
  return *w;
}

TEST(Study, MeasurementRoundTrip) {
  Study study;
  // The long NB input: sensor lag smearing is relatively small on it.
  const ExperimentResult& r = study.measure(prog("NB"), 2, config_by_name("default"));
  ASSERT_TRUE(r.usable);
  EXPECT_GT(r.time_s, 1.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.power_w, 30.0);
  EXPECT_LT(r.power_w, 225.0);
  EXPECT_EQ(r.repetitions.size(), 3u);
  // Sensor-based time tracks ground truth within sampling error.
  EXPECT_NEAR(r.time_s / r.true_active_s, 1.0, 0.15);
}

TEST(Study, ResultsCached) {
  Study study;
  const ExperimentResult& a = study.measure(prog("NB"), 0, config_by_name("default"));
  const ExperimentResult& b = study.measure(prog("NB"), 0, config_by_name("default"));
  EXPECT_EQ(&a, &b);
}

TEST(Study, DeterministicAcrossInstances) {
  Study s1, s2;
  const ExperimentResult& a = s1.measure(prog("LBM"), 0, config_by_name("default"));
  const ExperimentResult& b = s2.measure(prog("LBM"), 0, config_by_name("default"));
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(Study, VariabilityWithinPaperTable2Range) {
  // Paper Table 2: max spread 8.7%, average ~1-2%.
  Study study;
  for (const char* name : {"NB", "LBM", "SGEMM", "L-BFS"}) {
    const ExperimentResult& r =
        study.measure(prog(name), 0, config_by_name("default"));
    ASSERT_TRUE(r.usable) << name;
    EXPECT_LT(r.time_spread, 0.20) << name;
    EXPECT_LT(r.energy_spread, 0.20) << name;
  }
}

TEST(Study, ComputeBoundSlowsAt614MemoryBoundDoesNot) {
  Study study;
  const MetricRatios nb = ratios(study.measure(prog("NB"), 1, config_by_name("614")),
                                 study.measure(prog("NB"), 1, config_by_name("default")));
  ASSERT_TRUE(nb.usable);
  EXPECT_GT(nb.time, 1.08);  // compute-bound: ~15% slower
  EXPECT_LT(nb.power, 0.88); // super-linear power drop (paper: NB -22%)

  const MetricRatios bp = ratios(study.measure(prog("BP"), 0, config_by_name("614")),
                                 study.measure(prog("BP"), 0, config_by_name("default")));
  ASSERT_TRUE(bp.usable);
  EXPECT_LT(bp.time, 1.06);  // memory-bound: barely affected
}

TEST(Study, LbmCollapsesAt324) {
  // Paper §V.A.2: LBM shows the largest runtime increase (7.75x).
  Study study;
  const MetricRatios r = ratios(study.measure(prog("LBM"), 0, config_by_name("324")),
                                study.measure(prog("LBM"), 0, config_by_name("614")));
  if (r.usable) {
    EXPECT_GT(r.time, 6.0);
    EXPECT_LT(r.time, 9.5);
    EXPECT_GT(r.energy, 1.5);  // energy rises despite lower power
    EXPECT_LT(r.power, 0.55);
  }
}

TEST(Study, EccHurtsMemoryBoundNotComputeBound) {
  Study study;
  const MetricRatios bp = ratios(study.measure(prog("BP"), 0, config_by_name("ecc")),
                                 study.measure(prog("BP"), 0, config_by_name("default")));
  ASSERT_TRUE(bp.usable);
  EXPECT_GT(bp.time, 1.05);
  EXPECT_GT(bp.energy, 1.05);

  const MetricRatios mriq =
      ratios(study.measure(prog("MRIQ"), 0, config_by_name("ecc")),
             study.measure(prog("MRIQ"), 0, config_by_name("default")));
  ASSERT_TRUE(mriq.usable);
  EXPECT_NEAR(mriq.time, 1.0, 0.04);
}

TEST(Study, DataDrivenBfsVariantsUnmeasurable) {
  // Paper §V.B.1: wlc/wlw finish too fast for the power sensor.
  Study study;
  EXPECT_FALSE(study.measure(prog("L-BFS-wlw"), 2, config_by_name("default")).usable);
  EXPECT_FALSE(study.measure(prog("L-BFS-wlc"), 2, config_by_name("default")).usable);
}

TEST(Ratios, UnusableProp) {
  ExperimentResult bad;
  ExperimentResult good;
  good.usable = true;
  good.time_s = good.energy_j = good.power_w = 1.0;
  EXPECT_FALSE(ratios(bad, good).usable);
  EXPECT_FALSE(ratios(good, bad).usable);
  EXPECT_TRUE(ratios(good, good).usable);
}

TEST(Variability, PerturbPreservesStructure) {
  sim::TraceResult base;
  sim::Phase p;
  p.kernel_name = "k";
  p.duration_s = 2.0;
  p.activity.fp32_ops = 100.0;
  base.phases.push_back(p);
  base.active_time_s = 2.0;
  base.total_activity.fp32_ops = 100.0;

  util::Rng rng{5};
  const sim::TraceResult out = perturb(base, workloads::Regularity::kRegular, rng);
  ASSERT_EQ(out.phases.size(), 1u);
  EXPECT_NEAR(out.phases[0].duration_s, 2.0, 0.5);
  EXPECT_NE(out.phases[0].duration_s, 2.0);
  EXPECT_NEAR(out.active_time_s, out.phases[0].duration_s, 1e-12);
}

TEST(Variability, IrregularNoisier) {
  sim::TraceResult base;
  sim::Phase p;
  p.kernel_name = "k";
  p.duration_s = 1.0;
  base.phases.push_back(p);

  double reg_ss = 0.0, irr_ss = 0.0;
  util::Rng rng{11};
  for (int i = 0; i < 400; ++i) {
    const auto reg = perturb(base, workloads::Regularity::kRegular, rng);
    const auto irr = perturb(base, workloads::Regularity::kIrregular, rng);
    reg_ss += (reg.phases[0].duration_s - 1.0) * (reg.phases[0].duration_s - 1.0);
    irr_ss += (irr.phases[0].duration_s - 1.0) * (irr.phases[0].duration_s - 1.0);
  }
  EXPECT_GT(irr_ss, reg_ss);
}

TEST(Aggregate, SuiteRatiosSkipUnusableAndVariants) {
  suites::register_all_workloads();
  Study study;
  const auto entries = suite_ratios(study, "CUDA SDK", config_by_name("default"),
                                    config_by_name("614"));
  // 4 SDK primaries: EIP, EP (1 input each), NB (3 inputs), SC (1 input).
  EXPECT_EQ(entries.size(), 6u);
  const SuiteRatioBox box = summarize("CUDA SDK", entries);
  EXPECT_GT(box.entries, 0);
  EXPECT_LE(box.time.min, box.time.median);
  EXPECT_LE(box.time.median, box.time.max);
  // Power must drop across the whole suite (paper §V.A.1).
  EXPECT_LT(box.power.max, 1.02);
}

TEST(Aggregate, SuitePowersPlausible) {
  suites::register_all_workloads();
  Study study;
  const auto powers = suite_powers(study, "CUDA SDK", config_by_name("default"));
  ASSERT_FALSE(powers.empty());
  for (const double p : powers) {
    EXPECT_GT(p, 26.0);
    EXPECT_LT(p, 225.0);
  }
}

}  // namespace
}  // namespace repro::core
