file(REMOVE_RECURSE
  "CMakeFiles/calibration.dir/calibration.cpp.o"
  "CMakeFiles/calibration.dir/calibration.cpp.o.d"
  "calibration"
  "calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
