
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/k20power/CMakeFiles/repro_k20power.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/repro_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/repro_power.dir/DependInfo.cmake"
  "/root/repo/build/src/suites/CMakeFiles/repro_suites.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/repro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/repro_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
