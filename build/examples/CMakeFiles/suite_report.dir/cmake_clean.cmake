file(REMOVE_RECURSE
  "CMakeFiles/suite_report.dir/suite_report.cpp.o"
  "CMakeFiles/suite_report.dir/suite_report.cpp.o.d"
  "suite_report"
  "suite_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
