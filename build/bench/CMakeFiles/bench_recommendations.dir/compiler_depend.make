# Empty compiler generated dependencies file for bench_recommendations.
# This may be replaced when dependencies are built.
