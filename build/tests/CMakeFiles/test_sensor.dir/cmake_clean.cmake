file(REMOVE_RECURSE
  "CMakeFiles/test_sensor.dir/sensor_test.cpp.o"
  "CMakeFiles/test_sensor.dir/sensor_test.cpp.o.d"
  "test_sensor"
  "test_sensor.pdb"
  "test_sensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
