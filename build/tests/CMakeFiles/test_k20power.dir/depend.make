# Empty dependencies file for test_k20power.
# This may be replaced when dependencies are built.
