file(REMOVE_RECURSE
  "CMakeFiles/test_k20power.dir/k20power_test.cpp.o"
  "CMakeFiles/test_k20power.dir/k20power_test.cpp.o.d"
  "test_k20power"
  "test_k20power.pdb"
  "test_k20power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_k20power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
