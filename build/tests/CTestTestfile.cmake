# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_sensor[1]_include.cmake")
include("/root/repo/build/tests/test_k20power[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_suites[1]_include.cmake")
