# Empty dependencies file for repro_suites.
# This may be replaced when dependencies are built.
