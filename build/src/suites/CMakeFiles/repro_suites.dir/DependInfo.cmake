
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suites/common.cpp" "src/suites/CMakeFiles/repro_suites.dir/common.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/common.cpp.o.d"
  "/root/repo/src/suites/lonestar/barnes_hut.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/barnes_hut.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/barnes_hut.cpp.o.d"
  "/root/repo/src/suites/lonestar/bfs.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/bfs.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/bfs.cpp.o.d"
  "/root/repo/src/suites/lonestar/dmr.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/dmr.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/dmr.cpp.o.d"
  "/root/repo/src/suites/lonestar/inputs.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/inputs.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/inputs.cpp.o.d"
  "/root/repo/src/suites/lonestar/mst.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/mst.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/mst.cpp.o.d"
  "/root/repo/src/suites/lonestar/nsp.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/nsp.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/nsp.cpp.o.d"
  "/root/repo/src/suites/lonestar/pta.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/pta.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/pta.cpp.o.d"
  "/root/repo/src/suites/lonestar/sssp.cpp" "src/suites/CMakeFiles/repro_suites.dir/lonestar/sssp.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/lonestar/sssp.cpp.o.d"
  "/root/repo/src/suites/parboil/cutcp.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/cutcp.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/cutcp.cpp.o.d"
  "/root/repo/src/suites/parboil/histo.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/histo.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/histo.cpp.o.d"
  "/root/repo/src/suites/parboil/lbm.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/lbm.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/lbm.cpp.o.d"
  "/root/repo/src/suites/parboil/mriq.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/mriq.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/mriq.cpp.o.d"
  "/root/repo/src/suites/parboil/pbfs.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/pbfs.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/pbfs.cpp.o.d"
  "/root/repo/src/suites/parboil/sad.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/sad.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/sad.cpp.o.d"
  "/root/repo/src/suites/parboil/sgemm.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/sgemm.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/sgemm.cpp.o.d"
  "/root/repo/src/suites/parboil/stencil.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/stencil.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/stencil.cpp.o.d"
  "/root/repo/src/suites/parboil/tpacf.cpp" "src/suites/CMakeFiles/repro_suites.dir/parboil/tpacf.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/parboil/tpacf.cpp.o.d"
  "/root/repo/src/suites/register_all.cpp" "src/suites/CMakeFiles/repro_suites.dir/register_all.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/register_all.cpp.o.d"
  "/root/repo/src/suites/rodinia/backprop.cpp" "src/suites/CMakeFiles/repro_suites.dir/rodinia/backprop.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/rodinia/backprop.cpp.o.d"
  "/root/repo/src/suites/rodinia/gaussian.cpp" "src/suites/CMakeFiles/repro_suites.dir/rodinia/gaussian.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/rodinia/gaussian.cpp.o.d"
  "/root/repo/src/suites/rodinia/mummer.cpp" "src/suites/CMakeFiles/repro_suites.dir/rodinia/mummer.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/rodinia/mummer.cpp.o.d"
  "/root/repo/src/suites/rodinia/nn.cpp" "src/suites/CMakeFiles/repro_suites.dir/rodinia/nn.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/rodinia/nn.cpp.o.d"
  "/root/repo/src/suites/rodinia/nw.cpp" "src/suites/CMakeFiles/repro_suites.dir/rodinia/nw.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/rodinia/nw.cpp.o.d"
  "/root/repo/src/suites/rodinia/pathfinder.cpp" "src/suites/CMakeFiles/repro_suites.dir/rodinia/pathfinder.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/rodinia/pathfinder.cpp.o.d"
  "/root/repo/src/suites/rodinia/rbfs.cpp" "src/suites/CMakeFiles/repro_suites.dir/rodinia/rbfs.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/rodinia/rbfs.cpp.o.d"
  "/root/repo/src/suites/sdk/estimate_pi.cpp" "src/suites/CMakeFiles/repro_suites.dir/sdk/estimate_pi.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/sdk/estimate_pi.cpp.o.d"
  "/root/repo/src/suites/sdk/nbody.cpp" "src/suites/CMakeFiles/repro_suites.dir/sdk/nbody.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/sdk/nbody.cpp.o.d"
  "/root/repo/src/suites/sdk/scan.cpp" "src/suites/CMakeFiles/repro_suites.dir/sdk/scan.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/sdk/scan.cpp.o.d"
  "/root/repo/src/suites/shoc/fft.cpp" "src/suites/CMakeFiles/repro_suites.dir/shoc/fft.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/shoc/fft.cpp.o.d"
  "/root/repo/src/suites/shoc/maxflops.cpp" "src/suites/CMakeFiles/repro_suites.dir/shoc/maxflops.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/shoc/maxflops.cpp.o.d"
  "/root/repo/src/suites/shoc/md.cpp" "src/suites/CMakeFiles/repro_suites.dir/shoc/md.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/shoc/md.cpp.o.d"
  "/root/repo/src/suites/shoc/qtc.cpp" "src/suites/CMakeFiles/repro_suites.dir/shoc/qtc.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/shoc/qtc.cpp.o.d"
  "/root/repo/src/suites/shoc/sbfs.cpp" "src/suites/CMakeFiles/repro_suites.dir/shoc/sbfs.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/shoc/sbfs.cpp.o.d"
  "/root/repo/src/suites/shoc/sort.cpp" "src/suites/CMakeFiles/repro_suites.dir/shoc/sort.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/shoc/sort.cpp.o.d"
  "/root/repo/src/suites/shoc/stencil2d.cpp" "src/suites/CMakeFiles/repro_suites.dir/shoc/stencil2d.cpp.o" "gcc" "src/suites/CMakeFiles/repro_suites.dir/shoc/stencil2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/repro_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/repro_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
