file(REMOVE_RECURSE
  "librepro_suites.a"
)
