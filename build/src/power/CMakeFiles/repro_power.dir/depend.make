# Empty dependencies file for repro_power.
# This may be replaced when dependencies are built.
