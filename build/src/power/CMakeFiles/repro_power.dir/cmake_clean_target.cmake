file(REMOVE_RECURSE
  "librepro_power.a"
)
