file(REMOVE_RECURSE
  "CMakeFiles/repro_power.dir/model.cpp.o"
  "CMakeFiles/repro_power.dir/model.cpp.o.d"
  "librepro_power.a"
  "librepro_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
