# Empty compiler generated dependencies file for repro_k20power.
# This may be replaced when dependencies are built.
