file(REMOVE_RECURSE
  "librepro_k20power.a"
)
