file(REMOVE_RECURSE
  "CMakeFiles/repro_k20power.dir/analyze.cpp.o"
  "CMakeFiles/repro_k20power.dir/analyze.cpp.o.d"
  "librepro_k20power.a"
  "librepro_k20power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_k20power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
