file(REMOVE_RECURSE
  "CMakeFiles/repro_sensor.dir/sampler.cpp.o"
  "CMakeFiles/repro_sensor.dir/sampler.cpp.o.d"
  "CMakeFiles/repro_sensor.dir/waveform.cpp.o"
  "CMakeFiles/repro_sensor.dir/waveform.cpp.o.d"
  "librepro_sensor.a"
  "librepro_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
