file(REMOVE_RECURSE
  "librepro_sensor.a"
)
