# Empty compiler generated dependencies file for repro_sensor.
# This may be replaced when dependencies are built.
