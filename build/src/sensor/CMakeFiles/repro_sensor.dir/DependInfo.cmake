
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/sampler.cpp" "src/sensor/CMakeFiles/repro_sensor.dir/sampler.cpp.o" "gcc" "src/sensor/CMakeFiles/repro_sensor.dir/sampler.cpp.o.d"
  "/root/repo/src/sensor/waveform.cpp" "src/sensor/CMakeFiles/repro_sensor.dir/waveform.cpp.o" "gcc" "src/sensor/CMakeFiles/repro_sensor.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/repro_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/repro_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
