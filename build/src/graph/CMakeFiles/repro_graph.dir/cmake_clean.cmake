file(REMOVE_RECURSE
  "CMakeFiles/repro_graph.dir/algorithms.cpp.o"
  "CMakeFiles/repro_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/repro_graph.dir/csr.cpp.o"
  "CMakeFiles/repro_graph.dir/csr.cpp.o.d"
  "CMakeFiles/repro_graph.dir/generators.cpp.o"
  "CMakeFiles/repro_graph.dir/generators.cpp.o.d"
  "librepro_graph.a"
  "librepro_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
