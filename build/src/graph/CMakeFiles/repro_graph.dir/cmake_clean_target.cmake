file(REMOVE_RECURSE
  "librepro_graph.a"
)
