# Empty compiler generated dependencies file for repro_graph.
# This may be replaced when dependencies are built.
