file(REMOVE_RECURSE
  "CMakeFiles/repro_workloads.dir/registry.cpp.o"
  "CMakeFiles/repro_workloads.dir/registry.cpp.o.d"
  "librepro_workloads.a"
  "librepro_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
