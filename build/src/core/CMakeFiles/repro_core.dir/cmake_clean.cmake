file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/aggregate.cpp.o"
  "CMakeFiles/repro_core.dir/aggregate.cpp.o.d"
  "CMakeFiles/repro_core.dir/study.cpp.o"
  "CMakeFiles/repro_core.dir/study.cpp.o.d"
  "CMakeFiles/repro_core.dir/variability.cpp.o"
  "CMakeFiles/repro_core.dir/variability.cpp.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
