
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/repro_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/coalesce.cpp" "src/sim/CMakeFiles/repro_sim.dir/coalesce.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/coalesce.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/repro_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/gpuconfig.cpp" "src/sim/CMakeFiles/repro_sim.dir/gpuconfig.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/gpuconfig.cpp.o.d"
  "/root/repo/src/sim/occupancy.cpp" "src/sim/CMakeFiles/repro_sim.dir/occupancy.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/occupancy.cpp.o.d"
  "/root/repo/src/sim/timing.cpp" "src/sim/CMakeFiles/repro_sim.dir/timing.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/repro_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
