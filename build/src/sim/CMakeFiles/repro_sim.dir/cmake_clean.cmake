file(REMOVE_RECURSE
  "CMakeFiles/repro_sim.dir/cache.cpp.o"
  "CMakeFiles/repro_sim.dir/cache.cpp.o.d"
  "CMakeFiles/repro_sim.dir/coalesce.cpp.o"
  "CMakeFiles/repro_sim.dir/coalesce.cpp.o.d"
  "CMakeFiles/repro_sim.dir/engine.cpp.o"
  "CMakeFiles/repro_sim.dir/engine.cpp.o.d"
  "CMakeFiles/repro_sim.dir/gpuconfig.cpp.o"
  "CMakeFiles/repro_sim.dir/gpuconfig.cpp.o.d"
  "CMakeFiles/repro_sim.dir/occupancy.cpp.o"
  "CMakeFiles/repro_sim.dir/occupancy.cpp.o.d"
  "CMakeFiles/repro_sim.dir/timing.cpp.o"
  "CMakeFiles/repro_sim.dir/timing.cpp.o.d"
  "librepro_sim.a"
  "librepro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
