// Multi-client smoke driver for the characterization service.
//
//   serve_smoke [--clients K] [--direct] [--router N] [--sampled]
//               [--fault-seed S] [--worker-kill-rate R]
//
// Runs a canned 30-request batch (the 10 golden-slice experiments, each
// requested three times; --sampled appends a fourth, sampled round with
// CI fields) against an in-process Service from K concurrent client
// threads, then prints one canonical line per request in request order.
// With --direct the same batch is answered by a plain v1::Session instead
// — no service, no cache, no queue. With --router N the batch goes
// through the consistent-hash shard tier across N forked worker
// processes (DESIGN.md §14); --fault-seed plus --worker-kill-rate arms
// seeded worker-kill chaos on that tier.
//
// The output deliberately omits transport detail (cached flags, queue
// stats): it is exactly the request id, the experiment key and the %.17g
// metrics. scripts/ci.sh diffs the service output at several client counts
// — and the 4-worker sharded output — against the --direct output; any
// byte difference is a determinism bug. In router mode the metric bytes
// are extracted from the wire response as substrings, never re-parsed
// through a double round-trip. Exits nonzero when any request resolves to
// a non-ok status or leaves no response line — an ERROR line in otherwise-
// diffable output must never pass a pipeline that only checks exit codes.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "repro/api.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "shard/router.hpp"
#include "shard/worker.hpp"

namespace {

using repro::v1::ExperimentRequest;
using repro::v1::MeasurementResult;

std::vector<ExperimentRequest> canned_batch(bool sampled) {
  struct Entry {
    const char* program;
    std::size_t input;
    const char* config;
  };
  // The golden-slice matrix (tests/golden_test.cpp): every suite, every
  // configuration, regular and irregular programs.
  constexpr Entry kSlice[10] = {
      {"NB", 2, "default"},  {"LBM", 0, "614"},    {"SGEMM", 0, "default"},
      {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
      {"FFT", 0, "default"}, {"MD", 0, "614"},     {"L-BFS-wlc", 2, "default"},
      {"BH", 0, "default"},
  };
  std::vector<ExperimentRequest> batch;
  for (int round = 0; round < 3; ++round) {  // repeats exercise the cache
    for (const Entry& e : kSlice) {
      ExperimentRequest request;
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      request.id = batch.size() + 1;
      batch.push_back(std::move(request));
    }
  }
  if (sampled) {
    // Round 4: the same slice through the sampled pipeline. Sampled
    // results are a pure function of the request (mode, fraction, seed),
    // so these lines byte-diff across direct / service / sharded runs
    // exactly like the exact rounds — now with CI fields.
    std::size_t index = 0;
    for (const Entry& e : kSlice) {
      ExperimentRequest request;
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      request.id = batch.size() + 1;
      request.sampling.mode = index % 2 == 0
                                  ? repro::v1::SamplingMode::kStratified
                                  : repro::v1::SamplingMode::kSystematic;
      request.sampling.fraction = 0.5;
      request.sampling.target_rel_error = 0.0;
      request.sampling.seed = 1234 + index;
      ++index;
      batch.push_back(std::move(request));
    }
  }
  return batch;
}

std::string format_line(const ExperimentRequest& request,
                        const MeasurementResult& r) {
  char line[768];
  int n = std::snprintf(
      line, sizeof line,
      "id=%llu %s usable=%d time_s=%.17g energy_j=%.17g power_w=%.17g "
      "true_active_s=%.17g time_spread=%.17g energy_spread=%.17g",
      static_cast<unsigned long long>(request.id),
      repro::core::experiment_key(request.program, request.input_index,
                                  request.config)
          .c_str(),
      r.usable ? 1 : 0, r.time_s, r.energy_j, r.power_w, r.true_active_s,
      r.time_spread, r.energy_spread);
  if (r.sampled && n > 0 && static_cast<std::size_t>(n) < sizeof line) {
    std::snprintf(
        line + n, sizeof line - static_cast<std::size_t>(n),
        " sampled=1 sample_fraction=%.17g time_ci_low=%.17g "
        "time_ci_high=%.17g energy_ci_low=%.17g energy_ci_high=%.17g "
        "power_ci_low=%.17g power_ci_high=%.17g",
        r.sample_fraction, r.time_ci.low, r.time_ci.high, r.energy_ci.low,
        r.energy_ci.high, r.power_ci.low, r.power_ci.high);
  }
  return line;
}

// Value substring of `name` in a flat JSON wire line, bytes untouched
// (strings are returned without their quotes). False when absent.
bool json_field(const std::string& line, const std::string& name,
                std::string& out) {
  const std::string marker = "\"" + name + "\":";
  const std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + marker.size();
  if (start >= line.size()) return false;
  std::size_t end;
  if (line[start] == '"') {
    ++start;
    end = line.find('"', start);
  } else {
    end = line.find_first_of(",}", start);
  }
  if (end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

// Canonical line from a wire response: the %.17g metric bytes are lifted
// verbatim from the JSON, so the comparison against --direct is exact.
bool canonicalize_response(const std::string& response, std::string& out) {
  std::string status;
  if (!json_field(response, "status", status) || status != "ok") return false;
  std::string id, key, usable, value;
  if (!json_field(response, "id", id) || !json_field(response, "key", key) ||
      !json_field(response, "usable", usable)) {
    return false;
  }
  out = "id=" + id + " " + key + " usable=" + (usable == "true" ? "1" : "0");
  static constexpr const char* kMetrics[] = {
      "time_s",      "energy_j",    "power_w",
      "true_active_s", "time_spread", "energy_spread",
  };
  for (const char* name : kMetrics) {
    if (!json_field(response, name, value)) return false;
    out += ' ';
    out += name;
    out += '=';
    out += value;
  }
  std::string sampled;
  if (json_field(response, "sampled", sampled) && sampled == "true") {
    static constexpr const char* kCiFields[] = {
        "sample_fraction", "time_ci_low",  "time_ci_high", "energy_ci_low",
        "energy_ci_high",  "power_ci_low", "power_ci_high",
    };
    out += " sampled=1";
    for (const char* name : kCiFields) {
      if (!json_field(response, name, value)) return false;
      out += ' ';
      out += name;
      out += '=';
      out += value;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 2;
  int router_workers = 0;
  bool direct = false;
  bool sampled = false;
  std::uint64_t fault_seed = 0;
  double worker_kill_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--router") == 0 && i + 1 < argc) {
      router_workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--direct") == 0) {
      direct = true;
    } else if (std::strcmp(argv[i], "--sampled") == 0) {
      sampled = true;
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--worker-kill-rate") == 0 &&
               i + 1 < argc) {
      worker_kill_rate = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: serve_smoke [--clients K] [--direct] [--router N] "
                   "[--sampled] [--fault-seed S] [--worker-kill-rate R]\n");
      return 2;
    }
  }
  if (clients < 1) clients = 1;

  const std::vector<ExperimentRequest> batch = canned_batch(sampled);
  std::vector<std::string> lines(batch.size());
  std::atomic<std::size_t> errors{0};

  if (direct) {
    repro::v1::Session session;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      lines[i] = format_line(batch[i], session.measure(batch[i]));
    }
  } else if (router_workers > 0) {
    // Workers fork before any thread exists in this process (the Router
    // and the client pool both start threads — spawn first).
    const std::vector<repro::shard::WorkerProcess> processes =
        repro::shard::spawn_worker_processes(router_workers,
                                             repro::serve::Service::Options{});
    if (processes.size() != static_cast<std::size_t>(router_workers)) {
      std::fprintf(stderr, "serve_smoke: failed to spawn %d workers\n",
                   router_workers);
      return 1;
    }
    // Seeded worker-kill chaos (all other fault sites stay at rate 0, so
    // the measured bytes are the fault-free bytes — a killed worker's
    // requests reroute and recompute deterministically).
    std::unique_ptr<repro::fault::FaultPlan> plan;
    std::unique_ptr<repro::fault::ScopedPlan> scope;
    if (fault_seed != 0) {
      repro::fault::PlanOptions plan_options;
      plan_options.seed = fault_seed;
      plan_options.scheduler_rate = 0.0;
      plan_options.sensor_rate = 0.0;
      plan_options.wire_rate = 0.0;
      plan_options.cache_rate = 0.0;
      plan_options.worker_rate = worker_kill_rate;
      plan = std::make_unique<repro::fault::FaultPlan>(plan_options);
      scope = std::make_unique<repro::fault::ScopedPlan>(plan.get());
      std::fprintf(stderr,
                   "serve_smoke: worker-kill plan active, seed %llu rate %g\n",
                   static_cast<unsigned long long>(fault_seed),
                   worker_kill_rate);
    }
    {
      std::vector<repro::shard::WorkerEndpoint> endpoints;
      for (const repro::shard::WorkerProcess& process : processes) {
        endpoints.push_back(repro::shard::endpoint_for(process));
      }
      repro::shard::Router router(repro::shard::Router::Options{},
                                  std::move(endpoints));
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          for (std::size_t i = static_cast<std::size_t>(c); i < batch.size();
               i += static_cast<std::size_t>(clients)) {
            const std::string response = router.route_line(
                repro::serve::format_request_line(batch[i]), batch[i].id);
            if (!canonicalize_response(response, lines[i])) {
              lines[i] = "id=" + std::to_string(batch[i].id) + " ERROR " +
                         response;
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      for (std::thread& t : pool) t.join();
      router.drain();
      const repro::serve::RouterHealth health = router.health();
      std::fprintf(stderr,
                   "serve_smoke: router %zu/%zu workers alive, %llu routed, "
                   "%llu rerouted, %llu kills, %llu handoffs, %llu failed\n",
                   health.alive, health.workers,
                   static_cast<unsigned long long>(health.routed),
                   static_cast<unsigned long long>(health.rerouted),
                   static_cast<unsigned long long>(health.worker_kills),
                   static_cast<unsigned long long>(health.handoff_keys),
                   static_cast<unsigned long long>(health.failed));
    }
    repro::shard::reap_workers(processes);
  } else {
    repro::serve::Service service;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        // Client c owns requests c, c+K, c+2K, ... — interleaved so
        // concurrent clients race on the same cache keys.
        std::vector<std::pair<std::size_t, repro::serve::Service::Ticket>>
            tickets;
        for (std::size_t i = static_cast<std::size_t>(c); i < batch.size();
             i += static_cast<std::size_t>(clients)) {
          tickets.emplace_back(i, service.submit(batch[i]));
        }
        for (auto& [index, ticket] : tickets) {
          const repro::serve::Response& response = ticket.wait();
          if (response.status != repro::serve::Status::kOk) {
            lines[index] =
                "id=" + std::to_string(batch[index].id) + " ERROR " +
                std::string(repro::serve::to_string(response.status)) + ": " +
                response.error;
            errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            lines[index] = format_line(batch[index], response.result);
          }
        }
      });
    }
    for (std::thread& t : workers) t.join();

    const repro::serve::Service::Stats stats = service.stats();
    std::fprintf(stderr,
                 "serve_smoke: %llu submitted, %llu ok, cache %llu hits / "
                 "%llu misses / %llu evictions\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.cache.hits),
                 static_cast<unsigned long long>(stats.cache.misses),
                 static_cast<unsigned long long>(stats.cache.evictions));
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      std::fprintf(stderr, "serve_smoke: no response for request %llu\n",
                   static_cast<unsigned long long>(batch[i].id));
      errors.fetch_add(1, std::memory_order_relaxed);
    }
    std::printf("%s\n", lines[i].c_str());
  }
  if (errors.load(std::memory_order_relaxed) > 0) {
    std::fprintf(stderr, "serve_smoke: %llu failed request(s)\n",
                 static_cast<unsigned long long>(
                     errors.load(std::memory_order_relaxed)));
    return 1;
  }
  return 0;
}
