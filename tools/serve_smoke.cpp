// Multi-client smoke driver for the characterization service.
//
//   serve_smoke [--clients K] [--direct]
//
// Runs a canned 30-request batch (the 10 golden-slice experiments, each
// requested three times) against an in-process Service from K concurrent
// client threads, then prints one canonical line per request in request
// order. With --direct the same batch is answered by a plain v1::Session
// instead — no service, no cache, no queue.
//
// The output deliberately omits transport detail (cached flags, queue
// stats): it is exactly the request id, the experiment key and the %.17g
// metrics. scripts/ci.sh diffs the service output at several client counts
// against the --direct output; any byte difference is a determinism bug.
// Exits nonzero when any request resolves to a non-ok status or leaves no
// response line — an ERROR line in otherwise-diffable output must never
// pass a pipeline that only checks the exit code.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "repro/api.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace {

using repro::v1::ExperimentRequest;
using repro::v1::MeasurementResult;

std::vector<ExperimentRequest> canned_batch() {
  struct Entry {
    const char* program;
    std::size_t input;
    const char* config;
  };
  // The golden-slice matrix (tests/golden_test.cpp): every suite, every
  // configuration, regular and irregular programs.
  constexpr Entry kSlice[10] = {
      {"NB", 2, "default"},  {"LBM", 0, "614"},    {"SGEMM", 0, "default"},
      {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
      {"FFT", 0, "default"}, {"MD", 0, "614"},     {"L-BFS-wlc", 2, "default"},
      {"BH", 0, "default"},
  };
  std::vector<ExperimentRequest> batch;
  for (int round = 0; round < 3; ++round) {  // repeats exercise the cache
    for (const Entry& e : kSlice) {
      ExperimentRequest request;
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      request.id = batch.size() + 1;
      batch.push_back(std::move(request));
    }
  }
  return batch;
}

std::string format_line(const ExperimentRequest& request,
                        const MeasurementResult& r) {
  char line[512];
  std::snprintf(
      line, sizeof line,
      "id=%llu %s usable=%d time_s=%.17g energy_j=%.17g power_w=%.17g "
      "true_active_s=%.17g time_spread=%.17g energy_spread=%.17g",
      static_cast<unsigned long long>(request.id),
      repro::core::experiment_key(request.program, request.input_index,
                                  request.config)
          .c_str(),
      r.usable ? 1 : 0, r.time_s, r.energy_j, r.power_w, r.true_active_s,
      r.time_spread, r.energy_spread);
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 2;
  bool direct = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--direct") == 0) {
      direct = true;
    } else {
      std::fprintf(stderr, "usage: serve_smoke [--clients K] [--direct]\n");
      return 2;
    }
  }
  if (clients < 1) clients = 1;

  const std::vector<ExperimentRequest> batch = canned_batch();
  std::vector<std::string> lines(batch.size());
  std::atomic<std::size_t> errors{0};

  if (direct) {
    repro::v1::Session session;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      lines[i] = format_line(batch[i], session.measure(batch[i]));
    }
  } else {
    repro::serve::Service service;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        // Client c owns requests c, c+K, c+2K, ... — interleaved so
        // concurrent clients race on the same cache keys.
        std::vector<std::pair<std::size_t, repro::serve::Service::Ticket>>
            tickets;
        for (std::size_t i = static_cast<std::size_t>(c); i < batch.size();
             i += static_cast<std::size_t>(clients)) {
          tickets.emplace_back(i, service.submit(batch[i]));
        }
        for (auto& [index, ticket] : tickets) {
          const repro::serve::Response& response = ticket.wait();
          if (response.status != repro::serve::Status::kOk) {
            lines[index] =
                "id=" + std::to_string(batch[index].id) + " ERROR " +
                std::string(repro::serve::to_string(response.status)) + ": " +
                response.error;
            errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            lines[index] = format_line(batch[index], response.result);
          }
        }
      });
    }
    for (std::thread& t : workers) t.join();

    const repro::serve::Service::Stats stats = service.stats();
    std::fprintf(stderr,
                 "serve_smoke: %llu submitted, %llu ok, cache %llu hits / "
                 "%llu misses / %llu evictions\n",
                 static_cast<unsigned long long>(stats.submitted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.cache.hits),
                 static_cast<unsigned long long>(stats.cache.misses),
                 static_cast<unsigned long long>(stats.cache.evictions));
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      std::fprintf(stderr, "serve_smoke: no response for request %llu\n",
                   static_cast<unsigned long long>(batch[i].id));
      errors.fetch_add(1, std::memory_order_relaxed);
    }
    std::printf("%s\n", lines[i].c_str());
  }
  if (errors.load(std::memory_order_relaxed) > 0) {
    std::fprintf(stderr, "serve_smoke: %llu failed request(s)\n",
                 static_cast<unsigned long long>(
                     errors.load(std::memory_order_relaxed)));
    return 1;
  }
  return 0;
}
