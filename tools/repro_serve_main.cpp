// repro-serve: the characterization service as a process (DESIGN.md §11).
//
// Speaks the JSONL wire format (src/serve/wire.hpp), one request per line,
// one response per line, responses in request order.
//
//   repro-serve [--threads N] [--cache N] [--queue N] [--socket PATH]
//               [--router N] [--fault-seed N] [--worker-kill-rate R]
//               [--retries N] [--metrics-every N] [--obs-dir DIR]
//
// A `{"v":1,"health":true}` line returns a health snapshot instead of a
// measurement; `{"v":1,"metrics":true}` returns a metrics-registry
// snapshot; `{"v":1,"attribution":"NB","input":2,"config":"default"}`
// returns the per-kernel instruction-class energy attribution of that
// experiment (DESIGN.md §9). `--fault-seed N` (default: REPRO_FAULT_SEED)
// installs the deterministic fault plan with that seed — chaos mode,
// DESIGN.md §12.
//
// DVFS operating points are first-class (DESIGN.md §15): a measurement
// request may carry an inline `"config":{"core_mhz":540,...}` object
// instead of a name (validated, canonically named, cached under that
// name); `{"v":1,"sweep":"BP","input":0,...}` sweeps the (core, mem)
// grid — analytic V^2 f projection, dominance pruning, sampled
// measurement of the survivors — and returns one response line with a
// nested per-point array; `{"v":1,"recommend":"BP","objective":
// "min_edp",...}` returns the energy-efficiency sweet spot of that grid
// under the requested objective (min_energy | min_edp | min_ed2p |
// perf_cap).
//
// `--router N` (DESIGN.md §14) forks N worker processes, each a private
// Service on its own socketpair, and serves the same wire through the
// consistent-hash shard router: responses are byte-identical to a single
// worker, `{"v":1,"topology":true}` reports the hash ring, and
// `{"v":1,"health":true}` reports tier-level health. With a fault plan,
// `--worker-kill-rate R` arms worker-kill chaos (workers die mid-flight;
// the router reroutes on the shrunk ring).
//
// `--metrics-every N` turns observability on and emits a JSONL metrics
// snapshot after every N processed request lines — to stderr by default,
// or rotating through metrics-<seq>.jsonl files under `--obs-dir DIR`.
// The periodic snapshot resets the instruments (snapshot_and_reset), so
// each emission is the delta since the previous one; on-demand
// `{"v":1,"metrics":true}` requests read without resetting.
//
// Default transport is stdin/stdout:
//   printf '{"v":1,"id":1,"program":"NB","input":2,"config":"default"}\n' |
//     repro-serve
//
// With --socket PATH it listens on a unix domain socket instead; each
// connection is an independent JSONL stream with the same ordering
// guarantee. All connections share one service (one cache, one queue).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <atomic>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "repro/api.hpp"
#include "serve/service.hpp"
#include "serve/stream.hpp"
#include "shard/router.hpp"
#include "shard/worker.hpp"

namespace {

using repro::serve::Service;

// --metrics-every bookkeeping, shared by every stream (stdin or any
// socket connection): one processed-line counter, one emission sequence.
struct MetricsExport {
  std::uint64_t every = 0;       // 0 = off
  std::string obs_dir;           // empty = stderr
  std::atomic<std::uint64_t> lines{0};
  std::atomic<std::uint64_t> seq{0};

  void on_line() {
    if (every == 0) return;
    const std::uint64_t n = lines.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % every != 0) return;
    // Delta since the previous periodic emission (reset contract,
    // obs/metrics.hpp); concurrent on-demand metrics requests snapshot
    // without resetting and are unaffected.
    const repro::obs::RegistrySnapshot snap =
        repro::obs::Registry::instance().snapshot_and_reset();
    const std::uint64_t s = seq.fetch_add(1, std::memory_order_relaxed);
    if (obs_dir.empty()) {
      std::ostringstream text;
      repro::obs::export_jsonl(snap, text);
      std::fprintf(stderr, "repro-serve: metrics after %llu lines\n%s",
                   static_cast<unsigned long long>(n), text.str().c_str());
    } else {
      const std::string path =
          obs_dir + "/metrics-" + std::to_string(s) + ".jsonl";
      std::ofstream file(path);
      repro::obs::export_jsonl(snap, file);
    }
  }
};

MetricsExport g_metrics_export;

repro::serve::StreamHooks hooks() {
  repro::serve::StreamHooks hooks;
  hooks.on_line = [] { g_metrics_export.on_line(); };
  return hooks;
}

// Router front over stdin/stdout: same shape as serve_stream, but lines
// route through the shard tier.
void route_stdio(repro::shard::Router& router) {
  router.route_lines(
      [&](std::string& line) {
        if (!std::getline(std::cin, line)) return false;
        if (std::cin.eof() && !line.empty()) return false;  // mid-line EOF
        return true;
      },
      [&](const std::string& line) {
        std::cout << line << '\n';
        std::cout.flush();
        return std::cout.good();
      },
      hooks());
}

}  // namespace

int main(int argc, char** argv) {
  Service::Options options;
  std::string socket_path;
  int router_workers = 0;
  double worker_kill_rate = 0.0;
  std::uint64_t fault_seed = repro::Options::global().fault_seed;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--threads") {
      if (const char* v = next()) options.threads = std::atoi(v);
    } else if (arg == "--cache") {
      if (const char* v = next()) {
        options.cache_capacity = static_cast<std::size_t>(std::atoll(v));
      }
    } else if (arg == "--queue") {
      if (const char* v = next()) {
        options.queue_limit = static_cast<std::size_t>(std::atoll(v));
      }
    } else if (arg == "--socket") {
      if (const char* v = next()) socket_path = v;
    } else if (arg == "--router") {
      if (const char* v = next()) router_workers = std::atoi(v);
    } else if (arg == "--fault-seed") {
      if (const char* v = next()) {
        fault_seed = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--worker-kill-rate") {
      if (const char* v = next()) worker_kill_rate = std::atof(v);
    } else if (arg == "--retries") {
      if (const char* v = next()) options.max_retries = std::atoi(v);
    } else if (arg == "--metrics-every") {
      if (const char* v = next()) {
        g_metrics_export.every = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--obs-dir") {
      if (const char* v = next()) g_metrics_export.obs_dir = v;
    } else {
      std::fprintf(stderr,
                   "usage: repro-serve [--threads N] [--cache N] [--queue N] "
                   "[--socket PATH] [--router N] [--fault-seed N] "
                   "[--worker-kill-rate R] [--retries N] "
                   "[--metrics-every N] [--obs-dir DIR]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  // Workers fork before anything else: fork() and threads do not mix, and
  // both the Service and the Router start threads. Children inherit no
  // fault plan — chaos stays a router-side decision.
  std::vector<repro::shard::WorkerProcess> worker_processes;
  if (router_workers > 0) {
    worker_processes =
        repro::shard::spawn_worker_processes(router_workers, options);
    if (worker_processes.size() != static_cast<std::size_t>(router_workers)) {
      std::fprintf(stderr, "repro-serve: failed to spawn %d workers\n",
                   router_workers);
      return 1;
    }
  }

  // Periodic export implies observability: without it the registry would
  // stay empty and every snapshot would be a no-op.
  if (g_metrics_export.every > 0) repro::obs::set_enabled(true);

  // Chaos mode (DESIGN.md §12): a nonzero seed (from --fault-seed or
  // REPRO_FAULT_SEED) installs a deterministic fault plan for the process
  // lifetime. The seed is printed so any run can be replayed exactly.
  std::unique_ptr<repro::fault::FaultPlan> fault_plan;
  std::unique_ptr<repro::fault::ScopedPlan> fault_scope;
  if (fault_seed != 0) {
    repro::fault::PlanOptions plan_options;
    plan_options.seed = fault_seed;
    plan_options.worker_rate = worker_kill_rate;
    fault_plan = std::make_unique<repro::fault::FaultPlan>(plan_options);
    fault_scope = std::make_unique<repro::fault::ScopedPlan>(fault_plan.get());
    std::fprintf(stderr, "repro-serve: fault plan active, seed %llu\n",
                 static_cast<unsigned long long>(fault_seed));
  }

  if (!worker_processes.empty()) {
    int exit_code = 0;
    {
      std::vector<repro::shard::WorkerEndpoint> endpoints;
      for (const repro::shard::WorkerProcess& worker : worker_processes) {
        endpoints.push_back(repro::shard::endpoint_for(worker));
      }
      repro::shard::Router router(repro::shard::Router::Options{},
                                  std::move(endpoints));
      std::fprintf(stderr, "repro-serve: routing across %zu workers\n",
                   worker_processes.size());
      if (!socket_path.empty()) {
        // Router + socket listener: each connection routes independently.
        exit_code = repro::serve::serve_unix_listener_with(
            socket_path, [&](int fd) { router.route_fd(fd, hooks()); });
      } else {
        route_stdio(router);
      }
      router.drain();
    }
    repro::shard::reap_workers(worker_processes);
    return exit_code;
  }

  repro::serve::Service service(options);
  if (!socket_path.empty()) {
    return repro::serve::serve_unix_listener(service, socket_path, hooks());
  }
  repro::serve::serve_stream(service, std::cin, std::cout, hooks());
  return 0;
}
