// repro-serve: the characterization service as a process (DESIGN.md §11).
//
// Speaks the JSONL wire format (src/serve/wire.hpp), one request per line,
// one response per line, responses in request order.
//
//   repro-serve [--threads N] [--cache N] [--queue N] [--socket PATH]
//               [--fault-seed N] [--retries N] [--metrics-every N]
//               [--obs-dir DIR]
//
// A `{"v":1,"health":true}` line returns a health snapshot instead of a
// measurement; `{"v":1,"metrics":true}` returns a metrics-registry
// snapshot; `{"v":1,"attribution":"NB","input":2,"config":"default"}`
// returns the per-kernel instruction-class energy attribution of that
// experiment (DESIGN.md §9). `--fault-seed N` (default: REPRO_FAULT_SEED)
// installs the deterministic fault plan with that seed — chaos mode,
// DESIGN.md §12.
//
// `--metrics-every N` turns observability on and emits a JSONL metrics
// snapshot after every N processed request lines — to stderr by default,
// or rotating through metrics-<seq>.jsonl files under `--obs-dir DIR`.
// The periodic snapshot resets the instruments (snapshot_and_reset), so
// each emission is the delta since the previous one; on-demand
// `{"v":1,"metrics":true}` requests read without resetting.
//
// Default transport is stdin/stdout:
//   printf '{"v":1,"id":1,"program":"NB","input":2,"config":"default"}\n' |
//     repro-serve
//
// With --socket PATH it listens on a unix domain socket instead; each
// connection is an independent JSONL stream with the same ordering
// guarantee. All connections share one service (one cache, one queue).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <streambuf>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include <atomic>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "repro/api.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace {

using repro::serve::Response;
using repro::serve::Service;
using repro::serve::Status;

// --metrics-every bookkeeping, shared by every stream (stdin or any
// socket connection): one processed-line counter, one emission sequence.
struct MetricsExport {
  std::uint64_t every = 0;       // 0 = off
  std::string obs_dir;           // empty = stderr
  std::atomic<std::uint64_t> lines{0};
  std::atomic<std::uint64_t> seq{0};

  void on_line() {
    if (every == 0) return;
    const std::uint64_t n = lines.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % every != 0) return;
    // Delta since the previous periodic emission (reset contract,
    // obs/metrics.hpp); concurrent on-demand metrics requests snapshot
    // without resetting and are unaffected.
    const repro::obs::RegistrySnapshot snap =
        repro::obs::Registry::instance().snapshot_and_reset();
    const std::uint64_t s = seq.fetch_add(1, std::memory_order_relaxed);
    if (obs_dir.empty()) {
      std::ostringstream text;
      repro::obs::export_jsonl(snap, text);
      std::fprintf(stderr, "repro-serve: metrics after %llu lines\n%s",
                   static_cast<unsigned long long>(n), text.str().c_str());
    } else {
      const std::string path =
          obs_dir + "/metrics-" + std::to_string(s) + ".jsonl";
      std::ofstream file(path);
      repro::obs::export_jsonl(snap, file);
    }
  }
};

MetricsExport g_metrics_export;

// One submitted line: a ticket still in flight, an immediate response
// (parse errors resolve without touching the service), or a raw
// pre-formatted line (health snapshots use their own wire encoding).
using Slot = std::variant<Service::Ticket, Response, std::string>;

Response invalid_response(std::uint64_t id, std::string error) {
  Response response;
  response.id = id;
  response.status = Status::kInvalidRequest;
  response.error = std::move(error);
  return response;
}

// Reads JSONL requests from `in`, writes responses to `out` in request
// order. Submission and output overlap: a writer thread drains slots FIFO
// (Ticket::wait preserves order), so responses stream while later lines
// are still being read.
void serve_stream(Service& service, std::istream& in, std::ostream& out) {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Slot> slots;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      Slot slot;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return done || !slots.empty(); });
        if (slots.empty()) return;
        slot = std::move(slots.front());
        slots.pop_front();
      }
      if (std::holds_alternative<std::string>(slot)) {
        out << std::get<std::string>(slot) << '\n';
      } else {
        const Response& response =
            std::holds_alternative<Response>(slot)
                ? std::get<Response>(slot)
                : std::get<Service::Ticket>(slot).wait();
        out << repro::serve::format_response_line(response) << '\n';
      }
      out.flush();
    }
  });

  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    // Wire fault-injection site (DESIGN.md §12): inbound lines may be
    // truncated or byte-corrupted by an installed plan. Mutated lines fall
    // through the normal parser and resolve as structured kInvalidRequest
    // responses (or, rarely, as a different-but-valid request) — the
    // stream itself never desynchronizes.
    line = repro::fault::filter_wire_line("inbound", line);
    if (line.empty()) continue;  // truncated to nothing: like a blank line
    Slot slot;
    if (repro::serve::is_health_request(line)) {
      slot = repro::serve::format_health_line(service.health());
    } else if (repro::serve::is_metrics_request(line)) {
      slot = repro::serve::format_metrics_line(
          repro::obs::Registry::instance().snapshot());
    } else if (repro::serve::is_attribution_request(line)) {
      // Attribution runs synchronously on the reader thread: it is a
      // monitoring/analysis endpoint, and computing it inline keeps the
      // response-in-request-order guarantee without a ticket type.
      repro::v1::ExperimentRequest request;
      std::string error;
      if (repro::serve::parse_attribution_request(line, request, error)) {
        const Service::AttributionResult result = service.attribute(request);
        slot = result.status == Status::kOk
                   ? repro::serve::format_attribution_line(result.key,
                                                           result.table)
                   : repro::serve::format_attribution_error_line(
                         result.status, result.key, result.error);
      } else {
        slot = repro::serve::format_attribution_error_line(
            Status::kInvalidRequest, "", error);
      }
    } else {
      repro::v1::ExperimentRequest request;
      std::string error;
      if (repro::serve::parse_request_line(line, request, error)) {
        if (request.id == 0) request.id = line_number;
        slot = service.submit(std::move(request));
      } else {
        slot = invalid_response(line_number, std::move(error));
      }
    }
    {
      std::lock_guard lock(mutex);
      slots.push_back(std::move(slot));
    }
    cv.notify_one();
    g_metrics_export.on_line();
  }
  {
    std::lock_guard lock(mutex);
    done = true;
  }
  cv.notify_one();
  writer.join();
}

// Minimal streambuf over a socket fd so the shared serve_stream loop can
// read requests and flush responses incrementally — a client that keeps
// its connection open sees each response as soon as it resolves. One
// FdBuf per direction; the reader and writer threads never share one.
class FdBuf : public std::streambuf {
 public:
  explicit FdBuf(int fd) : fd_(fd) { setg(in_, in_, in_); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }
  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
      return traits_type::not_eof(ch);
    }
    const char c = traits_type::to_char_type(ch);
    return write_all(&c, 1) ? ch : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return write_all(s, static_cast<std::size_t>(n)) ? n : 0;
  }

 private:
  bool write_all(const char* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t wrote = ::write(fd_, data + off, size - off);
      if (wrote <= 0) return false;
      off += static_cast<std::size_t>(wrote);
    }
    return true;
  }

  int fd_;
  char in_[4096];
};

int serve_socket(Service& service, const std::string& path) {
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("repro-serve: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "repro-serve: socket path too long: %s\n",
                 path.c_str());
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("repro-serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "repro-serve: listening on %s\n", path.c_str());
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    std::thread([&service, fd] {
      FdBuf inbuf(fd), outbuf(fd);
      std::istream in(&inbuf);
      std::ostream out(&outbuf);
      serve_stream(service, in, out);
      ::close(fd);
    }).detach();
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Service::Options options;
  std::string socket_path;
  std::uint64_t fault_seed = repro::Options::global().fault_seed;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--threads") {
      if (const char* v = next()) options.threads = std::atoi(v);
    } else if (arg == "--cache") {
      if (const char* v = next()) {
        options.cache_capacity = static_cast<std::size_t>(std::atoll(v));
      }
    } else if (arg == "--queue") {
      if (const char* v = next()) {
        options.queue_limit = static_cast<std::size_t>(std::atoll(v));
      }
    } else if (arg == "--socket") {
      if (const char* v = next()) socket_path = v;
    } else if (arg == "--fault-seed") {
      if (const char* v = next()) {
        fault_seed = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--retries") {
      if (const char* v = next()) options.max_retries = std::atoi(v);
    } else if (arg == "--metrics-every") {
      if (const char* v = next()) {
        g_metrics_export.every = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--obs-dir") {
      if (const char* v = next()) g_metrics_export.obs_dir = v;
    } else {
      std::fprintf(stderr,
                   "usage: repro-serve [--threads N] [--cache N] [--queue N] "
                   "[--socket PATH] [--fault-seed N] [--retries N] "
                   "[--metrics-every N] [--obs-dir DIR]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  // Periodic export implies observability: without it the registry would
  // stay empty and every snapshot would be a no-op.
  if (g_metrics_export.every > 0) repro::obs::set_enabled(true);

  // Chaos mode (DESIGN.md §12): a nonzero seed (from --fault-seed or
  // REPRO_FAULT_SEED) installs a deterministic fault plan for the process
  // lifetime. The seed is printed so any run can be replayed exactly.
  std::unique_ptr<repro::fault::FaultPlan> fault_plan;
  std::unique_ptr<repro::fault::ScopedPlan> fault_scope;
  if (fault_seed != 0) {
    repro::fault::PlanOptions plan_options;
    plan_options.seed = fault_seed;
    fault_plan = std::make_unique<repro::fault::FaultPlan>(plan_options);
    fault_scope = std::make_unique<repro::fault::ScopedPlan>(fault_plan.get());
    std::fprintf(stderr, "repro-serve: fault plan active, seed %llu\n",
                 static_cast<unsigned long long>(fault_seed));
  }

  repro::serve::Service service(options);
  if (!socket_path.empty()) return serve_socket(service, socket_path);
  serve_stream(service, std::cin, std::cout);
  return 0;
}
