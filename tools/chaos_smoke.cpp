// Chaos harness for the fault-injection layer (DESIGN.md §12).
//
//   chaos_smoke [--seeds N] [--start S] [--threads K] [--retries R]
//
// Replays the golden experiment slice through a Service under N seeded
// fault plans (seeds S .. S+N-1) and asserts the resilience contract on
// every request of every run:
//
//   1. every request reaches a terminal state (no hangs, no lost tickets),
//   2. every "ok"/"retried" response is BIT-identical to the fault-free
//      golden metrics computed before any plan was installed,
//   3. statuses are truthful: "degraded" only with an applied sensor fault
//      for that key, "failed" only with applied scheduler aborts, and the
//      Service stats agree with the per-response tally,
//   4. the same seed reproduces the same schedule byte for byte
//      (FaultPlan::schedule_digest equality across independent plans).
//
// On violation it prints the exact reproduction command with the failing
// seed and exits 1. With REPRO_BENCH_JSON set, writes a flat JSON artifact
// with the injected-fault / retry / degradation counts and the fault-free
// wall time (the ci overhead gate reads it).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "fault/fault.hpp"
#include "repro/api.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "suites/factories.hpp"

namespace {

using repro::fault::FaultPlan;
using repro::fault::PlanOptions;
using repro::fault::ScopedPlan;
using repro::fault::Site;
using repro::serve::Degradation;
using repro::serve::Response;
using repro::serve::Service;
using repro::serve::Status;
using repro::v1::ExperimentRequest;

struct Entry {
  const char* program;
  std::size_t input;
  const char* config;
};

// The golden-slice matrix (tests/golden_test.cpp): every suite, every
// configuration, regular and irregular programs.
constexpr Entry kSlice[10] = {
    {"NB", 2, "default"},  {"LBM", 0, "614"},    {"SGEMM", 0, "default"},
    {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
    {"FFT", 0, "default"}, {"MD", 0, "614"},     {"L-BFS-wlc", 2, "default"},
    {"BH", 0, "default"},
};

repro::v1::SamplingOptions smoke_sampling() {
  repro::v1::SamplingOptions sampling;
  sampling.mode = repro::v1::SamplingMode::kStratified;
  sampling.fraction = 0.10;
  sampling.seed = 5;
  return sampling;
}

// `rounds` exact rounds followed by `rounds` sampled rounds of the slice:
// repeats hit the cache, and the sampled rounds exercise the sampled
// dispatch path (DESIGN.md §13) under the same fault plans.
std::vector<ExperimentRequest> slice_batch(int rounds) {
  std::vector<ExperimentRequest> batch;
  for (int round = 0; round < 2 * rounds; ++round) {
    for (const Entry& e : kSlice) {
      ExperimentRequest request;
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      if (round >= rounds) request.sampling = smoke_sampling();
      request.id = batch.size() + 1;
      batch.push_back(std::move(request));
    }
  }
  return batch;
}

bool identical(const repro::v1::MeasurementResult& a,
               const repro::v1::MeasurementResult& b) {
  // Exact comparison on purpose: "recovered by retry" promises the same
  // bytes a fault-free run produces, not merely close values. For sampled
  // results that promise covers the confidence intervals too.
  return a.usable == b.usable && a.time_s == b.time_s &&
         a.energy_j == b.energy_j && a.power_w == b.power_w &&
         a.true_active_s == b.true_active_s &&
         a.time_spread == b.time_spread &&
         a.energy_spread == b.energy_spread && a.sampled == b.sampled &&
         a.sample_fraction == b.sample_fraction &&
         a.time_ci.low == b.time_ci.low && a.time_ci.high == b.time_ci.high &&
         a.energy_ci.low == b.energy_ci.low &&
         a.energy_ci.high == b.energy_ci.high &&
         a.power_ci.low == b.power_ci.low &&
         a.power_ci.high == b.power_ci.high;
}

struct SeedOutcome {
  bool ok = false;
  std::uint64_t faults = 0;
  std::uint64_t retried = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int seeds = 32;
  std::uint64_t start = 1;
  int threads = 0;
  int retries = 2;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      if (const char* v = next()) seeds = std::atoi(v);
    } else if (std::strcmp(argv[i], "--start") == 0) {
      if (const char* v = next()) start = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (const char* v = next()) threads = std::atoi(v);
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      if (const char* v = next()) retries = std::atoi(v);
    } else {
      std::fprintf(stderr,
                   "usage: chaos_smoke [--seeds N] [--start S] [--threads K] "
                   "[--retries R]\n");
      return 2;
    }
  }
  if (seeds < 1) seeds = 1;
  if (start == 0) start = 1;  // seed 0 is reserved for "no plan"

  repro::suites::register_all_workloads();

  // Fault-free goldens (exact and sampled), computed BEFORE any plan
  // exists: the oracles every ok/retried response must match bit for bit.
  std::map<std::string, repro::v1::MeasurementResult> golden;
  std::map<std::string, repro::v1::MeasurementResult> sampled_golden;
  const auto golden_t0 = std::chrono::steady_clock::now();
  {
    repro::v1::Session session;
    for (const Entry& e : kSlice) {
      ExperimentRequest request;
      request.program = e.program;
      request.input_index = e.input;
      request.config = e.config;
      golden[repro::core::experiment_key(e.program, e.input, e.config)] =
          session.measure(request);
    }
  }
  const double golden_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - golden_t0)
          .count();
  {
    repro::v1::Session session;
    for (const Entry& e : kSlice) {
      sampled_golden[repro::core::experiment_key(e.program, e.input,
                                                 e.config)] =
          session.measure_sampled(e.program, e.input, e.config,
                                  smoke_sampling());
    }
  }

  std::vector<std::string> slice_keys;
  for (const Entry& e : kSlice) {
    slice_keys.push_back(
        repro::core::experiment_key(e.program, e.input, e.config));
  }

  const std::vector<ExperimentRequest> batch = slice_batch(2);
  std::uint64_t total_faults = 0, total_retried = 0, total_degraded = 0,
                total_failed = 0, total_requests = 0;
  int violations = 0;

  for (int n = 0; n < seeds; ++n) {
    const std::uint64_t seed = start + static_cast<std::uint64_t>(n);
    SeedOutcome outcome;
    std::string failure;

    PlanOptions plan_options;
    plan_options.seed = seed;
    FaultPlan plan{plan_options};

    // Replayability witness: an independent plan with the same seed must
    // agree on the whole schedule, byte for byte.
    {
      FaultPlan twin{plan_options};
      if (plan.schedule_digest(slice_keys, 8) !=
          twin.schedule_digest(slice_keys, 8)) {
        failure = "schedule_digest differs between same-seed plans";
      }
    }

    if (failure.empty()) {
      ScopedPlan scope{&plan};
      Service::Options service_options;
      service_options.threads = threads;
      service_options.max_retries = retries;
      service_options.retry_backoff_ms = 0.0;  // chaos runs do not sleep
      std::vector<Response> responses;
      {
        Service service{service_options};
        responses = service.run_batch(batch);

        const Service::Stats stats = service.stats();
        std::uint64_t ok = 0, retried = 0, degraded = 0, failed = 0;
        for (const Response& r : responses) {
          if (r.status == Status::kOk) {
            ++ok;
            if (r.degradation == Degradation::kRetried) ++retried;
            if (r.degradation == Degradation::kDegraded) ++degraded;
          } else if (r.status == Status::kFailed) {
            ++failed;
          }
        }
        if (responses.size() != batch.size()) {
          failure = "lost responses: got " + std::to_string(responses.size()) +
                    " of " + std::to_string(batch.size());
        } else if (stats.completed != ok || stats.retried != retried ||
                   stats.degraded != degraded || stats.faulted != failed) {
          failure = "service stats disagree with the response tally";
        }
        outcome.retried = retried;
        outcome.degraded = degraded;
        outcome.failed = failed;
      }

      for (std::size_t i = 0; failure.empty() && i < responses.size(); ++i) {
        const Response& r = responses[i];
        const std::string& key = slice_keys[i % slice_keys.size()];
        const bool sampled_request =
            batch[i].sampling.mode != repro::v1::SamplingMode::kExact;
        const auto& oracle = sampled_request ? sampled_golden : golden;
        if (r.status == Status::kOk) {
          if (r.degradation == Degradation::kDegraded) {
            // Truthfulness: degraded requires an applied sensor fault,
            // and a degraded result must never be served from the cache.
            if (plan.applied(Site::kSensor, key) == 0) {
              failure = "response " + std::to_string(r.id) +
                        " degraded without an applied sensor fault (" + key +
                        ")";
              break;
            }
            if (r.cached) {
              failure = "response " + std::to_string(r.id) +
                        " served a degraded result from the cache (" + key +
                        ")";
              break;
            }
          } else if (!identical(r.result, oracle.at(key))) {
            // ok / retried promise fault-free bytes (including the
            // confidence intervals on sampled responses).
            failure = "response " + std::to_string(r.id) + " (" +
                      std::string(repro::serve::to_string(r.degradation)) +
                      ") differs from fault-free golden for " + key;
            break;
          }
        } else if (r.status == Status::kFailed) {
          if (sampled_request) {
            // The sampled dispatch path has no abort site: kFailed is
            // unreachable for sampled requests.
            failure = "sampled response " + std::to_string(r.id) +
                      " reported failed (" + key + ")";
            break;
          }
          if (plan.applied(Site::kScheduler, key) == 0) {
            failure = "response " + std::to_string(r.id) +
                      " failed without applied scheduler aborts (" + key + ")";
            break;
          }
        } else {
          failure = "response " + std::to_string(r.id) +
                    " has unexpected status " +
                    std::string(repro::serve::to_string(r.status));
          break;
        }
      }
      outcome.faults = plan.applied_total();
    }

    outcome.ok = failure.empty();
    total_faults += outcome.faults;
    total_retried += outcome.retried;
    total_degraded += outcome.degraded;
    total_failed += outcome.failed;
    total_requests += batch.size();
    std::printf("seed %llu: %s  faults=%llu retried=%llu degraded=%llu "
                "failed=%llu\n",
                static_cast<unsigned long long>(seed),
                outcome.ok ? "ok" : "VIOLATION",
                static_cast<unsigned long long>(outcome.faults),
                static_cast<unsigned long long>(outcome.retried),
                static_cast<unsigned long long>(outcome.degraded),
                static_cast<unsigned long long>(outcome.failed));
    if (!outcome.ok) {
      ++violations;
      std::fprintf(stderr,
                   "chaos_smoke: %s\n"
                   "reproduce with: chaos_smoke --seeds 1 --start %llu"
                   "%s%s --retries %d\n",
                   failure.c_str(), static_cast<unsigned long long>(seed),
                   threads > 0 ? " --threads " : "",
                   threads > 0 ? std::to_string(threads).c_str() : "",
                   retries);
    }
  }

  const std::string& json_path = repro::Options::global().bench_json;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "chaos_smoke: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"seeds\": %d,\n"
                 "  \"requests\": %llu,\n"
                 "  \"faults_injected\": %llu,\n"
                 "  \"retried\": %llu,\n"
                 "  \"degraded\": %llu,\n"
                 "  \"failed\": %llu,\n"
                 "  \"fault_free_slice_ms\": %.3f\n"
                 "}\n",
                 seeds, static_cast<unsigned long long>(total_requests),
                 static_cast<unsigned long long>(total_faults),
                 static_cast<unsigned long long>(total_retried),
                 static_cast<unsigned long long>(total_degraded),
                 static_cast<unsigned long long>(total_failed),
                 golden_wall_ms);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (violations > 0) {
    std::fprintf(stderr, "chaos_smoke: FAIL, %d violating seed(s)\n",
                 violations);
    return 1;
  }
  std::printf("PASS: %d seeds, %llu requests, %llu faults injected, "
              "%llu retried, %llu degraded, %llu failed\n",
              seeds, static_cast<unsigned long long>(total_requests),
              static_cast<unsigned long long>(total_faults),
              static_cast<unsigned long long>(total_retried),
              static_cast<unsigned long long>(total_degraded),
              static_cast<unsigned long long>(total_failed));
  return 0;
}
