// load_gen: Zipf load generator and SLO gate for the sharded serve tier
// (DESIGN.md §14).
//
//   load_gen [--workers N] [--baseline-workers N] [--clients K]
//            [--requests M] [--alpha A] [--arrival closed|open] [--rate R]
//            [--deadline-ms D] [--worker-threads T] [--miss]
//            [--recommend-frac F] [--seed S] [--out FILE] [--gate]
//
// --recommend-frac F replaces a seeded fraction F of the traffic with
// recommend requests (a two-point DVFS grid + argmin through the tier);
// their latency percentiles are reported separately in BENCH_serve.json
// (recommend_p50_s/p95_s/p99_s) since a sweep costs far more than a
// point lookup.
//
// Drives the consistent-hash shard tier with a key popularity drawn from
// Zipf(alpha) over the full registry matrix (every program x input x GPU
// config), from K concurrent clients:
//
//   closed  each client issues its next request the moment the previous
//           response lands (throughput = tier capacity);
//   open    arrivals follow a seeded Poisson process at --rate req/s and
//           latency is measured from the scheduled arrival (queueing
//           delay included), the honest way to measure an SLO.
//
// --miss turns on cache-miss traffic: every request is a sampled-mode
// request with a unique sample_seed, so no two requests share a cache key
// and every one pays the full measurement — the traffic shape that
// exposes compute scaling rather than cache bandwidth.
//
// Two phases run in one invocation — --baseline-workers (default 1), then
// --workers (default 4) — and the report lands in BENCH_serve.json:
// throughput, p50/p95/p99 latency (obs::Histogram percentiles), shed /
// degraded / deadline-miss / failed rates per phase, plus the measured
// speedup. With --gate the exit code enforces the speedup floor, scaled
// to the machine: 2.5x when 4+ cores are available, less on smaller
// hosts (the floor and core count are recorded in the JSON — a 1-core
// container cannot parallelize compute-bound work, and pretending
// otherwise would make the gate a coin flip). scripts/ci.sh runs this
// under REPRO_PERF=1.
//
// All worker processes (baseline + sharded) fork up front, before any
// thread exists in this process; phases then borrow the endpoints they
// need. fork() after threads would be undefined behavior bingo.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "shard/router.hpp"
#include "shard/worker.hpp"
#include "sim/gpuconfig.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct KeySpec {
  std::string program;
  std::size_t input = 0;
  std::string config;
};

// Every (program, input, config) cell of the registry matrix.
std::vector<KeySpec> registry_matrix() {
  repro::suites::register_all_workloads();
  std::vector<KeySpec> matrix;
  for (const repro::workloads::Workload* workload :
       repro::workloads::Registry::instance().all()) {
    const std::size_t inputs = workload->inputs().size();
    for (std::size_t input = 0; input < inputs; ++input) {
      for (const repro::sim::GpuConfig& config :
           repro::sim::standard_configs()) {
        matrix.push_back(
            KeySpec{std::string(workload->name()), input, config.name});
      }
    }
  }
  return matrix;
}

// Zipf(alpha) over [0, n): precomputed CDF + binary search, seeded Rng.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha) : cdf_(n) {
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
      cdf_[k] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t draw(repro::util::Rng& rng) const {
    const double u = rng.uniform();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

bool json_field(const std::string& line, const std::string& name,
                std::string& out) {
  const std::string marker = "\"" + name + "\":";
  const std::size_t pos = line.find(marker);
  if (pos == std::string::npos) return false;
  std::size_t start = pos + marker.size();
  if (start >= line.size()) return false;
  std::size_t end;
  if (line[start] == '"') {
    ++start;
    end = line.find('"', start);
  } else {
    end = line.find_first_of(",}", start);
  }
  if (end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

struct PhaseReport {
  int workers = 0;
  std::uint64_t requests = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double p50_s = 0.0, p95_s = 0.0, p99_s = 0.0;
  std::uint64_t shed = 0, degraded = 0, failed = 0, deadline_missed = 0;
  // Recommend traffic (--recommend-frac): its latency distribution is
  // reported separately — a grid sweep costs orders of magnitude more
  // than a point lookup, and folding it in would just move every measure
  // percentile.
  std::uint64_t recommends = 0;
  double recommend_p50_s = 0.0, recommend_p95_s = 0.0, recommend_p99_s = 0.0;
};

struct RunConfig {
  int clients = 4;
  std::uint64_t requests = 200;
  double alpha = 1.1;
  bool open_arrival = false;
  double rate = 50.0;  // open arrival, total req/s across clients
  double deadline_ms = 0.0;
  bool miss_traffic = false;
  double recommend_frac = 0.0;  // fraction of requests sent as recommends
  std::uint64_t seed = 42;
};

// Drives one phase against `router` and aggregates the SLO numbers.
PhaseReport run_phase(repro::shard::Router& router, const RunConfig& config,
                      const std::vector<KeySpec>& matrix, int workers) {
  const ZipfSampler zipf(matrix.size(), config.alpha);
  repro::obs::Histogram latency;
  repro::obs::Histogram recommend_latency;
  std::atomic<std::uint64_t> next_request{0};
  std::atomic<std::uint64_t> shed{0}, degraded{0}, failed{0}, missed{0};
  std::atomic<std::uint64_t> recommends{0};

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      repro::util::Rng rng(config.seed + 1000003ULL *
                                             static_cast<std::uint64_t>(c + 1));
      // Open arrival: this client's share of the Poisson process.
      const double client_rate =
          config.rate / static_cast<double>(config.clients);
      double next_arrival_s = 0.0;
      repro::obs::Histogram::Batch batch;
      repro::obs::Histogram::Batch recommend_batch;
      for (;;) {
        const std::uint64_t index =
            next_request.fetch_add(1, std::memory_order_relaxed);
        if (index >= config.requests) break;
        Clock::time_point issue = Clock::now();
        if (config.open_arrival && client_rate > 0.0) {
          next_arrival_s += -std::log(1.0 - rng.uniform()) / client_rate;
          const Clock::time_point scheduled =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(next_arrival_s));
          std::this_thread::sleep_until(scheduled);
          issue = scheduled;  // latency includes queueing behind schedule
        }
        const KeySpec& key = matrix[zipf.draw(rng)];
        // The extra uniform draw only happens when the recommend mix is
        // on, so pure-measure runs keep the exact request sequence of
        // earlier releases.
        const bool recommend = config.recommend_frac > 0.0 &&
                               rng.uniform() < config.recommend_frac;
        std::string request_line;
        std::uint64_t request_id = index + 1;
        if (recommend) {
          // A tiny two-point grid (614 and 705 core MHz at stock memory):
          // a real sweep+argmin through the tier without turning every
          // recommend into a full-plane measurement.
          repro::serve::RecommendRequest request;
          request.id = request_id;
          request.program = key.program;
          request.input_index = key.input;
          request.options.core_mhz = {614.0, 705.0, 91.0};
          request.options.mem_mhz = {2600.0, 2600.0, 0.0};
          request_line = repro::serve::format_recommend_request_line(request);
          recommends.fetch_add(1, std::memory_order_relaxed);
        } else {
          repro::v1::ExperimentRequest request;
          request.program = key.program;
          request.input_index = key.input;
          request.config = key.config;
          request.id = request_id;
          request.deadline_ms = config.deadline_ms;
          if (config.miss_traffic) {
            // A unique sample_seed gives every request a private cache key:
            // guaranteed misses, full measurement cost, and the sampled
            // pipeline exercised through the tier.
            request.sampling.mode = repro::v1::SamplingMode::kStratified;
            request.sampling.fraction = 0.5;
            request.sampling.seed = config.seed * 1000000ULL + index;
          }
          request_line = repro::serve::format_request_line(request);
        }
        const std::string response =
            router.route_line(request_line, request_id);
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - issue).count();
        if (recommend) {
          recommend_batch.observe(elapsed);
        } else {
          batch.observe(elapsed);
        }
        std::string status;
        if (!json_field(response, "status", status)) status = "failed";
        if (status == "shed") {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (status != "ok") {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        std::string degradation;
        if (json_field(response, "degradation", degradation) &&
            degradation == "degraded") {
          degraded.fetch_add(1, std::memory_order_relaxed);
        }
        if (config.deadline_ms > 0.0 &&
            (status == "deadline_expired" ||
             elapsed * 1000.0 > config.deadline_ms)) {
          missed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      batch.flush(latency);
      recommend_batch.flush(recommend_latency);
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  const repro::obs::HistogramSnapshot snapshot = latency.snapshot();
  PhaseReport report;
  report.workers = workers;
  report.requests = config.requests;
  report.wall_s = wall;
  report.throughput_rps =
      wall > 0.0 ? static_cast<double>(config.requests) / wall : 0.0;
  report.p50_s = snapshot.percentile(0.50);
  report.p95_s = snapshot.percentile(0.95);
  report.p99_s = snapshot.percentile(0.99);
  report.shed = shed.load();
  report.degraded = degraded.load();
  report.failed = failed.load();
  report.deadline_missed = missed.load();
  report.recommends = recommends.load();
  if (report.recommends > 0) {
    const repro::obs::HistogramSnapshot recommend_snapshot =
        recommend_latency.snapshot();
    report.recommend_p50_s = recommend_snapshot.percentile(0.50);
    report.recommend_p95_s = recommend_snapshot.percentile(0.95);
    report.recommend_p99_s = recommend_snapshot.percentile(0.99);
  }
  return report;
}

void append_phase_json(std::string& out, const PhaseReport& r) {
  char buffer[768];
  const double n = static_cast<double>(r.requests);
  std::snprintf(
      buffer, sizeof buffer,
      "{\"workers\":%d,\"requests\":%llu,\"wall_s\":%.6g,"
      "\"throughput_rps\":%.6g,\"p50_s\":%.6g,\"p95_s\":%.6g,"
      "\"p99_s\":%.6g,\"shed_rate\":%.6g,\"degraded_rate\":%.6g,"
      "\"deadline_miss_rate\":%.6g,\"failed\":%llu,"
      "\"recommends\":%llu,\"recommend_p50_s\":%.6g,"
      "\"recommend_p95_s\":%.6g,\"recommend_p99_s\":%.6g}",
      r.workers, static_cast<unsigned long long>(r.requests), r.wall_s,
      r.throughput_rps, r.p50_s, r.p95_s, r.p99_s,
      n > 0 ? static_cast<double>(r.shed) / n : 0.0,
      n > 0 ? static_cast<double>(r.degraded) / n : 0.0,
      n > 0 ? static_cast<double>(r.deadline_missed) / n : 0.0,
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.recommends), r.recommend_p50_s,
      r.recommend_p95_s, r.recommend_p99_s);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  int shard_workers = 4;
  int baseline_workers = 1;
  int worker_threads = 1;
  bool gate = false;
  std::string out_path = "BENCH_serve.json";
  RunConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      if (const char* v = next()) shard_workers = std::atoi(v);
    } else if (arg == "--baseline-workers") {
      if (const char* v = next()) baseline_workers = std::atoi(v);
    } else if (arg == "--clients") {
      if (const char* v = next()) config.clients = std::atoi(v);
    } else if (arg == "--requests") {
      if (const char* v = next()) {
        config.requests = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--alpha") {
      if (const char* v = next()) config.alpha = std::atof(v);
    } else if (arg == "--arrival") {
      if (const char* v = next()) config.open_arrival = std::strcmp(v, "open") == 0;
    } else if (arg == "--rate") {
      if (const char* v = next()) config.rate = std::atof(v);
    } else if (arg == "--deadline-ms") {
      if (const char* v = next()) config.deadline_ms = std::atof(v);
    } else if (arg == "--worker-threads") {
      if (const char* v = next()) worker_threads = std::atoi(v);
    } else if (arg == "--miss") {
      config.miss_traffic = true;
    } else if (arg == "--recommend-frac") {
      if (const char* v = next()) config.recommend_frac = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--gate") {
      gate = true;
    } else {
      std::fprintf(
          stderr,
          "usage: load_gen [--workers N] [--baseline-workers N] "
          "[--clients K] [--requests M] [--alpha A] "
          "[--arrival closed|open] [--rate R] [--deadline-ms D] "
          "[--worker-threads T] [--miss] [--recommend-frac F] [--seed S] "
          "[--out FILE] [--gate]\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  if (shard_workers < 1) shard_workers = 1;
  if (baseline_workers < 1) baseline_workers = 1;
  if (config.clients < 1) config.clients = 1;

  // EVERY worker process forks now, before any thread exists. The
  // baseline phase borrows the first group; the shard phase the second.
  repro::serve::Service::Options worker_options;
  worker_options.threads = worker_threads;
  std::vector<repro::shard::WorkerProcess> baseline_processes;
  std::vector<repro::shard::WorkerProcess> shard_processes;
  for (int i = 0; i < baseline_workers; ++i) {
    baseline_processes.push_back(repro::shard::spawn_worker_process(
        "b" + std::to_string(i), worker_options));
  }
  for (int i = 0; i < shard_workers; ++i) {
    shard_processes.push_back(repro::shard::spawn_worker_process(
        "w" + std::to_string(i), worker_options));
  }
  for (const auto* group : {&baseline_processes, &shard_processes}) {
    for (const repro::shard::WorkerProcess& process : *group) {
      if (process.pid <= 0) {
        std::fprintf(stderr, "load_gen: worker spawn failed\n");
        return 1;
      }
    }
  }

  const std::vector<KeySpec> matrix = registry_matrix();
  std::fprintf(stderr,
               "load_gen: %zu-key matrix, zipf(%g), %s arrival, %llu "
               "requests x %d clients, %s traffic\n",
               matrix.size(), config.alpha,
               config.open_arrival ? "open" : "closed",
               static_cast<unsigned long long>(config.requests),
               config.clients, config.miss_traffic ? "cache-miss" : "mixed");

  const auto run_tier =
      [&](const std::vector<repro::shard::WorkerProcess>& processes) {
        std::vector<repro::shard::WorkerEndpoint> endpoints;
        for (const repro::shard::WorkerProcess& process : processes) {
          endpoints.push_back(repro::shard::endpoint_for(process));
        }
        repro::shard::Router router(repro::shard::Router::Options{},
                                    std::move(endpoints));
        return run_phase(router, config, matrix,
                         static_cast<int>(processes.size()));
      };

  const PhaseReport baseline = run_tier(baseline_processes);
  repro::shard::reap_workers(baseline_processes);
  std::fprintf(stderr, "load_gen: %d worker(s): %.1f req/s, p99 %.0f ms\n",
               baseline.workers, baseline.throughput_rps,
               baseline.p99_s * 1e3);
  const PhaseReport sharded = run_tier(shard_processes);
  repro::shard::reap_workers(shard_processes);
  std::fprintf(stderr, "load_gen: %d worker(s): %.1f req/s, p99 %.0f ms\n",
               sharded.workers, sharded.throughput_rps, sharded.p99_s * 1e3);

  const double speedup = baseline.throughput_rps > 0.0
                             ? sharded.throughput_rps / baseline.throughput_rps
                             : 0.0;
  // The speedup floor an honest gate can demand depends on the cores the
  // tier can actually use: the paper-grade 2.5x at 4 workers needs 4+
  // cores; a 1-core host serializes compute-bound workers and the only
  // defensible floor there is "sharding must not collapse throughput".
  const unsigned cores = std::thread::hardware_concurrency();
  const double required =
      cores >= 4 ? 2.5 : cores >= 2 ? 1.3 : 0.5;
  const bool pass = speedup >= required;
  std::fprintf(stderr,
               "load_gen: speedup %.2fx (%d vs %d workers), floor %.2fx on "
               "%u core(s): %s\n",
               speedup, sharded.workers, baseline.workers, required, cores,
               pass ? "PASS" : "FAIL");

  std::string json = "{\"bench\":\"serve\",\"arrival\":\"";
  json += config.open_arrival ? "open" : "closed";
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "\",\"zipf_alpha\":%g,\"clients\":%d,\"requests\":%llu,"
                "\"miss_traffic\":%s,\"deadline_ms\":%g,\"seed\":%llu,"
                "\"cores\":%u,\"required_speedup\":%g,",
                config.alpha, config.clients,
                static_cast<unsigned long long>(config.requests),
                config.miss_traffic ? "true" : "false", config.deadline_ms,
                static_cast<unsigned long long>(config.seed), cores,
                required);
  json += buffer;
  json += "\"phases\":[";
  append_phase_json(json, baseline);
  json += ',';
  append_phase_json(json, sharded);
  std::snprintf(buffer, sizeof buffer,
                "],\"speedup\":%.6g,\"gate_pass\":%s}", speedup,
                pass ? "true" : "false");
  json += buffer;
  json += '\n';

  std::ofstream out(out_path);
  out << json;
  out.close();
  std::fprintf(stderr, "load_gen: report written to %s\n", out_path.c_str());

  if (gate && !pass) return 1;
  return 0;
}
