// Versioned public API of the GPGPU characterization reproduction.
//
// This is the ONLY header consumers outside src/ are expected to include
// (examples/, bench drivers, external embedders). It is self-contained —
// plain-struct DTOs plus an opaque `Session` — so internal refactors of
// the study/scheduler/model layers never ripple into consumers. The DTO
// namespace is versioned (`repro::v1`); incompatible changes ship as
// `repro::v2` next to it rather than mutating v1.
//
// Everything returned here is byte-for-byte the value the internal
// pipeline produced: `Session::measure` copies the fields of the study's
// `ExperimentResult` without rounding, so facade consumers see results
// bit-identical to direct internal calls (tests/serve_test.cpp and the
// golden tests pin this).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

/// All environment knobs of the repository, parsed in exactly one place
/// (`Options::from_env`, src/util/options.cpp). The REPRO_* environment
/// names below are the documented compatibility shim — they predate this
/// struct and keep working unchanged:
///
///   REPRO_THREADS        worker threads for batch scheduling (int > 0)
///   REPRO_OBS            "1" enables the observability layer at startup
///   REPRO_OBS_DIR        directory observability dumps are written to
///   REPRO_BENCH_JSON     path bench_micro writes its perf-trajectory JSON to
///   REPRO_UPDATE_GOLDEN  "1" regenerates golden snapshots instead of diffing
///   REPRO_PERF           "1" makes scripts/ci.sh run the Release perf smoke
///   REPRO_SERVE_THREADS  scheduler threads of the characterization service
///   REPRO_SERVE_CACHE    LRU result-cache capacity of the service (entries)
///   REPRO_SERVE_QUEUE    admission-queue bound of the service (requests)
///   REPRO_FAULT_SEED     default seed of the fault-injection plan (uint64).
///                        Opt-in only: tools that support chaos runs (e.g.
///                        repro-serve --fault-seed) read it as their default;
///                        nothing installs a plan merely because it is set.
struct Options {
  int threads = 0;          // 0 = hardware concurrency
  bool obs = false;
  std::string obs_dir = ".";
  std::string bench_json;   // empty = do not write
  bool update_golden = false;
  bool perf = false;
  int serve_threads = 0;    // 0 = fall back to `threads` resolution
  std::size_t serve_cache_capacity = 1024;
  std::size_t serve_queue_limit = 256;
  std::uint64_t fault_seed = 0;  // 0 = no default fault plan

  /// Sampled "rabbit" mode defaults (REPRO_SAMPLE_*, src/sample/):
  /// mode "exact" | "stratified" | "systematic"; fraction in (0, 1];
  /// target relative error in (0, 1) with 0 = no escalation; seed 0 = the
  /// library default. These seed sample::SampleOptions::from_global().
  std::string sample_mode = "exact";
  double sample_fraction = 0.0;
  double sample_target_rel_error = 0.0;
  std::uint64_t sample_seed = 0;

  /// Parses every knob from the environment (missing/invalid = default).
  static Options from_env();
  /// The process-wide options, parsed once on first use.
  static const Options& global();
};

namespace v1 {

inline constexpr int kApiVersion = 1;

/// Sampled "rabbit" mode of one request (DESIGN.md §13). Exact mode is
/// the default and bit-identical to the full-timing pipeline; the sampled
/// modes run a seeded subset of launch clusters through the detailed
/// pipeline and return an estimate plus nominal 95% confidence intervals.
enum class SamplingMode {
  kExact,       // full-timing pipeline, bit-identical to the goldens
  kStratified,  // strata by dominant kernel class, seeded within-stratum
  kSystematic,  // evenly spaced clusters with a seeded offset
};

struct SamplingOptions {
  SamplingMode mode = SamplingMode::kExact;
  /// Target fraction of structural kernel time simulated in detail, (0, 1].
  double fraction = 0.10;
  /// When > 0: escalate the fraction until every stated relative half-width
  /// is below this, falling back to an exact passthrough when it cannot be.
  double target_rel_error = 0.0;
  std::uint64_t seed = 1;
};

/// Thermal scenario of one request (DESIGN.md §16): a lumped-RC die ->
/// heatsink -> ambient network driven by the power trace, with
/// temperature-dependent leakage fed back into the trace and an optional
/// throttling governor. Off by default — with `enabled == false` every
/// measurement is bit-identical to the pre-thermal pipeline. Thermal
/// scenarios are exact-only: combining one with a sampled mode is
/// rejected (the RC state is a whole-timeline integral).
struct ThermalOptions {
  bool enabled = false;
  /// Ambient temperature in °C; steady state under constant power P is
  /// ambient_c + P * R_total (the closed-form law tests pin).
  double ambient_c = 25.0;
  /// Governor ceiling in °C; 0 disables throttling. When the die crosses
  /// it, the clock clamps to the next-lower registered operating point and
  /// releases only after cooling below ceiling_c - hysteresis_c.
  double ceiling_c = 0.0;
  double hysteresis_c = 5.0;
  /// Leakage law P_leak(T) = P_leak(T0) * exp(k (T - T0)); k = 0 keeps
  /// the constant-leakage energy bit-exact.
  double leak_k_per_c = 0.012;
  double leak_t0_c = 45.0;
};

/// A GPU operating point. Mirrors the simulator's configuration; use
/// `standard_configs()` for the paper's four, or construct custom points
/// (DVFS sweeps). The `name` identifies the point in every cache — give
/// distinct operating points distinct names (Session::register_config
/// validates and auto-names).
struct GpuConfigSpec {
  std::string name;
  double core_mhz = 705.0;
  double mem_mhz = 2600.0;
  double core_voltage = 1.00;
  double mem_voltage = 1.00;
  bool ecc = false;
};
std::vector<GpuConfigSpec> standard_configs();

/// One experiment to run: a (program, input, configuration) triple, by the
/// names used in the paper ("NB", "L-BFS", ... / "default", "614", "324",
/// "ecc"). `deadline_ms` is consumed by the serving layer (src/serve/):
/// 0 = no deadline. `id` is echoed in service responses.
///
/// `has_config_spec` marks a request that carried an inline operating
/// point (the wire's "config":{...} object form) instead of a name:
/// `config` then holds the spec's canonical name (the cache identity) and
/// `config_spec` the full values. Name-form requests leave it false.
struct ExperimentRequest {
  std::string program;
  std::size_t input_index = 0;
  std::string config;
  double deadline_ms = 0.0;
  std::uint64_t id = 0;
  SamplingOptions sampling;  // default: exact (full-timing) measurement
  ThermalOptions thermal;    // default: off (bit-identical pipeline)
  bool has_config_spec = false;
  GpuConfigSpec config_spec;
};

/// Nominal 95% confidence interval of one sampled metric.
struct ConfidenceInterval {
  double low = 0.0;
  double high = 0.0;
};

/// Median-of-repetitions result of one experiment (the paper's three
/// metrics plus the Table 2 spreads and the simulator ground truth).
/// Results produced by a sampled request additionally set `sampled` and
/// carry the achieved fraction plus per-metric confidence intervals; for
/// an exact measurement those fields keep their defaults.
struct MeasurementResult {
  bool usable = false;
  double time_s = 0.0;
  double energy_j = 0.0;
  double power_w = 0.0;
  double true_active_s = 0.0;
  double time_spread = 0.0;
  double energy_spread = 0.0;
  bool sampled = false;         // estimate from the sampled pipeline
  double sample_fraction = 1.0; // achieved sampled fraction of kernel time
  ConfidenceInterval time_ci, energy_ci, power_ci;
  /// Thermal telemetry; all defaults unless the request carried an enabled
  /// ThermalOptions. `throttled` is true only when the governor actually
  /// clamped during at least one repetition (a truthful flag).
  bool thermal = false;
  bool throttled = false;
  double peak_temp_c = 0.0;
  int throttle_events = 0;
};

/// Ratio of two results with usability propagation (unusable or degenerate
/// denominators yield usable == false).
struct MetricRatios {
  bool usable = false;
  double time = 0.0;
  double energy = 0.0;
  double power = 0.0;
};
MetricRatios ratios(const MeasurementResult& numerator,
                    const MeasurementResult& denominator);

/// Five-number summary used by the figure reproductions.
struct BoxStats {
  double min = 0.0, q1 = 0.0, median = 0.0, q3 = 0.0, max = 0.0;
};

/// One program-input entry of a suite-level ratio aggregation.
struct SuiteRatioEntry {
  std::string program;
  std::string input;
  MetricRatios ratio;
};

struct SuiteRatioBox {
  std::string suite;
  int entries = 0;  // usable program-input pairs
  BoxStats time, energy, power;
};

enum class Boundedness { kCompute, kMemory, kBalanced };
enum class Regularity { kRegular, kIrregular };

/// A named program input plus the per-item counts of Table 4 (0 when not
/// applicable).
struct InputInfo {
  std::string name;
  std::string scale_note;
  double vertices = 0.0;
  double edges = 0.0;
};

/// Catalog entry of one registered program (paper Table 1).
struct ProgramInfo {
  std::string name;
  std::string suite;
  std::string variant;  // non-empty for alternate implementations (§V.B.1)
  int num_global_kernels = 0;
  Boundedness boundedness = Boundedness::kBalanced;
  Regularity regularity = Regularity::kRegular;
  std::vector<InputInfo> inputs;
};

// -- DVFS grid sweep + recommendation (DESIGN.md §15) -----------------------

/// Objective optimized by `Session::recommend` over a swept DVFS grid.
enum class Objective {
  kMinEnergy,  // minimize energy
  kMinEdp,     // minimize energy * time
  kMinEd2p,    // minimize energy * time^2
  kPerfCap,    // minimize energy subject to time <= perf_cap_rel * fastest
};

/// "min_energy" / "min_edp" / "min_ed2p" / "perf_cap".
std::string_view to_string(Objective objective);
bool parse_objective(std::string_view text, Objective& out);

/// One grid axis: {min, min+step, ...} plus `max` itself when the last
/// step falls short of it. step == 0 requires min == max (a single value).
struct GridAxis {
  double min = 0.0;
  double max = 0.0;
  double step = 0.0;
};

/// A DVFS sweep over the (core_mhz, mem_mhz) plane. Grid points carry the
/// default DVFS voltages (interpolated through the paper's operating
/// points) and canonical auto-names ("cfg:<core>x<mem>"); the four paper
/// configurations keep their paper names. `prune` drops points whose
/// analytic projection is dominated by `prune_margin` in both time and
/// energy before any measurement; `sampling` defaults to the stratified
/// "rabbit" mode so full-grid sweeps stay affordable.
struct SweepOptions {
  GridAxis core_mhz{324.0, 705.0, 50.0};
  GridAxis mem_mhz{2600.0, 2600.0, 0.0};
  bool ecc = false;
  bool prune = true;
  double prune_margin = 0.10;
  SamplingOptions sampling{SamplingMode::kStratified, 0.10, 0.0, 1};
  /// When enabled, every grid point is measured under this thermal
  /// scenario (exact-only: the sampling options are bypassed) and carries
  /// the per-point `throttled`/`peak_temp_c` telemetry.
  ThermalOptions thermal;
};

/// One grid point of a sweep. The analytic projection is always present;
/// `result` is meaningful only when `measured` (pruned points are never
/// measured). `cached`/`retries`/`degraded` are filled by the serving
/// layer (per-point cache and fault semantics); direct Session sweeps
/// leave them 0.
struct SweepPoint {
  GpuConfigSpec config;
  double analytic_time_s = 0.0;
  double analytic_energy_j = 0.0;
  double analytic_power_w = 0.0;
  bool pruned = false;
  bool measured = false;
  bool pareto = false;  // on the measured time-energy Pareto frontier
  bool cached = false;
  int retries = 0;
  bool degraded = false;
  MeasurementResult result;
};

struct SweepResult {
  std::string program;
  std::size_t input_index = 0;
  std::size_t grid_points = 0;
  std::size_t pruned = 0;
  std::size_t measured = 0;
  std::vector<SweepPoint> points;  // grid order (core-major)
};

struct RecommendOptions {
  Objective objective = Objective::kMinEdp;
  /// kPerfCap only: admissible slowdown over the fastest measured point.
  double perf_cap_rel = 1.10;
  SweepOptions sweep;
  /// Thermal constraint (meaningful with sweep.thermal.enabled): exclude
  /// grid points whose governor clamped, so the sweet-spot is one the
  /// operating point can sustain at this ambient.
  bool exclude_throttled = false;
};

/// The exact argmin of the objective over the sweep's measured, usable
/// grid points (ties break toward grid order). `ok == false` (with
/// `error` set) when no usable point qualifies.
struct Recommendation {
  bool ok = false;
  std::string error;
  Objective objective = Objective::kMinEdp;
  GpuConfigSpec config;
  double objective_value = 0.0;
  double time_s = 0.0;
  double energy_j = 0.0;
  double power_w = 0.0;
  SweepResult sweep;  // the full sweep the choice was made over
};

/// One sensor reading of a recorded power profile (paper Fig. 1).
struct PowerSample {
  double t = 0.0;  // seconds
  double w = 0.0;  // watts
};

/// A single recorded run: the sample stream plus the K20Power analysis.
struct PowerProfile {
  bool usable = false;
  double active_time_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double idle_w = 0.0;
  double threshold_w = 0.0;
  double peak_w = 0.0;
  std::vector<PowerSample> samples;
};

/// Number of instruction-class energy columns in AttributionRow
/// (fp32, fp64, int, sfu, ldst_global, ldst_shared, control — in the
/// order returned by energy_class_names()).
inline constexpr int kNumEnergyClasses = 7;

/// Stable short names of the instruction-class energy columns, in the
/// index order of AttributionRow::class_energy_j.
const std::array<std::string_view, kNumEnergyClasses>& energy_class_names();

/// Per-kernel energy attribution of one experiment (DESIGN.md §9).
struct AttributionRow {
  std::string kernel;
  int phases = 0;
  double time_s = 0.0;
  double model_energy_j = 0.0;
  double avg_power_w = 0.0;
  double energy_share = 0.0;
  double energy_j = 0.0;  // share scaled to the measured energy when usable
  /// Instruction-class split of model_energy_j (see energy_class_names());
  /// the class columns plus static_energy_j sum to model_energy_j.
  std::array<double, kNumEnergyClasses> class_energy_j{};
  double static_energy_j = 0.0;  // tail/leakage/board share
};

struct Attribution {
  std::vector<AttributionRow> kernels;  // sorted by descending energy
  double total_time_s = 0.0;
  double model_energy_j = 0.0;
  double attributed_energy_j = 0.0;
  /// Column sums of the kernels' class/static splits; together they sum
  /// to model_energy_j.
  std::array<double, kNumEnergyClasses> class_energy_j{};
  double static_energy_j = 0.0;
  std::string text;  // rendered table, one row per kernel + class block
};

/// One entry of a finished batch, in stable (key-sorted) order.
struct BatchEntry {
  std::string key;  // canonical experiment key (program/input/config)
  std::string program;
  std::size_t input_index = 0;
  std::string config;
  MeasurementResult result;
};

/// Everything a consumer needs from a finished batch: the deduplicated
/// key-sorted results plus the scheduler's metrics report, pre-rendered.
struct BatchSummary {
  int threads = 1;
  std::size_t jobs = 0;
  double wall_s = 0.0;
  double busy_s = 0.0;
  double hit_rate = 0.0;  // result-cache hit fraction over this batch
  std::string report_text;  // the scheduler's per-batch metrics block
  std::vector<BatchEntry> entries;
};

/// A measurement session: owns the experiment caches and the parallel
/// scheduler behind one consistent set of seeds. Thread-safe: `measure`,
/// `run_matrix` and the aggregation helpers may be called concurrently.
/// Results are deterministic and independent of call order or thread
/// count (the scheduler's bit-identity guarantee).
class Session {
 public:
  Session();  // Options::global()
  explicit Session(const Options& options);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // -- catalog -------------------------------------------------------------
  /// All registered programs, variants included, in registration order.
  std::vector<ProgramInfo> programs() const;
  /// Catalog entry of one program; throws std::invalid_argument if absent.
  ProgramInfo program(std::string_view name) const;
  bool has_program(std::string_view name) const;
  /// Distinct suite names in first-seen order.
  std::vector<std::string> suites() const;

  // -- measurement ---------------------------------------------------------
  /// Runs (or returns the cached result of) one experiment.
  MeasurementResult measure(std::string_view program, std::size_t input_index,
                            std::string_view config);
  MeasurementResult measure(std::string_view program, std::size_t input_index,
                            const GpuConfigSpec& config);
  /// Routes on `request.sampling.mode`: exact delegates to the full-timing
  /// pipeline (bit-identical to the two-argument overloads); the sampled
  /// modes return an estimate with confidence intervals (DESIGN.md §13).
  MeasurementResult measure(const ExperimentRequest& request);
  /// Sampled measurement with explicit options. `SamplingMode::kExact` (or
  /// fraction >= 1) is an exact passthrough, bit-identical to `measure`.
  MeasurementResult measure_sampled(std::string_view program,
                                    std::size_t input_index,
                                    std::string_view config,
                                    const SamplingOptions& sampling);

  // -- DVFS operating points (DESIGN.md §15) -------------------------------
  /// Validates and registers a custom operating point with this session.
  /// An empty name is auto-filled with the canonical grid name
  /// ("cfg:<core>x<mem>[@<vc>x<vm>][+ecc]"); paper names are accepted only
  /// with exactly the paper values. Returns the canonicalized spec; throws
  /// std::invalid_argument on out-of-range values or name collisions.
  /// Registered names are accepted by every name-string overload above.
  GpuConfigSpec register_config(const GpuConfigSpec& config);

  /// Sweeps the DVFS grid for one experiment: analytic V^2 f projection of
  /// every grid point, dominance pruning, sampled measurement of the
  /// survivors, measured Pareto frontier. Deterministic in (session seeds,
  /// program, input, options).
  SweepResult sweep(std::string_view program, std::size_t input_index,
                    const SweepOptions& options = {});

  /// Sweeps the grid and returns the exact argmin of the objective over
  /// the measured points (plus the sweep it optimized over).
  Recommendation recommend(std::string_view program, std::size_t input_index,
                           const RecommendOptions& options = {});

  /// Records one run's sensor stream plus its K20Power analysis. `seed`
  /// selects the measurement noise stream of this profile.
  PowerProfile profile(std::string_view program, std::size_t input_index,
                       std::string_view config, std::uint64_t seed = 42);

  /// Per-kernel energy breakdown of one experiment.
  Attribution attribution(std::string_view program, std::size_t input_index,
                          std::string_view config);

  /// Runs the whole registry matrix (every program and input under the
  /// named configurations) through the work-stealing scheduler and returns
  /// the key-sorted results plus the batch metrics. Subsequent `measure`
  /// calls hit a warm cache.
  BatchSummary run_matrix(const std::vector<std::string>& config_names,
                          bool include_variants = false);

  // -- aggregation (the paper's figures) -----------------------------------
  /// Config-B / config-A metric ratios for every primary program and input
  /// of a suite, skipping entries unusable under either configuration.
  std::vector<SuiteRatioEntry> suite_ratios(std::string_view suite,
                                            std::string_view config_a,
                                            std::string_view config_b);
  /// Box stats over the usable entries (entries == 0 when none survived).
  static SuiteRatioBox summarize(std::string_view suite,
                                 const std::vector<SuiteRatioEntry>& entries);
  /// Absolute average power of every usable program-input pair of a suite
  /// under one configuration (Figure 6).
  std::vector<double> suite_powers(std::string_view suite,
                                   std::string_view config);

  struct Impl;  // internal
  Impl& impl() noexcept { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

// -- observability control --------------------------------------------------
/// Enables/disables the observability layer (spans, metrics); equivalent
/// to the REPRO_OBS environment knob.
void set_observability(bool on);
bool observability();

/// Paths written by `export_observability`.
struct ObsArtifacts {
  bool written = false;  // false: obs disabled or directory unwritable
  std::string trace_path;    // Chrome trace_event JSON (Perfetto)
  std::string metrics_path;  // text metrics dump
  std::string jsonl_path;    // JSONL metrics dump
  std::size_t events = 0;    // exported trace events
};

/// Exports the process-wide trace and metrics into `dir`. No-op (written
/// == false) while observability is disabled.
ObsArtifacts export_observability(const std::string& dir);

}  // namespace v1
}  // namespace repro
