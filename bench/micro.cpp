// google-benchmark microbenchmarks of the simulator substrates themselves:
// how fast can we time kernels, run cache/coalescing analyses, sample
// sensors and analyze runs. Useful to keep the full-study benches quick.
//
// After the benchmark suite, main() runs the observability overhead check:
// a full registry matrix batch with tracing enabled must finish within 5%
// of the tracing-disabled runtime (DESIGN.md §9). The process exits
// non-zero if the bound is violated.
//
// Full-matrix batches go through the public facade (repro::v1::Session);
// the waveform-level fast-path checks drive the sim/sensor/power layers
// directly since they compare against reference implementations of those
// internals.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "k20power/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/model.hpp"
#include "repro/api.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/cache.hpp"
#include "sim/coalesce.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "sim/timing.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace repro;

void BM_TimeKernel(benchmark::State& state) {
  workloads::KernelLaunch k;
  k.blocks = 1e6;
  k.threads_per_block = 256;
  k.mix.fp32 = 100.0;
  k.mix.global_loads = 8.0;
  const auto& config = sim::config_by_name("default");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::time_kernel(sim::k20c(), config, k));
  }
}
BENCHMARK(BM_TimeKernel);

void BM_RunTrace(benchmark::State& state) {
  workloads::LaunchTrace trace;
  for (int i = 0; i < state.range(0); ++i) {
    workloads::KernelLaunch k;
    k.name = "k" + std::to_string(i % 4);
    k.blocks = 1000.0;
    k.mix.fp32 = 50.0;
    k.mix.global_loads = 4.0;
    trace.push_back(std::move(k));
  }
  const auto& config = sim::config_by_name("default");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_trace(sim::k20c(), config, trace));
  }
}
BENCHMARK(BM_RunTrace)->Arg(100)->Arg(1000);

void BM_CacheAccess(benchmark::State& state) {
  sim::SetAssocCache cache{1280 * 1024, 128, 16};
  util::Rng rng{1};
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.uniform_index(8 * 1024 * 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_CoalesceWarp(benchmark::State& state) {
  sim::CoalescingAnalyzer analyzer;
  util::Rng rng{2};
  std::vector<std::uint64_t> addrs(32);
  for (auto& a : addrs) a = rng.uniform_index(1 << 20) * 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.warp_access(addrs));
  }
}
BENCHMARK(BM_CoalesceWarp);

void BM_SensorRecord(benchmark::State& state) {
  std::vector<sensor::Segment> segs{{0.0, 2.0, 25.0, 25.0},
                                    {2.0, 12.0, 110.0, 110.0},
                                    {12.0, 16.0, 25.0, 25.0}};
  const sensor::Waveform w{std::move(segs)};
  const sensor::Sensor sensor;
  util::Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.record(w, rng));
  }
}
BENCHMARK(BM_SensorRecord);

void BM_SensorRecordInto(benchmark::State& state) {
  std::vector<sensor::Segment> segs{{0.0, 2.0, 25.0, 25.0},
                                    {2.0, 12.0, 110.0, 110.0},
                                    {12.0, 16.0, 25.0, 25.0}};
  const sensor::Waveform w{std::move(segs)};
  const sensor::Sensor sensor;
  util::Rng rng{3};
  std::vector<sensor::Sample> samples;
  for (auto _ : state) {
    sensor.record_into(w, rng, samples);
    benchmark::DoNotOptimize(samples.data());
  }
}
BENCHMARK(BM_SensorRecordInto);

void BM_K20PowerAnalyze(benchmark::State& state) {
  std::vector<sensor::Sample> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({i * 0.1, i > 20 && i < 150 ? 110.0 : 25.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k20power::analyze(samples));
  }
}
BENCHMARK(BM_K20PowerAnalyze);

void BM_TopologyBfs(benchmark::State& state) {
  const graph::CsrGraph g = graph::roadmap(60, 60, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::topology_bfs(g, 0, 0.5, 7));
  }
}
BENCHMARK(BM_TopologyBfs);

void BM_Boruvka(benchmark::State& state) {
  const graph::CsrGraph g = graph::roadmap(60, 60, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::boruvka(g));
  }
}
BENCHMARK(BM_Boruvka);

// Per-span cost with tracing off: a single relaxed atomic load.
void BM_SpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench-span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

// Per-span cost with tracing on: clock reads + a buffered event append.
void BM_SpanEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Tracer::instance().clear();
  for (auto _ : state) {
    obs::Span span("bench-span");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_enabled(false);
  obs::Tracer::instance().clear();
}
BENCHMARK(BM_SpanEnabled);

// ---------------------------------------------------------------------------
// Observability overhead check (run after the benchmark suite).
//
// Runs the full primary registry matrix (every workload x every input x
// {default, 614}) through the facade's batch scheduler with tracing
// disabled and enabled, on fresh Session instances so both sides do the
// identical cold-cache work, and compares min-of-3 wall times. The
// tracing-enabled run also pays for event buffering, metric updates and
// the post-batch stage summary, so this is the end-to-end "does --obs make
// batches slower" number.

const std::vector<std::string>& matrix_configs() {
  static const std::vector<std::string> configs{"default", "614"};
  return configs;
}

double run_matrix_once(std::size_t* jobs_out = nullptr) {
  v1::Session session;
  const v1::BatchSummary summary = session.run_matrix(matrix_configs());
  if (jobs_out != nullptr) *jobs_out = summary.jobs;
  return summary.wall_s;
}

double min_matrix_wall(bool obs_on, int runs) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    obs::set_enabled(obs_on);
    obs::Tracer::instance().clear();
    obs::Registry::instance().reset();
    const double wall = run_matrix_once();
    if (i == 0 || wall < best) best = wall;
  }
  obs::set_enabled(false);
  obs::Tracer::instance().clear();
  obs::Registry::instance().reset();
  return best;
}

int obs_overhead_check() {
  constexpr double kMaxOverhead = 0.05;  // DESIGN.md §9 budget
  constexpr int kRuns = 3;

  std::size_t jobs = 0;
  run_matrix_once(&jobs);  // warm-up (page cache, allocator, thread pool)
  const double off_s = min_matrix_wall(/*obs_on=*/false, kRuns);
  const double on_s = min_matrix_wall(/*obs_on=*/true, kRuns);
  const double overhead = off_s > 0.0 ? on_s / off_s - 1.0 : 0.0;

  std::printf(
      "\nobs overhead check: %zu-job matrix, min of %d runs\n"
      "  tracing off  %.3f s\n"
      "  tracing on   %.3f s  (%+.2f%%)\n",
      jobs, kRuns, off_s, on_s, 100.0 * overhead);
  if (overhead > kMaxOverhead) {
    std::printf("FAIL: overhead %.2f%% exceeds the %.0f%% budget\n",
                100.0 * overhead, 100.0 * kMaxOverhead);
    return 1;
  }
  std::printf("PASS: within the %.0f%% budget\n", 100.0 * kMaxOverhead);
  return 0;
}

// ---------------------------------------------------------------------------
// Measurement fast-path check (DESIGN.md §10).
//
// Synthesizes the waveform of every experiment of a full registry matrix,
// then: (1) proves the cursor sweep, the synthesis and the production
// recording are bit-identical to reference binary-search / direct-model
// implementations (REPRO_OBS counters double-check the logical call and
// sample counts), and (2) asserts the cursor sweep is >= 1.5x faster than
// the reference binary-search sweep of the same waveforms. Finally emits
// the perf-trajectory JSON (ms per full-matrix batch, sensor samples/sec,
// sweep speedup) to $REPRO_BENCH_JSON if set (scripts/bench.sh writes
// BENCH_pipeline.json through this).

double now_wall(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The primary registry matrix the facade's run_matrix schedules, rebuilt
/// locally because the waveform checks need the raw (workload, input,
/// config) triples to drive the sim/sensor layers directly.
struct MatrixJob {
  const workloads::Workload* workload = nullptr;
  std::size_t input_index = 0;
  const sim::GpuConfig* config = nullptr;
};

std::vector<MatrixJob> local_matrix(const std::vector<std::string>& names) {
  std::vector<const sim::GpuConfig*> configs;
  configs.reserve(names.size());
  for (const std::string& name : names) {
    configs.push_back(&sim::config_by_name(name));
  }
  std::vector<MatrixJob> jobs;
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    if (!w->variant().empty()) continue;
    const std::size_t num_inputs = w->inputs().size();
    for (std::size_t i = 0; i < num_inputs; ++i) {
      for (const sim::GpuConfig* config : configs) {
        jobs.push_back(MatrixJob{w, i, config});
      }
    }
  }
  return jobs;
}

// The pre-optimization Sensor::record loop: O(log S) binary-search
// power_at on every fixed-dt integration step.
std::vector<sensor::Sample> record_reference(const sensor::Sensor& sensor,
                                             const sensor::Waveform& w,
                                             util::Rng& rng) {
  const sensor::SensorOptions& opt = sensor.options();
  std::vector<sensor::Sample> samples;
  const double end = w.duration();
  if (end <= 0.0) return samples;
  double reading = w.power_at(0.0);
  double next_sample = rng.uniform() * opt.idle_period_s;
  const double dt = opt.integration_dt_s;
  for (double t = 0.0; t <= end; t += dt) {
    const double p = w.power_at(t);
    reading += (p - reading) * std::min(dt / opt.lag_tau_s, 1.0);
    if (t + 1e-12 >= next_sample) {
      double reported = reading + rng.normal(0.0, opt.noise_sigma_w);
      reported = std::max(reported, 0.0);
      reported = std::round(reported / opt.quantum_w) * opt.quantum_w;
      samples.push_back({t, reported});
      next_sample = t + (reading >= opt.gate_w ? opt.active_period_s
                                               : opt.idle_period_s);
    }
  }
  return samples;
}

int pipeline_fastpath_check() {
  suites::register_all_workloads();
  const std::vector<MatrixJob> jobs = local_matrix(matrix_configs());

  // Synthesize every matrix waveform with obs on so the phase_power call
  // counter can be checked against the structural phase count.
  const power::PowerModel model;  // the study's default energy table
  obs::set_enabled(true);
  obs::Registry::instance().reset();
  std::vector<sensor::Waveform> waveforms;
  waveforms.reserve(jobs.size());
  std::uint64_t expected_phase_calls = 0;
  for (const MatrixJob& job : jobs) {
    workloads::ExecContext ctx;
    ctx.core_mhz = job.config->core_mhz;
    ctx.mem_mhz = job.config->mem_mhz;
    ctx.ecc = job.config->ecc;
    const sim::TraceResult trace = sim::run_trace(
        sim::k20c(), *job.config, job.workload->trace(job.input_index, ctx));
    expected_phase_calls += trace.phases.size();
    waveforms.push_back(sensor::synthesize(
        trace, *job.config, model,
        job.config->ecc ? job.workload->ecc_power_adjustment() : 1.0));
  }
  const std::uint64_t phase_calls =
      obs::Registry::instance().counter_value("power.phase_power.calls");
  obs::set_enabled(false);
  if (phase_calls != expected_phase_calls) {
    std::printf(
        "FAIL: waveform synthesis reported %llu phase_power calls, trace "
        "structure implies %llu\n",
        static_cast<unsigned long long>(phase_calls),
        static_cast<unsigned long long>(expected_phase_calls));
    return 1;
  }

  // Bit-identity: production recording (cursor) vs the reference
  // binary-search recording, same seeds.
  const sensor::Sensor sensor;
  std::uint64_t total_samples = 0;
  for (std::size_t i = 0; i < waveforms.size(); ++i) {
    util::Rng ref_rng{1000 + i}, fast_rng{1000 + i};
    const auto ref = record_reference(sensor, waveforms[i], ref_rng);
    const auto fast = sensor.record(waveforms[i], fast_rng);
    total_samples += fast.size();
    if (ref.size() != fast.size() ||
        !std::equal(ref.begin(), ref.end(), fast.begin(),
                    [](const sensor::Sample& a, const sensor::Sample& b) {
                      return a.t == b.t && a.w == b.w;
                    })) {
      std::printf("FAIL: cursor recording differs from reference on job %zu\n",
                  i);
      return 1;
    }
  }

  // Perf: fixed-dt power sweep over every waveform, reference
  // binary-search vs cursor, min of 3 passes each. The accumulated sums
  // must agree bit-for-bit (same additions in the same order).
  constexpr double kDt = 0.01;
  constexpr int kPasses = 3;
  const auto sweep = [&](auto&& lookup_pass) {
    double best = 0.0, acc = 0.0;
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      acc = lookup_pass();
      const double wall = now_wall(start);
      if (pass == 0 || wall < best) best = wall;
    }
    return std::pair<double, double>{best, acc};
  };
  const auto [ref_s, ref_acc] = sweep([&] {
    double acc = 0.0;
    for (const sensor::Waveform& w : waveforms) {
      for (double t = 0.0; t <= w.duration(); t += kDt) acc += w.power_at(t);
    }
    return acc;
  });
  const auto [fast_s, fast_acc] = sweep([&] {
    double acc = 0.0;
    for (const sensor::Waveform& w : waveforms) {
      sensor::Waveform::Cursor cursor = w.cursor();
      for (double t = 0.0; t <= w.duration(); t += kDt) {
        acc += cursor.power_at(t);
      }
    }
    return acc;
  });
  if (ref_acc != fast_acc) {
    std::printf("FAIL: cursor sweep sum %.17g != reference sweep sum %.17g\n",
                fast_acc, ref_acc);
    return 1;
  }
  const double speedup = fast_s > 0.0 ? ref_s / fast_s : 0.0;

  // Production recording throughput and the full-matrix batch time for the
  // perf-trajectory JSON.
  double record_s = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<sensor::Sample> samples;
    util::Rng rng{7};
    for (const sensor::Waveform& w : waveforms) {
      sensor.record_into(w, rng, samples);
      benchmark::DoNotOptimize(samples.data());
    }
    const double wall = now_wall(start);
    if (pass == 0 || wall < record_s) record_s = wall;
  }
  const double samples_per_sec =
      record_s > 0.0 ? static_cast<double>(total_samples) / record_s : 0.0;
  double batch_s = 0.0;
  for (int pass = 0; pass < kPasses; ++pass) {
    const double wall = run_matrix_once();
    if (pass == 0 || wall < batch_s) batch_s = wall;
  }

  std::printf(
      "\npipeline fast-path check: %zu waveforms, %llu samples\n"
      "  sweep  reference (binary search)  %.4f s\n"
      "  sweep  cursor                     %.4f s  (%.2fx)\n"
      "  record cursor                     %.4f s  (%.0f samples/s)\n"
      "  full-matrix batch                 %.4f s  (%zu jobs)\n",
      waveforms.size(), static_cast<unsigned long long>(total_samples), ref_s,
      fast_s, speedup, record_s, samples_per_sec, batch_s, jobs.size());

  const std::string& json_path = Options::global().bench_json;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"matrix_jobs\": %zu,\n"
        "  \"batch_wall_ms\": %.3f,\n"
        "  \"sweep_reference_ms\": %.3f,\n"
        "  \"sweep_cursor_ms\": %.3f,\n"
        "  \"sweep_speedup\": %.3f,\n"
        "  \"record_wall_ms\": %.3f,\n"
        "  \"samples_total\": %llu,\n"
        "  \"samples_per_sec\": %.0f\n"
        "}\n",
        jobs.size(), 1e3 * batch_s, 1e3 * ref_s, 1e3 * fast_s, speedup,
        1e3 * record_s, static_cast<unsigned long long>(total_samples),
        samples_per_sec);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  constexpr double kMinSpeedup = 1.5;
  if (speedup < kMinSpeedup) {
    std::printf("FAIL: cursor sweep speedup %.2fx below the %.1fx floor\n",
                speedup, kMinSpeedup);
    return 1;
  }
  std::printf("PASS: bit-identical, %.2fx >= %.1fx\n", speedup, kMinSpeedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int obs_rc = obs_overhead_check();
  const int pipeline_rc = pipeline_fastpath_check();
  return obs_rc != 0 ? obs_rc : pipeline_rc;
}
