// google-benchmark microbenchmarks of the simulator substrates themselves:
// how fast can we time kernels, run cache/coalescing analyses, sample
// sensors and analyze runs. Useful to keep the full-study benches quick.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "k20power/analyze.hpp"
#include "power/model.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/cache.hpp"
#include "sim/coalesce.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "sim/timing.hpp"
#include "util/rng.hpp"

namespace {

using namespace repro;

void BM_TimeKernel(benchmark::State& state) {
  workloads::KernelLaunch k;
  k.blocks = 1e6;
  k.threads_per_block = 256;
  k.mix.fp32 = 100.0;
  k.mix.global_loads = 8.0;
  const auto& config = sim::config_by_name("default");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::time_kernel(sim::k20c(), config, k));
  }
}
BENCHMARK(BM_TimeKernel);

void BM_RunTrace(benchmark::State& state) {
  workloads::LaunchTrace trace;
  for (int i = 0; i < state.range(0); ++i) {
    workloads::KernelLaunch k;
    k.name = "k" + std::to_string(i % 4);
    k.blocks = 1000.0;
    k.mix.fp32 = 50.0;
    k.mix.global_loads = 4.0;
    trace.push_back(std::move(k));
  }
  const auto& config = sim::config_by_name("default");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_trace(sim::k20c(), config, trace));
  }
}
BENCHMARK(BM_RunTrace)->Arg(100)->Arg(1000);

void BM_CacheAccess(benchmark::State& state) {
  sim::SetAssocCache cache{1280 * 1024, 128, 16};
  util::Rng rng{1};
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.uniform_index(8 * 1024 * 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_CoalesceWarp(benchmark::State& state) {
  sim::CoalescingAnalyzer analyzer;
  util::Rng rng{2};
  std::vector<std::uint64_t> addrs(32);
  for (auto& a : addrs) a = rng.uniform_index(1 << 20) * 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.warp_access(addrs));
  }
}
BENCHMARK(BM_CoalesceWarp);

void BM_SensorRecord(benchmark::State& state) {
  std::vector<sensor::Segment> segs{{0.0, 2.0, 25.0, 25.0},
                                    {2.0, 12.0, 110.0, 110.0},
                                    {12.0, 16.0, 25.0, 25.0}};
  const sensor::Waveform w{std::move(segs)};
  const sensor::Sensor sensor;
  util::Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.record(w, rng));
  }
}
BENCHMARK(BM_SensorRecord);

void BM_K20PowerAnalyze(benchmark::State& state) {
  std::vector<sensor::Sample> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({i * 0.1, i > 20 && i < 150 ? 110.0 : 25.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k20power::analyze(samples));
  }
}
BENCHMARK(BM_K20PowerAnalyze);

void BM_TopologyBfs(benchmark::State& state) {
  const graph::CsrGraph g = graph::roadmap(60, 60, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::topology_bfs(g, 0, 0.5, 7));
  }
}
BENCHMARK(BM_TopologyBfs);

void BM_Boruvka(benchmark::State& state) {
  const graph::CsrGraph g = graph::roadmap(60, 60, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::boruvka(g));
  }
}
BENCHMARK(BM_Boruvka);

}  // namespace

BENCHMARK_MAIN();
