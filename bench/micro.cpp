// google-benchmark microbenchmarks of the simulator substrates themselves:
// how fast can we time kernels, run cache/coalescing analyses, sample
// sensors and analyze runs. Useful to keep the full-study benches quick.
//
// After the benchmark suite, main() runs the observability overhead check:
// a full registry matrix batch with tracing enabled must finish within 5%
// of the tracing-disabled runtime (DESIGN.md §9). The process exits
// non-zero if the bound is violated.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/scheduler.hpp"
#include "core/study.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "k20power/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/model.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/cache.hpp"
#include "sim/coalesce.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "sim/timing.hpp"
#include "util/rng.hpp"

namespace {

using namespace repro;

void BM_TimeKernel(benchmark::State& state) {
  workloads::KernelLaunch k;
  k.blocks = 1e6;
  k.threads_per_block = 256;
  k.mix.fp32 = 100.0;
  k.mix.global_loads = 8.0;
  const auto& config = sim::config_by_name("default");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::time_kernel(sim::k20c(), config, k));
  }
}
BENCHMARK(BM_TimeKernel);

void BM_RunTrace(benchmark::State& state) {
  workloads::LaunchTrace trace;
  for (int i = 0; i < state.range(0); ++i) {
    workloads::KernelLaunch k;
    k.name = "k" + std::to_string(i % 4);
    k.blocks = 1000.0;
    k.mix.fp32 = 50.0;
    k.mix.global_loads = 4.0;
    trace.push_back(std::move(k));
  }
  const auto& config = sim::config_by_name("default");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_trace(sim::k20c(), config, trace));
  }
}
BENCHMARK(BM_RunTrace)->Arg(100)->Arg(1000);

void BM_CacheAccess(benchmark::State& state) {
  sim::SetAssocCache cache{1280 * 1024, 128, 16};
  util::Rng rng{1};
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.uniform_index(8 * 1024 * 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_CoalesceWarp(benchmark::State& state) {
  sim::CoalescingAnalyzer analyzer;
  util::Rng rng{2};
  std::vector<std::uint64_t> addrs(32);
  for (auto& a : addrs) a = rng.uniform_index(1 << 20) * 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.warp_access(addrs));
  }
}
BENCHMARK(BM_CoalesceWarp);

void BM_SensorRecord(benchmark::State& state) {
  std::vector<sensor::Segment> segs{{0.0, 2.0, 25.0, 25.0},
                                    {2.0, 12.0, 110.0, 110.0},
                                    {12.0, 16.0, 25.0, 25.0}};
  const sensor::Waveform w{std::move(segs)};
  const sensor::Sensor sensor;
  util::Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensor.record(w, rng));
  }
}
BENCHMARK(BM_SensorRecord);

void BM_K20PowerAnalyze(benchmark::State& state) {
  std::vector<sensor::Sample> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({i * 0.1, i > 20 && i < 150 ? 110.0 : 25.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k20power::analyze(samples));
  }
}
BENCHMARK(BM_K20PowerAnalyze);

void BM_TopologyBfs(benchmark::State& state) {
  const graph::CsrGraph g = graph::roadmap(60, 60, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::topology_bfs(g, 0, 0.5, 7));
  }
}
BENCHMARK(BM_TopologyBfs);

void BM_Boruvka(benchmark::State& state) {
  const graph::CsrGraph g = graph::roadmap(60, 60, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::boruvka(g));
  }
}
BENCHMARK(BM_Boruvka);

// Per-span cost with tracing off: a single relaxed atomic load.
void BM_SpanDisabled(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench-span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

// Per-span cost with tracing on: clock reads + a buffered event append.
void BM_SpanEnabled(benchmark::State& state) {
  obs::set_enabled(true);
  obs::Tracer::instance().clear();
  for (auto _ : state) {
    obs::Span span("bench-span");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_enabled(false);
  obs::Tracer::instance().clear();
}
BENCHMARK(BM_SpanEnabled);

// ---------------------------------------------------------------------------
// Observability overhead check (run after the benchmark suite).
//
// Runs the full primary registry matrix (every workload x every input x
// {default, 614}) through the scheduler with tracing disabled and enabled,
// on fresh Study instances so both sides do the identical cold-cache work,
// and compares min-of-3 wall times. The tracing-enabled run also pays for
// event buffering, metric updates and the post-batch stage summary, so this
// is the end-to-end "does --obs make batches slower" number.

double run_matrix_once(const std::vector<core::ExperimentJob>& jobs) {
  core::Study study;
  const core::Scheduler scheduler{core::Scheduler::Options{}};
  const auto start = std::chrono::steady_clock::now();
  scheduler.run(study, jobs);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double min_matrix_wall(const std::vector<core::ExperimentJob>& jobs,
                       bool obs_on, int runs) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) {
    obs::set_enabled(obs_on);
    obs::Tracer::instance().clear();
    obs::Registry::instance().reset();
    const double wall = run_matrix_once(jobs);
    if (i == 0 || wall < best) best = wall;
  }
  obs::set_enabled(false);
  obs::Tracer::instance().clear();
  obs::Registry::instance().reset();
  return best;
}

int obs_overhead_check() {
  constexpr double kMaxOverhead = 0.05;  // DESIGN.md §9 budget
  constexpr int kRuns = 3;
  suites::register_all_workloads();
  const std::vector<core::ExperimentJob> jobs =
      core::registry_matrix({"default", "614"});

  run_matrix_once(jobs);  // warm-up (page cache, allocator, thread pool)
  const double off_s = min_matrix_wall(jobs, /*obs_on=*/false, kRuns);
  const double on_s = min_matrix_wall(jobs, /*obs_on=*/true, kRuns);
  const double overhead = off_s > 0.0 ? on_s / off_s - 1.0 : 0.0;

  std::printf(
      "\nobs overhead check: %zu-job matrix, min of %d runs\n"
      "  tracing off  %.3f s\n"
      "  tracing on   %.3f s  (%+.2f%%)\n",
      jobs.size(), kRuns, off_s, on_s, 100.0 * overhead);
  if (overhead > kMaxOverhead) {
    std::printf("FAIL: overhead %.2f%% exceeds the %.0f%% budget\n",
                100.0 * overhead, 100.0 * kMaxOverhead);
    return 1;
  }
  std::printf("PASS: within the %.0f%% budget\n", 100.0 * kMaxOverhead);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return obs_overhead_check();
}
