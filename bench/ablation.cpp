// Ablation study of the model mechanisms DESIGN.md §5 calls out.
//
// Each ablation disables one mechanism and re-derives a paper-headline
// number, showing how much of the reproduced effect that mechanism
// carries:
//   A1  DVFS voltage scaling      -> NB's power drop at 614 (paper: -22%)
//   A2  per-transaction ECC energy-> L-BFS energy-vs-time gap under ECC
//   A3  FMA dual-issue            -> MaxFlops power vs. plain NB
//   A4  update-visibility model   -> L-BFS runtime change at 614
//   A5  memory-clock domain       -> LBM slowdown at 324
#include <cstdio>

#include "figcommon.hpp"
#include "power/model.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace repro;

/// Ground-truth (sensor-free) time and average power of one experiment
/// under an explicit config and energy table.
struct TruthResult {
  double time_s = 0.0;
  double power_w = 0.0;
  double energy_j = 0.0;
};

TruthResult ground_truth(const workloads::Workload& w, std::size_t input,
                         const sim::GpuConfig& config,
                         const power::EnergyTable& table) {
  workloads::ExecContext ctx;
  ctx.core_mhz = config.core_mhz;
  ctx.mem_mhz = config.mem_mhz;
  ctx.ecc = config.ecc;
  const auto trace = sim::run_trace(sim::k20c(), config, w.trace(input, ctx));
  const power::PowerModel model{table};
  double energy = 0.0;
  for (const auto& phase : trace.phases) {
    energy +=
        model.phase_power(phase.activity, phase.duration_s, config).total_w *
        phase.duration_s;
  }
  TruthResult r;
  r.time_s = trace.active_time_s;
  r.energy_j = energy;
  r.power_w = trace.active_time_s > 0.0 ? energy / trace.active_time_s : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  repro::bench::ObsGuard obs_guard(argc, argv);
  suites::register_all_workloads();
  const auto& reg = workloads::Registry::instance();
  const power::EnergyTable base_table = power::default_energies();

  std::printf("Ablation study: contribution of each model mechanism\n\n");

  // A1: DVFS voltage scaling (614 at nominal voltage vs. scaled voltage).
  {
    const workloads::Workload& nb = *reg.find("NB");
    const auto& def = sim::config_by_name("default");
    sim::GpuConfig c614 = sim::config_by_name("614");
    const auto p_def = ground_truth(nb, 2, def, base_table);
    const auto p_614 = ground_truth(nb, 2, c614, base_table);
    sim::GpuConfig flat = c614;
    flat.core_voltage = def.core_voltage;  // frequency-only DVFS
    const auto p_flat = ground_truth(nb, 2, flat, base_table);
    std::printf(
        "A1 DVFS voltage scaling (NB 1m, power ratio 614/default; paper "
        "-22%%):\n"
        "   with voltage scaling    %.3f\n"
        "   frequency-only scaling  %.3f\n\n",
        p_614.power_w / p_def.power_w, p_flat.power_w / p_def.power_w);
  }

  // A2: per-transaction ECC energy.
  {
    const workloads::Workload& lbfs = *reg.find("L-BFS");
    const auto& def = sim::config_by_name("default");
    const auto& ecc = sim::config_by_name("ecc");
    const auto p_def = ground_truth(lbfs, 2, def, base_table);
    const auto p_ecc = ground_truth(lbfs, 2, ecc, base_table);
    power::EnergyTable no_ecc_energy = base_table;
    no_ecc_energy.ecc_transaction_nj = 0.0;
    const auto p_ecc0 = ground_truth(lbfs, 2, ecc, no_ecc_energy);
    std::printf(
        "A2 per-transaction ECC energy (L-BFS USA; paper: Lonestar energy "
        "rises beyond runtime):\n"
        "   time ratio ecc/default            %.3f\n"
        "   energy ratio, full model          %.3f\n"
        "   energy ratio, ECC energy removed  %.3f\n\n",
        p_ecc.time_s / p_def.time_s, p_ecc.energy_j / p_def.energy_j,
        p_ecc0.energy_j / p_def.energy_j);
  }

  // A3: FMA dual-issue (MaxFlops with fma_fraction forced to zero would
  // halve its FLOP rate; compare its power density against NB's).
  {
    const workloads::Workload& mf = *reg.find("MF");
    const workloads::Workload& nb = *reg.find("NB");
    const auto& def = sim::config_by_name("default");
    const auto p_mf = ground_truth(mf, 0, def, base_table);
    const auto p_nb = ground_truth(nb, 2, def, base_table);
    std::printf(
        "A3 FMA dual-issue (peak-power headroom; paper: MF tops the power "
        "range):\n"
        "   MF average power  %.1f W\n"
        "   NB average power  %.1f W\n\n",
        p_mf.power_w, p_nb.power_w);
  }

  // A4: update-visibility (irregular timing dependence): L-BFS trace under
  // 614 clocks vs. a hypothetical 614 with default-clock visibility.
  {
    const workloads::Workload& lbfs = *reg.find("L-BFS");
    const auto& def = sim::config_by_name("default");
    const auto& c614 = sim::config_by_name("614");
    const auto t_def = ground_truth(lbfs, 2, def, base_table);
    const auto t_614 = ground_truth(lbfs, 2, c614, base_table);
    // Freeze the algorithmic behaviour at default clocks, re-time at 614:
    workloads::ExecContext frozen;  // default clocks -> default visibility
    const auto frozen_trace =
        sim::run_trace(sim::k20c(), c614, lbfs.trace(2, frozen));
    std::printf(
        "A4 update-visibility mechanism (L-BFS USA, time ratio 614/default; "
        "paper: irregular codes move BOTH ways):\n"
        "   with visibility coupling     %.3f\n"
        "   visibility frozen at default %.3f\n\n",
        t_614.time_s / t_def.time_s, frozen_trace.active_time_s / t_def.time_s);
  }

  // A5: memory-clock domain: LBM at 324 with memory kept at 2.6 GHz.
  {
    const workloads::Workload& lbm = *reg.find("LBM");
    const auto& c614 = sim::config_by_name("614");
    const auto& c324 = sim::config_by_name("324");
    sim::GpuConfig core_only = c324;
    core_only.mem_mhz = 2600.0;
    const auto t_614 = ground_truth(lbm, 0, c614, base_table);
    const auto t_324 = ground_truth(lbm, 0, c324, base_table);
    const auto t_core = ground_truth(lbm, 0, core_only, base_table);
    std::printf(
        "A5 memory-clock domain (LBM 3000, time ratio vs 614; paper: 7.75x):\n"
        "   core+memory at 324 MHz  %.2fx\n"
        "   core-only at 324 MHz    %.2fx\n",
        t_324.time_s / t_614.time_s, t_core.time_s / t_614.time_s);
  }
  return 0;
}
