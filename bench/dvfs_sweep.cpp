// DVFS sweep gate (DESIGN.md §15). The continuous-grid recommender only
// earns its keep if sweeping the plane is much cheaper than brute force
// while recommending an equally good operating point. Checked end to end
// and emitted as a flat JSON artifact (REPRO_BENCH_JSON, scripts/ci.sh
// writes BENCH_dvfs.json):
//
//   1. fidelity — for every program in the slice and every objective
//      (min_energy, min_edp, min_ed2p, perf_cap), the point the
//      analytically-pruned sampled sweep recommends delivers, on EXACT
//      measurements, an objective value equal to the exact exhaustive
//      optimum up to the sampler's own STATED confidence at the chosen
//      point, amplified through the objective (energy 1x the energy
//      half-width; EDP adds 1x, ED^2 P 2x the time half-width; both
//      endpoints of the comparison contribute). Regret bounded by stated
//      error, not name equality: adjacent grid points of a flat objective
//      are interchangeable outcomes, and no sampled estimator can order
//      points tighter than the intervals it reports — which the sampling
//      gate (bench_sampling) separately pins at <= 5% median;
//   2. speed — with warm traces the pruned sampled sweep of the
//      (core, mem) plane is >= 5x cheaper (wall clock) than the exact
//      exhaustive sweep.
//
// White-box by design (drives dvfs::run_sweep against core::Study
// directly: the speedup claim is about the sweep's projection +
// measurement work, not trace construction, which both paths share).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "dvfs/dvfs.hpp"
#include "repro/api.hpp"
#include "sample/sample.hpp"
#include "sim/gpuconfig.hpp"
#include "suites/factories.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace repro;

struct SliceEntry {
  const char* program;
  std::size_t input;
};

// Compute-bound, memory-bound, balanced and irregular representatives:
// the sweet spot moves across this slice, so outcome equality is not
// vacuous.
constexpr SliceEntry kSlice[4] = {
    {"SGEMM", 0}, {"LBM", 0}, {"BP", 0}, {"L-BFS", 2}};

constexpr dvfs::Objective kObjectives[4] = {
    dvfs::Objective::kMinEnergy, dvfs::Objective::kMinEdp,
    dvfs::Objective::kMinEd2p, dvfs::Objective::kPerfCap};

constexpr double kPerfCapRel = 1.10;
constexpr double kMinSpeedup = 5.0;

}  // namespace

int main() {
  suites::register_all_workloads();

  // The full plane: the paper's core DVFS range crossed with both memory
  // clocks. The low-memory half is where brute force bleeds (memory-bound
  // programs run many times longer there) and where the analytic
  // projection prunes hardest.
  dvfs::SweepSettings exact_settings;
  exact_settings.grid.core = {324.0, 705.0, 25.0};
  exact_settings.grid.mem = {324.0, 2600.0, 2276.0};
  exact_settings.prune = false;  // exhaustive: measure every grid point
  dvfs::SweepSettings pruned_settings = exact_settings;
  pruned_settings.prune = true;
  pruned_settings.prune_margin = 0.06;

  sample::SampleOptions sampling;
  sampling.mode = sample::Mode::kStratified;
  sampling.fraction = 0.10;

  // Both paths share trace construction; prewarm every grid point's trace
  // so the timed comparison isolates the sweep itself (analytic pass +
  // measurements). Wall-clock noise is real at these scales, so each arm
  // is timed kTimingReps times and the minimum wins; exact measurements
  // are cached per study, so every exact repetition gets its own
  // (trace-warm, result-cold) study, while sampled runs recompute every
  // time and can share one.
  constexpr int kTimingReps = 5;
  core::Study exact_studies[kTimingReps];
  core::Study sampled_study;
  const std::vector<sim::GpuConfig> grid =
      dvfs::make_grid(exact_settings.grid);
  for (const SliceEntry& entry : kSlice) {
    const workloads::Workload* w =
        workloads::Registry::instance().find(entry.program);
    if (w == nullptr) {
      std::printf("FAIL: unknown program %s\n", entry.program);
      return 1;
    }
    for (const sim::GpuConfig& config : grid) {
      for (core::Study& study : exact_studies) {
        study.trace_result(*w, entry.input, config);
      }
      sampled_study.trace_result(*w, entry.input, config);
    }
  }

  double exact_s = 0.0, sweep_s = 0.0;
  std::size_t measured_exact = 0, measured_pruned = 0, pruned_points = 0;
  double worst_regret = 0.0;
  int violations = 0;
  std::printf(
      "dvfs sweep gate: %zu-point (core, mem) grid, %zu programs x %zu "
      "objectives\n",
      grid.size(), std::size(kSlice), std::size(kObjectives));
  for (const SliceEntry& entry : kSlice) {
    const workloads::Workload& w =
        *workloads::Registry::instance().find(entry.program);

    dvfs::Sweep exhaustive, pruned;
    double best_exact_s = 0.0, best_sweep_s = 0.0;
    for (int rep = 0; rep < kTimingReps; ++rep) {
      core::Study& exact_study = exact_studies[rep];
      const auto t0 = std::chrono::steady_clock::now();
      dvfs::Sweep ex = dvfs::run_sweep(
          exact_study, w, entry.input, exact_settings,
          [&](const sim::GpuConfig& config, dvfs::PointStatus&) {
            sample::SampledResult r;
            r.base = exact_study.measure(w, entry.input, config);
            return r;
          });
      const auto t1 = std::chrono::steady_clock::now();
      dvfs::Sweep pr = dvfs::run_sweep(
          sampled_study, w, entry.input, pruned_settings,
          [&](const sim::GpuConfig& config, dvfs::PointStatus&) {
            return sample::measure_sampled(sampled_study, w, entry.input,
                                           config, sampling);
          });
      const auto t2 = std::chrono::steady_clock::now();
      const double rep_exact = std::chrono::duration<double>(t1 - t0).count();
      const double rep_sweep = std::chrono::duration<double>(t2 - t1).count();
      // Every repetition is deterministic and identical; keep the first
      // sweep pair for fidelity and the fastest time per arm.
      if (rep == 0) {
        exhaustive = std::move(ex);
        pruned = std::move(pr);
        best_exact_s = rep_exact;
        best_sweep_s = rep_sweep;
      } else {
        best_exact_s = std::min(best_exact_s, rep_exact);
        best_sweep_s = std::min(best_sweep_s, rep_sweep);
      }
    }
    exact_s += best_exact_s;
    sweep_s += best_sweep_s;
    measured_exact += exhaustive.measured;
    measured_pruned += pruned.measured;
    pruned_points += pruned.pruned;

    // Fidelity: score the pruned sweep's choice on the EXACT measurements
    // (point i of both sweeps is the same grid point by construction).
    const std::vector<dvfs::MetricPoint> exact_metrics =
        dvfs::metric_points(exhaustive);
    const std::vector<dvfs::MetricPoint> pruned_metrics =
        dvfs::metric_points(pruned);
    for (const dvfs::Objective objective : kObjectives) {
      const dvfs::Choice want =
          dvfs::pick(exact_metrics, objective, kPerfCapRel);
      const dvfs::Choice got =
          dvfs::pick(pruned_metrics, objective, kPerfCapRel);
      if (want.index < 0 || got.index < 0) {
        std::printf("  %-6s %-10s FAIL: no recommendation (exhaustive %d, "
                    "pruned %d)\n",
                    entry.program,
                    std::string(dvfs::to_string(objective)).c_str(),
                    want.index, got.index);
        ++violations;
        continue;
      }
      const dvfs::MetricPoint& chosen =
          exact_metrics[static_cast<std::size_t>(got.index)];
      const double exact_at_chosen =
          dvfs::objective_value(objective, chosen.time_s, chosen.energy_j);
      const double regret =
          want.value > 0.0 ? exact_at_chosen / want.value - 1.0 : 0.0;

      // The tightest claim a sampled sweep can make: the chosen point's
      // objective is within its stated 95% interval of the optimum's.
      // Amplify per-metric half-widths through the objective (EDP adds
      // one time half-width, ED^2 P two) and count both comparison
      // endpoints. A passthrough point states zero width and is held to
      // exact equality.
      const auto rel_half_width = [](const sample::Interval& ci,
                                     double estimate) {
        return estimate > 0.0 ? 0.5 * (ci.high - ci.low) / estimate : 0.0;
      };
      const auto objective_err = [&](const dvfs::Point& point) {
        const double hw_t =
            rel_half_width(point.result.time_ci, point.result.base.time_s);
        const double hw_e =
            rel_half_width(point.result.energy_ci, point.result.base.energy_j);
        switch (objective) {
          case dvfs::Objective::kMinEdp: return hw_e + hw_t;
          case dvfs::Objective::kMinEd2p: return hw_e + 2.0 * hw_t;
          default: return hw_e;  // energy-valued objectives
        }
      };
      const dvfs::Point& got_point =
          pruned.points[static_cast<std::size_t>(got.index)];
      const dvfs::Point& want_in_pruned =
          pruned.points[static_cast<std::size_t>(want.index)];
      double bound = objective_err(got_point);
      // The optimum's endpoint: its own stated error when the pruned
      // sweep measured it, the pruning margin's analytic allowance when
      // it was dominance-pruned before measurement.
      bound += want_in_pruned.measured
                   ? objective_err(want_in_pruned)
                   : pruned_settings.prune_margin;
      const bool cap_ok =
          objective != dvfs::Objective::kPerfCap ||
          chosen.time_s <=
              want.cap_time_s *
                  (1.0 + rel_half_width(got_point.result.time_ci,
                                        got_point.result.base.time_s));
      // perf_cap can flip on feasibility rather than ordering: the exact
      // optimum's sampled time landed above the sampled run's cap, so the
      // sampled sweep never compared energies against it, and being forced
      // up the frequency ladder costs energy out of proportion to the time
      // error. The exclusion is consistent with the stated confidence when
      // the overshoot is covered by the time half-widths of the optimum
      // and of the cap-setting (sampled-fastest) point; the chosen point
      // is then judged by its own cap check alone.
      bool cap_borderline = false;
      if (objective == dvfs::Objective::kPerfCap && want_in_pruned.measured) {
        const dvfs::MetricPoint& want_m =
            pruned_metrics[static_cast<std::size_t>(want.index)];
        if (want_m.usable && want_m.time_s > got.cap_time_s) {
          double hw_cap = 0.0;
          double fastest = std::numeric_limits<double>::infinity();
          for (std::size_t i = 0; i < pruned_metrics.size(); ++i) {
            if (!pruned_metrics[i].usable ||
                pruned_metrics[i].time_s >= fastest) {
              continue;
            }
            fastest = pruned_metrics[i].time_s;
            hw_cap = rel_half_width(pruned.points[i].result.time_ci,
                                    pruned.points[i].result.base.time_s);
          }
          const double hw_want =
              rel_half_width(want_in_pruned.result.time_ci,
                             want_in_pruned.result.base.time_s);
          cap_borderline = want_m.time_s * (1.0 - hw_want) <=
                           got.cap_time_s * (1.0 + hw_cap);
        }
      }
      if (regret > worst_regret) worst_regret = regret;
      const bool ok = (regret <= bound + 1e-12 || cap_borderline) && cap_ok;
      if (!ok) ++violations;
      std::printf(
          "  %-6s %-10s exhaustive %-14s pruned+sampled %-14s regret "
          "%+5.2f%% (stated bound %.2f%%)%s%s%s\n",
          entry.program, std::string(dvfs::to_string(objective)).c_str(),
          exhaustive.points[static_cast<std::size_t>(want.index)]
              .config.name.c_str(),
          got_point.config.name.c_str(), 100.0 * regret, 100.0 * bound,
          cap_borderline && regret > bound ? " (cap-borderline)" : "",
          cap_ok ? "" : " CAP-VIOLATION", ok ? "" : " FAIL");
    }
  }

  const double speedup = sweep_s > 0.0 ? exact_s / sweep_s : 0.0;
  std::printf(
      "  exhaustive %zu measurements in %.0f ms; pruned+sampled %zu "
      "measurements (%zu pruned) in %.0f ms: %.2fx\n",
      measured_exact, 1e3 * exact_s, measured_pruned, pruned_points,
      1e3 * sweep_s, speedup);

  const std::string& json_path = Options::global().bench_json;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"grid_points\": %zu,\n"
                 "  \"programs\": %zu,\n"
                 "  \"objectives\": %zu,\n"
                 "  \"measured_exhaustive\": %zu,\n"
                 "  \"measured_pruned_sampled\": %zu,\n"
                 "  \"pruned_points\": %zu,\n"
                 "  \"worst_regret\": %.5f,\n"
                 "  \"regret_violations\": %d,\n"
                 "  \"exhaustive_ms\": %.3f,\n"
                 "  \"pruned_sampled_ms\": %.3f,\n"
                 "  \"speedup\": %.3f\n"
                 "}\n",
                 grid.size(), std::size(kSlice), std::size(kObjectives),
                 measured_exact, measured_pruned, pruned_points, worst_regret,
                 violations, 1e3 * exact_s, 1e3 * sweep_s, speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  int rc = 0;
  if (violations > 0) {
    std::printf(
        "FAIL: %d recommendation(s) exceed their stated-confidence regret "
        "bound\n",
        violations);
    rc = 1;
  }
  if (speedup < kMinSpeedup) {
    std::printf("FAIL: sweep speedup %.2fx below the %.1fx floor\n", speedup,
                kMinSpeedup);
    rc = 1;
  }
  if (rc == 0) {
    std::printf(
        "PASS: all recommendations within stated confidence (worst regret "
        "%.2f%%), %.2fx >= %.1fx\n",
        100.0 * worst_regret, speedup, kMinSpeedup);
  }
  return rc;
}
