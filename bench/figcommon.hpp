// Shared rendering for the box-plot figures (Figs. 2-4, 6) and the
// parallel prewarm step every driver runs before rendering.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/scheduler.hpp"
#include "core/study.hpp"
#include "util/tablefmt.hpp"

namespace repro::bench {

/// Runs the driver's whole experiment matrix (every registered program and
/// input under `config_names`) through the work-stealing scheduler, then
/// prints the batch metrics. The serial rendering code below each driver
/// subsequently hits a warm cache, so its output — proven bit-identical to
/// serial execution in tests/scheduler_test.cpp — is produced at parallel
/// speed. Thread count: REPRO_THREADS env var, else hardware concurrency.
inline void prewarm(core::Study& study,
                    const std::vector<std::string>& config_names,
                    bool include_variants = false) {
  const std::vector<core::ExperimentJob> jobs =
      core::registry_matrix(config_names, include_variants);
  const core::Scheduler scheduler;
  const core::BatchReport report = scheduler.run(study, jobs);
  report.print(std::cout);
  std::cout << "\n";
}

inline const std::vector<std::string>& suite_order() {
  static const std::vector<std::string> order{
      "CUDA SDK", "LonestarGPU", "Parboil", "Rodinia", "SHOC"};
  return order;
}

/// Prints one metric's per-suite box stats (ratio figures).
inline void print_ratio_boxes(
    std::ostream& os, const std::string& metric,
    const std::vector<core::SuiteRatioBox>& boxes,
    double lo, double hi,
    const std::vector<util::BoxStats core::SuiteRatioBox::*>& /*unused*/ = {}) {
  os << "-- " << metric << " (ratio; >1.0 = increase) --\n";
  util::TextTable table({"suite", "n", "min", "q1", "median", "q3", "max",
                         "box [" + util::format_ratio(lo) + " .. " +
                             util::format_ratio(hi) + "]"});
  for (const core::SuiteRatioBox& b : boxes) {
    const util::BoxStats& s = metric == "active runtime" ? b.time
                              : metric == "energy"       ? b.energy
                                                         : b.power;
    if (b.entries == 0) {
      table.row().add(b.suite).add(0ll).add("-").add("-").add("-").add("-").add(
          "-").add("(no usable entries)");
      continue;
    }
    table.row()
        .add(b.suite)
        .add(static_cast<long long>(b.entries))
        .add(s.min)
        .add(s.q1)
        .add(s.median)
        .add(s.q3)
        .add(s.max)
        .add(util::ascii_box(s.min, s.q1, s.median, s.q3, s.max, lo, hi, 48));
  }
  table.print(os);
  os << "\n";
}

/// Runs a ratio figure (config B relative to config A) and prints all
/// three metrics plus the per-entry detail.
inline void run_ratio_figure(core::Study& study, const sim::GpuConfig& a,
                             const sim::GpuConfig& b, double lo, double hi,
                             bool print_entries = true) {
  std::vector<core::SuiteRatioBox> boxes;
  std::vector<core::EntryRatio> all_entries;
  for (const std::string& suite : suite_order()) {
    const auto entries = core::suite_ratios(study, suite, a, b);
    boxes.push_back(core::summarize(suite, entries));
    all_entries.insert(all_entries.end(), entries.begin(), entries.end());
  }
  for (const char* metric : {"active runtime", "energy", "power"}) {
    print_ratio_boxes(std::cout, metric, boxes, lo, hi);
  }
  if (!print_entries) return;
  std::cout << "-- per-entry detail --\n";
  util::TextTable table({"program", "input", "time", "energy", "power"});
  for (const core::EntryRatio& e : all_entries) {
    if (!e.ratio.usable) {
      table.row().add(e.program).add(e.input).add("-").add("-").add(
          "(insufficient samples)");
      continue;
    }
    table.row()
        .add(e.program)
        .add(e.input)
        .add(e.ratio.time)
        .add(e.ratio.energy)
        .add(e.ratio.power);
  }
  table.print(std::cout);
}

}  // namespace repro::bench
