// Shared rendering for the box-plot figures (Figs. 2-4, 6), the parallel
// prewarm step every driver runs before rendering, and the drivers' common
// observability entry point (--obs / REPRO_OBS, DESIGN.md §9).
//
// Built entirely on the versioned public facade (include/repro/api.hpp)
// plus the text-table formatting helpers; no internal pipeline headers.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "repro/api.hpp"
#include "util/tablefmt.hpp"

namespace repro::bench {

/// Directory observability dumps are written to (REPRO_OBS_DIR, default
/// the current directory).
inline std::string obs_dir() { return Options::global().obs_dir; }

/// Shared observability entry point of every bench driver: construct at
/// the top of main with (argc, argv). `--obs` on the command line enables
/// the observability layer (equivalent to REPRO_OBS=1); on destruction —
/// i.e. at the end of the driver — the guard exports the Chrome trace
/// (obs.trace.json, open in https://ui.perfetto.dev) and the metrics dump
/// (obs.metrics.txt / obs.metrics.jsonl) into obs_dir().
class ObsGuard {
 public:
  ObsGuard(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--obs") == 0) v1::set_observability(true);
    }
  }
  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;
  ~ObsGuard() { finish(); }

  void finish() {
    if (finished_) return;
    finished_ = true;
    if (!v1::observability()) return;
    const v1::ObsArtifacts artifacts = v1::export_observability(obs_dir());
    if (!artifacts.written) {
      std::cerr << "-- obs: cannot write to " << obs_dir()
                << " (does REPRO_OBS_DIR exist?); trace dropped\n";
      return;
    }
    std::cout << "-- obs: wrote " << artifacts.trace_path << " ("
              << artifacts.events << " events), " << artifacts.metrics_path
              << ", " << artifacts.jsonl_path << "\n";
  }

 private:
  bool finished_ = false;
};

/// Writes the per-kernel energy attribution of every experiment of a
/// finished batch to obs_dir()/obs.attribution.txt: for usable
/// experiments the kernel energies are the model shares scaled to the
/// measured energy (rows sum to the measured energy_j); unusable
/// experiments fall back to raw model energies and are flagged.
inline void write_attribution(v1::Session& session,
                              const v1::BatchSummary& summary) {
  const std::string path = obs_dir() + "/obs.attribution.txt";
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    std::cerr << "-- obs: cannot write " << path << "; attribution dropped\n";
    return;
  }
  char line[160];
  for (const v1::BatchEntry& entry : summary.entries) {
    const v1::Attribution table =
        session.attribution(entry.program, entry.input_index, entry.config);
    os << "== " << entry.key
       << (entry.result.usable ? ""
                               : "  (unusable: raw model energies, unscaled)")
       << "\n";
    std::snprintf(line, sizeof line,
                  "   measured energy %.4f J, model energy %.4f J, "
                  "true active %.4f s\n",
                  entry.result.energy_j, table.model_energy_j,
                  entry.result.true_active_s);
    os << line;
    os << table.text;
    os << "\n";
  }
  std::cout << "-- obs: wrote " << path << " (" << summary.entries.size()
            << " experiments)\n";
}

/// Runs the driver's whole experiment matrix (every registered program and
/// input under `config_names`) through the work-stealing scheduler, then
/// prints the batch metrics. The serial rendering code below each driver
/// subsequently hits a warm cache, so its output — proven bit-identical to
/// serial execution in tests/scheduler_test.cpp — is produced at parallel
/// speed. Thread count: REPRO_THREADS env var, else hardware concurrency.
inline void prewarm(v1::Session& session,
                    const std::vector<std::string>& config_names,
                    bool include_variants = false) {
  const v1::BatchSummary summary =
      session.run_matrix(config_names, include_variants);
  std::cout << summary.report_text;
  if (v1::observability()) write_attribution(session, summary);
  std::cout << "\n";
}

inline const std::vector<std::string>& suite_order() {
  static const std::vector<std::string> order{
      "CUDA SDK", "LonestarGPU", "Parboil", "Rodinia", "SHOC"};
  return order;
}

/// Prints one metric's per-suite box stats (ratio figures).
inline void print_ratio_boxes(std::ostream& os, const std::string& metric,
                              const std::vector<v1::SuiteRatioBox>& boxes,
                              double lo, double hi) {
  os << "-- " << metric << " (ratio; >1.0 = increase) --\n";
  util::TextTable table({"suite", "n", "min", "q1", "median", "q3", "max",
                         "box [" + util::format_ratio(lo) + " .. " +
                             util::format_ratio(hi) + "]"});
  for (const v1::SuiteRatioBox& b : boxes) {
    const v1::BoxStats& s = metric == "active runtime" ? b.time
                            : metric == "energy"       ? b.energy
                                                       : b.power;
    if (b.entries == 0) {
      table.row().add(b.suite).add(0ll).add("-").add("-").add("-").add("-").add(
          "-").add("(no usable entries)");
      continue;
    }
    table.row()
        .add(b.suite)
        .add(static_cast<long long>(b.entries))
        .add(s.min)
        .add(s.q1)
        .add(s.median)
        .add(s.q3)
        .add(s.max)
        .add(util::ascii_box(s.min, s.q1, s.median, s.q3, s.max, lo, hi, 48));
  }
  table.print(os);
  os << "\n";
}

/// Runs a ratio figure (config B relative to config A) and prints all
/// three metrics plus the per-entry detail.
inline void run_ratio_figure(v1::Session& session, const std::string& config_a,
                             const std::string& config_b, double lo, double hi,
                             bool print_entries = true) {
  std::vector<v1::SuiteRatioBox> boxes;
  std::vector<v1::SuiteRatioEntry> all_entries;
  for (const std::string& suite : suite_order()) {
    const auto entries = session.suite_ratios(suite, config_a, config_b);
    boxes.push_back(v1::Session::summarize(suite, entries));
    all_entries.insert(all_entries.end(), entries.begin(), entries.end());
  }
  for (const char* metric : {"active runtime", "energy", "power"}) {
    print_ratio_boxes(std::cout, metric, boxes, lo, hi);
  }
  if (!print_entries) return;
  std::cout << "-- per-entry detail --\n";
  util::TextTable table({"program", "input", "time", "energy", "power"});
  for (const v1::SuiteRatioEntry& e : all_entries) {
    if (!e.ratio.usable) {
      table.row().add(e.program).add(e.input).add("-").add("-").add(
          "(insufficient samples)");
      continue;
    }
    table.row()
        .add(e.program)
        .add(e.input)
        .add(e.ratio.time)
        .add(e.ratio.energy)
        .add(e.ratio.power);
  }
  table.print(std::cout);
}

}  // namespace repro::bench
