// Shared rendering for the box-plot figures (Figs. 2-4, 6), the parallel
// prewarm step every driver runs before rendering, and the drivers' common
// observability entry point (--obs / REPRO_OBS, DESIGN.md §9).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/scheduler.hpp"
#include "core/study.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/tablefmt.hpp"

namespace repro::bench {

/// Directory observability dumps are written to (REPRO_OBS_DIR, default
/// the current directory).
inline std::string obs_dir() {
  const char* dir = std::getenv("REPRO_OBS_DIR");
  return (dir != nullptr && *dir != '\0') ? std::string(dir)
                                          : std::string(".");
}

/// Shared observability entry point of every bench driver: construct at
/// the top of main with (argc, argv). `--obs` on the command line enables
/// the observability layer (equivalent to REPRO_OBS=1); on destruction —
/// i.e. at the end of the driver — the guard exports the Chrome trace
/// (obs.trace.json, open in https://ui.perfetto.dev) and the metrics dump
/// (obs.metrics.txt / obs.metrics.jsonl) into obs_dir().
class ObsGuard {
 public:
  ObsGuard(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--obs") == 0) obs::set_enabled(true);
    }
  }
  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;
  ~ObsGuard() { finish(); }

  void finish() {
    if (finished_) return;
    finished_ = true;
    if (!obs::enabled()) return;
    const std::string dir = obs_dir();
    const std::string trace_path = dir + "/obs.trace.json";
    {
      std::ofstream out(trace_path, std::ios::trunc);
      if (!out) {
        std::cerr << "-- obs: cannot write to " << dir
                  << " (does REPRO_OBS_DIR exist?); trace dropped\n";
        return;
      }
      obs::Tracer::instance().export_chrome_json(out);
    }
    const std::string metrics_path = dir + "/obs.metrics.txt";
    {
      std::ofstream out(metrics_path, std::ios::trunc);
      obs::Registry::instance().export_text(out);
    }
    const std::string jsonl_path = dir + "/obs.metrics.jsonl";
    {
      std::ofstream out(jsonl_path, std::ios::trunc);
      obs::Registry::instance().export_jsonl(out);
    }
    std::cout << "-- obs: wrote " << trace_path << " ("
              << obs::Tracer::instance().event_count() << " events), "
              << metrics_path << ", " << jsonl_path << "\n";
  }

 private:
  bool finished_ = false;
};

/// Writes the per-kernel energy attribution of every experiment of a
/// finished batch to obs_dir()/obs.attribution.txt: for usable
/// experiments the kernel energies are the model shares scaled to the
/// measured energy (rows sum to ExperimentResult::energy_j); unusable
/// experiments fall back to raw model energies and are flagged.
inline void write_attribution(core::Study& study,
                              const core::BatchReport& report) {
  const std::string path = obs_dir() + "/obs.attribution.txt";
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    std::cerr << "-- obs: cannot write " << path << "; attribution dropped\n";
    return;
  }
  char line[160];
  for (const core::BatchEntry& entry : report.results) {
    const core::ExperimentJob& job = *entry.job;
    const core::ExperimentResult& result = *entry.result;
    const obs::AttributionTable table = study.attribution(
        *job.workload, job.input_index, *job.config);
    os << "== " << entry.key
       << (result.usable ? "" : "  (unusable: raw model energies, unscaled)")
       << "\n";
    std::snprintf(line, sizeof line,
                  "   measured energy %.4f J, model energy %.4f J, "
                  "true active %.4f s\n",
                  result.energy_j, table.model_energy_j, result.true_active_s);
    os << line;
    obs::print(os, table);
    os << "\n";
  }
  std::cout << "-- obs: wrote " << path << " (" << report.results.size()
            << " experiments)\n";
}

/// Runs the driver's whole experiment matrix (every registered program and
/// input under `config_names`) through the work-stealing scheduler, then
/// prints the batch metrics. The serial rendering code below each driver
/// subsequently hits a warm cache, so its output — proven bit-identical to
/// serial execution in tests/scheduler_test.cpp — is produced at parallel
/// speed. Thread count: REPRO_THREADS env var, else hardware concurrency.
inline void prewarm(core::Study& study,
                    const std::vector<std::string>& config_names,
                    bool include_variants = false) {
  const std::vector<core::ExperimentJob> jobs =
      core::registry_matrix(config_names, include_variants);
  const core::Scheduler scheduler;
  const core::BatchReport report = scheduler.run(study, jobs);
  report.print(std::cout);
  if (obs::enabled()) write_attribution(study, report);
  std::cout << "\n";
}

inline const std::vector<std::string>& suite_order() {
  static const std::vector<std::string> order{
      "CUDA SDK", "LonestarGPU", "Parboil", "Rodinia", "SHOC"};
  return order;
}

/// Prints one metric's per-suite box stats (ratio figures).
inline void print_ratio_boxes(
    std::ostream& os, const std::string& metric,
    const std::vector<core::SuiteRatioBox>& boxes,
    double lo, double hi,
    const std::vector<util::BoxStats core::SuiteRatioBox::*>& /*unused*/ = {}) {
  os << "-- " << metric << " (ratio; >1.0 = increase) --\n";
  util::TextTable table({"suite", "n", "min", "q1", "median", "q3", "max",
                         "box [" + util::format_ratio(lo) + " .. " +
                             util::format_ratio(hi) + "]"});
  for (const core::SuiteRatioBox& b : boxes) {
    const util::BoxStats& s = metric == "active runtime" ? b.time
                              : metric == "energy"       ? b.energy
                                                         : b.power;
    if (b.entries == 0) {
      table.row().add(b.suite).add(0ll).add("-").add("-").add("-").add("-").add(
          "-").add("(no usable entries)");
      continue;
    }
    table.row()
        .add(b.suite)
        .add(static_cast<long long>(b.entries))
        .add(s.min)
        .add(s.q1)
        .add(s.median)
        .add(s.q3)
        .add(s.max)
        .add(util::ascii_box(s.min, s.q1, s.median, s.q3, s.max, lo, hi, 48));
  }
  table.print(os);
  os << "\n";
}

/// Runs a ratio figure (config B relative to config A) and prints all
/// three metrics plus the per-entry detail.
inline void run_ratio_figure(core::Study& study, const sim::GpuConfig& a,
                             const sim::GpuConfig& b, double lo, double hi,
                             bool print_entries = true) {
  std::vector<core::SuiteRatioBox> boxes;
  std::vector<core::EntryRatio> all_entries;
  for (const std::string& suite : suite_order()) {
    const auto entries = core::suite_ratios(study, suite, a, b);
    boxes.push_back(core::summarize(suite, entries));
    all_entries.insert(all_entries.end(), entries.begin(), entries.end());
  }
  for (const char* metric : {"active runtime", "energy", "power"}) {
    print_ratio_boxes(std::cout, metric, boxes, lo, hi);
  }
  if (!print_entries) return;
  std::cout << "-- per-entry detail --\n";
  util::TextTable table({"program", "input", "time", "energy", "power"});
  for (const core::EntryRatio& e : all_entries) {
    if (!e.ratio.usable) {
      table.row().add(e.program).add(e.input).add("-").add("-").add(
          "(insufficient samples)");
      continue;
    }
    table.row()
        .add(e.program)
        .add(e.input)
        .add(e.ratio.time)
        .add(e.ratio.energy)
        .add(e.ratio.power);
  }
  table.print(std::cout);
}

}  // namespace repro::bench
