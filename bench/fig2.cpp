// Reproduces paper Figure 2: relative change in active runtime, energy and
// power when switching from the default (705 MHz) to the 614 MHz
// configuration, as per-suite box stats over all program-input pairs.
//
// Paper expectations: compute-bound codes slow ~15%, memory-bound codes
// barely move; energy decreases slightly for almost everything; power
// drops 3-10% at the median with outliers past -15% (NB: -22%).
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  std::cout << "Figure 2: default -> 614 (core clock -13%, memory clock "
               "unchanged)\n\n";
  bench::prewarm(session, {"default", "614"});
  bench::run_ratio_figure(session, "default", "614", 0.7, 1.3);
  return 0;
}
