// Reproduces paper Figure 5: relative power draw when switching from one
// program input to another on the default configuration (values > 1.0 =
// larger input draws more power).
//
// Paper expectations: power rises toward larger inputs for most programs
// (BH, LBM, MUM, NB, NW, NSP, PTA rise >20%); some irregular codes move
// the other way because the input changes their whole behaviour.
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"
#include "util/tablefmt.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;

  std::cout << "Figure 5: power ratio of each input relative to the first "
               "(default config)\n\n";
  bench::prewarm(session, {"default"});
  util::TextTable table({"program", "input", "power [W]", "ratio vs input 1"});
  for (const v1::ProgramInfo& program : session.programs()) {
    if (!program.variant.empty()) continue;
    if (program.inputs.size() < 2) continue;  // single-input not in Fig. 5
    const v1::MeasurementResult base = session.measure(program.name, 0, "default");
    for (std::size_t i = 0; i < program.inputs.size(); ++i) {
      const v1::MeasurementResult r = session.measure(program.name, i, "default");
      std::string ratio = "-";
      if (r.usable && base.usable && base.power_w > 0.0) {
        ratio = util::format_ratio(r.power_w / base.power_w);
      }
      table.row()
          .add(program.name)
          .add(program.inputs[i].name)
          .add(r.usable ? util::format_fixed(r.power_w, 1) : "-")
          .add(ratio);
    }
  }
  table.print(std::cout);
  return 0;
}
