// Reproduces paper Figure 5: relative power draw when switching from one
// program input to another on the default configuration (values > 1.0 =
// larger input draws more power).
//
// Paper expectations: power rises toward larger inputs for most programs
// (BH, LBM, MUM, NB, NW, NSP, PTA rise >20%); some irregular codes move
// the other way because the input changes their whole behaviour.
#include <iostream>

#include "core/study.hpp"
#include "figcommon.hpp"
#include "sim/gpuconfig.hpp"
#include "util/tablefmt.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  suites::register_all_workloads();
  core::Study study;
  const sim::GpuConfig& config = sim::config_by_name("default");

  std::cout << "Figure 5: power ratio of each input relative to the first "
               "(default config)\n\n";
  bench::prewarm(study, {"default"});
  util::TextTable table({"program", "input", "power [W]", "ratio vs input 1"});
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    if (!w->variant().empty()) continue;
    const auto inputs = w->inputs();
    if (inputs.size() < 2) continue;  // single-input programs not in Fig. 5
    const core::ExperimentResult& base = study.measure(*w, 0, config);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const core::ExperimentResult& r = study.measure(*w, i, config);
      std::string ratio = "-";
      if (r.usable && base.usable && base.power_w > 0.0) {
        ratio = util::format_ratio(r.power_w / base.power_w);
      }
      table.row()
          .add(std::string(w->name()))
          .add(inputs[i].name)
          .add(r.usable ? util::format_fixed(r.power_w, 1) : "-")
          .add(ratio);
    }
  }
  table.print(std::cout);
  return 0;
}
