// Reproduces paper Figure 4: relative change in active runtime, energy and
// power when enabling ECC at default clocks.
//
// Paper expectations: medians ~1.0 everywhere; memory-bound codes (some
// Rodinia/Parboil) slow up to ~12.5% with matching energy increases;
// LonestarGPU's energy rises MORE than its runtime (uncoalesced accesses
// exercise the ECC machinery); NB's energy anomalously drops.
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  std::cout << "Figure 4: default -> ECC (705 MHz / 2.6 GHz, ECC on)\n\n";
  bench::prewarm(session, {"default", "ecc"});
  bench::run_ratio_figure(session, "default", "ecc", 0.85, 1.35);
  return 0;
}
