// Reproduces paper Table 4: cross-suite BFS comparison - active runtime,
// energy and power per 100k processed vertices (top) and per 100k
// processed edges (bottom), largest input, default configuration.
//
// Paper values per 100k vertices: L-BFS 0.13s/13.61J, P-BFS 1.97s/95.78J,
// R-BFS 3.40s/171.35J, S-BFS 341.09s/16785.53J. The ordering (L-BFS best,
// S-BFS worst by orders of magnitude) is the reproduction target. Note:
// the paper's "power" column is internally inconsistent (the R-BFS row
// equals plain average power, others do not); we report average power
// scaled per 100k items throughout and flag this in EXPERIMENTS.md.
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"
#include "util/tablefmt.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  bench::prewarm(session, {"default"});

  struct Row {
    const char* name;
    std::size_t input;  // largest input
  };
  const Row rows[] = {{"L-BFS", 2}, {"P-BFS", 0}, {"R-BFS", 1}, {"S-BFS", 0}};

  std::cout << "Table 4: cross-benchmark BFS comparison, per 100k processed "
               "items\n(largest input, default configuration)\n\n";
  for (const bool per_edges : {false, true}) {
    std::cout << (per_edges ? "-- per 100k edges --\n" : "-- per 100k vertices --\n");
    util::TextTable table({"impl", "time [s]", "energy [J]", "power [W]"});
    for (const Row& row : rows) {
      const v1::InputInfo& items = session.program(row.name).inputs.at(row.input);
      const double count = per_edges ? items.edges : items.vertices;
      const v1::MeasurementResult r = session.measure(row.name, row.input, "default");
      if (!r.usable || count <= 0.0) {
        table.row().add(row.name).add("-").add("-").add("(unusable)");
        continue;
      }
      const double scale = 100e3 / count;
      table.row()
          .add(row.name)
          .add(r.time_s * scale)
          .add(r.energy_j * scale)
          .add(r.power_w * scale);
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
