// Reproduces paper Table 3: effects of the alternate L-BFS and SSSP
// implementations, as ratios variant/default of active runtime, energy and
// power on the USA road map, under all four configurations.
//
// Paper values (USA input):
//   L-BFS atomic/default: time ~0.29-0.32, energy ~0.26-0.27, power ~0.85-0.89
//   L-BFS wla/default:    time ~0.39-0.68, energy ~0.27-0.36, power ~0.54-0.68
//   SSSP  wlc/default:    time ~0.55-0.70, energy ~0.54-0.67, power ~0.95-0.99
//   SSSP  wln/default:    time ~1.92-2.38, energy ~1.83-2.21, power ~0.91-0.95
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"
#include "util/tablefmt.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  // Variants included: Table 3 is exactly about the alternate
  // implementations the suite-level figures exclude.
  bench::prewarm(session, {"default", "324", "614", "ecc"},
                 /*include_variants=*/true);
  constexpr std::size_t kUsa = 2;  // input index of the USA road map

  const auto compare = [&](const char* base_name, const char* variant_name) {
    std::cout << variant_name << " / " << base_name << " (USA input)\n";
    util::TextTable table({"config", "time", "energy", "power"});
    for (const char* cfg : {"default", "324", "614", "ecc"}) {
      const v1::MetricRatios r = v1::ratios(session.measure(variant_name, kUsa, cfg),
                                            session.measure(base_name, kUsa, cfg));
      if (r.usable) {
        table.row().add(std::string(cfg) + " USA").add(r.time).add(r.energy).add(r.power);
      } else {
        table.row().add(std::string(cfg) + " USA").add("-").add("-").add(
            "(insufficient samples)");
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  };

  std::cout << "Table 3: effects of different implementations of L-BFS and "
               "SSSP\n(values < 1.0: variant better than default)\n\n";
  compare("L-BFS", "L-BFS-atomic");
  compare("L-BFS", "L-BFS-wla");
  compare("SSSP", "SSSP-wlc");
  compare("SSSP", "SSSP-wln");

  std::cout << "L-BFS-wlw / L-BFS-wlc: data-driven versions finish too fast "
               "for the power sensor\n(paper §V.B.1); verifying:\n";
  for (const char* name : {"L-BFS-wlw", "L-BFS-wlc"}) {
    const v1::MeasurementResult r = session.measure(name, kUsa, "default");
    std::cout << "  " << name << ": "
              << (r.usable ? "UNEXPECTEDLY USABLE" : "insufficient samples (as in the paper)")
              << "\n";
  }
  return 0;
}
