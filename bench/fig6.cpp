// Reproduces paper Figure 6: the range of ABSOLUTE average power draw of
// each benchmark suite under each GPU configuration.
//
// Paper expectations: large best-to-worst spans (60% to >3x) per suite;
// many Parboil/Rodinia/SHOC codes under ~52 W; compute-bound SDK codes
// ~100 W average, peaking above 160 W; LonestarGPU substantially above the
// regular memory-bound codes; 324 reduces power strongly everywhere.
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"
#include "util/stats.hpp"
#include "util/tablefmt.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;

  std::cout << "Figure 6: range of average power consumption [W]\n\n";
  bench::prewarm(session, {"default", "614", "324", "ecc"});
  for (const v1::GpuConfigSpec& config : v1::standard_configs()) {
    std::cout << "-- configuration: " << config.name << " --\n";
    util::TextTable table(
        {"suite", "n", "min", "q1", "median", "q3", "max", "box [20 .. 180 W]"});
    for (const std::string& suite : bench::suite_order()) {
      const auto powers = session.suite_powers(suite, config.name);
      if (powers.empty()) {
        table.row().add(suite).add(0ll).add("-").add("-").add("-").add("-").add(
            "-").add("(no usable entries)");
        continue;
      }
      const util::BoxStats s = util::box_stats(powers);
      table.row()
          .add(suite)
          .add(static_cast<long long>(powers.size()))
          .add(s.min, 1)
          .add(s.q1, 1)
          .add(s.median, 1)
          .add(s.q3, 1)
          .add(s.max, 1)
          .add(util::ascii_box(s.min, s.q1, s.median, s.q3, s.max, 20.0, 180.0, 48));
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
