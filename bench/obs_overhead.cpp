// Always-on observability overhead gate (DESIGN.md §9).
//
// Drives the serve layer with a multi-client warm-cache load — the
// "production" hot path: admission queue, dispatcher, LRU hits, wire-less
// in-process tickets — and gates the cost of leaving observability ON
// (sharded metrics + ring-buffer tracing live on exactly this path) at
// kMaxOverhead (1%), tightening the 5% whole-matrix check in
// bench/micro.cpp to serve traffic.
//
// Two estimators, one gate:
//
//   1. A/B wall clock (reported, not gated): the load is cut into short
//      paired slices, each pair running obs-OFF and obs-ON back-to-back
//      (order alternating per pair, so neither side systematically goes
//      first), and the median pair ratio is reported. On a shared machine
//      this comparison has a noise floor of several percent — the
//      service's throughput itself is bistable under mutex handoff — so
//      it can expose a gross regression but cannot resolve 1%.
//   2. Direct per-request cost (gated): the exact obs sequence the
//      dispatcher executes per served request (enabled-check + batched
//      latency observe) and per claim cycle (span, counters, gauge,
//      batch flush) is timed over millions of iterations with obs on vs
//      off on one thread, like the dispatcher. The on-off delta is the
//      obs cost per request; dividing by the per-request service time
//      measured in (1) gives the overhead. Noise here scales with the
//      overhead itself (~nanoseconds), not with total wall time, which
//      is what makes a 1% gate meaningful on a noisy box.
//
// Writes a machine-readable summary to $REPRO_BENCH_JSON if set
// (scripts/ci.sh writes BENCH_obs.json). Exits nonzero when the gate
// fails or any response is not an ok cache hit.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "repro/api.hpp"
#include "serve/service.hpp"

namespace {

using repro::Options;
using repro::serve::Response;
using repro::serve::Service;
using repro::serve::Status;
using Clock = std::chrono::steady_clock;

constexpr int kClients = 8;
constexpr int kWave = 128;                // tickets in flight per client
constexpr int kRequestsPerClient = 2500;  // per slice: ~30 ms per slice
constexpr int kPairs = 16;                // paired OFF/ON slices
constexpr int kCycle = 64;                // requests per dispatch cycle
constexpr int kCalIters = 1 << 21;        // direct-measurement iterations
constexpr int kCalRuns = 5;               // paired on/off calibration runs
constexpr double kMaxOverhead = 0.01;

std::vector<repro::v1::ExperimentRequest> key_set() {
  std::vector<repro::v1::ExperimentRequest> keys;
  for (const char* program : {"NB", "SGEMM", "BP", "L-BFS"}) {
    for (const char* config : {"default", "614"}) {
      repro::v1::ExperimentRequest request;
      request.program = program;
      request.config = config;
      request.input_index = 0;
      keys.push_back(std::move(request));
    }
  }
  return keys;
}

struct LoadResult {
  double wall_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t not_ok = 0;
  std::uint64_t uncached = 0;
};

// One load slice: kClients threads, each pipelining kWave tickets at a
// time over the warm key set. Everything is a cache hit, so the measured
// time is queue + dispatcher + fulfillment — the code the instruments
// annotate — not experiment computation.
LoadResult run_load(Service& service,
                    const std::vector<repro::v1::ExperimentRequest>& keys) {
  LoadResult result;
  std::vector<std::thread> clients;
  std::vector<LoadResult> per_client(kClients);
  const auto start = Clock::now();
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LoadResult& mine = per_client[static_cast<std::size_t>(c)];
      std::vector<Service::Ticket> wave;
      wave.reserve(kWave);
      std::size_t next_key = static_cast<std::size_t>(c) % keys.size();
      int sent = 0;
      while (sent < kRequestsPerClient) {
        wave.clear();
        const int batch = std::min(kWave, kRequestsPerClient - sent);
        for (int k = 0; k < batch; ++k) {
          repro::v1::ExperimentRequest request = keys[next_key];
          next_key = (next_key + 1) % keys.size();
          request.id = static_cast<std::uint64_t>(c) * 1000000 +
                       static_cast<std::uint64_t>(sent + k) + 1;
          wave.push_back(service.submit(std::move(request)));
        }
        for (const Service::Ticket& ticket : wave) {
          const Response& response = ticket.wait();
          ++mine.requests;
          if (response.status != Status::kOk) ++mine.not_ok;
          else if (!response.cached) ++mine.uncached;
        }
        sent += batch;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  for (const LoadResult& mine : per_client) {
    result.requests += mine.requests;
    result.not_ok += mine.not_ok;
    result.uncached += mine.uncached;
  }
  return result;
}

// The dispatcher's obs sequence, replicated verbatim: per request one
// enabled-check plus one batched latency observation (Service::fulfill);
// per claim cycle of kCycle requests one trace span with an argument, the
// hit-counter bump, the queue-depth gauge and the latency-batch flush
// (Service::dispatch / dispatcher_loop). With obs off the same loop runs
// only the enabled-checks, so the on-off delta is the obs cost.
double calibration_loop_s(bool on, repro::obs::Histogram& wall,
                          repro::obs::Counter& hits_counter,
                          repro::obs::Gauge& depth_gauge) {
  repro::obs::set_enabled(on);
  repro::obs::Histogram::Batch batch;
  std::uint64_t hits = 0;
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < kCalIters; ++i) {
    if (repro::obs::enabled()) {
      batch.observe(1e-6 * static_cast<double>((i & 1023) + 1));
    }
    ++hits;
    if ((i & (kCycle - 1)) == kCycle - 1) {
      repro::obs::Span span("dispatch", "serve");
      span.arg("requests", static_cast<std::uint64_t>(kCycle));
      if (repro::obs::enabled()) {
        hits_counter.add(hits);
        depth_gauge.set(static_cast<double>(i & 2047));
        batch.flush(wall);
      }
      hits = 0;
    }
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double obs_ns_per_request() {
  repro::obs::Registry& registry = repro::obs::Registry::instance();
  repro::obs::Histogram& wall = registry.histogram("bench.obs.cal_wall_s");
  repro::obs::Counter& hits = registry.counter("bench.obs.cal_hits");
  repro::obs::Gauge& depth = registry.gauge("bench.obs.cal_depth");
  std::vector<double> deltas;
  (void)calibration_loop_s(true, wall, hits, depth);  // warm code + cells
  for (int run = 0; run < kCalRuns; ++run) {
    const double off_s = calibration_loop_s(false, wall, hits, depth);
    const double on_s = calibration_loop_s(true, wall, hits, depth);
    deltas.push_back(on_s - off_s);
  }
  std::sort(deltas.begin(), deltas.end());
  const double delta_s = deltas[deltas.size() / 2];
  return std::max(delta_s, 0.0) / static_cast<double>(kCalIters) * 1e9;
}

}  // namespace

int main() {
  Service::Options options;
  options.cache_capacity = 1024;
  options.queue_limit = 16384;  // far above peak in-flight: shedding would
                                // turn the comparison into noise
  Service service(options);

  const std::vector<repro::v1::ExperimentRequest> keys = key_set();

  // Warm the cache (cold experiment computations, excluded from timing).
  repro::obs::set_enabled(false);
  for (const repro::v1::ExperimentRequest& key : keys) {
    const Response& response = service.submit(key).wait();
    if (response.status != Status::kOk) {
      std::printf("FAIL: warmup %s/%zu/%s -> %s\n", key.program.c_str(),
                  key.input_index, key.config.c_str(),
                  std::string(to_string(response.status)).c_str());
      return 1;
    }
  }

  const std::uint64_t per_slice =
      static_cast<std::uint64_t>(kClients) * kRequestsPerClient;
  std::printf(
      "obs overhead gate: %d clients x %d requests x %d slices per side\n",
      kClients, kRequestsPerClient, kPairs);

  std::vector<double> off_walls, on_walls, ratios;
  std::uint64_t bad = 0, uncached = 0;
  for (int pair = 0; pair < kPairs; ++pair) {
    double pair_walls[2] = {0.0, 0.0};  // [0]=off, [1]=on
    const bool on_first = (pair % 2) != 0;
    for (const bool obs_on : {on_first, !on_first}) {
      repro::obs::set_enabled(obs_on);
      repro::obs::Tracer::instance().clear();
      const LoadResult load = run_load(service, keys);
      bad += load.not_ok;
      uncached += load.uncached;
      pair_walls[obs_on ? 1 : 0] = load.wall_s;
      (obs_on ? on_walls : off_walls).push_back(load.wall_s);
    }
    ratios.push_back(pair_walls[1] / pair_walls[0]);
  }
  const std::uint64_t trace_dropped =
      repro::obs::Tracer::instance().dropped_count();

  const auto median = [](std::vector<double> values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  const double off_med_s = median(off_walls);
  const double on_med_s = median(on_walls);
  const double ab_ratio = median(ratios);
  const double baseline_ns = off_med_s / static_cast<double>(per_slice) * 1e9;

  const double obs_ns = obs_ns_per_request();
  repro::obs::set_enabled(false);
  const double overhead = obs_ns / baseline_ns;

  std::printf(
      "  A/B medians: obs-off %.1f ms, obs-on %.1f ms per slice; paired "
      "ratio %.4f (context only)\n"
      "  direct: %.1f ns obs work per request over a %.0f ns request -> "
      "overhead %.3f%% (gate %.0f%%)\n"
      "  trace ring: capacity %zu, dropped %llu (bounded by design)\n",
      1e3 * off_med_s, 1e3 * on_med_s, ab_ratio, obs_ns, baseline_ns,
      100.0 * overhead, 100.0 * kMaxOverhead,
      repro::obs::Tracer::instance().capacity(),
      static_cast<unsigned long long>(trace_dropped));

  const std::string& json_path = Options::global().bench_json;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"clients\": %d,\n"
                 "  \"requests_per_slice\": %llu,\n"
                 "  \"slices_per_side\": %d,\n"
                 "  \"obs_off_median_ms\": %.3f,\n"
                 "  \"obs_on_median_ms\": %.3f,\n"
                 "  \"ab_paired_ratio\": %.5f,\n"
                 "  \"baseline_ns_per_request\": %.1f,\n"
                 "  \"obs_ns_per_request\": %.2f,\n"
                 "  \"overhead\": %.5f,\n"
                 "  \"gate\": %.3f,\n"
                 "  \"throughput_off_rps\": %.0f,\n"
                 "  \"trace_capacity\": %zu,\n"
                 "  \"trace_dropped\": %llu\n"
                 "}\n",
                 kClients, static_cast<unsigned long long>(per_slice), kPairs,
                 1e3 * off_med_s, 1e3 * on_med_s, ab_ratio, baseline_ns,
                 obs_ns, overhead, kMaxOverhead,
                 static_cast<double>(per_slice) / off_med_s,
                 repro::obs::Tracer::instance().capacity(),
                 static_cast<unsigned long long>(trace_dropped));
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  int rc = 0;
  if (bad != 0) {
    std::printf("FAIL: %llu responses were not ok\n",
                static_cast<unsigned long long>(bad));
    rc = 1;
  }
  if (uncached != 0) {
    std::printf("FAIL: %llu responses missed the warm cache\n",
                static_cast<unsigned long long>(uncached));
    rc = 1;
  }
  if (overhead > kMaxOverhead) {
    std::printf("FAIL: obs overhead %.3f%% exceeds %.0f%%\n",
                100.0 * overhead, 100.0 * kMaxOverhead);
    rc = 1;
  }
  std::printf(rc == 0 ? "obs overhead gate OK\n"
                      : "obs overhead gate FAILED\n");
  return rc;
}
