// Sampling-estimator gate (DESIGN.md §13). Two promises the sampled
// "rabbit" mode makes, checked end to end and emitted as a flat JSON
// artifact (REPRO_BENCH_JSON, scripts/ci.sh writes BENCH_sampling.json):
//
//   1. honesty — over the golden slice x 10 seeds at fraction 0.10 the
//      median STATED relative error (CI half-width / estimate) is <= 5%
//      per metric, and the stated intervals actually cover the exact
//      value at the calibrated >= 90% rate;
//   2. speed — on the full registry matrix with warm traces the sampled
//      measurement stage is >= 5x faster than the exact pipeline.
//
// White-box by design (drives core::Study and sample::measure_sampled
// directly: the speedup claim is about the measurement stage, not trace
// construction, which both paths share).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "repro/api.hpp"
#include "sample/sample.hpp"
#include "sim/gpuconfig.hpp"
#include "suites/factories.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace repro;

struct SliceEntry {
  const char* program;
  std::size_t input;
  const char* config;
};

// The usable golden-slice matrix (tests/golden_test.cpp): every suite,
// every configuration, regular and irregular programs.
constexpr SliceEntry kSlice[9] = {
    {"NB", 2, "default"},  {"LBM", 0, "614"}, {"SGEMM", 0, "default"},
    {"TPACF", 0, "ecc"},   {"BP", 0, "default"}, {"L-BFS", 2, "324"},
    {"FFT", 0, "default"}, {"MD", 0, "614"},  {"BH", 0, "default"},
};

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double stated_rel(const sample::Interval& ci, double estimate) {
  return estimate != 0.0 ? 0.5 * (ci.high - ci.low) / std::abs(estimate) : 0.0;
}

}  // namespace

int main() {
  suites::register_all_workloads();
  constexpr double kFraction = 0.10;
  constexpr int kSeeds = 10;
  constexpr double kMaxStatedRel = 0.05;  // per-metric median
  constexpr double kMinCoverage = 0.90;   // calibrated 95% CI floor
  constexpr double kMinSpeedup = 5.0;

  // --- Coverage over the golden slice --------------------------------------
  int covered_t = 0, covered_e = 0, covered_p = 0, sampled_runs = 0;
  core::Study study;
  for (const SliceEntry& entry : kSlice) {
    const workloads::Workload* w =
        workloads::Registry::instance().find(entry.program);
    if (w == nullptr) {
      std::printf("FAIL: unknown program %s\n", entry.program);
      return 1;
    }
    const sim::GpuConfig& config = sim::config_by_name(entry.config);
    const core::ExperimentResult& exact =
        study.measure(*w, entry.input, config);
    for (int s = 0; s < kSeeds; ++s) {
      sample::SampleOptions options;
      options.mode = sample::Mode::kStratified;
      options.fraction = kFraction;
      options.seed = 1000 + static_cast<std::uint64_t>(s);
      const sample::SampledResult r =
          sample::measure_sampled(study, *w, entry.input, config, options);
      if (!r.sampled) continue;  // too little structure: exact passthrough
      ++sampled_runs;
      covered_t += r.time_ci.low <= exact.time_s && exact.time_s <= r.time_ci.high;
      covered_e +=
          r.energy_ci.low <= exact.energy_j && exact.energy_j <= r.energy_ci.high;
      covered_p +=
          r.power_ci.low <= exact.power_w && exact.power_w <= r.power_ci.high;
    }
  }
  const double cov_t = sampled_runs > 0 ? double(covered_t) / sampled_runs : 0.0;
  const double cov_e = sampled_runs > 0 ? double(covered_e) / sampled_runs : 0.0;
  const double cov_p = sampled_runs > 0 ? double(covered_p) / sampled_runs : 0.0;

  // --- Honesty + speedup on the full matrix, warm traces -------------------
  // The stated-error gate is over the full registry matrix (the population
  // the 5% claim is calibrated on), one sampled run per job at the
  // library-default seed.
  core::Study exact_study, sampled_study;
  const std::span<const sim::GpuConfig> configs = sim::standard_configs();
  std::vector<double> stated_t, stated_e, stated_p;
  double exact_s = 0.0, sampled_s = 0.0;
  int jobs = 0, sampled_jobs = 0;
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    for (std::size_t i = 0; i < w->inputs().size(); ++i) {
      for (const sim::GpuConfig& config : configs) {
        exact_study.trace_result(*w, i, config);
        sampled_study.trace_result(*w, i, config);
        const auto t0 = std::chrono::steady_clock::now();
        exact_study.measure(*w, i, config);
        const auto t1 = std::chrono::steady_clock::now();
        sample::SampleOptions options;
        options.mode = sample::Mode::kStratified;
        options.fraction = kFraction;
        const sample::SampledResult r =
            sample::measure_sampled(sampled_study, *w, i, config, options);
        const auto t2 = std::chrono::steady_clock::now();
        exact_s += std::chrono::duration<double>(t1 - t0).count();
        sampled_s += std::chrono::duration<double>(t2 - t1).count();
        ++jobs;
        sampled_jobs += r.sampled;
        if (r.sampled && r.base.usable) {
          stated_t.push_back(stated_rel(r.time_ci, r.base.time_s));
          stated_e.push_back(stated_rel(r.energy_ci, r.base.energy_j));
          stated_p.push_back(stated_rel(r.power_ci, r.base.power_w));
        }
      }
    }
  }
  const double speedup = sampled_s > 0.0 ? exact_s / sampled_s : 0.0;
  const double med_t = median(stated_t);
  const double med_e = median(stated_e);
  const double med_p = median(stated_p);

  std::printf(
      "sampling gate: fraction %.2f, slice x %d seeds, %d-job matrix\n"
      "  CI coverage of exact (slice)        time %.0f%%  energy %.0f%%  "
      "power %.0f%%  (%d runs)\n"
      "  stated rel err median (matrix)      time %.2f%%  energy %.2f%%  "
      "power %.2f%%  (%d sampled)\n"
      "  measurement-stage speedup (matrix)  %.2fx\n",
      kFraction, kSeeds, jobs, 100.0 * cov_t, 100.0 * cov_e, 100.0 * cov_p,
      sampled_runs, 100.0 * med_t, 100.0 * med_e, 100.0 * med_p, sampled_jobs,
      speedup);

  const std::string& json_path = Options::global().bench_json;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"fraction\": %.3f,\n"
                 "  \"seeds\": %d,\n"
                 "  \"sampled_runs\": %d,\n"
                 "  \"stated_rel_err_time_median\": %.5f,\n"
                 "  \"stated_rel_err_energy_median\": %.5f,\n"
                 "  \"stated_rel_err_power_median\": %.5f,\n"
                 "  \"ci_coverage_time\": %.4f,\n"
                 "  \"ci_coverage_energy\": %.4f,\n"
                 "  \"ci_coverage_power\": %.4f,\n"
                 "  \"matrix_jobs\": %d,\n"
                 "  \"matrix_sampled_jobs\": %d,\n"
                 "  \"matrix_exact_ms\": %.3f,\n"
                 "  \"matrix_sampled_ms\": %.3f,\n"
                 "  \"matrix_speedup\": %.3f\n"
                 "}\n",
                 kFraction, kSeeds, sampled_runs, med_t, med_e, med_p, cov_t,
                 cov_e, cov_p, jobs, sampled_jobs, 1e3 * exact_s,
                 1e3 * sampled_s, speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  int rc = 0;
  for (const auto& [name, med] : {std::pair<const char*, double>{"time", med_t},
                                  {"energy", med_e},
                                  {"power", med_p}}) {
    if (med > kMaxStatedRel) {
      std::printf("FAIL: median stated %s error %.2f%% exceeds %.0f%%\n", name,
                  100.0 * med, 100.0 * kMaxStatedRel);
      rc = 1;
    }
  }
  for (const auto& [name, cov] : {std::pair<const char*, double>{"time", cov_t},
                                  {"energy", cov_e},
                                  {"power", cov_p}}) {
    if (cov < kMinCoverage) {
      std::printf("FAIL: %s CI coverage %.0f%% below %.0f%%\n", name,
                  100.0 * cov, 100.0 * kMinCoverage);
      rc = 1;
    }
  }
  if (speedup < kMinSpeedup) {
    std::printf("FAIL: matrix speedup %.2fx below the %.1fx floor\n", speedup,
                kMinSpeedup);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("PASS: stated <= %.0f%%, coverage >= %.0f%%, %.2fx >= %.1fx\n",
                100.0 * kMaxStatedRel, 100.0 * kMinCoverage, speedup,
                kMinSpeedup);
  }
  return rc;
}
