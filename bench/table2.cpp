// Reproduces paper Table 2: maximum and average run-to-run measurement
// variability (relative spread of 3 repetitions) per benchmark suite, for
// active runtime and energy, pooled over the default/614/ecc
// configurations (324 runs are mostly unusable, as in the paper).
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "figcommon.hpp"
#include "repro/api.hpp"
#include "util/stats.hpp"
#include "util/tablefmt.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  bench::prewarm(session, {"default", "614", "ecc"});

  struct Spreads {
    std::vector<double> time, energy;
  };
  std::map<std::string, Spreads> by_suite;
  Spreads overall;

  for (const v1::ProgramInfo& program : session.programs()) {
    if (!program.variant.empty()) continue;
    for (std::size_t i = 0; i < program.inputs.size(); ++i) {
      for (const char* cfg : {"default", "614", "ecc"}) {
        const v1::MeasurementResult r = session.measure(program.name, i, cfg);
        if (!r.usable) continue;
        auto& s = by_suite[program.suite];
        s.time.push_back(r.time_spread);
        s.energy.push_back(r.energy_spread);
        overall.time.push_back(r.time_spread);
        overall.energy.push_back(r.energy_spread);
      }
    }
  }

  std::cout << "Table 2: Maximum and average measurement variability\n"
            << "(relative spread of 3 repetitions; paper values: overall max "
               "8.7% time / 7.2% energy, avg 1.4% / 2.0%)\n\n";
  util::TextTable table(
      {"suite", "max time", "max energy", "avg time", "avg energy"});
  const auto emit = [&](const std::string& name, const Spreads& s) {
    if (s.time.empty()) return;
    table.row()
        .add(name)
        .add(util::format_fixed(100.0 * *std::max_element(s.time.begin(), s.time.end()), 1) + "%")
        .add(util::format_fixed(100.0 * *std::max_element(s.energy.begin(), s.energy.end()), 1) + "%")
        .add(util::format_fixed(100.0 * util::mean(s.time), 1) + "%")
        .add(util::format_fixed(100.0 * util::mean(s.energy), 1) + "%");
  };
  for (const auto& [suite, spreads] : by_suite) emit(suite, spreads);
  emit("Overall", overall);
  table.print(std::cout);
  return 0;
}
