// Thermal model gate (DESIGN.md §16). The lumped-RC network, leakage
// feedback and throttling governor must stay cheap and behave physically
// on real traces. Checked end to end and emitted as a flat JSON artifact
// (REPRO_BENCH_JSON, scripts/ci.sh writes BENCH_thermal.json):
//
//   1. overhead — an exact characterization of the program slice across
//      every standard config (trace construction + measurement, the cost
//      a user actually pays) with the thermal scenario enabled (leakage
//      feedback at the default k, so the fixed-point loop and the
//      waveform rewrite both run) costs <= 5% more wall clock than the
//      same characterization with the scenario off; the measurement
//      stage alone is re-timed on trace-warm studies and reported as an
//      informational field;
//   2. throttling demo — a sustained 150 W trace under a 45 C ceiling
//      clamps down the governor ladder (events recorded, `throttled`
//      truthfully set, peak at or above the ceiling), while a short
//      200 W burst under the same ceiling never reaches it and is
//      truthfully reported unthrottled.
//
// White-box by design (drives core::Study and thermal::simulate
// directly).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "repro/api.hpp"
#include "sensor/waveform.hpp"
#include "sim/gpuconfig.hpp"
#include "suites/factories.hpp"
#include "thermal/thermal.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace repro;

struct SliceEntry {
  const char* program;
  std::size_t input;
};

// Compute-bound, memory-bound, balanced and irregular representatives:
// waveform shapes (and therefore thermal work) differ across the slice.
constexpr SliceEntry kSlice[4] = {
    {"SGEMM", 0}, {"LBM", 0}, {"BP", 0}, {"L-BFS", 2}};

constexpr double kMaxOverhead = 0.05;
constexpr int kTimingReps = 3;

thermal::ThermalScenario feedback_scenario() {
  thermal::ThermalScenario scenario;
  scenario.enabled = true;  // defaults: k = 0.012, governor off
  return scenario;
}

double time_characterization(core::Study& study,
                             std::span<const sim::GpuConfig> configs) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const SliceEntry& entry : kSlice) {
    const workloads::Workload& w =
        *workloads::Registry::instance().find(entry.program);
    for (const sim::GpuConfig& config : configs) {
      study.measure(w, entry.input, config);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  suites::register_all_workloads();
  const std::span<const sim::GpuConfig> configs = sim::standard_configs();

  if (workloads::Registry::instance().find(kSlice[0].program) == nullptr) {
    std::printf("FAIL: unknown program %s\n", kSlice[0].program);
    return 1;
  }

  // --- 1. overhead: thermal-on vs thermal-off exact characterization,
  // end to end (trace construction + measurement, the cost a user pays).
  // Both traces and results are cached per study, so every timed
  // repetition gets its own cold study; the minimum over repetitions
  // wins.
  core::Study::Options thermal_options;
  thermal_options.thermal = feedback_scenario();
  const auto prewarm_traces = [&](core::Study& study) {
    for (const SliceEntry& entry : kSlice) {
      const workloads::Workload& w =
          *workloads::Registry::instance().find(entry.program);
      for (const sim::GpuConfig& config : configs) {
        study.trace_result(w, entry.input, config);
      }
    }
  };
  // Each repetition times the two stages of one cold characterization
  // separately: trace construction (identical in both arms) and the
  // measurement stage (where the RC simulation actually runs). End to
  // end is their sum; the minimum over repetitions wins per stage.
  double base_trace_s = 0.0, base_stage_s = 0.0;
  double thermal_trace_s = 0.0, thermal_stage_s = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    core::Study base_study;
    core::Study thermal_study(thermal_options);
    const auto t0 = std::chrono::steady_clock::now();
    prewarm_traces(base_study);
    const auto t1 = std::chrono::steady_clock::now();
    const double b_stage = time_characterization(base_study, configs);
    const auto t2 = std::chrono::steady_clock::now();
    prewarm_traces(thermal_study);
    const auto t3 = std::chrono::steady_clock::now();
    const double t_stage = time_characterization(thermal_study, configs);
    const double b_trace = std::chrono::duration<double>(t1 - t0).count();
    const double t_trace = std::chrono::duration<double>(t3 - t2).count();
    if (rep == 0) {
      base_trace_s = b_trace;
      base_stage_s = b_stage;
      thermal_trace_s = t_trace;
      thermal_stage_s = t_stage;
    } else {
      base_trace_s = std::min(base_trace_s, b_trace);
      base_stage_s = std::min(base_stage_s, b_stage);
      thermal_trace_s = std::min(thermal_trace_s, t_trace);
      thermal_stage_s = std::min(thermal_stage_s, t_stage);
    }
  }
  const double base_s = base_trace_s + base_stage_s;
  const double thermal_s = thermal_trace_s + thermal_stage_s;
  const double overhead = base_s > 0.0 ? thermal_s / base_s - 1.0 : 0.0;
  const double stage_overhead =
      base_stage_s > 0.0 ? thermal_stage_s / base_stage_s - 1.0 : 0.0;
  std::printf(
      "thermal overhead: %zu programs x %zu configs end to end, base "
      "%.1f ms, thermal %.1f ms: %+.2f%% (ceiling %.0f%%)\n"
      "  measurement stage alone (trace-warm): %+.2f%% (informational)\n",
      std::size(kSlice), configs.size(), 1e3 * base_s, 1e3 * thermal_s,
      100.0 * overhead, 100.0 * kMaxOverhead, 100.0 * stage_overhead);

  // Sanity: the thermal arm actually ran the feedback loop and reported
  // telemetry on every measurement. Results are cached, so re-reading
  // them here is free.
  core::Study telemetry_study(thermal_options);
  int telemetry_missing = 0;
  for (const SliceEntry& entry : kSlice) {
    const workloads::Workload& w =
        *workloads::Registry::instance().find(entry.program);
    for (const sim::GpuConfig& config : configs) {
      const core::ExperimentResult& r =
          telemetry_study.measure(w, entry.input, config);
      if (!r.thermal || r.peak_temp_c <= thermal_options.thermal.ambient_c) {
        ++telemetry_missing;
      }
    }
  }

  // --- 2. throttling demo: sustained load clamps, a burst does not.
  thermal::ThermalScenario governed = feedback_scenario();
  governed.governor.ceiling_c = 45.0;
  governed.governor.hysteresis_c = 5.0;
  governed.ladder = {{"614", 614.0, 0.93}, {"324", 324.0, 0.85}};
  const sim::GpuConfig running = sim::config_by_name("default");
  constexpr double kStaticW = 30.0;
  constexpr double kLeakW = 12.0;

  // Sustained: 150 W settles at 25 + 150 * 0.245 = 61.75 C, well above
  // the ceiling, so the governor must clamp.
  sensor::Waveform sustained({{0.0, 600.0, 150.0, 150.0}});
  const thermal::ThermalResult hot =
      thermal::simulate(sustained, governed, running, kStaticW, kLeakW);

  // Burst: 200 W for 6 s barely warms the heatsink (tau ~ 80 s), so the
  // die peaks around 41 C and the governor must stay out of the way.
  sensor::Waveform burst({{0.0, 6.0, 200.0, 200.0}});
  const thermal::ThermalResult cold =
      thermal::simulate(burst, governed, running, kStaticW, kLeakW);

  std::printf(
      "  sustained 150 W / 600 s: peak %.2f C, %zu clamp(s), throttled=%s\n"
      "  burst 200 W / 6 s:       peak %.2f C, %zu clamp(s), throttled=%s\n",
      hot.peak_die_c, hot.events.size(), hot.throttled ? "true" : "false",
      cold.peak_die_c, cold.events.size(), cold.throttled ? "true" : "false");

  int violations = 0;
  if (overhead > kMaxOverhead) {
    std::printf("FAIL: thermal overhead %.2f%% above the %.0f%% ceiling\n",
                100.0 * overhead, 100.0 * kMaxOverhead);
    ++violations;
  }
  if (telemetry_missing > 0) {
    std::printf("FAIL: %d measurement(s) missing thermal telemetry\n",
                telemetry_missing);
    ++violations;
  }
  if (!hot.throttled || hot.events.empty() ||
      hot.peak_die_c < governed.governor.ceiling_c) {
    std::printf("FAIL: sustained trace did not truthfully throttle\n");
    ++violations;
  }
  if (cold.throttled || !cold.events.empty() ||
      cold.peak_die_c >= governed.governor.ceiling_c) {
    std::printf("FAIL: burst trace throttled (or reached the ceiling)\n");
    ++violations;
  }
  if (hot.throttled != !hot.events.empty() ||
      cold.throttled != !cold.events.empty()) {
    std::printf("FAIL: throttled flag disagrees with the event log\n");
    ++violations;
  }

  const std::string& json_path = Options::global().bench_json;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"programs\": %zu,\n"
                 "  \"configs\": %zu,\n"
                 "  \"base_ms\": %.3f,\n"
                 "  \"thermal_ms\": %.3f,\n"
                 "  \"overhead\": %.5f,\n"
                 "  \"overhead_ceiling\": %.5f,\n"
                 "  \"measure_stage_overhead\": %.5f,\n"
                 "  \"sustained_peak_c\": %.3f,\n"
                 "  \"sustained_throttle_events\": %zu,\n"
                 "  \"sustained_throttled\": %s,\n"
                 "  \"burst_peak_c\": %.3f,\n"
                 "  \"burst_throttle_events\": %zu,\n"
                 "  \"burst_throttled\": %s,\n"
                 "  \"violations\": %d\n"
                 "}\n",
                 std::size(kSlice), configs.size(), 1e3 * base_s,
                 1e3 * thermal_s, overhead, kMaxOverhead, stage_overhead,
                 hot.peak_die_c,
                 hot.events.size(), hot.throttled ? "true" : "false",
                 cold.peak_die_c, cold.events.size(),
                 cold.throttled ? "true" : "false", violations);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (violations > 0) {
    std::printf("FAIL: %d thermal gate violation(s)\n", violations);
    return 1;
  }
  std::printf(
      "PASS: thermal overhead %+.2f%% <= %.0f%%, governor truthful on "
      "sustained and burst traces\n",
      100.0 * overhead, 100.0 * kMaxOverhead);
  return 0;
}
