// Reproduces paper Figure 1: a sample power profile. Records one run of a
// long-running kernel with the simulated on-board sensor and renders the
// sample stream as an ASCII time/power chart with the idle level and the
// dynamically chosen activity threshold marked - the same elements the
// paper's figure annotates.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "figcommon.hpp"
#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  const v1::PowerProfile m = session.profile("TPACF", 0, "default", 42);

  std::printf("Figure 1: sample power profile (%s, default config)\n", "TPACF");
  std::printf("idle=%.1f W, threshold=%.1f W (dashed '= '), peak=%.1f W\n",
              m.idle_w, m.threshold_w, m.peak_w);
  std::printf("active runtime=%.2f s, energy=%.1f J, avg power=%.1f W\n\n",
              m.active_time_s, m.energy_j, m.avg_power_w);

  // ASCII chart: power on the y axis (rows, top = peak), time on the x.
  constexpr int kRows = 24;
  constexpr int kCols = 100;
  const double t_max = m.samples.empty() ? 1.0 : m.samples.back().t;
  const double w_max = std::max(m.peak_w * 1.05, 60.0);
  std::string grid[kRows];
  for (auto& row : grid) row.assign(kCols, ' ');
  const auto row_of = [&](double watts) {
    const int r = static_cast<int>(std::lround((1.0 - watts / w_max) * (kRows - 1)));
    return std::clamp(r, 0, kRows - 1);
  };
  for (int c = 0; c < kCols; ++c) {
    grid[row_of(m.threshold_w)][c] = (c % 2 == 0) ? '=' : ' ';
    grid[row_of(m.idle_w)][c] = '.';
  }
  for (const v1::PowerSample& s : m.samples) {
    const int c = std::clamp(
        static_cast<int>(std::lround(s.t / t_max * (kCols - 1))), 0, kCols - 1);
    grid[row_of(s.w)][c] = '*';
  }
  for (int r = 0; r < kRows; ++r) {
    std::printf("%6.1f |%s\n", w_max * (1.0 - static_cast<double>(r) / (kRows - 1)),
                grid[r].c_str());
  }
  std::printf("       +%s\n", std::string(kCols, '-').c_str());
  std::printf("        0 s%*s%.0f s\n", kCols - 8, "", t_max);
  std::printf("\n('*' sensor samples, '=' activity threshold, '.' idle level)\n");
  return 0;
}
