// Reproduces paper Table 1: program names, number of global kernels, and
// inputs, plus our classification and simulation-scale notes.
#include <iostream>

#include "figcommon.hpp"
#include "util/tablefmt.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  suites::register_all_workloads();

  std::cout << "Table 1: Program names, number of global kernels (#K), and inputs\n\n";
  util::TextTable table({"suite", "program", "#K", "class", "inputs"});
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    if (!w->variant().empty()) continue;
    std::string inputs;
    for (const auto& in : w->inputs()) {
      if (!inputs.empty()) inputs += "; ";
      inputs += in.name;
    }
    const char* cls =
        w->boundedness() == workloads::Boundedness::kCompute   ? "compute"
        : w->boundedness() == workloads::Boundedness::kMemory ? "memory"
                                                              : "balanced";
    table.row()
        .add(std::string(w->suite()))
        .add(std::string(w->name()))
        .add(static_cast<long long>(w->num_global_kernels()))
        .add(std::string(cls) + (w->regularity() == workloads::Regularity::kIrregular
                                     ? "/irregular"
                                     : "/regular"))
        .add(inputs);
  }
  table.print(std::cout);
  std::cout << "\nAlternate implementations (paper §V.B.1): ";
  bool first = true;
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    if (w->variant().empty()) continue;
    std::cout << (first ? "" : ", ") << w->name();
    first = false;
  }
  std::cout << "\n";
  return 0;
}
