// Reproduces paper Table 1: program names, number of global kernels, and
// inputs, plus our classification and simulation-scale notes.
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"
#include "util/tablefmt.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;

  std::cout << "Table 1: Program names, number of global kernels (#K), and inputs\n\n";
  util::TextTable table({"suite", "program", "#K", "class", "inputs"});
  const std::vector<v1::ProgramInfo> programs = session.programs();
  for (const v1::ProgramInfo& p : programs) {
    if (!p.variant.empty()) continue;
    std::string inputs;
    for (const v1::InputInfo& in : p.inputs) {
      if (!inputs.empty()) inputs += "; ";
      inputs += in.name;
    }
    const char* cls =
        p.boundedness == v1::Boundedness::kCompute   ? "compute"
        : p.boundedness == v1::Boundedness::kMemory ? "memory"
                                                    : "balanced";
    table.row()
        .add(p.suite)
        .add(p.name)
        .add(static_cast<long long>(p.num_global_kernels))
        .add(std::string(cls) +
             (p.regularity == v1::Regularity::kIrregular ? "/irregular"
                                                         : "/regular"))
        .add(inputs);
  }
  table.print(std::cout);
  std::cout << "\nAlternate implementations (paper §V.B.1): ";
  bool first = true;
  for (const v1::ProgramInfo& p : programs) {
    if (p.variant.empty()) continue;
    std::cout << (first ? "" : ", ") << p.name;
    first = false;
  }
  std::cout << "\n";
  return 0;
}
