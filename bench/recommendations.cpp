// Reproduces paper §VI's benchmark-selection guidance as a data-driven
// analysis: instead of quoting the recommendations, derive them from this
// study's own measurements.
//
//  R1  use inputs with long runtimes (enough power samples)
//  R2  measure a broad spectrum: compute/memory x regular/irregular
//  R3  Rodinia/Parboil/SHOC behave similarly; combine suites
//  R4  use per-item metrics to compare implementations
//  R5  run input-sensitive irregular codes (PTA) across inputs
//  R6  findings change with frequency settings
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "figcommon.hpp"
#include "repro/api.hpp"
#include "util/stats.hpp"

namespace {

using namespace repro;

struct Classified {
  std::string name;
  std::string suite;
  std::string input;
  double sens_core = 0.0;  // time(614)/time(default) - 1
  double sens_mem = 0.0;   // time(324)/time(614)
  bool usable_324 = false;
  bool irregular = false;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  bench::prewarm(session, {"default", "614", "324"});

  std::vector<Classified> all;
  int too_short = 0;
  for (const v1::ProgramInfo& program : session.programs()) {
    if (!program.variant.empty()) continue;
    for (std::size_t i = 0; i < program.inputs.size(); ++i) {
      const v1::MeasurementResult rd = session.measure(program.name, i, "default");
      const v1::MeasurementResult r6 = session.measure(program.name, i, "614");
      const v1::MeasurementResult r3 = session.measure(program.name, i, "324");
      if (!rd.usable || !r6.usable) {
        ++too_short;
        continue;
      }
      Classified c;
      c.name = program.name;
      c.suite = program.suite;
      c.input = program.inputs[i].name;
      c.sens_core = r6.time_s / rd.time_s - 1.0;
      c.sens_mem = r3.usable ? r3.time_s / r6.time_s : 0.0;
      c.usable_324 = r3.usable;
      c.irregular = program.regularity == v1::Regularity::kIrregular;
      all.push_back(std::move(c));
    }
  }

  std::printf("Paper §VI recommendations, rederived from this study's data\n\n");

  // R1: runtimes must be long enough for the sensor.
  std::printf(
      "R1  'Use program inputs that result in long runtimes.'\n"
      "    %d of %d measured program-inputs were usable at default clocks;\n"
      "    %zu lost their 324 MHz measurement to insufficient samples.\n\n",
      static_cast<int>(all.size()), static_cast<int>(all.size()) + too_short,
      all.size() - static_cast<std::size_t>(
                       std::count_if(all.begin(), all.end(),
                                     [](const Classified& c) { return c.usable_324; })));

  // R2: behaviour classes from measured sensitivities.
  int compute = 0, memory = 0, balanced = 0, irregular = 0;
  for (const Classified& c : all) {
    if (c.irregular) ++irregular;
    if (c.sens_core > 0.08) {
      ++compute;
    } else if (c.usable_324 && c.sens_mem > 5.0) {
      ++memory;
    } else {
      ++balanced;
    }
  }
  std::printf(
      "R2  'Measure a broad spectrum of codes.'\n"
      "    measured classes: %d core-clock-sensitive (compute-bound),\n"
      "    %d strongly memory-clock-sensitive, %d mixed; %d irregular.\n\n",
      compute, memory, balanced, irregular);

  // R3: suite similarity via median core sensitivity.
  std::printf("R3  'Rodinia, Parboil and SHOC exhibit relatively similar behavior.'\n");
  std::map<std::string, std::vector<double>> per_suite;
  for (const Classified& c : all) per_suite[c.suite].push_back(c.sens_core);
  for (const auto& [suite, sens] : per_suite) {
    std::printf("    %-12s median core-clock sensitivity %+5.1f%%\n", suite.c_str(),
                100.0 * util::median(sens));
  }

  // R4: per-item metrics (points at bench_table4).
  std::printf(
      "\nR4  'Employ metrics like power or energy per processed item.'\n"
      "    see bench_table4: the four BFS implementations span 3 orders of\n"
      "    magnitude in time and energy per vertex.\n\n");

  // R5: PTA input sensitivity.
  {
    const double t0 = session.measure("PTA", 0, "default").time_s;
    const double t2 = session.measure("PTA", 2, "default").time_s;
    std::printf(
        "R5  'Run input-dependent irregular codes across several inputs.'\n"
        "    PTA: tshark takes %.1fx the runtime of vim with a different\n"
        "    fixpoint iteration structure.\n\n",
        t2 / t0);
  }

  // R6: findings change with frequency.
  int sign_changes = 0;
  for (const Classified& c : all) {
    if (!c.irregular || !c.usable_324) continue;
    // Programs whose 614 effect and 324 effect tell different stories.
    if ((c.sens_core < 0.0) != (c.sens_mem < 1.9)) ++sign_changes;
  }
  std::printf(
      "R6  'Repeat experiments at different frequency settings.'\n"
      "    %d irregular program-inputs invert or reshape their behaviour\n"
      "    between the 614 and 324 comparisons.\n\n",
      sign_changes);

  // R6, automated: instead of the paper's four fixed configurations,
  // optimize over the continuous DVFS plane. The recommended operating
  // point differs per program and per objective — which is exactly why
  // findings must be re-checked across frequency settings.
  std::printf(
      "    Automated over the DVFS plane (Session::recommend, core clock\n"
      "    324-705 MHz at 2.6 GHz memory):\n");
  std::printf("    %-8s %14s %14s %14s\n", "", "min_energy", "min_edp",
              "perf_cap");
  for (const char* program : {"SGEMM", "LBM", "BP", "L-BFS"}) {
    std::printf("    %-8s", program);
    for (const v1::Objective objective :
         {v1::Objective::kMinEnergy, v1::Objective::kMinEdp,
          v1::Objective::kPerfCap}) {
      v1::RecommendOptions ropt;
      ropt.objective = objective;
      ropt.sweep.core_mhz = {324.0, 705.0, 95.0};
      const v1::Recommendation rec = session.recommend(program, 0, ropt);
      if (rec.ok) {
        std::printf(" %10.0f MHz", rec.config.core_mhz);
      } else {
        std::printf(" %14s", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}
