// Reproduces paper Figure 3: relative change in active runtime, energy and
// power when switching from the 614 to the 324 configuration (core /1.9,
// memory /8). Programs without sufficient power samples at 324 are dropped
// - the paper's own exclusion rule; the dropped entries are listed.
//
// Paper expectations: everything slows >= 1.9x (memory-bound codes up to
// 7.75x - LBM); energy rises for two-thirds of the programs (LBM +100%);
// power falls to about half across the board.
#include <iostream>

#include "figcommon.hpp"
#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  bench::ObsGuard obs_guard(argc, argv);
  v1::Session session;
  std::cout << "Figure 3: 614 -> 324 (core clock /1.9, memory clock /8)\n\n";
  bench::prewarm(session, {"614", "324"});
  bench::run_ratio_figure(session, "614", "324", 0.3, 9.0);
  return 0;
}
