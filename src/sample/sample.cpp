#include "sample/sample.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/variability.hpp"
#include "fault/fault.hpp"
#include "k20power/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/model.hpp"
#include "repro/api.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace repro::sample {

std::string_view to_string(Mode mode) {
  switch (mode) {
    case Mode::kExact: return "exact";
    case Mode::kStratified: return "stratified";
    case Mode::kSystematic: return "systematic";
  }
  return "exact";
}

bool parse_mode(std::string_view text, Mode& out) {
  if (text == "exact") {
    out = Mode::kExact;
  } else if (text == "stratified") {
    out = Mode::kStratified;
  } else if (text == "systematic") {
    out = Mode::kSystematic;
  } else {
    return false;
  }
  return true;
}

SampleOptions SampleOptions::from_global() {
  const repro::Options& global = repro::Options::global();
  SampleOptions o;
  parse_mode(global.sample_mode, o.mode);  // unparsable = keep kExact
  if (global.sample_fraction > 0.0 && global.sample_fraction <= 1.0) {
    o.fraction = global.sample_fraction;
  }
  if (global.sample_target_rel_error > 0.0 &&
      global.sample_target_rel_error < 1.0) {
    o.target_rel_error = global.sample_target_rel_error;
  }
  if (global.sample_seed != 0) o.seed = global.sample_seed;
  return o;
}

double student_t975(int df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df < 1) df = 1;
  if (df > 30) return 1.96;
  return kTable[df - 1];
}

namespace {

void scale_activity(sim::Activity& a, double s) {
  a.warp_instructions *= s;
  a.fp32_ops *= s;
  a.fp64_ops *= s;
  a.int_ops *= s;
  a.sfu_ops *= s;
  a.shared_accesses *= s;
  a.l2_transactions *= s;
  a.dram_transactions *= s;
  a.dram_bus_bytes *= s;
  a.atomic_ops *= s;
}

void add_scaled_activity(sim::Activity& out, const sim::Activity& a, double s) {
  out.warp_instructions += a.warp_instructions * s;
  out.fp32_ops += a.fp32_ops * s;
  out.fp64_ops += a.fp64_ops * s;
  out.int_ops += a.int_ops * s;
  out.sfu_ops += a.sfu_ops * s;
  out.shared_accesses += a.shared_accesses * s;
  out.l2_transactions += a.l2_transactions * s;
  out.dram_transactions += a.dram_transactions * s;
  out.dram_bus_bytes += a.dram_bus_bytes * s;
  out.atomic_ops += a.atomic_ops * s;
}

/// One cluster: a contiguous slice of the structural timeline holding
/// ~min_cluster_active_s of kernel time. Long phases are split by scaling
/// activity and duration with the split fraction — the model power of the
/// chunk is then identical to the whole phase's and its energy
/// proportional, so chunks are faithful sub-units of the launch.
struct Cluster {
  std::size_t begin_phase = 0;  // inclusive
  std::size_t end_phase = 0;    // inclusive
  double begin_frac = 0.0;      // clipped start fraction of begin_phase
  double end_frac = 1.0;        // clipped end fraction of end_phase
  double active_s = 0.0;        // structural kernel seconds inside
  double gap_internal_s = 0.0;  // host gaps inside the window
  double lead_gap_s = 0.0;      // host gap immediately before the window
  double sumsq_s = 0.0;         // sum of squared chunk durations
  double dyn_j = 0.0;           // model dynamic energy of the slice
  double em_struct_j = 0.0;     // structural model window energy
  std::size_t dominant_phase = 0;
  std::size_t stratum = 0;
};

/// Cuts the structural trace into clusters and assigns strata by dominant
/// kernel class. O(phases): per phase only sums and compares; the power
/// model is evaluated once per cluster on the summed activity (dynamic
/// energy is linear in activity, so the sum's energy equals the sum of the
/// chunk energies).
std::vector<Cluster> build_clusters(const sim::TraceResult& trace,
                                    const power::PowerModel& model,
                                    const sim::GpuConfig& config,
                                    double ecc_adjust, double tail_w,
                                    double min_cluster_s,
                                    std::size_t max_cluster_phases,
                                    std::vector<std::string>& stratum_names) {
  std::vector<Cluster> clusters;
  sim::Activity acc{};
  Cluster cur;
  bool open = false;
  double max_chunk = -1.0;
  std::size_t cur_phases = 0;
  if (max_cluster_phases == 0) max_cluster_phases = 1;

  const auto close = [&] {
    if (!open) return;
    cur.dyn_j = model.dynamic_energy_j(acc, config);
    cur.em_struct_j = ecc_adjust * (tail_w * cur.active_s + cur.dyn_j) +
                      tail_w * cur.gap_internal_s;
    clusters.push_back(cur);
    cur = Cluster{};
    acc = sim::Activity{};
    open = false;
    max_chunk = -1.0;
    cur_phases = 0;
  };

  for (std::size_t i = 0; i < trace.phases.size(); ++i) {
    const sim::Phase& phase = trace.phases[i];
    const double d = phase.duration_s;
    const std::size_t n_chunks =
        d > 2.0 * min_cluster_s
            ? static_cast<std::size_t>(std::ceil(d / min_cluster_s))
            : 1;
    for (std::size_t k = 0; k < n_chunks; ++k) {
      const double lo = static_cast<double>(k) / static_cast<double>(n_chunks);
      const double hi =
          static_cast<double>(k + 1) / static_cast<double>(n_chunks);
      const double chunk_d = d * (hi - lo);
      if (!open) {
        open = true;
        cur.begin_phase = i;
        cur.begin_frac = lo;
        cur.lead_gap_s = (k == 0) ? phase.host_gap_before_s : 0.0;
        cur.dominant_phase = i;
      } else if (k == 0) {
        cur.gap_internal_s += phase.host_gap_before_s;
      }
      cur.end_phase = i;
      cur.end_frac = hi;
      cur.active_s += chunk_d;
      cur.sumsq_s += chunk_d * chunk_d;
      ++cur_phases;
      add_scaled_activity(acc, phase.activity, hi - lo);
      if (chunk_d > max_chunk) {
        max_chunk = chunk_d;
        cur.dominant_phase = i;
      }
      if (cur.active_s >= min_cluster_s || cur_phases >= max_cluster_phases) {
        close();
      }
    }
  }
  close();

  // Strata: one per distinct dominant kernel class, first-seen order.
  stratum_names.clear();
  for (Cluster& c : clusters) {
    const std::string& kernel = trace.phases[c.dominant_phase].kernel_name;
    std::size_t h = 0;
    for (; h < stratum_names.size(); ++h) {
      if (stratum_names[h] == kernel) break;
    }
    if (h == stratum_names.size()) stratum_names.push_back(kernel);
    c.stratum = h;
  }
  return clusters;
}

/// Seeded, deterministic cluster selection. The first and last clusters
/// are always selected: K20Power's active window is the span from the
/// first to the last above-threshold sample, so keeping the real run edges
/// in the mini trace reproduces the full run's threshold-crossing and
/// driver-tail behaviour exactly.
std::vector<char> select_clusters(const std::vector<Cluster>& clusters,
                                  std::size_t n_strata, Mode mode,
                                  double fraction, util::Rng& sel) {
  const std::size_t n = clusters.size();
  std::vector<char> selected(n, 0);
  selected.front() = 1;
  selected.back() = 1;

  if (mode == Mode::kSystematic) {
    const std::size_t want = std::min<std::size_t>(
        n, std::max<std::size_t>(
               3, static_cast<std::size_t>(
                      std::ceil(fraction * static_cast<double>(n)))));
    const double stride = static_cast<double>(n) / static_cast<double>(want);
    const double offset = sel.uniform() * stride;
    for (std::size_t k = 0; k < want; ++k) {
      const auto idx = static_cast<std::size_t>(
          offset + stride * static_cast<double>(k));
      selected[std::min(idx, n - 1)] = 1;
    }
    return selected;
  }

  // Stratified: per-stratum member lists, seeded Fisher-Yates permutation,
  // clusters taken until the stratum's share of kernel time is reached.
  std::vector<std::vector<std::size_t>> members(n_strata);
  std::vector<double> active(n_strata, 0.0);
  std::vector<std::size_t> interior_members(n_strata, 0);
  for (std::size_t i = 0; i < n; ++i) {
    members[clusters[i].stratum].push_back(i);
    active[clusters[i].stratum] += clusters[i].active_s;
    if (i != 0 && i != n - 1) ++interior_members[clusters[i].stratum];
  }
  for (std::size_t h = 0; h < n_strata; ++h) {
    std::vector<std::size_t>& perm = members[h];
    const double target = fraction * active[h];
    const std::size_t want_min = std::min<std::size_t>(2, perm.size());
    // The stratum ratio is estimated from interior windows (the forced
    // first/last clusters carry the run's rise/fall edges, see run_pass),
    // so every stratum needs at least two interior picks when it has them.
    const std::size_t want_interior =
        std::min<std::size_t>(2, interior_members[h]);
    double got = 0.0;
    std::size_t count = 0, interior = 0;
    for (const std::size_t idx : perm) {
      if (selected[idx]) {
        got += clusters[idx].active_s;
        ++count;
      }
    }
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[sel.uniform_index(i)]);
    }
    for (const std::size_t idx : perm) {
      if (got >= target && count >= want_min && interior >= want_interior) {
        break;
      }
      if (selected[idx]) continue;
      selected[idx] = 1;
      got += clusters[idx].active_s;
      ++count;
      if (idx != 0 && idx != n - 1) ++interior;
    }
  }
  return selected;
}

/// Lag-compensated trapezoidal energy of the sample stream clipped to the
/// window [a, b] — the same compensation arithmetic K20Power applies to the
/// full stream (p = r + tau * dr/dt, central differences).
double window_energy(std::span<const sensor::Sample> ss, double tau, double a,
                     double b) {
  if (ss.size() < 2 || b <= a) return 0.0;
  const auto comp = [&](std::size_t i) {
    const std::size_t lo = i > 0 ? i - 1 : i;
    const std::size_t hi = i + 1 < ss.size() ? i + 1 : i;
    const double dt = ss[hi].t - ss[lo].t;
    const double drdt = dt > 0.0 ? (ss[hi].w - ss[lo].w) / dt : 0.0;
    return ss[i].w + tau * drdt;
  };
  double energy = 0.0;
  for (std::size_t i = 0; i + 1 < ss.size(); ++i) {
    const double t0 = ss[i].t, t1 = ss[i + 1].t;
    if (t1 <= a) continue;
    if (t0 >= b) break;
    const double lo = std::max(a, t0), hi = std::min(b, t1);
    if (hi <= lo || t1 <= t0) continue;
    const double c0 = comp(i), c1 = comp(i + 1);
    const double w_lo = c0 + (lo - t0) / (t1 - t0) * (c1 - c0);
    const double w_hi = c0 + (hi - t0) / (t1 - t0) * (c1 - c0);
    energy += 0.5 * (w_lo + w_hi) * (hi - lo);
  }
  return energy;
}

SampledResult passthrough(core::Study& study,
                          const workloads::Workload& workload,
                          std::size_t input_index,
                          const sim::GpuConfig& config) {
  SampledResult r;
  r.base = study.measure(workload, input_index, config);
  r.sampled = false;
  r.fraction = 1.0;
  r.time_ci = {r.base.time_s, r.base.time_s};
  r.energy_ci = {r.base.energy_j, r.base.energy_j};
  r.power_ci = {r.base.power_w, r.base.power_w};
  return r;
}

/// One selection + measurement pass at a fixed fraction.
SampledResult run_pass(core::Study& study, const workloads::Workload& workload,
                       const sim::GpuConfig& config,
                       const SampleOptions& options, const std::string& key,
                       const sim::TraceResult& ground,
                       const std::vector<Cluster>& clusters,
                       const std::vector<std::string>& stratum_names,
                       double fraction, int pass) {
  const std::size_t n_clusters = clusters.size();
  const std::size_t n_strata = stratum_names.size();
  const power::PowerModel& model = study.power_model();
  const double ecc_adjust =
      config.ecc ? workload.ecc_power_adjustment() : 1.0;
  power::PhasePowerMemo memo{model, config, ecc_adjust};
  const double tail_w = memo.tail_power_w();

  // Deterministic selection stream per (experiment, seed, pass).
  util::Rng sel{util::mix64(
      options.seed ^
      util::mix64(std::hash<std::string>{}(key) ^ 0x53414d504c45ULL) ^
      static_cast<std::uint64_t>(pass) * 0x9e3779b97f4a7c15ULL)};
  const std::vector<char> selected =
      select_clusters(clusters, n_strata, options.mode, fraction, sel);

  // Complement aggregates (the analytic, never-simulated remainder).
  std::vector<double> u_em(n_strata, 0.0);     // model energy, unsampled
  std::vector<double> u_active(n_strata, 0.0); // kernel seconds, unsampled
  std::vector<double> u_dyn(n_strata, 0.0);    // dynamic energy, unsampled
  std::vector<double> u_gint(n_strata, 0.0);   // internal gaps, unsampled
  std::vector<double> s_em(n_strata, 0.0);     // model energy, sampled
  std::vector<std::size_t> n_sampled(n_strata, 0);
  std::vector<std::size_t> n_total(n_strata, 0);
  std::vector<double> h_active(n_strata, 0.0);
  std::vector<double> h_sampled_active(n_strata, 0.0);
  double sumsq_u = 0.0;
  double sampled_active = 0.0;
  double dyn_total = 0.0;
  // The ratio of each stratum is estimated from its interior sampled
  // windows when it has at least two of them: the forced first/last
  // clusters carry the run's rise/fall through the sensor lag, an edge
  // bias per window that does not shrink with window length.
  std::vector<std::size_t> n_interior_sel(n_strata, 0);
  for (std::size_t i = 1; i + 1 < n_clusters; ++i) {
    if (selected[i]) ++n_interior_sel[clusters[i].stratum];
  }
  std::vector<char> use_interior(n_strata, 0);
  for (std::size_t h = 0; h < n_strata; ++h) {
    use_interior[h] = n_interior_sel[h] >= 2;
  }
  std::vector<double> s_em_used(n_strata, 0.0);  // model energy, ratio windows
  std::vector<std::size_t> n_rho(n_strata, 0);   // windows in the ratio
  for (std::size_t i = 0; i < n_clusters; ++i) {
    const Cluster& c = clusters[i];
    ++n_total[c.stratum];
    h_active[c.stratum] += c.active_s;
    dyn_total += c.dyn_j;
    if (selected[i]) {
      ++n_sampled[c.stratum];
      h_sampled_active[c.stratum] += c.active_s;
      s_em[c.stratum] += c.em_struct_j;
      sampled_active += c.active_s;
      const bool interior = i != 0 && i + 1 != n_clusters;
      if (!use_interior[c.stratum] || interior) {
        s_em_used[c.stratum] += c.em_struct_j;
        ++n_rho[c.stratum];
      }
    } else {
      u_em[c.stratum] += c.em_struct_j;
      u_active[c.stratum] += c.active_s;
      u_dyn[c.stratum] += c.dyn_j;
      u_gint[c.stratum] += c.gap_internal_s;
      sumsq_u += c.sumsq_s;
    }
  }
  double unsampled_active = 0.0, unsampled_gint = 0.0;
  for (std::size_t h = 0; h < n_strata; ++h) {
    unsampled_active += u_active[h];
    unsampled_gint += u_gint[h];
  }

  // Mini-trace template: the selected clusters re-assembled structurally.
  // The first mini phase keeps the run's real leading gap; a cluster that
  // directly continues the previously selected one keeps its natural gap;
  // everywhere else the skipped span is compressed to gap_compress_s.
  struct Ref {
    std::size_t cluster_row = 0;  // dense row among selected clusters
    bool window_start = false;
  };
  std::vector<std::size_t> rows;  // selected cluster ids, ascending
  for (std::size_t i = 0; i < n_clusters; ++i) {
    if (selected[i]) rows.push_back(i);
  }
  sim::TraceResult tmpl;
  std::vector<Ref> refs;
  double g_all = 0.0;
  for (std::size_t i = 1; i < ground.phases.size(); ++i) {
    g_all += ground.phases[i].host_gap_before_s;
  }
  double g_mini = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Cluster& c = clusters[rows[r]];
    const bool adjacent = r > 0 && rows[r - 1] + 1 == rows[r];
    for (std::size_t p = c.begin_phase; p <= c.end_phase; ++p) {
      const sim::Phase& phase = ground.phases[p];
      double frac = 1.0;
      if (p == c.begin_phase) frac -= c.begin_frac;
      if (p == c.end_phase) frac -= 1.0 - c.end_frac;
      sim::Phase mp;
      mp.kernel_name = phase.kernel_name;
      mp.memory_bound = phase.memory_bound;
      mp.duration_s = phase.duration_s * frac;
      mp.activity = phase.activity;
      scale_activity(mp.activity, frac);
      const bool cluster_first = p == c.begin_phase;
      if (cluster_first) {
        const double natural =
            c.begin_frac == 0.0 ? phase.host_gap_before_s : 0.0;
        if (refs.empty()) {
          mp.host_gap_before_s = natural;  // before the span: not in g_mini
        } else {
          mp.host_gap_before_s = adjacent ? natural : options.gap_compress_s;
          g_mini += mp.host_gap_before_s;
        }
      } else {
        mp.host_gap_before_s = phase.host_gap_before_s;
        g_mini += mp.host_gap_before_s;
      }
      tmpl.phases.push_back(std::move(mp));
      refs.push_back(Ref{r, cluster_first});
      tmpl.active_time_s += tmpl.phases.back().duration_s;
      tmpl.total_span_s +=
          tmpl.phases.back().duration_s + tmpl.phases.back().host_gap_before_s;
    }
  }
  add_scaled_activity(tmpl.total_activity, ground.total_activity, 1.0);

  // Per-repetition measurement through the unmodified detailed pipeline.
  // The measurement stream and the global jitters mirror the exact path
  // draw-for-draw (same seed derivation, same draw order as
  // core::perturb), so repetition r of the sampled mode experiences the
  // same run under a shorter recording.
  const core::VariabilityOptions var{};
  const double sigma_t =
      workload.regularity() == workloads::Regularity::kIrregular
          ? var.time_sigma_irregular
          : var.time_sigma_regular;
  util::Rng stream{util::mix64(study.options().measurement_seed ^
                               util::mix64(std::hash<std::string>{}(key)))};
  const sensor::Sensor sensor;
  const k20power::AnalyzeOptions analyze_options =
      k20power::options_for_tail(tail_w);
  const sensor::WaveformOptions wave_options{};
  const double window_offset =
      wave_options.lead_in_idle_s + wave_options.init_phase_s;

  sim::TraceResult work = tmpl;
  sensor::Waveform waveform;
  std::vector<sensor::Sample> samples;

  SampledResult out;
  out.sampled = true;
  out.passes = pass + 1;
  out.clusters = n_clusters;
  out.clusters_sampled = rows.size();
  out.fraction = ground.active_time_s > 0.0
                     ? sampled_active / ground.active_time_s
                     : 1.0;
  out.base.true_active_s = ground.active_time_s;

  std::vector<double> t_hats, e_hats, p_hats;
  // Detrended per-rep series: estimate minus the analytic model total
  // under the rep's shared jitters. The sampled mode mirrors the exact
  // path's global jitters, so an exact run with the same study seeds moves
  // with the estimate rep-for-rep; the repetition term of the CI covers
  // the residual (unshared) scatter, not the shared jitter itself.
  std::vector<double> t_dts, e_dts, p_dts;
  std::vector<std::vector<double>> rho_reps(n_strata);
  std::vector<double> res_sq(n_strata, 0.0);  // ratio residuals, pooled
  int usable_reps = 0;
  double rj_sum = 0.0;
  const double d_total = ground.active_time_s;

  std::vector<double> win_a(rows.size()), win_b(rows.size());
  std::vector<double> dur_pert(rows.size());
  std::vector<char> interior_row(rows.size(), 0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    interior_row[r] = rows[r] != 0 && rows[r] + 1 != n_clusters;
  }

  for (int rep = 0; rep < study.options().repetitions; ++rep) {
    util::Rng rep_rng = stream.fork(static_cast<std::uint64_t>(rep) + 1);
    // Global jitters: same draw order as core::perturb.
    double run_jitter = rep_rng.lognormal_jitter(sigma_t);
    if (rep_rng.bernoulli(var.outlier_probability)) {
      run_jitter *= 1.0 + std::abs(rep_rng.normal()) * var.outlier_scale;
    }
    const double activity_jitter = rep_rng.lognormal_jitter(var.activity_sigma);

    std::fill(dur_pert.begin(), dur_pert.end(), 0.0);
    double t = window_offset;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const double phase_jitter = rep_rng.lognormal_jitter(var.phase_sigma);
      sim::Phase& wp = work.phases[i];
      const sim::Phase& tp = tmpl.phases[i];
      wp.duration_s = tp.duration_s * run_jitter * phase_jitter;
      wp.activity = tp.activity;
      scale_activity(wp.activity, activity_jitter);
      t += wp.host_gap_before_s;
      if (refs[i].window_start) win_a[refs[i].cluster_row] = t;
      t += wp.duration_s;
      win_b[refs[i].cluster_row] = t;
      dur_pert[refs[i].cluster_row] += wp.duration_s;
    }

    sensor::synthesize_into(waveform, work, memo, wave_options);
    sensor.record_into(waveform, rep_rng, samples);
    const k20power::Measurement m = k20power::analyze(samples, analyze_options);
    out.base.repetitions.push_back(m);
    if (!m.usable) continue;
    ++usable_reps;
    rj_sum += run_jitter;

    // Per-stratum measured/model ratio over the ratio windows (interior
    // subset where available, see the aggregates pass above).
    std::vector<double> e_sum(n_strata, 0.0), em_sum(n_strata, 0.0);
    std::vector<double> e_c(rows.size()), em_c(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Cluster& c = clusters[rows[r]];
      e_c[r] = window_energy(samples, analyze_options.lag_tau_s, win_a[r],
                             win_b[r]);
      em_c[r] = ecc_adjust * (tail_w * dur_pert[r] + activity_jitter * c.dyn_j) +
                tail_w * c.gap_internal_s;
      if (use_interior[c.stratum] && !interior_row[r]) continue;
      e_sum[c.stratum] += e_c[r];
      em_sum[c.stratum] += em_c[r];
    }
    std::vector<double> rho(n_strata, 1.0);
    for (std::size_t h = 0; h < n_strata; ++h) {
      if (em_sum[h] > 0.0) rho[h] = e_sum[h] / em_sum[h];
      rho_reps[h].push_back(rho[h]);
    }
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const std::size_t h = clusters[rows[r]].stratum;
      if (use_interior[h] && !interior_row[r]) continue;
      const double res = e_c[r] - rho[h] * em_c[r];
      res_sq[h] += res * res;
    }

    // Time: the unsampled span is analytic — durations scale with the run
    // jitter (per-phase jitter has unit mean; its variance enters the CI),
    // host gaps are deterministic, and the threshold edges are already in
    // the mini measurement because the first/last clusters are real.
    const double t_hat =
        m.active_time_s + run_jitter * unsampled_active + (g_all - g_mini);

    // Energy: ratio-extrapolate the unsampled kernels per stratum; gap
    // spans missing from the mini trace (skipped lead gaps minus the
    // compression surplus) are restored at the driver tail level.
    double e_hat = m.energy_j;
    for (std::size_t h = 0; h < n_strata; ++h) {
      const double em_u = ecc_adjust * (tail_w * run_jitter * u_active[h] +
                                        activity_jitter * u_dyn[h]) +
                          tail_w * u_gint[h];
      e_hat += rho[h] * em_u;
    }
    e_hat += tail_w * (g_all - g_mini - unsampled_gint);

    const double p_hat = t_hat > 0.0 ? e_hat / t_hat : 0.0;
    t_hats.push_back(t_hat);
    e_hats.push_back(e_hat);
    p_hats.push_back(p_hat);

    // Shared-jitter model totals for the detrended repetition series.
    const double t_model = run_jitter * d_total + g_all;
    const double e_model = ecc_adjust * (tail_w * run_jitter * d_total +
                                         activity_jitter * dyn_total) +
                           tail_w * g_all;
    t_dts.push_back(t_hat - t_model);
    e_dts.push_back(e_hat - e_model);
    p_dts.push_back(p_hat - (t_model > 0.0 ? e_model / t_model : 0.0));
  }

  for (std::size_t h = 0; h < n_strata; ++h) {
    StratumReport report;
    report.kernel = stratum_names[h];
    report.clusters = n_total[h];
    report.sampled = n_sampled[h];
    report.structural_s = h_active[h];
    report.sampled_s = h_sampled_active[h];
    report.energy_ratio =
        rho_reps[h].empty() ? 0.0 : util::median(rho_reps[h]);
    out.strata.push_back(std::move(report));
  }

  if (usable_reps < 2) return out;  // base.usable stays false, like exact
  out.base.usable = true;
  out.base.time_s = util::median(t_hats);
  out.base.energy_j = util::median(e_hats);
  out.base.power_w = util::median(p_hats);
  out.base.time_spread = util::relative_spread(t_hats);
  out.base.energy_spread = util::relative_spread(e_hats);

  // --- Stated 95% confidence intervals (DESIGN.md §13) ---
  // Sampling variance of the energy total: stratified ratio estimator with
  // finite-population correction. With residual variance s2_h around the
  // stratum ratio, estimating the unsampled total U_h rho_h carries
  //   Var_h = s2_h * (U_h^2 n_h / (sum_s em)^2 + (N_h - n_h))
  // (ratio-noise on rho_h propagated to U_h, plus the intrinsic spread of
  // the N_h - n_h unseen residuals). Strata sampled exhaustively drop out.
  int df_samp = 0;
  double pooled_res = 0.0;
  int pooled_df = 0;
  for (std::size_t h = 0; h < n_strata; ++h) {
    const int df_h = static_cast<int>(n_rho[h]) - 1;
    if (df_h > 0 && n_total[h] > n_sampled[h]) df_samp += df_h;
    if (df_h > 0) {
      pooled_res += res_sq[h];
      pooled_df += df_h * usable_reps;
    }
  }
  const double pooled_s2 = pooled_df > 0 ? pooled_res / pooled_df : 0.0;
  double var_e = 0.0;
  for (std::size_t h = 0; h < n_strata; ++h) {
    if (n_total[h] <= n_sampled[h]) continue;  // exhaustively sampled
    const int df_h = static_cast<int>(n_rho[h]) - 1;
    const double s2 =
        df_h > 0 ? res_sq[h] / (usable_reps * df_h) : pooled_s2;
    if (s2 <= 0.0 || s_em_used[h] <= 0.0) continue;
    const double n_h = static_cast<double>(n_rho[h]);
    const double unseen = static_cast<double>(n_total[h] - n_sampled[h]);
    var_e += s2 * (u_em[h] * u_em[h] * n_h / (s_em_used[h] * s_em_used[h]) +
                   unseen);
  }
  // Sampling variance of the time total: only the per-phase jitter of the
  // unsampled chunks is unknown (run jitter is shared, gaps deterministic).
  const double rj_mean = rj_sum / usable_reps;
  const double var_t =
      rj_mean * rj_mean * var.phase_sigma * var.phase_sigma * sumsq_u;

  const int df_rep = usable_reps - 1;
  const double t_rep = student_t975(df_rep);
  const double t_samp = student_t975(df_samp > 0 ? df_samp : 1);
  const double se_time =
      util::stddev(t_dts) / std::sqrt(static_cast<double>(usable_reps));
  const double se_energy =
      util::stddev(e_dts) / std::sqrt(static_cast<double>(usable_reps));
  const double se_power =
      util::stddev(p_dts) / std::sqrt(static_cast<double>(usable_reps));

  const auto half_width = [&](double se, double var_samp, double estimate) {
    const double a = t_rep * se;
    const double b = t_samp * std::sqrt(std::max(var_samp, 0.0));
    return std::sqrt(a * a + b * b) + options.guard_rel * std::abs(estimate);
  };
  const double hw_t = half_width(se_time, var_t, out.base.time_s);
  const double hw_e = half_width(se_energy, var_e, out.base.energy_j);
  // Power = energy / time. The active-window edge noise shared by the
  // numerator and denominator cancels in the ratio (a longer measured
  // window adds ~p * dt of energy along with dt of time), so only the
  // independent SAMPLING variances propagate, plus the detrended
  // repetition scatter of the ratio itself.
  const double rel_samp_t =
      out.base.time_s > 0.0 ? std::sqrt(std::max(var_t, 0.0)) / out.base.time_s
                            : 0.0;
  const double rel_samp_e =
      out.base.energy_j > 0.0
          ? std::sqrt(std::max(var_e, 0.0)) / out.base.energy_j
          : 0.0;
  const double hw_p =
      std::sqrt(std::pow(t_rep * se_power, 2) +
                std::pow(t_samp * out.base.power_w, 2) *
                    (rel_samp_t * rel_samp_t + rel_samp_e * rel_samp_e)) +
      options.guard_rel * std::abs(out.base.power_w);

  out.time_ci = {out.base.time_s - hw_t, out.base.time_s + hw_t};
  out.energy_ci = {out.base.energy_j - hw_e, out.base.energy_j + hw_e};
  out.power_ci = {out.base.power_w - hw_p, out.base.power_w + hw_p};
  return out;
}

double stated_rel_error(const SampledResult& r) {
  if (!r.base.usable) return 0.0;
  double rel = 0.0;
  const auto fold = [&](const Interval& ci, double estimate) {
    if (estimate > 0.0) {
      rel = std::max(rel, 0.5 * (ci.high - ci.low) / estimate);
    }
  };
  fold(r.time_ci, r.base.time_s);
  fold(r.energy_ci, r.base.energy_j);
  fold(r.power_ci, r.base.power_w);
  return rel;
}

void record_obs(const SampledResult& r) {
  if (!obs::enabled()) return;
  obs::Registry& registry = obs::Registry::instance();
  registry.counter("sample.requests").add();
  if (!r.sampled) {
    registry.counter("sample.exact_passthrough").add();
    return;
  }
  registry.counter("sample.passes").add(static_cast<std::uint64_t>(r.passes));
  registry.counter("sample.clusters").add(r.clusters);
  registry.counter("sample.clusters_sampled").add(r.clusters_sampled);
  if (!r.base.usable) registry.counter("sample.unusable").add();
  registry.histogram("sample.fraction").observe(r.fraction);
  // Per-stratum attribution: kernel-class cardinality is bounded by the
  // program's global kernel count, so per-stratum counters stay small.
  for (const StratumReport& s : r.strata) {
    registry.counter("sample.stratum." + s.kernel + ".clusters")
        .add(s.clusters);
    registry.counter("sample.stratum." + s.kernel + ".sampled")
        .add(s.sampled);
  }
}

}  // namespace

SampledResult measure_sampled(core::Study& study,
                              const workloads::Workload& workload,
                              std::size_t input_index,
                              const sim::GpuConfig& config,
                              const SampleOptions& options) {
  const std::string key = core::experiment_key(workload, input_index, config);
  obs::Span span("sampled-experiment", "experiment");
  span.arg("key", key);

  // Thermal scenarios are exact-only (DESIGN.md §16): the RC state is a
  // whole-timeline integral, so a mini trace would see different
  // temperatures. The study measures through the full pipeline and the
  // result honestly reports sampled == false.
  if (options.mode == Mode::kExact || options.fraction >= 1.0 ||
      options.fraction <= 0.0 || study.options().thermal.enabled) {
    SampledResult r = passthrough(study, workload, input_index, config);
    record_obs(r);
    return r;
  }

  const sim::TraceResult& ground =
      study.trace_result(workload, input_index, config);
  std::vector<std::string> stratum_names;
  const double ecc_adjust =
      config.ecc ? workload.ecc_power_adjustment() : 1.0;
  const double tail_w = study.power_model().tail_power_w(config);
  std::vector<Cluster> clusters;
  if (!ground.phases.empty() && ground.active_time_s > 0.0) {
    clusters = build_clusters(ground, study.power_model(), config, ecc_adjust,
                              tail_w, options.min_cluster_active_s,
                              options.max_cluster_phases, stratum_names);
  }
  // Too little structure to sample: the full pipeline is already cheap.
  if (clusters.size() <= 3) {
    SampledResult r = passthrough(study, workload, input_index, config);
    record_obs(r);
    return r;
  }

  // Fault-injection context: the mini recordings attribute their sensor
  // draws to this experiment's key, exactly like the exact path.
  fault::KeyScope fault_scope{key};

  double fraction = std::clamp(options.fraction, 0.0, 1.0);
  SampledResult result;
  for (int pass = 0;; ++pass) {
    result = run_pass(study, workload, config, options, key, ground, clusters,
                      stratum_names, fraction, pass);
    if (options.target_rel_error <= 0.0) break;
    if (result.base.usable &&
        stated_rel_error(result) <= options.target_rel_error) {
      break;
    }
    if (pass + 1 >= options.max_passes || fraction >= 1.0) {
      // The budget cannot state the requested error: fall back to exact.
      SampledResult exact = passthrough(study, workload, input_index, config);
      exact.passes = pass + 1;
      record_obs(exact);
      return exact;
    }
    fraction = std::min(1.0, fraction * 2.0);
  }
  record_obs(result);
  return result;
}

}  // namespace repro::sample
