// Sampled "rabbit" characterization mode (DESIGN.md §13).
//
// The full-timing measurement loop is the cost center of serving
// characterization at scale: its per-repetition cost is O(phases) (perturb
// + waveform synthesis per kernel phase), and phase counts reach 300k per
// experiment. This layer runs the full trace only through the cheap
// functional path (the structural trace the Study already caches), selects
// a subset of launch CLUSTERS for detailed timing/power simulation, and
// extrapolates to a full measurement carrying an estimate plus a
// confidence interval for active runtime, energy and average power.
//
// Estimator in one paragraph (derivation: DESIGN.md §13): the structural
// timeline is cut into clusters of ~min_cluster_active_s of kernel time
// (long phases are split; activity scales linearly with the split, so
// power is invariant and energy proportional). A seeded, deterministic
// strategy — stratified by dominant kernel class or systematic intervals —
// picks clusters; the first and last clusters are always included so the
// measured run keeps the real threshold edges. The sampled clusters are
// re-assembled into a mini trace (inter-cluster gaps compressed) and
// pushed through the UNMODIFIED detailed pipeline (variability jitters
// mirrored draw-for-draw, waveform synthesis, sensor, K20Power analysis).
// Time extrapolates additively (the unsampled span is analytic in the
// run jitter); energy extrapolates via a per-stratum ratio estimator
// (measured window energy / model window energy over the sampled clusters,
// applied to the model energy of the unsampled complement). The CI is a
// Student-t half-width over the stratified-ratio sampling variance plus
// the repetition variance, plus a documented systematic guard term.
//
// Exact mode (kExact, or fraction >= 1) delegates to Study::measure and is
// bit-identical to the goldens by construction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/study.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/workload.hpp"

namespace repro::sample {

/// Cluster-selection strategy.
enum class Mode {
  kExact,       // no sampling: delegate to the full-timing pipeline
  kStratified,  // strata by dominant kernel class, seeded within-stratum picks
  kSystematic,  // evenly spaced clusters with a seeded offset
};

std::string_view to_string(Mode mode);
/// Parses "exact" / "stratified" / "systematic". Returns false (leaving
/// `out` untouched) for anything else.
bool parse_mode(std::string_view text, Mode& out);

struct SampleOptions {
  Mode mode = Mode::kExact;
  /// Target fraction of structural kernel time simulated in detail, (0, 1].
  double fraction = 0.10;
  /// When > 0: escalate (double the fraction, up to max_passes) until the
  /// stated relative half-width of every metric is below this, falling back
  /// to exact passthrough when even fraction 1 cannot state it.
  double target_rel_error = 0.0;
  std::uint64_t seed = 1;
  /// Structural kernel seconds per cluster (splitting long phases).
  double min_cluster_active_s = 1.5;
  /// Phase-count cap per cluster. Detailed-simulation cost is O(phases),
  /// not O(seconds): phase-dense traces (300k launches in ~10 s) must cut
  /// clusters by launch count or a "10% of time" sample would still
  /// simulate a third of the phases.
  std::size_t max_cluster_phases = 2048;
  /// Systematic guard term of the error-bound contract (DESIGN.md §13):
  /// added to every stated half-width as guard_rel * |estimate| to cover
  /// model-vs-measured bias the sampling variance cannot see.
  double guard_rel = 0.015;
  /// Compressed inter-cluster host gap in the mini trace (seconds).
  double gap_compress_s = 0.0;
  int max_passes = 3;

  /// Defaults with the REPRO_SAMPLE_* knobs applied (Options::global()).
  static SampleOptions from_global();
};

/// Per-stratum attribution of one sampled measurement.
struct StratumReport {
  std::string kernel;        // dominant kernel class of the stratum
  std::size_t clusters = 0;  // clusters in the stratum
  std::size_t sampled = 0;   // clusters simulated in detail
  double structural_s = 0.0; // structural kernel time of the stratum
  double sampled_s = 0.0;    // structural kernel time simulated in detail
  double energy_ratio = 0.0; // measured/model ratio of the median repetition
};

struct Interval {
  double low = 0.0;
  double high = 0.0;
};

/// Result of one sampled (or passthrough) measurement.
struct SampledResult {
  /// Estimates in the exact result's shape: medians over repetitions,
  /// Table-2 spreads, simulator ground truth. For a passthrough this is
  /// bit-identical to Study::measure.
  core::ExperimentResult base;
  bool sampled = false;       // false: exact passthrough (bit-identical)
  double fraction = 1.0;      // achieved sampled fraction of kernel time
  int passes = 1;             // escalation passes actually run
  std::size_t clusters = 0;
  std::size_t clusters_sampled = 0;
  /// Nominal 95% confidence intervals (zero-width for passthrough).
  Interval time_ci, energy_ci, power_ci;
  std::vector<StratumReport> strata;
};

/// Runs one experiment in sampled mode. Deterministic in (study seeds,
/// experiment key, options): equal inputs produce bit-equal results.
/// Thread-safe for distinct experiments (shares the study's trace cache).
SampledResult measure_sampled(core::Study& study,
                              const workloads::Workload& workload,
                              std::size_t input_index,
                              const sim::GpuConfig& config,
                              const SampleOptions& options);

/// Two-sided 95% Student-t quantile (t_{0.975, df}) used for the stated
/// half-widths; df <= 0 is clamped to 1, df > 30 uses the normal limit.
double student_t975(int df);

}  // namespace repro::sample
