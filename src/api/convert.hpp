// Internal -> v1 DTO conversions shared by the facade (src/api) and the
// serve layer's attribution/sweep/recommend endpoints (src/serve). Not
// installed: consumers outside src/ only see include/repro/api.hpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "obs/attribution.hpp"
#include "repro/api.hpp"
#include "sim/gpuconfig.hpp"
#include "thermal/thermal.hpp"

namespace repro::v1::detail {

/// Converts an attribution table (kernels, class columns, totals) and
/// renders its text block.
Attribution attribution_to_v1(const obs::AttributionTable& table);

/// v1 <-> dvfs conversions (trivial field copies; doubles verbatim).
sim::GpuConfig spec_to_internal(const GpuConfigSpec& spec);
GpuConfigSpec spec_from_internal(const sim::GpuConfig& config);
dvfs::Objective objective_to_internal(Objective objective);
Objective objective_from_internal(dvfs::Objective objective);
dvfs::SweepSettings sweep_settings_to_internal(const SweepOptions& options);

/// Builds the v1 view of a finished dvfs sweep (per-point measurement
/// DTOs carry the sampled CIs verbatim).
SweepResult sweep_to_v1(std::string_view program, std::size_t input_index,
                        const dvfs::Sweep& sweep);

/// Runs the argmin over an already-built v1 sweep and packages the
/// choice. `ok == false` with a caller-facing error when no measured
/// usable point qualifies. Throws std::invalid_argument for an invalid
/// perf_cap_rel. `exclude_throttled` drops points whose thermal governor
/// clamped (the thermal constraint of DESIGN.md §16).
Recommendation recommend_over(Objective objective, double perf_cap_rel,
                              SweepResult sweep,
                              bool exclude_throttled = false);

/// Validates the wire-exposed thermal knobs; returns a caller-facing
/// error message, or an empty string when the options are valid (always
/// valid while disabled).
std::string thermal_options_error(const ThermalOptions& thermal);

/// Builds the internal thermal scenario of one request: the v1 knobs plus
/// a governor ladder assembled from `ladder_candidates` (paper standard
/// configs + session-registered operating points); simulate() keeps only
/// candidates below each running config's clock.
thermal::ThermalScenario thermal_to_internal(
    const ThermalOptions& thermal,
    const std::vector<sim::GpuConfig>& ladder_candidates);

}  // namespace repro::v1::detail
