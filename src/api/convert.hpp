// Internal obs -> v1 DTO conversions shared by the facade (src/api) and
// the serve layer's attribution endpoint (src/serve). Not installed:
// consumers outside src/ only see include/repro/api.hpp.
#pragma once

#include "obs/attribution.hpp"
#include "repro/api.hpp"

namespace repro::v1::detail {

/// Converts an attribution table (kernels, class columns, totals) and
/// renders its text block.
Attribution attribution_to_v1(const obs::AttributionTable& table);

}  // namespace repro::v1::detail
