// Internal -> v1 DTO conversions shared by the facade (src/api) and the
// serve layer's attribution/sweep/recommend endpoints (src/serve). Not
// installed: consumers outside src/ only see include/repro/api.hpp.
#pragma once

#include <string_view>

#include "dvfs/dvfs.hpp"
#include "obs/attribution.hpp"
#include "repro/api.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::v1::detail {

/// Converts an attribution table (kernels, class columns, totals) and
/// renders its text block.
Attribution attribution_to_v1(const obs::AttributionTable& table);

/// v1 <-> dvfs conversions (trivial field copies; doubles verbatim).
sim::GpuConfig spec_to_internal(const GpuConfigSpec& spec);
GpuConfigSpec spec_from_internal(const sim::GpuConfig& config);
dvfs::Objective objective_to_internal(Objective objective);
Objective objective_from_internal(dvfs::Objective objective);
dvfs::SweepSettings sweep_settings_to_internal(const SweepOptions& options);

/// Builds the v1 view of a finished dvfs sweep (per-point measurement
/// DTOs carry the sampled CIs verbatim).
SweepResult sweep_to_v1(std::string_view program, std::size_t input_index,
                        const dvfs::Sweep& sweep);

/// Runs the argmin over an already-built v1 sweep and packages the
/// choice. `ok == false` with a caller-facing error when no measured
/// usable point qualifies. Throws std::invalid_argument for an invalid
/// perf_cap_rel.
Recommendation recommend_over(Objective objective, double perf_cap_rel,
                              SweepResult sweep);

}  // namespace repro::v1::detail
