// Implementation of the versioned public facade (include/repro/api.hpp).
//
// This is the one translation unit that bridges the public DTOs to the
// internal Study/Scheduler/model layers; consumers of repro/api.hpp never
// see an internal header. Conversions copy doubles verbatim, so facade
// results are bit-identical to the internal values.
#include "repro/api.hpp"

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "api/convert.hpp"
#include "core/aggregate.hpp"
#include "dvfs/dvfs.hpp"
#include "core/scheduler.hpp"
#include "core/study.hpp"
#include "k20power/analyze.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/model.hpp"
#include "sample/sample.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

namespace repro::v1 {

namespace {

sim::GpuConfig to_internal(const GpuConfigSpec& spec) {
  sim::GpuConfig config;
  config.name = spec.name;
  config.core_mhz = spec.core_mhz;
  config.mem_mhz = spec.mem_mhz;
  config.core_voltage = spec.core_voltage;
  config.mem_voltage = spec.mem_voltage;
  config.ecc = spec.ecc;
  return config;
}

GpuConfigSpec to_spec(const sim::GpuConfig& config) {
  GpuConfigSpec spec;
  spec.name = config.name;
  spec.core_mhz = config.core_mhz;
  spec.mem_mhz = config.mem_mhz;
  spec.core_voltage = config.core_voltage;
  spec.mem_voltage = config.mem_voltage;
  spec.ecc = config.ecc;
  return spec;
}

MeasurementResult to_dto(const core::ExperimentResult& r) {
  MeasurementResult out;
  out.usable = r.usable;
  out.time_s = r.time_s;
  out.energy_j = r.energy_j;
  out.power_w = r.power_w;
  out.true_active_s = r.true_active_s;
  out.time_spread = r.time_spread;
  out.energy_spread = r.energy_spread;
  out.thermal = r.thermal;
  out.throttled = r.throttled;
  out.peak_temp_c = r.peak_temp_c;
  out.throttle_events = r.throttle_events;
  return out;
}

sample::Mode to_internal(SamplingMode mode) {
  switch (mode) {
    case SamplingMode::kStratified: return sample::Mode::kStratified;
    case SamplingMode::kSystematic: return sample::Mode::kSystematic;
    case SamplingMode::kExact: break;
  }
  return sample::Mode::kExact;
}

sample::SampleOptions to_internal(const SamplingOptions& sampling) {
  sample::SampleOptions options;  // library defaults for the tuning knobs
  options.mode = to_internal(sampling.mode);
  options.fraction = sampling.fraction;
  options.target_rel_error = sampling.target_rel_error;
  options.seed = sampling.seed;
  return options;
}

MeasurementResult to_dto(const sample::SampledResult& r) {
  MeasurementResult out;
  out.usable = r.base.usable;
  out.time_s = r.base.time_s;
  out.energy_j = r.base.energy_j;
  out.power_w = r.base.power_w;
  out.true_active_s = r.base.true_active_s;
  out.time_spread = r.base.time_spread;
  out.energy_spread = r.base.energy_spread;
  out.sampled = r.sampled;
  out.sample_fraction = r.fraction;
  out.time_ci = {r.time_ci.low, r.time_ci.high};
  out.energy_ci = {r.energy_ci.low, r.energy_ci.high};
  out.power_ci = {r.power_ci.low, r.power_ci.high};
  out.thermal = r.base.thermal;
  out.throttled = r.base.throttled;
  out.peak_temp_c = r.base.peak_temp_c;
  out.throttle_events = r.base.throttle_events;
  return out;
}

MetricRatios to_dto(const core::MetricRatios& r) {
  MetricRatios out;
  out.usable = r.usable;
  out.time = r.time;
  out.energy = r.energy;
  out.power = r.power;
  return out;
}

BoxStats to_dto(const util::BoxStats& s) {
  BoxStats out;
  out.min = s.min;
  out.q1 = s.q1;
  out.median = s.median;
  out.q3 = s.q3;
  out.max = s.max;
  return out;
}

Boundedness to_dto(workloads::Boundedness b) {
  switch (b) {
    case workloads::Boundedness::kCompute: return Boundedness::kCompute;
    case workloads::Boundedness::kMemory: return Boundedness::kMemory;
    case workloads::Boundedness::kBalanced: break;
  }
  return Boundedness::kBalanced;
}

ProgramInfo to_dto(const workloads::Workload& w) {
  ProgramInfo info;
  info.name = std::string(w.name());
  info.suite = std::string(w.suite());
  info.variant = std::string(w.variant());
  info.num_global_kernels = w.num_global_kernels();
  info.boundedness = to_dto(w.boundedness());
  info.regularity = w.regularity() == workloads::Regularity::kIrregular
                        ? Regularity::kIrregular
                        : Regularity::kRegular;
  const auto inputs = w.inputs();
  info.inputs.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    InputInfo in;
    in.name = inputs[i].name;
    in.scale_note = inputs[i].scale_note;
    const auto items = w.items(i);
    in.vertices = items.vertices;
    in.edges = items.edges;
    info.inputs.push_back(std::move(in));
  }
  return info;
}

}  // namespace

MetricRatios ratios(const MeasurementResult& numerator,
                    const MeasurementResult& denominator) {
  MetricRatios r;
  if (!numerator.usable || !denominator.usable || denominator.time_s <= 0.0 ||
      denominator.energy_j <= 0.0 || denominator.power_w <= 0.0) {
    return r;
  }
  r.usable = true;
  r.time = numerator.time_s / denominator.time_s;
  r.energy = numerator.energy_j / denominator.energy_j;
  r.power = numerator.power_w / denominator.power_w;
  return r;
}

std::vector<GpuConfigSpec> standard_configs() {
  std::vector<GpuConfigSpec> out;
  for (const sim::GpuConfig& config : sim::standard_configs()) {
    out.push_back(to_spec(config));
  }
  return out;
}

std::string_view to_string(Objective objective) {
  return dvfs::to_string(detail::objective_to_internal(objective));
}

bool parse_objective(std::string_view text, Objective& out) {
  dvfs::Objective internal;
  if (!dvfs::parse_objective(text, internal)) return false;
  out = detail::objective_from_internal(internal);
  return true;
}

sim::GpuConfig detail::spec_to_internal(const GpuConfigSpec& spec) {
  return to_internal(spec);
}

GpuConfigSpec detail::spec_from_internal(const sim::GpuConfig& config) {
  return to_spec(config);
}

dvfs::Objective detail::objective_to_internal(Objective objective) {
  switch (objective) {
    case Objective::kMinEnergy: return dvfs::Objective::kMinEnergy;
    case Objective::kMinEdp: return dvfs::Objective::kMinEdp;
    case Objective::kMinEd2p: return dvfs::Objective::kMinEd2p;
    case Objective::kPerfCap: return dvfs::Objective::kPerfCap;
  }
  return dvfs::Objective::kMinEdp;
}

Objective detail::objective_from_internal(dvfs::Objective objective) {
  switch (objective) {
    case dvfs::Objective::kMinEnergy: return Objective::kMinEnergy;
    case dvfs::Objective::kMinEdp: return Objective::kMinEdp;
    case dvfs::Objective::kMinEd2p: return Objective::kMinEd2p;
    case dvfs::Objective::kPerfCap: return Objective::kPerfCap;
  }
  return Objective::kMinEdp;
}

dvfs::SweepSettings detail::sweep_settings_to_internal(
    const SweepOptions& options) {
  dvfs::SweepSettings settings;
  settings.grid.core = {options.core_mhz.min, options.core_mhz.max,
                        options.core_mhz.step};
  settings.grid.mem = {options.mem_mhz.min, options.mem_mhz.max,
                       options.mem_mhz.step};
  settings.grid.ecc = options.ecc;
  settings.prune = options.prune;
  settings.prune_margin = options.prune_margin;
  return settings;
}

SweepResult detail::sweep_to_v1(std::string_view program,
                                std::size_t input_index,
                                const dvfs::Sweep& sweep) {
  SweepResult out;
  out.program = std::string(program);
  out.input_index = input_index;
  out.grid_points = sweep.points.size();
  out.pruned = sweep.pruned;
  out.measured = sweep.measured;
  out.points.reserve(sweep.points.size());
  for (const dvfs::Point& point : sweep.points) {
    SweepPoint p;
    p.config = to_spec(point.config);
    p.analytic_time_s = point.analytic.time_s;
    p.analytic_energy_j = point.analytic.energy_j;
    p.analytic_power_w = point.analytic.power_w;
    p.pruned = point.pruned;
    p.measured = point.measured;
    p.pareto = point.pareto;
    p.cached = point.status.cached;
    p.retries = point.status.retries;
    p.degraded = point.status.degraded;
    if (point.measured) p.result = to_dto(point.result);
    out.points.push_back(std::move(p));
  }
  return out;
}

Recommendation detail::recommend_over(Objective objective,
                                      double perf_cap_rel,
                                      SweepResult sweep,
                                      bool exclude_throttled) {
  std::vector<dvfs::MetricPoint> metrics;
  metrics.reserve(sweep.points.size());
  bool any_unthrottled = false;
  for (const SweepPoint& point : sweep.points) {
    dvfs::MetricPoint mp;
    mp.usable = point.measured && point.result.usable;
    mp.time_s = point.result.time_s;
    mp.energy_j = point.result.energy_j;
    mp.throttled = point.result.throttled;
    any_unthrottled = any_unthrottled || (mp.usable && !mp.throttled);
    metrics.push_back(mp);
  }
  const dvfs::Choice choice =
      dvfs::pick(metrics, objective_to_internal(objective), perf_cap_rel,
                 exclude_throttled);

  Recommendation rec;
  rec.objective = objective;
  rec.sweep = std::move(sweep);
  if (choice.index < 0) {
    rec.error = rec.sweep.measured == 0 ? "no grid point was measured"
                : exclude_throttled && !any_unthrottled
                    ? "every usable grid point throttled"
                    : "no measured grid point is usable";
    return rec;
  }
  const SweepPoint& best =
      rec.sweep.points[static_cast<std::size_t>(choice.index)];
  rec.ok = true;
  rec.config = best.config;
  rec.objective_value = choice.value;
  rec.time_s = best.result.time_s;
  rec.energy_j = best.result.energy_j;
  rec.power_w = best.result.power_w;
  return rec;
}

std::string detail::thermal_options_error(const ThermalOptions& thermal) {
  if (!thermal.enabled) return {};
  const auto bad = [](double v) { return !std::isfinite(v); };
  if (bad(thermal.ambient_c) || thermal.ambient_c < -50.0 ||
      thermal.ambient_c > 125.0) {
    return "thermal_ambient_c must be within [-50, 125]";
  }
  if (bad(thermal.ceiling_c) ||
      (thermal.ceiling_c != 0.0 && (thermal.ceiling_c <= thermal.ambient_c ||
                                    thermal.ceiling_c > 150.0))) {
    return "thermal_ceiling_c must be 0 (governor off) or within "
           "(thermal_ambient_c, 150]";
  }
  if (bad(thermal.hysteresis_c) || thermal.hysteresis_c < 0.0 ||
      thermal.hysteresis_c > 50.0) {
    return "thermal_hysteresis_c must be within [0, 50]";
  }
  if (bad(thermal.leak_k_per_c) || thermal.leak_k_per_c < 0.0 ||
      thermal.leak_k_per_c > 1.0) {
    return "thermal_leak_k must be within [0, 1]";
  }
  if (bad(thermal.leak_t0_c) || thermal.leak_t0_c < -50.0 ||
      thermal.leak_t0_c > 150.0) {
    return "thermal_leak_t0_c must be within [-50, 150]";
  }
  return {};
}

thermal::ThermalScenario detail::thermal_to_internal(
    const ThermalOptions& thermal,
    const std::vector<sim::GpuConfig>& ladder_candidates) {
  thermal::ThermalScenario scenario;
  scenario.enabled = thermal.enabled;
  scenario.ambient_c = thermal.ambient_c;
  scenario.governor.ceiling_c = thermal.ceiling_c;
  scenario.governor.hysteresis_c = thermal.hysteresis_c;
  scenario.leakage.k_per_c = thermal.leak_k_per_c;
  scenario.leakage.t0_c = thermal.leak_t0_c;
  scenario.ladder.reserve(ladder_candidates.size());
  for (const sim::GpuConfig& c : ladder_candidates) {
    thermal::LadderConfig rung;
    rung.name = c.name;
    rung.core_mhz = c.core_mhz;
    rung.core_voltage = c.core_voltage;
    scenario.ladder.push_back(std::move(rung));
  }
  return scenario;
}

struct Session::Impl {
  explicit Impl(const Options& options) : options(options) {
    suites::register_all_workloads();
  }

  const workloads::Workload& workload(std::string_view name) const {
    const workloads::Workload* w = workloads::Registry::instance().find(name);
    if (w == nullptr) {
      throw std::invalid_argument("unknown program '" + std::string(name) +
                                  "'");
    }
    return *w;
  }

  std::size_t checked_input(const workloads::Workload& w,
                            std::size_t input_index) const {
    const std::size_t n = w.inputs().size();
    if (input_index >= n) {
      throw std::invalid_argument(
          "program '" + std::string(w.name()) + "' has " + std::to_string(n) +
          " input(s); index " + std::to_string(input_index) + " out of range");
    }
    return input_index;
  }

  /// Resolves a configuration name: the paper's four first (byte-identical
  /// behaviour for all historical traffic), then this session's registered
  /// operating points. Returns by value so the caller never holds a
  /// reference across the registry lock.
  sim::GpuConfig resolve_config(std::string_view name) const {
    try {
      return sim::config_by_name(name);
    } catch (const std::invalid_argument&) {
    }
    {
      std::shared_lock lock(config_mutex);
      const auto it = registered.find(std::string(name));
      if (it != registered.end()) return it->second;
    }
    throw std::invalid_argument("unknown GPU config: " + std::string(name));
  }

  /// Governor ladder candidates of a thermal scenario: the paper's four
  /// operating points plus this session's registered ones (simulate()
  /// keeps only candidates below each running config's core clock).
  std::vector<sim::GpuConfig> ladder_candidates() const {
    std::vector<sim::GpuConfig> out;
    for (const sim::GpuConfig& config : sim::standard_configs()) {
      out.push_back(config);
    }
    std::shared_lock lock(config_mutex);
    for (const auto& [name, config] : registered) out.push_back(config);
    return out;
  }

  /// Options of a fresh Study carrying this session's seeds plus one
  /// thermal scenario. Thermal runs never share the session study: its
  /// result cache is keyed by (workload, input, config) only, and thermal
  /// results depend on the scenario too.
  core::Study::Options thermal_study_options(
      const ThermalOptions& thermal) const {
    core::Study::Options opts = study.options();
    opts.thermal = detail::thermal_to_internal(thermal, ladder_candidates());
    return opts;
  }

  Options options;
  core::Study study;
  mutable std::shared_mutex config_mutex;
  std::map<std::string, sim::GpuConfig> registered;
};

Session::Session() : Session(Options::global()) {}
Session::Session(const Options& options)
    : impl_(std::make_unique<Impl>(options)) {}
Session::~Session() = default;

std::vector<ProgramInfo> Session::programs() const {
  std::vector<ProgramInfo> out;
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    out.push_back(to_dto(*w));
  }
  return out;
}

ProgramInfo Session::program(std::string_view name) const {
  return to_dto(impl_->workload(name));
}

bool Session::has_program(std::string_view name) const {
  return workloads::Registry::instance().find(name) != nullptr;
}

std::vector<std::string> Session::suites() const {
  std::vector<std::string> out;
  for (std::string_view s : workloads::Registry::instance().suites()) {
    out.emplace_back(s);
  }
  return out;
}

MeasurementResult Session::measure(std::string_view program,
                                   std::size_t input_index,
                                   std::string_view config) {
  const workloads::Workload& w = impl_->workload(program);
  return to_dto(impl_->study.measure(w, impl_->checked_input(w, input_index),
                                     impl_->resolve_config(config)));
}

MeasurementResult Session::measure(std::string_view program,
                                   std::size_t input_index,
                                   const GpuConfigSpec& config) {
  const workloads::Workload& w = impl_->workload(program);
  const sim::GpuConfig internal = to_internal(config);
  return to_dto(
      impl_->study.measure(w, impl_->checked_input(w, input_index), internal));
}

MeasurementResult Session::measure(const ExperimentRequest& request) {
  if (request.thermal.enabled) {
    const std::string error = detail::thermal_options_error(request.thermal);
    if (!error.empty()) throw std::invalid_argument(error);
    if (request.sampling.mode != SamplingMode::kExact) {
      throw std::invalid_argument(
          "thermal scenarios are exact-only; disable sampling");
    }
    const workloads::Workload& w = impl_->workload(request.program);
    core::Study study{impl_->thermal_study_options(request.thermal)};
    return to_dto(study.measure(w,
                                impl_->checked_input(w, request.input_index),
                                impl_->resolve_config(request.config)));
  }
  if (request.sampling.mode == SamplingMode::kExact) {
    return measure(request.program, request.input_index, request.config);
  }
  return measure_sampled(request.program, request.input_index, request.config,
                         request.sampling);
}

MeasurementResult Session::measure_sampled(std::string_view program,
                                           std::size_t input_index,
                                           std::string_view config,
                                           const SamplingOptions& sampling) {
  const workloads::Workload& w = impl_->workload(program);
  return to_dto(sample::measure_sampled(
      impl_->study, w, impl_->checked_input(w, input_index),
      impl_->resolve_config(config), to_internal(sampling)));
}

GpuConfigSpec Session::register_config(const GpuConfigSpec& config) {
  const sim::GpuConfig normalized = dvfs::normalized(to_internal(config));
  std::unique_lock lock(impl_->config_mutex);
  const auto it = impl_->registered.find(normalized.name);
  if (it != impl_->registered.end()) {
    const sim::GpuConfig& existing = it->second;
    if (existing.core_mhz != normalized.core_mhz ||
        existing.mem_mhz != normalized.mem_mhz ||
        existing.core_voltage != normalized.core_voltage ||
        existing.mem_voltage != normalized.mem_voltage ||
        existing.ecc != normalized.ecc) {
      throw std::invalid_argument("config name '" + normalized.name +
                                  "' is already registered with different "
                                  "values");
    }
    return to_spec(existing);
  }
  impl_->registered.emplace(normalized.name, normalized);
  return to_spec(normalized);
}

SweepResult Session::sweep(std::string_view program, std::size_t input_index,
                           const SweepOptions& options) {
  const workloads::Workload& w = impl_->workload(program);
  impl_->checked_input(w, input_index);
  const std::string thermal_error =
      detail::thermal_options_error(options.thermal);
  if (!thermal_error.empty()) throw std::invalid_argument(thermal_error);
  const sample::SampleOptions sampling = to_internal(options.sampling);
  // A thermal sweep runs against a scenario-carrying study; the sample
  // layer's exact-only guard then turns every point into an honest exact
  // measurement (sampled == false) regardless of the sampling options.
  std::optional<core::Study> thermal_study;
  if (options.thermal.enabled) {
    thermal_study.emplace(impl_->thermal_study_options(options.thermal));
  }
  core::Study& study = thermal_study ? *thermal_study : impl_->study;
  const dvfs::Sweep swept = dvfs::run_sweep(
      study, w, input_index, detail::sweep_settings_to_internal(options),
      [&](const sim::GpuConfig& config, dvfs::PointStatus&) {
        return sample::measure_sampled(study, w, input_index, config,
                                       sampling);
      });
  return detail::sweep_to_v1(program, input_index, swept);
}

Recommendation Session::recommend(std::string_view program,
                                  std::size_t input_index,
                                  const RecommendOptions& options) {
  return detail::recommend_over(options.objective, options.perf_cap_rel,
                                sweep(program, input_index, options.sweep),
                                options.exclude_throttled);
}

PowerProfile Session::profile(std::string_view program,
                              std::size_t input_index, std::string_view config,
                              std::uint64_t seed) {
  const workloads::Workload& w = impl_->workload(program);
  const sim::GpuConfig internal = impl_->resolve_config(config);
  impl_->checked_input(w, input_index);

  workloads::ExecContext ctx;
  ctx.core_mhz = internal.core_mhz;
  ctx.mem_mhz = internal.mem_mhz;
  ctx.ecc = internal.ecc;
  const auto trace = w.trace(input_index, ctx);
  const auto result = sim::run_trace(sim::k20c(), internal, trace);

  const power::PowerModel& model = impl_->study.power_model();
  const sensor::Waveform waveform = sensor::synthesize(
      result, internal, model,
      internal.ecc ? w.ecc_power_adjustment() : 1.0);
  util::Rng rng{seed};
  const sensor::Sensor sensor;
  const auto samples = sensor.record(waveform, rng);
  const auto m = k20power::analyze(
      samples, k20power::options_for_tail(model.tail_power_w(internal)));

  PowerProfile out;
  out.usable = m.usable;
  out.active_time_s = m.active_time_s;
  out.energy_j = m.energy_j;
  out.avg_power_w = m.avg_power_w;
  out.idle_w = m.idle_w;
  out.threshold_w = m.threshold_w;
  out.peak_w = m.peak_w;
  out.samples.reserve(samples.size());
  for (const sensor::Sample& s : samples) out.samples.push_back({s.t, s.w});
  return out;
}

Attribution Session::attribution(std::string_view program,
                                 std::size_t input_index,
                                 std::string_view config) {
  const workloads::Workload& w = impl_->workload(program);
  const obs::AttributionTable table = impl_->study.attribution(
      w, impl_->checked_input(w, input_index), impl_->resolve_config(config));

  return detail::attribution_to_v1(table);
}

const std::array<std::string_view, kNumEnergyClasses>& energy_class_names() {
  static const std::array<std::string_view, kNumEnergyClasses> names = [] {
    std::array<std::string_view, kNumEnergyClasses> out{};
    for (int c = 0; c < power::kNumInstClasses; ++c) {
      out[static_cast<std::size_t>(c)] =
          power::to_string(static_cast<power::InstClass>(c));
    }
    return out;
  }();
  return names;
}

Attribution detail::attribution_to_v1(const obs::AttributionTable& table) {
  Attribution out;
  out.total_time_s = table.total_time_s;
  out.model_energy_j = table.model_energy_j;
  out.attributed_energy_j = table.attributed_energy_j;
  out.class_energy_j = table.class_energy_j;
  out.static_energy_j = table.static_energy_j;
  out.kernels.reserve(table.kernels.size());
  for (const obs::KernelAttribution& k : table.kernels) {
    AttributionRow row;
    row.kernel = k.kernel;
    row.phases = k.phases;
    row.time_s = k.time_s;
    row.model_energy_j = k.model_energy_j;
    row.avg_power_w = k.avg_power_w;
    row.energy_share = k.energy_share;
    row.energy_j = k.energy_j;
    row.class_energy_j = k.class_energy_j;
    row.static_energy_j = k.static_energy_j;
    out.kernels.push_back(std::move(row));
  }
  std::ostringstream text;
  obs::print(text, table);
  out.text = text.str();
  return out;
}

BatchSummary Session::run_matrix(const std::vector<std::string>& config_names,
                                 bool include_variants) {
  const std::vector<core::ExperimentJob> jobs =
      core::registry_matrix(config_names, include_variants);
  const core::Scheduler scheduler{
      core::Scheduler::Options{impl_->options.threads}};
  const core::BatchReport report = scheduler.run(impl_->study, jobs);

  BatchSummary summary;
  summary.threads = report.threads;
  summary.jobs = report.jobs;
  summary.wall_s = report.wall_s;
  summary.busy_s = report.busy_s();
  summary.hit_rate = report.hit_rate();
  std::ostringstream text;
  report.print(text);
  summary.report_text = text.str();
  summary.entries.reserve(report.results.size());
  for (const core::BatchEntry& entry : report.results) {
    BatchEntry e;
    e.key = entry.key;
    e.program = std::string(entry.job->workload->name());
    e.input_index = entry.job->input_index;
    e.config = entry.job->config->name;
    e.result = to_dto(*entry.result);
    summary.entries.push_back(std::move(e));
  }
  return summary;
}

std::vector<SuiteRatioEntry> Session::suite_ratios(std::string_view suite,
                                                   std::string_view config_a,
                                                   std::string_view config_b) {
  const auto entries =
      core::suite_ratios(impl_->study, suite, impl_->resolve_config(config_a),
                         impl_->resolve_config(config_b));
  std::vector<SuiteRatioEntry> out;
  out.reserve(entries.size());
  for (const core::EntryRatio& e : entries) {
    SuiteRatioEntry entry;
    entry.program = e.program;
    entry.input = e.input;
    entry.ratio = to_dto(e.ratio);
    out.push_back(std::move(entry));
  }
  return out;
}

SuiteRatioBox Session::summarize(std::string_view suite,
                                 const std::vector<SuiteRatioEntry>& entries) {
  SuiteRatioBox box;
  box.suite = std::string(suite);
  std::vector<double> times, energies, powers;
  for (const SuiteRatioEntry& e : entries) {
    if (!e.ratio.usable) continue;
    times.push_back(e.ratio.time);
    energies.push_back(e.ratio.energy);
    powers.push_back(e.ratio.power);
  }
  box.entries = static_cast<int>(times.size());
  if (box.entries > 0) {
    box.time = to_dto(util::box_stats(times));
    box.energy = to_dto(util::box_stats(energies));
    box.power = to_dto(util::box_stats(powers));
  }
  return box;
}

std::vector<double> Session::suite_powers(std::string_view suite,
                                          std::string_view config) {
  return core::suite_powers(impl_->study, suite,
                            impl_->resolve_config(config));
}

void set_observability(bool on) { obs::set_enabled(on); }
bool observability() { return obs::enabled(); }

ObsArtifacts export_observability(const std::string& dir) {
  ObsArtifacts artifacts;
  if (!obs::enabled()) return artifacts;
  artifacts.trace_path = dir + "/obs.trace.json";
  artifacts.metrics_path = dir + "/obs.metrics.txt";
  artifacts.jsonl_path = dir + "/obs.metrics.jsonl";
  {
    std::ofstream out(artifacts.trace_path, std::ios::trunc);
    if (!out) return artifacts;  // written stays false
    obs::Tracer::instance().export_chrome_json(out);
  }
  {
    std::ofstream out(artifacts.metrics_path, std::ios::trunc);
    obs::Registry::instance().export_text(out);
  }
  {
    std::ofstream out(artifacts.jsonl_path, std::ios::trunc);
    obs::Registry::instance().export_jsonl(out);
  }
  artifacts.events = obs::Tracer::instance().event_count();
  artifacts.written = true;
  return artifacts;
}

}  // namespace v1
