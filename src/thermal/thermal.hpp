// Lumped-RC thermal model (DESIGN.md §16): die -> heatsink -> ambient
// two-node network stepped with explicit Euler on the sensor waveform
// timeline, temperature-dependent leakage fed back into the power trace
// via fixed-point iteration, and a throttling governor that clamps the
// clock to the next-lower ladder config when the die crosses a ceiling.
//
// The scenario is off by default; with it off (or with k = 0 and no
// throttle event) the waveform is left byte-untouched, which is what
// pins every pre-thermal golden.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/gpuconfig.hpp"

namespace repro::sensor {
class Waveform;
}

namespace repro::thermal {

/// Thermal resistances (K/W) and capacitances (J/K) of the two-node
/// network. Defaults approximate a K20-class board: a low-mass die
/// tightly coupled to a large heatsink with a slow path to ambient.
struct RcParams {
  double r_die_heatsink_k_per_w = 0.065;
  double c_die_j_per_k = 18.0;
  double r_heatsink_ambient_k_per_w = 0.18;
  double c_heatsink_j_per_k = 450.0;
};

/// Exponential leakage law: P_leak(T) = P_leak(T0) * exp(k * (T - T0)).
/// Only the delta against the nominal (temperature-independent) leakage
/// already inside the power model is injected into the trace.
struct LeakageParams {
  double k_per_c = 0.012;
  double t0_c = 45.0;
};

/// Throttling governor. ceiling_c == 0 disables it. The governor clamps
/// one ladder step down when the die reaches the ceiling and releases one
/// step up only after cooling below ceiling_c - hysteresis_c.
struct GovernorParams {
  double ceiling_c = 0.0;
  double hysteresis_c = 5.0;
};

/// One candidate operating point of the governor ladder. Candidates are
/// absolute: simulate() keeps only those strictly below the running
/// config's core clock and sorts them next-lower-first.
struct LadderConfig {
  std::string name;
  double core_mhz = 0.0;
  double core_voltage = 1.0;
};

/// A full thermal scenario. Off by default; every layer that carries one
/// leaves measurements bit-identical while `enabled` is false.
struct ThermalScenario {
  bool enabled = false;
  double ambient_c = 25.0;
  RcParams rc;
  LeakageParams leakage;
  GovernorParams governor;
  std::vector<LadderConfig> ladder;
  double dt_s = 0.02;        // Euler step; widened for very long traces
  double tolerance_c = 0.01; // fixed-point convergence on max |dT_die|
  int max_iterations = 25;
};

/// One governor clamp: the moment the die hit the ceiling and the ladder
/// config it dropped to. release_t_s < 0 means it never released.
struct ThrottleEvent {
  double t_s = 0.0;
  double temp_c = 0.0;
  double release_t_s = -1.0;
  std::string config_name;
};

/// Result of one thermal simulation. Temperatures are sampled on a
/// uniform grid t_i = i * dt_s (last point clipped to duration_s);
/// cum_extra_j[i] is the integral of (applied - base) power over [0, t_i],
/// so window deltas are O(1) lookups (see window_extra_j).
struct ThermalResult {
  bool enabled = false;
  bool converged = false;
  int iterations = 0;
  double dt_s = 0.0;
  double duration_s = 0.0;
  double peak_die_c = 0.0;
  double peak_heatsink_c = 0.0;
  double leakage_extra_j = 0.0;  // integral of the leakage delta alone
  bool throttled = false;
  std::vector<ThrottleEvent> events;
  std::vector<double> die_temp_c;
  std::vector<double> cum_extra_j;
};

/// Steady-state die-to-ambient resistance: a constant power P settles at
/// T_amb + P * total_resistance (the closed-form law the tests pin).
double total_resistance_k_per_w(const RcParams& rc);

/// Governor ladder for `running`: scenario candidates strictly below the
/// running core clock, next-lower-first, deduplicated by name.
std::vector<LadderConfig> build_ladder(const sim::GpuConfig& running,
                                       const std::vector<LadderConfig>& candidates);

/// Simulates the scenario over `waveform` (the base power trace) and,
/// when leakage feedback or throttling changed the applied power,
/// rewrites the waveform as a step trace on the Euler grid. `static_w`
/// is the configured static floor and `leakage_w` the nominal leakage
/// share at leakage.t0_c (both from the power model); the governor
/// scales the above-static share by V'^2 f' / V^2 f relative to
/// `running`. With k = 0 and no throttle event the waveform is left
/// byte-untouched.
ThermalResult simulate(sensor::Waveform& waveform,
                       const ThermalScenario& scenario,
                       const sim::GpuConfig& running, double static_w,
                       double leakage_w);

/// Integral of (applied - base) power over [a, b] on the result grid.
/// Exact for the step trace simulate() produced; O(1).
double window_extra_j(const ThermalResult& result, double a, double b);

}  // namespace repro::thermal
