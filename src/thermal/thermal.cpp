#include "thermal/thermal.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "sensor/waveform.hpp"

namespace repro::thermal {

namespace {

// Same trapezoid arithmetic as sensor::Waveform::energy_j, so the mean
// base power per Euler step integrates to exactly the waveform energy.
double partial_energy(const sensor::Segment& s, double lo, double hi) {
  const double span = s.t1 - s.t0;
  const auto at = [&](double t) {
    if (span <= 0.0) return s.w0;
    return s.w0 + (t - s.t0) / span * (s.w1 - s.w0);
  };
  return 0.5 * (at(lo) + at(hi)) * (hi - lo);
}

/// Uniform Euler grid over [0, duration]; the final point is clipped to
/// the exact duration so the last step is (0, dt] wide.
std::vector<double> make_grid(double duration, double dt) {
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(duration / dt) + 2);
  for (std::size_t i = 0;; ++i) {
    const double t = static_cast<double>(i) * dt;
    if (t >= duration) {
      grid.push_back(duration);
      break;
    }
    grid.push_back(t);
  }
  return grid;
}

/// Mean base power over each grid step, one in-order sweep over the
/// segments (O(steps + segments)).
std::vector<double> step_mean_power(const sensor::Waveform& waveform,
                                    const std::vector<double>& grid) {
  const auto& segments = waveform.segments();
  std::vector<double> mean(grid.size() - 1, 0.0);
  std::size_t first = 0;
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    const double lo = grid[i];
    const double hi = grid[i + 1];
    while (first < segments.size() && segments[first].t1 <= lo) ++first;
    double energy = 0.0;
    for (std::size_t k = first; k < segments.size(); ++k) {
      const sensor::Segment& s = segments[k];
      if (s.t0 >= hi) break;
      const double a = std::max(lo, s.t0);
      const double b = std::min(hi, s.t1);
      if (b > a) energy += partial_energy(s, a, b);
    }
    mean[i] = hi > lo ? energy / (hi - lo) : 0.0;
  }
  return mean;
}

/// Euler step chosen so the grid stays bounded on long traces (<= 200k
/// steps, ~20k for typical runs) while respecting explicit-Euler
/// stability of the fastest node (dt < RC/2).
double effective_dt(const ThermalScenario& scenario, double duration) {
  const RcParams& rc = scenario.rc;
  double dt = scenario.dt_s > 0.0 ? scenario.dt_s : 0.02;
  dt = std::max(dt, duration / 20000.0);
  const double tau_die = rc.c_die_j_per_k * rc.r_die_heatsink_k_per_w;
  const double tau_hs =
      rc.c_heatsink_j_per_k /
      (1.0 / rc.r_die_heatsink_k_per_w + 1.0 / rc.r_heatsink_ambient_k_per_w);
  const double stable = 0.5 * std::min(tau_die, tau_hs);
  if (stable > 0.0) dt = std::min(dt, stable);
  dt = std::max(dt, duration / 200000.0);
  return dt;
}

}  // namespace

double total_resistance_k_per_w(const RcParams& rc) {
  return rc.r_die_heatsink_k_per_w + rc.r_heatsink_ambient_k_per_w;
}

std::vector<LadderConfig> build_ladder(
    const sim::GpuConfig& running, const std::vector<LadderConfig>& candidates) {
  std::vector<LadderConfig> ladder;
  for (const LadderConfig& c : candidates) {
    if (!(c.core_mhz > 0.0) || !(c.core_voltage > 0.0)) continue;
    if (!(c.core_mhz < running.core_mhz)) continue;
    bool duplicate = false;
    for (const LadderConfig& kept : ladder) {
      if (kept.name == c.name ||
          (kept.core_mhz == c.core_mhz && kept.core_voltage == c.core_voltage)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) ladder.push_back(c);
  }
  std::sort(ladder.begin(), ladder.end(),
            [](const LadderConfig& a, const LadderConfig& b) {
              if (a.core_mhz != b.core_mhz) return a.core_mhz > b.core_mhz;
              return a.name < b.name;
            });
  return ladder;
}

ThermalResult simulate(sensor::Waveform& waveform,
                       const ThermalScenario& scenario,
                       const sim::GpuConfig& running, double static_w,
                       double leakage_w) {
  ThermalResult result;
  result.enabled = scenario.enabled;
  result.peak_die_c = scenario.ambient_c;
  result.peak_heatsink_c = scenario.ambient_c;
  const double duration = waveform.duration();
  if (!scenario.enabled || duration <= 0.0) return result;

  const RcParams& rc = scenario.rc;
  const double dt = effective_dt(scenario, duration);
  const std::vector<double> grid = make_grid(duration, dt);
  const std::size_t n_steps = grid.size() - 1;
  if (n_steps == 0) return result;
  result.dt_s = dt;
  result.duration_s = duration;

  const std::vector<double> base = step_mean_power(waveform, grid);

  // Governor ladder relative to the running operating point; each level
  // scales the above-static power share by V'^2 f' / V^2 f.
  const std::vector<LadderConfig> ladder =
      build_ladder(running, scenario.ladder);
  std::vector<double> scale(ladder.size() + 1, 1.0);
  const double vf0 = running.core_voltage * running.core_voltage *
                     running.core_mhz;
  for (std::size_t l = 0; l < ladder.size(); ++l) {
    scale[l + 1] = vf0 > 0.0 ? ladder[l].core_voltage *
                                   ladder[l].core_voltage *
                                   ladder[l].core_mhz / vf0
                             : 1.0;
  }
  const double ceiling = scenario.governor.ceiling_c;
  const double release =
      ceiling - std::max(scenario.governor.hysteresis_c, 0.0);

  const double k = scenario.leakage.k_per_c;
  const double t0 = scenario.leakage.t0_c;
  const double ambient = scenario.ambient_c;
  const int max_passes = std::max(scenario.max_iterations, 1);

  std::vector<double> t_prev(grid.size(), ambient);
  std::vector<double> t_die(grid.size(), ambient);
  std::vector<double> dleak(n_steps, 0.0);
  std::vector<double> applied(n_steps, 0.0);

  for (int pass = 0; pass < max_passes; ++pass) {
    double td = ambient;
    double th = ambient;
    double peak_die = ambient;
    double peak_hs = ambient;
    double max_delta = 0.0;
    std::size_t level = 0;
    result.events.clear();
    t_die[0] = td;
    for (std::size_t i = 0; i < n_steps; ++i) {
      // Leakage feedback reads the previous pass's trajectory: pass 0
      // injects no delta, which makes k = 0 exact after a single pass.
      dleak[i] =
          pass == 0 ? 0.0 : leakage_w * std::expm1(k * (t_prev[i] - t0));
      const double p =
          static_w + (base[i] - static_w) * scale[level] + dleak[i];
      applied[i] = p;
      const double h = grid[i + 1] - grid[i];
      const double q_dh = (td - th) / rc.r_die_heatsink_k_per_w;
      td += h / rc.c_die_j_per_k * (p - q_dh);
      th += h / rc.c_heatsink_j_per_k *
            (q_dh - (th - ambient) / rc.r_heatsink_ambient_k_per_w);
      t_die[i + 1] = td;
      peak_die = std::max(peak_die, td);
      peak_hs = std::max(peak_hs, th);
      max_delta = std::max(max_delta, std::abs(td - t_prev[i + 1]));
      if (ceiling > 0.0) {
        if (td >= ceiling && level < ladder.size()) {
          ++level;
          ThrottleEvent event;
          event.t_s = grid[i + 1];
          event.temp_c = td;
          event.config_name = ladder[level - 1].name;
          result.events.push_back(std::move(event));
        } else if (level > 0 && td <= release) {
          --level;
          for (auto it = result.events.rbegin(); it != result.events.rend();
               ++it) {
            if (it->release_t_s < 0.0) {
              it->release_t_s = grid[i + 1];
              break;
            }
          }
        }
      }
    }
    result.iterations = pass + 1;
    result.peak_die_c = peak_die;
    result.peak_heatsink_c = peak_hs;
    std::swap(t_prev, t_die);
    if (pass > 0 && max_delta <= scenario.tolerance_c) {
      result.converged = true;
      break;
    }
    if (pass == 0 && k == 0.0) {
      // No feedback: the pass-0 trajectory already is the fixed point.
      result.converged = true;
      break;
    }
  }
  result.die_temp_c = std::move(t_prev);  // final pass (swapped above)
  result.throttled = !result.events.empty();

  result.cum_extra_j.assign(grid.size(), 0.0);
  for (std::size_t i = 0; i < n_steps; ++i) {
    const double h = grid[i + 1] - grid[i];
    result.cum_extra_j[i + 1] =
        result.cum_extra_j[i] + (applied[i] - base[i]) * h;
    result.leakage_extra_j += dleak[i] * h;
  }

  // Only rewrite the trace when the applied power can differ from the
  // base: thermal-off, and k = 0 without a throttle event, leave the
  // waveform byte-untouched (the bit-identity pins).
  if (k != 0.0 || result.throttled) {
    std::vector<sensor::Segment> segments;
    segments.reserve(n_steps);
    for (std::size_t i = 0; i < n_steps; ++i) {
      segments.push_back({grid[i], grid[i + 1], applied[i], applied[i]});
    }
    waveform.assign(std::move(segments));
  }
  return result;
}

double window_extra_j(const ThermalResult& result, double a, double b) {
  if (result.cum_extra_j.size() < 2 || result.dt_s <= 0.0) return 0.0;
  const std::size_t n_steps = result.cum_extra_j.size() - 1;
  const auto cum_at = [&](double t) {
    t = std::clamp(t, 0.0, result.duration_s);
    std::size_t i = std::min(
        static_cast<std::size_t>(t / result.dt_s), n_steps - 1);
    const double lo = static_cast<double>(i) * result.dt_s;
    const double hi = i + 1 == n_steps ? result.duration_s
                                       : lo + result.dt_s;
    const double frac = hi > lo ? std::clamp((t - lo) / (hi - lo), 0.0, 1.0)
                                : 0.0;
    return result.cum_extra_j[i] +
           frac * (result.cum_extra_j[i + 1] - result.cum_extra_j[i]);
  };
  if (b < a) std::swap(a, b);
  return cum_at(b) - cum_at(a);
}

}  // namespace repro::thermal
