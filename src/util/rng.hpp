// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (workload data generation, run-to-run
// variability, sensor noise) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit across runs and platforms.
// We deliberately avoid std::mt19937 + std::*_distribution because their
// outputs are not guaranteed identical across standard-library
// implementations.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace repro::util {

/// SplitMix64: used to expand a single 64-bit seed into stream state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy for hashing (i, j, seed) tuples into
/// reproducible per-element decisions without carrying generator state.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash an (a, b) pair with a seed into a uniform double in [0, 1).
inline double hash_unit(std::uint64_t a, std::uint64_t b, std::uint64_t seed) noexcept {
  const std::uint64_t h = mix64(a * 0x9e3779b97f4a7c15ULL + mix64(b + seed));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// xoshiro256** — fast, high-quality, tiny state. Public-domain algorithm
/// by Blackman & Vigna, re-implemented here.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free variant is overkill here;
    // simple modulo bias is negligible for our n << 2^64 use-cases, but we
    // still use the multiply-shift trick for speed and better uniformity.
    return static_cast<std::uint64_t>((static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal() noexcept {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double sigma) noexcept { return mean + sigma * normal(); }

  /// Log-normal multiplicative jitter with median 1.0.
  double lognormal_jitter(double sigma) noexcept { return std::exp(sigma * normal()); }

  /// Bernoulli draw.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream (for per-run / per-kernel streams).
  Rng fork(std::uint64_t salt) noexcept {
    return Rng{mix64(next_u64() ^ mix64(salt))};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace repro::util
