#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace repro::util {

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return percentile(values, 0.5); }

double mean(std::span<const double> values) {
  assert(!values.empty());
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

BoxStats box_stats(std::span<const double> values) {
  assert(!values.empty());
  BoxStats b;
  b.min = percentile(values, 0.0);
  b.q1 = percentile(values, 0.25);
  b.median = percentile(values, 0.5);
  b.q3 = percentile(values, 0.75);
  b.max = percentile(values, 1.0);
  return b;
}

double relative_spread(std::span<const double> values) {
  assert(!values.empty());
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  if (*lo == 0.0) return 0.0;
  return (*hi - *lo) / *lo;
}

std::size_t median_index(std::span<const double> values) {
  assert(!values.empty());
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  return order[(order.size() - 1) / 2];
}

double geomean(std::span<const double> values) {
  assert(!values.empty());
  double log_sum = 0.0;
  for (const double v : values) {
    assert(v > 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace repro::util
