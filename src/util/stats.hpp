// Order statistics and summary statistics used throughout the study.
//
// The paper reports medians of three repetitions, quartile boxes per
// benchmark suite (Figs. 2-4, 6) and max/average run-to-run variability
// (Table 2); these helpers implement exactly those reductions.
#pragma once

#include <span>
#include <vector>

namespace repro::util {

/// Five-number summary used for the paper's box-and-whisker figures:
/// whiskers at min/max, box at first/third quartile, bar at the median.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// Linear-interpolated percentile (R-7 / Excel convention) of a sample.
/// `p` is in [0, 1]. Precondition: values is non-empty.
double percentile(std::span<const double> values, double p);

/// Median of a sample. Precondition: values is non-empty.
double median(std::span<const double> values);

double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> values);

/// Full five-number summary. Precondition: values is non-empty.
BoxStats box_stats(std::span<const double> values);

/// Relative spread of a repetition set: (max - min) / min.
/// This is the paper's Table 2 "difference between the highest and the
/// lowest of any set of three measurements".
double relative_spread(std::span<const double> values);

/// Index (into the original span) of the median element. For even sizes
/// returns the lower-middle element's index. Used to pick the median *run*
/// so that time/energy/power of one coherent run are reported together.
std::size_t median_index(std::span<const double> values);

/// Geometric mean. Precondition: values non-empty, all > 0.
double geomean(std::span<const double> values);

}  // namespace repro::util
