// Single parsing point of every REPRO_* environment knob (repro::Options,
// include/repro/api.hpp). Call sites read Options::global() instead of
// std::getenv so the set of knobs, their defaults and their documentation
// live in exactly one place.
#include "repro/api.hpp"

#include <cstdlib>
#include <string>

namespace repro {

namespace {

const char* env(const char* name) { return std::getenv(name); }

bool env_flag(const char* name) {
  const char* v = env(name);
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

int env_int(const char* name, int fallback) {
  const char* v = env(name);
  if (v == nullptr) return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = env(name);
  if (v == nullptr) return fallback;
  const long long n = std::atoll(v);
  return n > 0 ? static_cast<std::size_t>(n) : fallback;
}

std::string env_string(const char* name, std::string fallback) {
  const char* v = env(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = env(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<std::uint64_t>(n)
                                          : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = env(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? x : fallback;
}

}  // namespace

Options Options::from_env() {
  Options o;
  o.threads = env_int("REPRO_THREADS", o.threads);
  o.obs = env_flag("REPRO_OBS");
  o.obs_dir = env_string("REPRO_OBS_DIR", o.obs_dir);
  o.bench_json = env_string("REPRO_BENCH_JSON", o.bench_json);
  o.update_golden = env_flag("REPRO_UPDATE_GOLDEN");
  o.perf = env_flag("REPRO_PERF");
  o.serve_threads = env_int("REPRO_SERVE_THREADS", o.serve_threads);
  o.serve_cache_capacity =
      env_size("REPRO_SERVE_CACHE", o.serve_cache_capacity);
  o.serve_queue_limit = env_size("REPRO_SERVE_QUEUE", o.serve_queue_limit);
  o.fault_seed = env_u64("REPRO_FAULT_SEED", o.fault_seed);
  // Sampling knobs validate their documented ranges here, so downstream
  // readers (sample::SampleOptions::from_global) never see garbage.
  const std::string mode = env_string("REPRO_SAMPLE_MODE", o.sample_mode);
  if (mode == "exact" || mode == "stratified" || mode == "systematic") {
    o.sample_mode = mode;
  }
  const double fraction =
      env_double("REPRO_SAMPLE_FRACTION", o.sample_fraction);
  if (fraction > 0.0 && fraction <= 1.0) o.sample_fraction = fraction;
  const double target =
      env_double("REPRO_SAMPLE_TARGET_REL_ERR", o.sample_target_rel_error);
  if (target >= 0.0 && target < 1.0) o.sample_target_rel_error = target;
  o.sample_seed = env_u64("REPRO_SAMPLE_SEED", o.sample_seed);
  return o;
}

const Options& Options::global() {
  static const Options options = from_env();
  return options;
}

}  // namespace repro
