#include "util/tablefmt.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace repro::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double value, int precision) {
  return add(format_fixed(value, precision));
}

TextTable& TextTable::add(long long value) { return add(std::to_string(value)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      } else {
        os << "  " << std::right << std::setw(static_cast<int>(widths[c])) << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_fixed(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string format_ratio(double value) { return format_fixed(value, 2); }

std::string ascii_box(double min, double q1, double med, double q3, double max,
                      double lo, double hi, int width) {
  assert(width >= 10);
  std::string line(static_cast<std::size_t>(width), ' ');
  const auto pos = [&](double v) {
    if (hi <= lo) return 0;
    double frac = (v - lo) / (hi - lo);
    frac = std::clamp(frac, 0.0, 1.0);
    return static_cast<int>(std::lround(frac * (width - 1)));
  };
  const int pmin = pos(min), pq1 = pos(q1), pmed = pos(med), pq3 = pos(q3),
            pmax = pos(max);
  for (int i = pmin; i <= pmax; ++i) line[static_cast<std::size_t>(i)] = '-';
  for (int i = pq1; i <= pq3; ++i) line[static_cast<std::size_t>(i)] = '=';
  line[static_cast<std::size_t>(pmin)] = '|';
  line[static_cast<std::size_t>(pmax)] = '|';
  line[static_cast<std::size_t>(pmed)] = '#';
  return line;
}

}  // namespace repro::util
