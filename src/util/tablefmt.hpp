// Plain-text table and CSV emitters for bench/report output.
//
// The bench binaries regenerate the paper's tables and figure series as
// aligned text (for eyeballing against the paper) and optionally CSV (for
// downstream plotting).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace repro::util {

/// Column-aligned text table. Rows are added as strings; numeric helpers
/// format with fixed precision. Alignment: first column left, rest right.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent `add` calls append cells to it.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add(double value, int precision = 2);
  TextTable& add(long long value);

  /// Renders the table with a header rule and column padding.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
std::string format_fixed(double value, int precision);

/// Formats a ratio like the paper's figures, e.g. "1.15" or "0.78".
std::string format_ratio(double value);

/// Renders an ASCII box-and-whisker line for a BoxStats-like quintuple in
/// [lo, hi] over `width` characters; used by the figure benches to give a
/// visual analogue of the paper's box plots in terminal output.
std::string ascii_box(double min, double q1, double med, double q3, double max,
                      double lo, double hi, int width = 60);

}  // namespace repro::util
