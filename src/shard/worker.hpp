// Worker-process spawning for the shard tier (DESIGN.md §14).
//
// Each worker is a forked child running a private `serve::Service` over
// one end of a unix socketpair — the same JSONL wire `repro-serve` speaks
// on stdin/stdout, so a worker is indistinguishable from a single-process
// server to everything above the transport. The child's Service gets
// `cache_namespace = name`, making the workers' cache key spaces provably
// disjoint (no stale cross-worker hits after rebalancing, ever).
//
// fork() and threads do not mix: spawn every worker BEFORE creating any
// thread in the parent (the Router constructor starts reader threads, so
// spawn first, construct the Router second). The child never returns from
// spawn_worker_process — it serves until its fd closes, destroys the
// Service (draining in-flight work) and _exit(0)s without touching the
// parent's stdio buffers.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "serve/service.hpp"
#include "shard/router.hpp"

namespace repro::shard {

struct WorkerProcess {
  std::string name;
  pid_t pid = -1;
  int fd = -1;  // parent-side socketpair end (owned by the Router)
};

/// Forks one worker serving `options` (with cache_namespace = `name`)
/// over a socketpair. Parent: returns the handle. Child: serves, then
/// _exit(0). A negative pid reports fork/socketpair failure.
WorkerProcess spawn_worker_process(const std::string& name,
                                   serve::Service::Options options);

/// Spawns `count` workers named "w0".."w<count-1>". Call before creating
/// threads. Workers that failed to spawn are omitted (check size()).
std::vector<WorkerProcess> spawn_worker_processes(
    int count, const serve::Service::Options& options);

/// Router endpoint for a spawned worker: the kill hook SIGKILLs the pid
/// (the crash the chaos layer wants — no draining, no goodbye).
WorkerEndpoint endpoint_for(const WorkerProcess& worker);

/// Reaps every child (waitpid). Call after the Router is destroyed (its
/// destructor closes the transports, which is what makes workers exit).
void reap_workers(const std::vector<WorkerProcess>& workers);

}  // namespace repro::shard
