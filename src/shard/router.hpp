// Shard router: consistent-hash fan-out of the JSONL wire across worker
// processes (DESIGN.md §14).
//
// The router owns one full-duplex JSONL stream per worker (unix socketpair
// to a forked `serve::Service` process in the tools; an in-process thread
// in tests) and a HashRing mapping `experiment_key`s to workers. Requests
// are written to the owner worker and the worker's responses are matched
// FIFO — the same responses-in-request-order contract every serve stream
// already guarantees — so the router never rewrites a response line:
// worker bytes pass through verbatim, which is what makes the sharded
// tier byte-identical to a single worker.
//
// Failure model: a worker whose stream breaks (EOF, write failure, or a
// fault-plan `kWorkerKill` drawn at routing time) is removed from the
// ring. Its in-flight requests fail over: the router re-resolves the
// owner on the shrunk ring and resubmits, up to `max_reroutes` times, so
// the client sees either the bit-identical recomputed response or a
// truthful `failed` status — never a hang and never a half-written line.
// Hot keys (routed at least `hot_key_threshold` times) that the dead
// worker owned are warm-handed to their new owners: the router replays
// the request into the new owner's cache asynchronously (`drain()` awaits
// those prefetches). No cache bytes move between workers — each worker's
// cache namespace stays disjoint by construction (Service cache_namespace).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/stream.hpp"
#include "serve/wire.hpp"
#include "shard/ring.hpp"

namespace repro::shard {

/// One worker transport as the router sees it: a name (stable, used for
/// ring placement, fault draws and cache namespacing), a full-duplex fd
/// carrying the JSONL wire, and a kill hook the chaos layer uses to take
/// the worker down abruptly (SIGKILL for processes, socket shutdown for
/// in-process test workers).
struct WorkerEndpoint {
  std::string name;
  int fd = -1;
  std::function<void()> kill;
};

class Router {
 public:
  struct Options {
    int virtual_nodes = 64;
    /// A key routed at least this many times is "hot" and eligible for
    /// warm handoff when its owner dies. 0 disables handoff.
    std::uint64_t hot_key_threshold = 2;
    /// Reroute attempts after a worker death before reporting `failed`.
    int max_reroutes = 4;
  };

  /// Takes ownership of the endpoints' fds (closed on destruction).
  Router(Options options, std::vector<WorkerEndpoint> endpoints);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one raw wire line and returns the response line (worker
  /// passthrough, or router-generated for health/topology/metrics/parse
  /// errors). `line_number` supplies the id of id-less requests,
  /// mirroring the single-worker serve loop. Thread-safe; blocks until
  /// the response is terminal.
  std::string route_line(std::string_view line, std::uint64_t line_number);

  /// Serves one client stream through the tier: the shard-tier analogue
  /// of serve::serve_lines, with the same pipelined responses-in-request-
  /// order contract and the same inbound wire-fault filtering.
  void route_lines(const std::function<bool(std::string&)>& next_line,
                   const std::function<bool(const std::string&)>& write_line,
                   const serve::StreamHooks& hooks = {});
  void route_fd(int fd, const serve::StreamHooks& hooks = {});

  serve::RouterHealth health() const;
  serve::TopologySnapshot topology() const;

  /// Name of the live worker owning `key` (empty when none are left).
  std::string owner_of(std::string_view key) const;

  /// Kills `name`'s transport (chaos hook; also used by the fault plan's
  /// kWorkerKill). The death is then observed asynchronously through the
  /// broken stream exactly as a real crash would be. False when the
  /// worker is already dead or unknown.
  bool kill_worker(std::string_view name);

  /// Waits until every outstanding warm-handoff prefetch resolved.
  void drain();

 private:
  struct Call;
  struct Worker;
  struct RoutedRequest;

  Worker* find_worker(std::string_view name) const;
  void finish_call(const std::shared_ptr<Call>& call, bool ok,
                   std::string line);
  /// Registers a call and writes `line` to the worker. Returns nullptr
  /// when the worker is (or just went) dead.
  std::shared_ptr<Call> submit(Worker& worker, const std::string& line,
                               bool discard);
  /// Resolves the live owner, applies the fault plan's worker-kill draw,
  /// and submits one attempt. Returns nullptr when no worker is left.
  std::shared_ptr<Call> try_dispatch(const RoutedRequest& routed);
  /// Waits for `call`, rerouting on worker death up to max_reroutes;
  /// returns the final response line (a truthful `failed` at worst).
  std::string finish(const RoutedRequest& routed, std::shared_ptr<Call> call);
  /// Classifies one inbound line. True: `routed` must be dispatched.
  /// False: `immediate` already holds the full response.
  bool classify(std::string_view line, std::uint64_t line_number,
                std::string& immediate, RoutedRequest& routed);
  void reader_loop(Worker& worker);
  void on_worker_death(Worker& worker);
  void warm_handoff(std::string_view dead_worker);

  Options options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> shutting_down_{false};

  mutable std::mutex topology_mutex_;
  HashRing ring_;
  std::uint64_t epoch_ = 0;
  std::uint64_t rebalances_ = 0;

  struct HotEntry {
    std::uint64_t count = 0;
    std::string owner;         // live owner at last route
    std::string request_line;  // canonical line replayed on handoff
  };
  mutable std::mutex hot_mutex_;
  std::unordered_map<std::string, HotEntry> hot_;

  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::uint64_t handoff_outstanding_ = 0;

  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> worker_kills_{0};
  std::atomic<std::uint64_t> handoff_keys_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace repro::shard
