#include "shard/ring.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace repro::shard {

namespace {

// FNV-1a over the bytes, matching fault.cpp: the ring is a printed,
// replayable contract and must not depend on std::hash.
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

HashRing::HashRing(int virtual_nodes)
    : virtual_nodes_(virtual_nodes < 1 ? 1 : virtual_nodes) {}

std::uint64_t HashRing::hash_key(std::string_view key) noexcept {
  return util::mix64(fnv1a(key) ^ 0x517cc1b727220a95ULL);
}

std::uint64_t HashRing::point(std::string_view worker, int replica) noexcept {
  return util::mix64(fnv1a(worker) +
                     static_cast<std::uint64_t>(replica) *
                         0x9e3779b97f4a7c15ULL);
}

void HashRing::add(std::string_view name) {
  if (contains(name)) return;
  workers_.emplace_back(name);
  std::sort(workers_.begin(), workers_.end());
  for (int replica = 0; replica < virtual_nodes_; ++replica) {
    // On the astronomically unlikely point collision, the lexically
    // earlier worker wins deterministically (insert keeps the incumbent;
    // emplace below only fills empty slots — resolve explicitly instead).
    const std::uint64_t position = point(name, replica);
    auto [it, inserted] = points_.emplace(position, std::string(name));
    if (!inserted && std::string_view(it->second) > name) {
      it->second = std::string(name);
    }
  }
}

bool HashRing::remove(std::string_view name) {
  const auto worker =
      std::find(workers_.begin(), workers_.end(), std::string(name));
  if (worker == workers_.end()) return false;
  workers_.erase(worker);
  for (auto it = points_.begin(); it != points_.end();) {
    it = it->second == name ? points_.erase(it) : std::next(it);
  }
  // Re-add survivors' points that a collision may have displaced.
  for (const std::string& survivor : workers_) {
    for (int replica = 0; replica < virtual_nodes_; ++replica) {
      points_.emplace(point(survivor, replica), survivor);
    }
  }
  return true;
}

bool HashRing::contains(std::string_view name) const {
  return std::find(workers_.begin(), workers_.end(), std::string(name)) !=
         workers_.end();
}

std::vector<std::string> HashRing::workers() const { return workers_; }

std::string_view HashRing::owner(std::string_view key) const {
  if (points_.empty()) return {};
  auto it = points_.lower_bound(hash_key(key));
  if (it == points_.end()) it = points_.begin();  // wrap past the top
  return it->second;
}

std::map<std::string, double> HashRing::shares() const {
  std::map<std::string, double> shares;
  for (const std::string& worker : workers_) shares[worker] = 0.0;
  if (points_.empty()) return shares;
  // The arc (previous point, point] belongs to the point's worker; the
  // wraparound arc from the last point through 0 to the first point
  // belongs to the first point's worker.
  constexpr double kSpace = 18446744073709551616.0;  // 2^64
  std::uint64_t previous = points_.rbegin()->first;
  for (const auto& [position, worker] : points_) {
    const std::uint64_t arc = position - previous;  // mod 2^64 wraps right
    shares[worker] +=
        points_.size() == 1 ? 1.0 : static_cast<double>(arc) / kSpace;
    previous = position;
  }
  return shares;
}

}  // namespace repro::shard
