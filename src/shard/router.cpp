#include "shard/router.hpp"

#include <sys/socket.h>

#include <unistd.h>

#include <utility>
#include <variant>

#include "core/study.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repro::shard {

namespace {

void bump(const char* name) {
  if (!obs::enabled()) return;
  obs::Registry::instance().counter(name).add();
}

serve::Response invalid_response(std::uint64_t id, std::string error) {
  serve::Response response;
  response.id = id;
  response.status = serve::Status::kInvalidRequest;
  response.error = std::move(error);
  return response;
}

}  // namespace

/// A routed request-response exchange in flight on one worker stream.
/// Resolved by the worker's reader thread (FIFO) or failed wholesale when
/// the worker dies.
struct Router::Call {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  bool discard = false;  // warm-handoff prefetch: response is dropped
  std::string line;
};

struct Router::Worker {
  WorkerEndpoint endpoint;
  std::atomic<bool> alive{true};
  /// Serializes write+enqueue so the pending FIFO matches wire order.
  std::mutex write_mutex;
  std::mutex pending_mutex;
  std::deque<std::shared_ptr<Call>> pending;
  std::thread reader;
  std::atomic<std::uint64_t> routed{0};
};

/// One classified client request bound for a worker.
struct Router::RoutedRequest {
  /// What kind of line this is — picks the failure-response format and
  /// gates hot-key tracking (only plain measurements are handoff
  /// candidates: the other kinds are analysis endpoints).
  enum Kind { kMeasure, kAttribution, kSweep, kRecommend };
  Kind kind = kMeasure;
  std::uint64_t id = 0;
  std::string key;   // canonical experiment key (ring position)
  std::string line;  // canonical wire line forwarded to the owner
};

Router::Router(Options options, std::vector<WorkerEndpoint> endpoints)
    : options_(options), ring_(options.virtual_nodes) {
  for (WorkerEndpoint& endpoint : endpoints) {
    auto worker = std::make_unique<Worker>();
    worker->endpoint = std::move(endpoint);
    ring_.add(worker->endpoint.name);
    workers_.push_back(std::move(worker));
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    worker->reader = std::thread([this, w = worker.get()] { reader_loop(*w); });
  }
}

Router::~Router() {
  shutting_down_.store(true, std::memory_order_release);
  for (const std::unique_ptr<Worker>& worker : workers_) {
    ::shutdown(worker->endpoint.fd, SHUT_RDWR);
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->reader.joinable()) worker->reader.join();
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    ::close(worker->endpoint.fd);
  }
}

Router::Worker* Router::find_worker(std::string_view name) const {
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->endpoint.name == name) return worker.get();
  }
  return nullptr;
}

void Router::finish_call(const std::shared_ptr<Call>& call, bool ok,
                         std::string line) {
  {
    std::lock_guard lock(call->mutex);
    call->done = true;
    call->ok = ok;
    call->line = std::move(line);
  }
  call->cv.notify_all();
  if (call->discard) {
    {
      std::lock_guard lock(drain_mutex_);
      --handoff_outstanding_;
    }
    drain_cv_.notify_all();
  }
}

std::shared_ptr<Router::Call> Router::submit(Worker& worker,
                                             const std::string& line,
                                             bool discard) {
  auto call = std::make_shared<Call>();
  call->discard = discard;
  bool write_failed = false;
  {
    std::lock_guard write_lock(worker.write_mutex);
    if (!worker.alive.load(std::memory_order_acquire)) return nullptr;
    {
      std::lock_guard pending_lock(worker.pending_mutex);
      worker.pending.push_back(call);
    }
    std::string framed = line;
    framed += '\n';
    write_failed =
        !serve::fd_write_all(worker.endpoint.fd, framed.data(), framed.size());
  }
  // A failed write IS a worker death: fail every pending call (ours
  // included) and rebalance. The caller sees the call resolve !ok and
  // reroutes — same path as an asynchronously observed crash.
  if (write_failed) on_worker_death(worker);
  return call;
}

void Router::reader_loop(Worker& worker) {
  serve::FdLineReader reader(worker.endpoint.fd);
  std::string line;
  while (reader.next(line)) {
    std::shared_ptr<Call> call;
    {
      std::lock_guard lock(worker.pending_mutex);
      if (!worker.pending.empty()) {
        call = std::move(worker.pending.front());
        worker.pending.pop_front();
      }
    }
    // An unsolicited line (no pending call) is dropped: it can only
    // follow a stream desync, and failing loudly here would break the
    // passthrough contract for the calls that are still matched.
    if (call != nullptr) finish_call(call, true, std::move(line));
  }
  on_worker_death(worker);
}

void Router::on_worker_death(Worker& worker) {
  if (worker.alive.exchange(false, std::memory_order_acq_rel) == false) {
    return;  // already handled (write failure + reader EOF both land here)
  }
  const bool shutting_down = shutting_down_.load(std::memory_order_acquire);
  if (!shutting_down) {
    std::lock_guard lock(topology_mutex_);
    ring_.remove(worker.endpoint.name);
    ++epoch_;
    ++rebalances_;
  }
  std::deque<std::shared_ptr<Call>> orphaned;
  {
    std::lock_guard lock(worker.pending_mutex);
    orphaned.swap(worker.pending);
  }
  for (const std::shared_ptr<Call>& call : orphaned) {
    finish_call(call, false, {});
  }
  if (!shutting_down) {
    bump("shard.worker_deaths");
    warm_handoff(worker.endpoint.name);
  }
}

void Router::warm_handoff(std::string_view dead_worker) {
  if (options_.hot_key_threshold == 0) return;
  struct Handoff {
    std::string owner;
    std::string line;
  };
  std::vector<Handoff> handoffs;
  {
    std::lock_guard lock(hot_mutex_);
    for (auto& [key, entry] : hot_) {
      if (entry.owner != dead_worker ||
          entry.count < options_.hot_key_threshold) {
        continue;
      }
      const std::string new_owner = owner_of(key);
      if (new_owner.empty()) continue;  // nobody left to warm
      entry.owner = new_owner;
      handoffs.push_back(Handoff{new_owner, entry.request_line});
    }
  }
  for (const Handoff& handoff : handoffs) {
    Worker* worker = find_worker(handoff.owner);
    if (worker == nullptr) continue;
    {
      std::lock_guard lock(drain_mutex_);
      ++handoff_outstanding_;
    }
    const std::shared_ptr<Call> call =
        submit(*worker, handoff.line, /*discard=*/true);
    if (call == nullptr) {
      {
        std::lock_guard lock(drain_mutex_);
        --handoff_outstanding_;
      }
      drain_cv_.notify_all();
      continue;
    }
    handoff_keys_.fetch_add(1, std::memory_order_relaxed);
    bump("shard.handoff_keys");
  }
}

void Router::drain() {
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [this] { return handoff_outstanding_ == 0; });
}

std::string Router::owner_of(std::string_view key) const {
  std::lock_guard lock(topology_mutex_);
  return std::string(ring_.owner(key));
}

bool Router::kill_worker(std::string_view name) {
  Worker* worker = find_worker(name);
  if (worker == nullptr || !worker->alive.load(std::memory_order_acquire)) {
    return false;
  }
  worker_kills_.fetch_add(1, std::memory_order_relaxed);
  bump("shard.worker_kills");
  if (worker->endpoint.kill) worker->endpoint.kill();
  return true;
}

std::shared_ptr<Router::Call> Router::try_dispatch(
    const RoutedRequest& routed) {
  for (;;) {
    std::string owner;
    {
      std::lock_guard lock(topology_mutex_);
      owner = std::string(ring_.owner(routed.key));
    }
    if (owner.empty()) return nullptr;  // every worker is gone
    // Chaos across the process boundary: the fault plan may decree that
    // the owner dies the moment this key routes to it. The kill is
    // delivered through the transport (SIGKILL / socket shutdown) and the
    // death is observed like any real crash — this request then either
    // reroutes to the shrunk ring or fails truthfully.
    if (const fault::FaultPlan* plan = fault::active()) {
      const fault::Fault fault = plan->draw(fault::Site::kWorker, routed.key);
      if (fault.kind == fault::Kind::kWorkerKill &&
          kill_worker(owner)) {
        plan->record_applied(fault::Site::kWorker, routed.key);
      }
    }
    Worker* worker = find_worker(owner);
    if (worker == nullptr) return nullptr;
    const std::shared_ptr<Call> call = submit(*worker, routed.line, false);
    // A nullptr here means the owner died between the ring lookup and the
    // submit; the ring has already (or is about to be) rebalanced, so the
    // re-resolve sees a different owner. Each pass consumes one worker
    // death, so the loop terminates.
    if (call == nullptr) continue;
    routed_.fetch_add(1, std::memory_order_relaxed);
    worker->routed.fetch_add(1, std::memory_order_relaxed);
    bump("shard.routed");
    if (routed.kind == RoutedRequest::kMeasure &&
        options_.hot_key_threshold > 0) {
      std::lock_guard lock(hot_mutex_);
      HotEntry& entry = hot_[routed.key];
      ++entry.count;
      entry.owner = owner;
      entry.request_line = routed.line;
    }
    return call;
  }
}

std::string Router::finish(const RoutedRequest& routed,
                           std::shared_ptr<Call> call) {
  for (int attempt = 0;; ++attempt) {
    if (call == nullptr) break;  // no live workers remain
    bool ok = false;
    std::string line;
    {
      std::unique_lock lock(call->mutex);
      call->cv.wait(lock, [&] { return call->done; });
      ok = call->ok;
      line = std::move(call->line);
    }
    if (ok) return line;
    rerouted_.fetch_add(1, std::memory_order_relaxed);
    bump("shard.rerouted");
    if (attempt >= options_.max_reroutes) break;
    call = try_dispatch(routed);
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  bump("shard.failed");
  const std::string_view lost = "shard worker lost; reroute budget exhausted";
  switch (routed.kind) {
    case RoutedRequest::kAttribution:
      return format_attribution_error_line(serve::Status::kFailed, routed.key,
                                           lost);
    case RoutedRequest::kSweep:
      return format_sweep_error_line(routed.id, serve::Status::kFailed, lost);
    case RoutedRequest::kRecommend:
      return format_recommend_error_line(routed.id, serve::Status::kFailed,
                                         lost);
    case RoutedRequest::kMeasure:
      break;
  }
  serve::Response response;
  response.id = routed.id;
  response.status = serve::Status::kFailed;
  response.key = routed.key;
  response.error = std::string(lost);
  return format_response_line(response);
}

bool Router::classify(std::string_view line, std::uint64_t line_number,
                      std::string& immediate, RoutedRequest& routed) {
  if (serve::is_health_request(line)) {
    immediate = format_router_health_line(health());
    return false;
  }
  if (serve::is_topology_request(line)) {
    immediate = format_topology_line(topology());
    return false;
  }
  if (serve::is_metrics_request(line)) {
    immediate =
        serve::format_metrics_line(obs::Registry::instance().snapshot());
    return false;
  }
  if (serve::is_attribution_request(line)) {
    v1::ExperimentRequest request;
    std::string error;
    if (!serve::parse_attribution_request(line, request, error)) {
      immediate = format_attribution_error_line(serve::Status::kInvalidRequest,
                                                "", error);
      return false;
    }
    routed.kind = RoutedRequest::kAttribution;
    routed.id = request.id;
    routed.key = core::experiment_key(request.program, request.input_index,
                                      request.config);
    routed.line = std::string(line);  // workers re-parse the original form
    return true;
  }
  if (serve::is_sweep_request(line)) {
    serve::SweepRequest request;
    std::string error;
    if (!serve::parse_sweep_request(line, request, error)) {
      immediate = format_sweep_error_line(
          line_number, serve::Status::kInvalidRequest, error);
      return false;
    }
    if (request.id == 0) request.id = line_number;
    routed.kind = RoutedRequest::kSweep;
    routed.id = request.id;
    // The whole grid routes as one unit: the ring key is derived from the
    // (program, input) pair under a fixed "sweep" config slot, so a
    // sweep's per-point cache entries all land on one worker and repeat
    // sweeps of the same pair hit that worker's warm cache.
    routed.key = core::experiment_key(request.program, request.input_index,
                                      "sweep");
    // Canonical re-encode (not the original bytes): sweep responses echo
    // the id, so an id-less request must reach the worker carrying the id
    // the router assigned, exactly like the measure path.
    routed.line = serve::format_sweep_request_line(request);
    return true;
  }
  if (serve::is_recommend_request(line)) {
    serve::RecommendRequest request;
    std::string error;
    if (!serve::parse_recommend_request(line, request, error)) {
      immediate = format_recommend_error_line(
          line_number, serve::Status::kInvalidRequest, error);
      return false;
    }
    if (request.id == 0) request.id = line_number;
    routed.kind = RoutedRequest::kRecommend;
    routed.id = request.id;
    // Same ring slot as a sweep of the pair: recommendations re-use the
    // sweep-warmed point cache of that worker.
    routed.key = core::experiment_key(request.program, request.input_index,
                                      "sweep");
    routed.line = serve::format_recommend_request_line(request);
    return true;
  }
  v1::ExperimentRequest request;
  std::string error;
  if (!serve::parse_request_line(line, request, error)) {
    immediate =
        format_response_line(invalid_response(line_number, std::move(error)));
    return false;
  }
  // Mirror the single-worker serve loop: id-less requests take the client
  // stream's line number, so sharded response bytes match byte for byte.
  if (request.id == 0) request.id = line_number;
  routed.kind = RoutedRequest::kMeasure;
  routed.id = request.id;
  routed.key = core::experiment_key(request.program, request.input_index,
                                    request.config);
  routed.line = serve::format_request_line(request);
  return true;
}

std::string Router::route_line(std::string_view line,
                               std::uint64_t line_number) {
  std::string immediate;
  RoutedRequest routed;
  if (!classify(line, line_number, immediate, routed)) return immediate;
  return finish(routed, try_dispatch(routed));
}

void Router::route_lines(
    const std::function<bool(std::string&)>& next_line,
    const std::function<bool(const std::string&)>& write_line,
    const serve::StreamHooks& hooks) {
  // Same pipelined shape as serve::serve_lines: the front loop classifies
  // and submits, the writer thread waits (and reroutes) in request order.
  struct Slot {
    std::string immediate;
    bool dispatched = false;
    RoutedRequest routed;
    std::shared_ptr<Call> call;
  };
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Slot> slots;
  bool done = false;

  std::thread writer([&] {
    bool peer_alive = true;
    for (;;) {
      Slot slot;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return done || !slots.empty(); });
        if (slots.empty()) return;
        slot = std::move(slots.front());
        slots.pop_front();
      }
      const std::string line = slot.dispatched
                                   ? finish(slot.routed, std::move(slot.call))
                                   : std::move(slot.immediate);
      if (peer_alive) peer_alive = write_line(line);
    }
  });

  std::string line;
  std::uint64_t line_number = 0;
  while (next_line(line)) {
    ++line_number;
    if (line.empty()) continue;
    line = fault::filter_wire_line("inbound", line);
    if (line.empty()) continue;
    Slot slot;
    if (classify(line, line_number, slot.immediate, slot.routed)) {
      slot.dispatched = true;
      slot.call = try_dispatch(slot.routed);
    }
    {
      std::lock_guard lock(mutex);
      slots.push_back(std::move(slot));
    }
    cv.notify_one();
    if (hooks.on_line) hooks.on_line();
  }
  {
    std::lock_guard lock(mutex);
    done = true;
  }
  cv.notify_one();
  writer.join();
}

void Router::route_fd(int fd, const serve::StreamHooks& hooks) {
  serve::FdLineReader reader(fd);
  route_lines([&](std::string& line) { return reader.next(line); },
              [&](const std::string& line) {
                return serve::fd_write_all(fd, line.c_str(), line.size()) &&
                       serve::fd_write_all(fd, "\n", 1);
              },
              hooks);
}

serve::RouterHealth Router::health() const {
  serve::RouterHealth health;
  health.workers = workers_.size();
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) ++health.alive;
  }
  health.accepting = health.alive > 0;
  {
    std::lock_guard lock(topology_mutex_);
    health.epoch = epoch_;
  }
  health.routed = routed_.load(std::memory_order_relaxed);
  health.rerouted = rerouted_.load(std::memory_order_relaxed);
  health.worker_kills = worker_kills_.load(std::memory_order_relaxed);
  health.handoff_keys = handoff_keys_.load(std::memory_order_relaxed);
  health.failed = failed_.load(std::memory_order_relaxed);
  return health;
}

serve::TopologySnapshot Router::topology() const {
  serve::TopologySnapshot topology;
  std::map<std::string, double> shares;
  {
    std::lock_guard lock(topology_mutex_);
    topology.epoch = epoch_;
    topology.rebalances = rebalances_;
    shares = ring_.shares();
  }
  topology.workers = workers_.size();
  topology.handoff_keys = handoff_keys_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Worker>& worker : workers_) {
    serve::TopologyWorker row;
    row.name = worker->endpoint.name;
    row.alive = worker->alive.load(std::memory_order_acquire);
    row.virtual_nodes = row.alive ? ring_.virtual_nodes() : 0;
    const auto share = shares.find(row.name);
    row.owned_share = share == shares.end() ? 0.0 : share->second;
    row.routed = worker->routed.load(std::memory_order_relaxed);
    if (row.alive) ++topology.alive;
    topology.ring.push_back(std::move(row));
  }
  return topology;
}

}  // namespace repro::shard
