#include "shard/worker.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "serve/stream.hpp"

namespace repro::shard {

WorkerProcess spawn_worker_process(const std::string& name,
                                   serve::Service::Options options) {
  WorkerProcess worker;
  worker.name = name;
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::perror("shard: socketpair");
    return worker;
  }
  std::fflush(stdout);  // the child must not replay buffered parent output
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("shard: fork");
    ::close(sv[0]);
    ::close(sv[1]);
    return worker;
  }
  if (pid == 0) {
    ::close(sv[0]);
    {
      options.cache_namespace = name;
      serve::Service service(std::move(options));
      serve::serve_fd(service, sv[1]);
      ::close(sv[1]);
      // Service destructor drains in-flight work before the exit below.
    }
    ::_exit(0);
  }
  ::close(sv[1]);
  worker.pid = pid;
  worker.fd = sv[0];
  return worker;
}

std::vector<WorkerProcess> spawn_worker_processes(
    int count, const serve::Service::Options& options) {
  std::vector<WorkerProcess> workers;
  for (int i = 0; i < count; ++i) {
    WorkerProcess worker =
        spawn_worker_process("w" + std::to_string(i), options);
    if (worker.pid > 0) workers.push_back(std::move(worker));
  }
  return workers;
}

WorkerEndpoint endpoint_for(const WorkerProcess& worker) {
  WorkerEndpoint endpoint;
  endpoint.name = worker.name;
  endpoint.fd = worker.fd;
  const pid_t pid = worker.pid;
  endpoint.kill = [pid] {
    if (pid > 0) ::kill(pid, SIGKILL);
  };
  return endpoint;
}

void reap_workers(const std::vector<WorkerProcess>& workers) {
  for (const WorkerProcess& worker : workers) {
    if (worker.pid <= 0) continue;
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
  }
}

}  // namespace repro::shard
