// Consistent-hash ring over named workers (DESIGN.md §14).
//
// Each worker holds `virtual_nodes` points on a 64-bit ring; a key is
// owned by the worker whose point is the first at or clockwise after the
// key's hash. Virtual nodes smooth ownership (the share spread at 64
// points per worker is pinned by a test), and removing one worker moves
// only the arcs that worker owned — every other key keeps its owner,
// which is the minimal-disruption property the warm-handoff protocol
// relies on.
//
// Hashing is FNV-1a + mix64 over explicit bytes — never std::hash — so
// the router, the workers and any client compute identical ownership for
// the same topology: the routing table is a cross-process contract, like
// the fault schedule.
//
// Not thread-safe; shard::Router guards its ring with the topology lock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace repro::shard {

class HashRing {
 public:
  explicit HashRing(int virtual_nodes = 64);

  /// Adds `name` with the configured virtual nodes. Adding a present
  /// worker is a no-op (points are a pure function of the name).
  void add(std::string_view name);
  /// Removes `name` and all its points. False when absent.
  bool remove(std::string_view name);
  bool contains(std::string_view name) const;

  std::size_t size() const noexcept { return workers_.size(); }
  bool empty() const noexcept { return workers_.empty(); }
  /// Sorted live worker names.
  std::vector<std::string> workers() const;

  /// Owner of `key`: the first point at or after hash(key), wrapping to
  /// the ring start. Empty string_view when the ring is empty. The view
  /// stays valid until that worker is removed.
  std::string_view owner(std::string_view key) const;

  /// Fraction of the 64-bit hash space each live worker owns (sums to 1).
  std::map<std::string, double> shares() const;

  int virtual_nodes() const noexcept { return virtual_nodes_; }

  /// Position of `key` on the ring (exposed for tests; the schedule
  /// contract is "owner(key) is a pure function of the live worker set").
  static std::uint64_t hash_key(std::string_view key) noexcept;
  /// Position of `worker`'s `replica`-th virtual node.
  static std::uint64_t point(std::string_view worker, int replica) noexcept;

 private:
  int virtual_nodes_;
  // point -> index into workers_ storage; std::map keeps ring order.
  std::map<std::uint64_t, std::string> points_;
  std::vector<std::string> workers_;
};

}  // namespace repro::shard
