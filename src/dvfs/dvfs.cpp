#include "dvfs/dvfs.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "power/model.hpp"

namespace repro::dvfs {
namespace {

/// Shortest round-trip decimal form of `value` ("540", "0.93"): injective
/// over distinct doubles, readable for the round numbers grids are built
/// from.
std::string format_value(double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

[[noreturn]] void fail(std::string message) {
  throw std::invalid_argument(std::move(message));
}

struct Anchor {
  double mhz;
  double voltage;
};

/// Piecewise-linear through the anchors, end-segment slope outside,
/// clamped to the validation voltage range. Exact at the anchors (the
/// interpolation weight is exactly 0 or 1 there).
double interpolate(const Anchor* anchors, std::size_t count, double mhz) {
  std::size_t seg = 0;  // segment [seg, seg + 1] to evaluate
  while (seg + 2 < count && mhz > anchors[seg + 1].mhz) ++seg;
  const Anchor& a = anchors[seg];
  const Anchor& b = anchors[seg + 1];
  const double t = (mhz - a.mhz) / (b.mhz - a.mhz);
  const double v = a.voltage + t * (b.voltage - a.voltage);
  return std::min(kMaxVoltage, std::max(kMinVoltage, v));
}

bool same_values(const sim::GpuConfig& a, const sim::GpuConfig& b) {
  return a.core_mhz == b.core_mhz && a.mem_mhz == b.mem_mhz &&
         a.core_voltage == b.core_voltage && a.mem_voltage == b.mem_voltage &&
         a.ecc == b.ecc;
}

void check_range(std::string_view field, double value, double min,
                 double max) {
  if (!std::isfinite(value) || value < min || value > max) {
    fail(std::string(field) + " " + format_value(value) +
         " out of range [" + format_value(min) + ", " + format_value(max) +
         "]");
  }
}

void validate_values(const sim::GpuConfig& config) {
  check_range("core_mhz", config.core_mhz, kMinCoreMhz, kMaxCoreMhz);
  check_range("mem_mhz", config.mem_mhz, kMinMemMhz, kMaxMemMhz);
  check_range("core_voltage", config.core_voltage, kMinVoltage, kMaxVoltage);
  check_range("mem_voltage", config.mem_voltage, kMinVoltage, kMaxVoltage);
}

}  // namespace

std::string_view to_string(Objective objective) {
  switch (objective) {
    case Objective::kMinEnergy: return "min_energy";
    case Objective::kMinEdp: return "min_edp";
    case Objective::kMinEd2p: return "min_ed2p";
    case Objective::kPerfCap: return "perf_cap";
  }
  return "min_edp";
}

bool parse_objective(std::string_view text, Objective& out) {
  if (text == "min_energy") out = Objective::kMinEnergy;
  else if (text == "min_edp") out = Objective::kMinEdp;
  else if (text == "min_ed2p") out = Objective::kMinEd2p;
  else if (text == "perf_cap") out = Objective::kPerfCap;
  else return false;
  return true;
}

double core_voltage_rule(double core_mhz) {
  static constexpr Anchor kAnchors[] = {
      {324.0, 0.85}, {614.0, 0.93}, {705.0, 1.00}};
  return interpolate(kAnchors, 3, core_mhz);
}

double mem_voltage_rule(double mem_mhz) {
  static constexpr Anchor kAnchors[] = {{324.0, 0.88}, {2600.0, 1.00}};
  return interpolate(kAnchors, 2, mem_mhz);
}

std::string canonical_name(const sim::GpuConfig& config) {
  for (const sim::GpuConfig& paper : sim::standard_configs()) {
    if (same_values(config, paper)) return paper.name;
  }
  std::string name = "cfg:" + format_value(config.core_mhz) + "x" +
                     format_value(config.mem_mhz);
  if (config.core_voltage != core_voltage_rule(config.core_mhz) ||
      config.mem_voltage != mem_voltage_rule(config.mem_mhz)) {
    name += "@" + format_value(config.core_voltage) + "x" +
            format_value(config.mem_voltage);
  }
  if (config.ecc) name += "+ecc";
  return name;
}

sim::GpuConfig normalized(sim::GpuConfig config) {
  validate_values(config);
  const std::string canonical = canonical_name(config);
  if (config.name.empty()) {
    config.name = canonical;
    return config;
  }
  // A non-empty name may not alias another operating point's identity: the
  // paper names and every "cfg:..." name are value-derived cache keys.
  for (const sim::GpuConfig& paper : sim::standard_configs()) {
    if (config.name == paper.name && !same_values(config, paper)) {
      fail("config name '" + config.name +
           "' is reserved for the paper operating point " +
           format_value(paper.core_mhz) + "/" + format_value(paper.mem_mhz) +
           (paper.ecc ? " with ECC" : ""));
    }
  }
  if (config.name.rfind("cfg:", 0) == 0 && config.name != canonical) {
    fail("config name '" + config.name +
         "' collides with the canonical grid namespace (this point is '" +
         canonical + "')");
  }
  return config;
}

std::vector<double> axis_points(const Axis& axis, std::string_view what) {
  const std::string prefix(what);
  if (!std::isfinite(axis.min) || !std::isfinite(axis.max) ||
      !std::isfinite(axis.step)) {
    fail(prefix + " axis must be finite");
  }
  if (axis.min > axis.max) {
    fail(prefix + " axis min " + format_value(axis.min) + " > max " +
         format_value(axis.max));
  }
  if (axis.step < 0.0) fail(prefix + " axis step must be >= 0");
  if (axis.step == 0.0) {
    if (axis.min != axis.max) {
      fail(prefix + " axis step 0 requires min == max");
    }
    return {axis.min};
  }
  // Tolerance keeps "binary-representation just past max" endpoints in;
  // the true endpoint is then appended exactly when the last step fell
  // short of it.
  const double eps = axis.step * 1e-9;
  std::vector<double> points;
  for (std::size_t k = 0;; ++k) {
    const double value = axis.min + static_cast<double>(k) * axis.step;
    if (value > axis.max + eps) break;
    points.push_back(std::min(value, axis.max));
    if (points.size() > kMaxAxisPoints) {
      fail(prefix + " axis has more than " +
           std::to_string(kMaxAxisPoints) + " points");
    }
  }
  if (points.back() < axis.max - eps) points.push_back(axis.max);
  return points;
}

std::vector<sim::GpuConfig> make_grid(const GridSpec& grid) {
  const std::vector<double> core = axis_points(grid.core, "core_mhz");
  const std::vector<double> mem = axis_points(grid.mem, "mem_mhz");
  if (core.size() * mem.size() > kMaxGridPoints) {
    fail("grid has " + std::to_string(core.size() * mem.size()) +
         " points; max " + std::to_string(kMaxGridPoints));
  }
  std::vector<sim::GpuConfig> configs;
  configs.reserve(core.size() * mem.size());
  for (const double core_mhz : core) {
    for (const double mem_mhz : mem) {
      sim::GpuConfig config;
      config.name.clear();
      config.core_mhz = core_mhz;
      config.mem_mhz = mem_mhz;
      config.core_voltage = core_voltage_rule(core_mhz);
      config.mem_voltage = mem_voltage_rule(mem_mhz);
      config.ecc = grid.ecc;
      configs.push_back(normalized(std::move(config)));
    }
  }
  return configs;
}

Analytic project(core::Study& study, const workloads::Workload& workload,
                 std::size_t input_index, const sim::GpuConfig& config) {
  const sim::TraceResult& trace =
      study.trace_result(workload, input_index, config);
  power::PhasePowerMemo memo(study.power_model(), config,
                             workload.ecc_power_adjustment());
  double energy_j = 0.0;
  double gap_s = 0.0;
  bool first = true;
  // Iterative traces repeat a short cycle of (activity, duration) phase
  // shapes tens of thousands of times; a two-entry MRU over the phase's
  // identity skips even the memoized power evaluation for repeats (the
  // cached contribution is the identical double, so the projection is
  // unchanged).
  struct PhaseEnergy {
    const sim::Activity* activity = nullptr;
    double duration_s = 0.0;
    double energy_j = 0.0;
  };
  PhaseEnergy mru[2];
  auto phase_energy_j = [&](const sim::Phase& phase) {
    for (PhaseEnergy& entry : mru) {
      if (entry.activity != nullptr && entry.duration_s == phase.duration_s &&
          std::memcmp(entry.activity, &phase.activity,
                      sizeof phase.activity) == 0) {
        return entry.energy_j;
      }
    }
    const double e =
        memo.phase_power(phase.activity, phase.duration_s).total_w *
        phase.duration_s;
    mru[1] = mru[0];
    mru[0] = PhaseEnergy{&phase.activity, phase.duration_s, e};
    return e;
  };
  for (const sim::Phase& phase : trace.phases) {
    // The gap before the first phase precedes the measured window (the
    // analyzer's threshold crossing); interior gaps are inside it and the
    // driver holds tail power across them.
    if (!first) gap_s += phase.host_gap_before_s;
    first = false;
    energy_j += phase_energy_j(phase);
  }
  energy_j += memo.tail_power_w() * gap_s;
  Analytic out;
  out.time_s = trace.active_time_s + gap_s;
  out.energy_j = energy_j;
  out.power_w = out.time_s > 0.0 ? energy_j / out.time_s : 0.0;
  return out;
}

std::vector<char> prune_mask(const std::vector<Analytic>& points,
                             double margin) {
  if (!std::isfinite(margin) || margin < 0.0 || margin >= 1.0) {
    fail("prune_margin " + format_value(margin) + " out of range [0, 1)");
  }
  const double relax = 1.0 + margin;
  std::vector<char> mask(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      const Analytic& p = points[i];
      const Analytic& q = points[j];
      if (!(q.time_s * relax <= p.time_s && q.energy_j * relax <= p.energy_j))
        continue;
      // Exact ties (margin 0) keep the earliest point only.
      if (q.time_s < p.time_s || q.energy_j < p.energy_j || j < i) {
        mask[i] = 1;
        break;
      }
    }
  }
  return mask;
}

std::vector<char> pareto_mask(const std::vector<MetricPoint>& points) {
  std::vector<char> mask(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].usable) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (j == i || !points[j].usable) continue;
      dominated = points[j].time_s <= points[i].time_s &&
                  points[j].energy_j <= points[i].energy_j &&
                  (points[j].time_s < points[i].time_s ||
                   points[j].energy_j < points[i].energy_j);
    }
    mask[i] = dominated ? 0 : 1;
  }
  return mask;
}

double objective_value(Objective objective, double time_s, double energy_j) {
  switch (objective) {
    case Objective::kMinEnergy: return energy_j;
    case Objective::kMinEdp: return energy_j * time_s;
    case Objective::kMinEd2p: return energy_j * time_s * time_s;
    case Objective::kPerfCap: return energy_j;
  }
  return energy_j;
}

Choice pick(const std::vector<MetricPoint>& points, Objective objective,
            double perf_cap_rel, bool exclude_throttled) {
  const auto eligible = [&](const MetricPoint& p) {
    return p.usable && (!exclude_throttled || !p.throttled);
  };
  Choice choice;
  if (objective == Objective::kPerfCap) {
    if (!std::isfinite(perf_cap_rel) || perf_cap_rel < 1.0) {
      fail("perf_cap_rel " + format_value(perf_cap_rel) + " must be >= 1");
    }
    double fastest = std::numeric_limits<double>::infinity();
    for (const MetricPoint& p : points) {
      if (eligible(p)) fastest = std::min(fastest, p.time_s);
    }
    if (!std::isfinite(fastest)) return choice;
    choice.cap_time_s = perf_cap_rel * fastest;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MetricPoint& p = points[i];
    if (!eligible(p)) continue;
    if (objective == Objective::kPerfCap && p.time_s > choice.cap_time_s)
      continue;
    const double value = objective_value(objective, p.time_s, p.energy_j);
    if (choice.index < 0 || value < choice.value) {
      choice.index = static_cast<int>(i);
      choice.value = value;
    }
  }
  return choice;
}

std::vector<MetricPoint> metric_points(const Sweep& sweep) {
  std::vector<MetricPoint> points;
  points.reserve(sweep.points.size());
  for (const Point& point : sweep.points) {
    MetricPoint mp;
    mp.usable = point.measured && point.result.base.usable;
    mp.time_s = point.result.base.time_s;
    mp.energy_j = point.result.base.energy_j;
    mp.throttled = point.result.base.throttled;
    points.push_back(mp);
  }
  return points;
}

Sweep run_sweep(core::Study& study, const workloads::Workload& workload,
                std::size_t input_index, const SweepSettings& settings,
                const MeasurePoint& measure) {
  const std::vector<sim::GpuConfig> grid = make_grid(settings.grid);
  Sweep sweep;
  sweep.points.reserve(grid.size());
  std::vector<Analytic> analytics;
  analytics.reserve(grid.size());
  for (const sim::GpuConfig& config : grid) {
    Point point;
    point.config = config;
    point.analytic = project(study, workload, input_index, config);
    analytics.push_back(point.analytic);
    sweep.points.push_back(std::move(point));
  }
  // prune_mask validates the margin even when pruning is off, so a bad
  // request fails loudly instead of silently measuring the full grid.
  const std::vector<char> pruned =
      prune_mask(analytics, settings.prune_margin);
  if (settings.prune) {
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      sweep.points[i].pruned = pruned[i] != 0;
      if (sweep.points[i].pruned) ++sweep.pruned;
    }
  }
  for (Point& point : sweep.points) {
    if (point.pruned) continue;
    point.result = measure(point.config, point.status);
    point.measured = true;
    ++sweep.measured;
  }
  const std::vector<char> frontier = pareto_mask(metric_points(sweep));
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    sweep.points[i].pareto = frontier[i] != 0;
  }
  return sweep;
}

}  // namespace repro::dvfs
