// Continuous DVFS operating-point grid + energy-efficiency sweet-spot
// recommender (DESIGN.md §15).
//
// The paper fixes four operating points; the interesting structure lives
// in the full (core, mem) frequency/voltage plane ("Modeling and Chasing
// the Energy-Efficiency Sweet Spots in Modern GPUs", PAPERS.md). This
// layer makes arbitrary grid points first-class:
//
//  - canonical naming: a grid point's name is derived injectively from its
//    values ("cfg:540x2600", "cfg:540x2600@0.9x1+ecc"), so the name can
//    keep doubling as cache identity and seed material exactly like the
//    four paper names — which map to themselves byte-identically;
//  - a default-voltage rule interpolated through the paper's anchors
//    (core 324 -> 0.85, 614 -> 0.93, 705 -> 1.00; mem 324 -> 0.88,
//    2600 -> 1.00), so a caller naming only frequencies gets physically
//    coherent DVFS voltages;
//  - an analytic V^2 f projection: one structural-trace timing pass plus
//    the power model, no sensor/noise/repetitions — orders of magnitude
//    cheaper than a measurement and accurate to a few percent;
//  - margin-relaxed Pareto dominance pruning over the analytic plane.
//    Every supported objective (energy, EDP, ED^2 P, energy-under-a-time-
//    cap) is monotone in (time, energy), so its optimum lies on the
//    time-energy Pareto frontier; pruning only analytically-dominated-by-
//    margin points is therefore objective-agnostic and safe as long as
//    the analytic-vs-measured bias stays inside the margin;
//  - exact argmin selection over the measured survivors per objective.
//
// The measurement step is injected (`MeasurePoint`): the API facade plugs
// in plain sampled measurement against the session study, the serving
// layer wraps it with its result cache and fault retry/degradation loop.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/study.hpp"
#include "sample/sample.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/workload.hpp"

namespace repro::dvfs {

/// Optimization objective of a recommendation (ROADMAP: min-energy,
/// min-EDP, min-ED^2 P, perf-cap).
enum class Objective {
  kMinEnergy,  // minimize energy
  kMinEdp,     // minimize energy * time
  kMinEd2p,    // minimize energy * time^2
  kPerfCap,    // minimize energy subject to time <= cap * fastest time
};

std::string_view to_string(Objective objective);
/// Parses "min_energy" / "min_edp" / "min_ed2p" / "perf_cap". Returns
/// false (leaving `out` untouched) for anything else.
bool parse_objective(std::string_view text, Objective& out);

/// Validation bounds of one operating point (strict: outside is an error,
/// not a clamp).
inline constexpr double kMinCoreMhz = 100.0;
inline constexpr double kMaxCoreMhz = 1500.0;
inline constexpr double kMinMemMhz = 100.0;
inline constexpr double kMaxMemMhz = 4000.0;
inline constexpr double kMinVoltage = 0.50;
inline constexpr double kMaxVoltage = 1.25;
inline constexpr std::size_t kMaxAxisPoints = 64;
inline constexpr std::size_t kMaxGridPoints = 256;

/// Default DVFS voltage at a frequency: piecewise-linear through the
/// paper anchors (exact at 324/614/705 core and 324/2600 mem), end-slope
/// extrapolated outside and clamped to [kMinVoltage, kMaxVoltage].
double core_voltage_rule(double core_mhz);
double mem_voltage_rule(double mem_mhz);

/// Injective value-derived name of an operating point. The four paper
/// configurations map to their paper names ("default", "614", "324",
/// "ecc"); everything else becomes "cfg:<core>x<mem>" with an
/// "@<vcore>x<vmem>" suffix when the voltages deviate from the rule and a
/// "+ecc" suffix when ECC is on (doubles printed shortest-round-trip, so
/// distinct values can never alias). Ignores `config.name`.
std::string canonical_name(const sim::GpuConfig& config);

/// Strict range validation plus canonical naming. An empty name is
/// auto-filled with `canonical_name`; a name equal to a paper
/// configuration's is only accepted when every value matches that paper
/// configuration exactly. Throws std::invalid_argument with a
/// caller-facing message on any violation.
sim::GpuConfig normalized(sim::GpuConfig config);

/// One grid axis: {min, min+step, ...} plus `max` itself when the last
/// step falls short. step == 0 requires min == max (a single value).
struct Axis {
  double min = 0.0;
  double max = 0.0;
  double step = 0.0;
};

/// Expands one axis (`what` names it in error messages). Throws
/// std::invalid_argument on non-finite/descending/oversized axes.
std::vector<double> axis_points(const Axis& axis, std::string_view what);

/// The swept plane. Defaults cover the paper's core DVFS range at the
/// memory clock the paper holds fixed.
struct GridSpec {
  Axis core{324.0, 705.0, 50.0};
  Axis mem{2600.0, 2600.0, 0.0};
  bool ecc = false;
};

/// Expands and validates the full grid: every (core, mem) pair with
/// rule voltages and canonical names, core-major order. Throws
/// std::invalid_argument (axis errors, > kMaxGridPoints points).
std::vector<sim::GpuConfig> make_grid(const GridSpec& grid);

/// Analytic V^2 f projection of one operating point: trace timing plus
/// model power, no sensor path. `time_s` approximates the measured active
/// window (kernel time + interior host gaps), `energy_j` integrates phase
/// power over kernels plus driver tail power over the gaps.
struct Analytic {
  double time_s = 0.0;
  double energy_j = 0.0;
  double power_w = 0.0;
};

Analytic project(core::Study& study, const workloads::Workload& workload,
                 std::size_t input_index, const sim::GpuConfig& config);

/// Margin-relaxed analytic dominance pruning: entry i is pruned (mask 1)
/// iff some other point is at least `margin` better in BOTH time and
/// energy (q.time * (1 + margin) <= p.time and likewise for energy). The
/// analytic optimum of every objective always survives.
std::vector<char> prune_mask(const std::vector<Analytic>& points,
                             double margin);

/// Measured view of one grid point, as the argmin/frontier passes see it.
struct MetricPoint {
  bool usable = false;
  double time_s = 0.0;
  double energy_j = 0.0;
  bool throttled = false;  // thermal governor clamped during measurement
};

/// Time-energy Pareto frontier over the usable points (mask 1 = on the
/// frontier: no other usable point is <= in both metrics and < in one).
std::vector<char> pareto_mask(const std::vector<MetricPoint>& points);

/// Objective value of one measured point (kPerfCap scores by energy; the
/// cap is enforced by `pick`, not by the value).
double objective_value(Objective objective, double time_s, double energy_j);

/// Exact argmin over the measured points. `cap_time_s` reports the time
/// cap actually applied (kPerfCap only: perf_cap_rel * fastest usable
/// time). index == -1 when no usable point qualifies. Ties break toward
/// the lower index, so the choice is deterministic in grid order.
/// `exclude_throttled` additionally drops points whose thermal governor
/// clamped (DESIGN.md §16) — from both the argmin and the perf-cap
/// fastest-point baseline, so the cap reflects sustainable points only.
struct Choice {
  int index = -1;
  double value = 0.0;
  double cap_time_s = 0.0;
};

Choice pick(const std::vector<MetricPoint>& points, Objective objective,
            double perf_cap_rel, bool exclude_throttled = false);

/// Per-point bookkeeping the measurement callback may fill (the serving
/// layer's cache/retry/degradation semantics; plain sweeps leave it 0).
struct PointStatus {
  bool cached = false;
  int retries = 0;
  bool degraded = false;
};

/// Measures one surviving grid point. Called once per unpruned point, in
/// grid order.
using MeasurePoint = std::function<sample::SampledResult(
    const sim::GpuConfig& config, PointStatus& status)>;

struct Point {
  sim::GpuConfig config;
  Analytic analytic;
  bool pruned = false;
  bool measured = false;
  bool pareto = false;
  sample::SampledResult result;  // meaningful iff measured
  PointStatus status;
};

struct Sweep {
  std::vector<Point> points;  // one per grid point, grid order
  std::size_t pruned = 0;
  std::size_t measured = 0;
};

struct SweepSettings {
  GridSpec grid;
  bool prune = true;
  double prune_margin = 0.10;
};

/// The sweep driver: grid -> analytic projection -> dominance pruning ->
/// `measure` per survivor -> measured Pareto frontier. Deterministic in
/// (study seeds, workload, input, settings, measure). Throws
/// std::invalid_argument for invalid grids.
Sweep run_sweep(core::Study& study, const workloads::Workload& workload,
                std::size_t input_index, const SweepSettings& settings,
                const MeasurePoint& measure);

/// Measured views of a sweep's points (unmeasured points stay unusable).
std::vector<MetricPoint> metric_points(const Sweep& sweep);

}  // namespace repro::dvfs
