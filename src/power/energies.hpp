// Per-event energy table (GPUWattch-style activity-based power modelling).
//
// All values are calibrated so that the K20c magnitudes of the paper come
// out: ~25 W idle, ~45-55 W for occupancy-starved memory-bound kernels,
// ~100 W for compute-saturated kernels, >160 W peak (MaxFlops), 225 W
// board limit. Energies are at nominal voltage; the model scales dynamic
// energy by (V/Vnom)^2.
#pragma once

namespace repro::power {

struct EnergyTable {
  // SM front-end: fetch/decode/schedule/operand-collect per warp
  // instruction issue (including divergence replays).
  double warp_issue_nj = 0.30;

  // Execution lane-ops (includes register-file traffic).
  double fp32_pj = 25.0;
  double fp64_pj = 70.0;
  double int_pj = 14.0;
  double sfu_pj = 40.0;
  double atomic_pj = 1500.0;  // L2-side read-modify-write per lane

  // Memory hierarchy.
  double shared_access_nj = 0.20;     // per warp-level shared access
  double l2_transaction_nj = 1.20;    // per 128 B transaction
  double dram_transaction_nj = 28.0;  // DRAM array + I/O per 128 B txn
  double memctl_transaction_nj = 10.0; // controller/PHY per txn
  double ecc_transaction_nj = 9.0;    // ECC generate/check per txn (ECC on)

  // Static components.
  double board_w = 10.0;        // fan, VRM losses, misc logic
  double leakage_nominal_w = 12.0;  // at nominal core voltage
  double leakage_voltage_exp = 1.6; // leakage ~ V^1.6
  double dram_background_w_per_ghz = 1.1;  // refresh/clock tree vs mem clock

  // Driver keeps the GPU in a raised power state between/after kernels:
  // tail power = static floor + tail_boost_w scaled by the core clock and
  // voltage (the driver parks at the configured clocks, not at P8).
  double tail_boost_w = 17.0;
  double tail_decay_s = 1.8;  // exponential decay back to idle
};

/// The calibrated table used across the study.
inline const EnergyTable& default_energies() {
  static const EnergyTable table{};
  return table;
}

}  // namespace repro::power
