#include "power/model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace repro::power {

std::string_view to_string(InstClass c) noexcept {
  switch (c) {
    case InstClass::kFp32: return "fp32";
    case InstClass::kFp64: return "fp64";
    case InstClass::kInt: return "int";
    case InstClass::kSfu: return "sfu";
    case InstClass::kLdstGlobal: return "ldst_global";
    case InstClass::kLdstShared: return "ldst_shared";
    case InstClass::kControl: return "control";
  }
  return "unknown";
}

double PowerModel::dynamic_energy_j(const sim::Activity& a,
                                    const sim::GpuConfig& config) const {
  const EnergyTable& t = *table_;
  const double vc2 = config.core_voltage * config.core_voltage;
  const double vm2 = config.mem_voltage * config.mem_voltage;

  // Core-domain events.
  double core_j = a.warp_instructions * t.warp_issue_nj * 1e-9;
  core_j += a.fp32_ops * t.fp32_pj * 1e-12;
  core_j += a.fp64_ops * t.fp64_pj * 1e-12;
  core_j += a.int_ops * t.int_pj * 1e-12;
  core_j += a.sfu_ops * t.sfu_pj * 1e-12;
  core_j += a.shared_accesses * t.shared_access_nj * 1e-9;
  core_j += a.l2_transactions * t.l2_transaction_nj * 1e-9;
  core_j += a.atomic_ops * t.atomic_pj * 1e-12;

  // Memory-domain events.
  double mem_j =
      a.dram_transactions * (t.dram_transaction_nj + t.memctl_transaction_nj) * 1e-9;
  if (config.ecc) {
    mem_j += a.dram_transactions * t.ecc_transaction_nj * 1e-9;
  }

  return core_j * vc2 + mem_j * vm2;
}

ClassEnergies PowerModel::class_energies_j(const sim::Activity& a,
                                           const sim::GpuConfig& config) const {
  // Exactly the dynamic_energy_j terms, regrouped by instruction class:
  // each EnergyTable event energy appears in exactly one class, so the
  // class energies partition the component-level dynamic energy (the
  // cross-check law; only fp re-association separates the two sums).
  const EnergyTable& t = *table_;
  const double vc2 = config.core_voltage * config.core_voltage;
  const double vm2 = config.mem_voltage * config.mem_voltage;

  ClassEnergies e;
  e[InstClass::kControl] = a.warp_instructions * t.warp_issue_nj * 1e-9 * vc2;
  e[InstClass::kFp32] = a.fp32_ops * t.fp32_pj * 1e-12 * vc2;
  e[InstClass::kFp64] = a.fp64_ops * t.fp64_pj * 1e-12 * vc2;
  e[InstClass::kInt] = a.int_ops * t.int_pj * 1e-12 * vc2;
  e[InstClass::kSfu] = a.sfu_ops * t.sfu_pj * 1e-12 * vc2;
  e[InstClass::kLdstShared] =
      a.shared_accesses * t.shared_access_nj * 1e-9 * vc2;

  // The global-memory path spans both clock domains: L2 + atomics on the
  // core side, DRAM + memory controller (+ECC) on the memory side.
  double global_j = (a.l2_transactions * t.l2_transaction_nj * 1e-9 +
                     a.atomic_ops * t.atomic_pj * 1e-12) *
                    vc2;
  double mem_j =
      a.dram_transactions * (t.dram_transaction_nj + t.memctl_transaction_nj) *
      1e-9;
  if (config.ecc) {
    mem_j += a.dram_transactions * t.ecc_transaction_nj * 1e-9;
  }
  e[InstClass::kLdstGlobal] = global_j + mem_j * vm2;
  return e;
}

double PowerModel::static_power_w(const sim::GpuConfig& config) const {
  const EnergyTable& t = *table_;
  const double leak =
      t.leakage_nominal_w * std::pow(config.core_voltage, t.leakage_voltage_exp);
  const double dram_bg = t.dram_background_w_per_ghz * (config.mem_mhz / 1000.0);
  return t.board_w + leak + dram_bg;
}

double PowerModel::tail_power_w(const sim::GpuConfig& config) const {
  const double clock_frac = config.core_mhz / 705.0;
  const double v2 = config.core_voltage * config.core_voltage;
  return static_power_w(config) + table_->tail_boost_w * clock_frac * v2;
}

double PowerModel::leakage_power_w(const sim::GpuConfig& config) const {
  const EnergyTable& t = *table_;
  return t.leakage_nominal_w *
         std::pow(config.core_voltage, t.leakage_voltage_exp);
}

double PowerModel::leakage_power_w(const sim::GpuConfig& config, double temp_c,
                                   double k_per_c, double t0_c) const {
  return leakage_power_w(config) * std::exp(k_per_c * (temp_c - t0_c));
}

PhasePower PowerModel::phase_power(const sim::Activity& activity, double duration_s,
                                   const sim::GpuConfig& config,
                                   double ecc_adjust) const {
  // Phase evaluations are the power model's unit of work; counting them
  // (observability only — no effect on any value) makes waveform-synthesis
  // cost visible per batch.
  if (obs::enabled()) {
    obs::Registry::instance().counter("power.phase_power.calls").add();
  }
  const EnergyTable& t = *table_;
  PhasePower p;
  p.board_w = t.board_w;
  p.leakage_w =
      t.leakage_nominal_w * std::pow(config.core_voltage, t.leakage_voltage_exp);
  p.dram_background_w = t.dram_background_w_per_ghz * (config.mem_mhz / 1000.0);
  const double duration = std::max(duration_s, 1e-12);
  p.dynamic_w = dynamic_energy_j(activity, config) / duration;
  // While kernels run the GPU sits in the raised clock state, so the floor
  // under the dynamic power is the same level the driver holds between
  // kernels (tail power). This is why even occupancy-starved kernels read
  // ~48-52 W on a K20 (paper §V.C).
  p.total_w = tail_power_w(config) + p.dynamic_w;
  if (config.ecc) p.total_w *= ecc_adjust;
  // K20 board power limit: the firmware clamps at the TDP.
  p.total_w = std::min(p.total_w, 225.0);
  return p;
}

namespace {

// Exact bit-pattern key of an Activity. Every field participates so a
// future energy-table change cannot silently alias distinct activities.
std::array<std::uint64_t, 10> activity_bits(const sim::Activity& a) noexcept {
  return {std::bit_cast<std::uint64_t>(a.warp_instructions),
          std::bit_cast<std::uint64_t>(a.fp32_ops),
          std::bit_cast<std::uint64_t>(a.fp64_ops),
          std::bit_cast<std::uint64_t>(a.int_ops),
          std::bit_cast<std::uint64_t>(a.sfu_ops),
          std::bit_cast<std::uint64_t>(a.shared_accesses),
          std::bit_cast<std::uint64_t>(a.l2_transactions),
          std::bit_cast<std::uint64_t>(a.dram_transactions),
          std::bit_cast<std::uint64_t>(a.dram_bus_bytes),
          std::bit_cast<std::uint64_t>(a.atomic_ops)};
}

}  // namespace

std::size_t PhasePowerMemo::ActivityKeyHash::operator()(
    const ActivityKey& key) const noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t word : key.bits) {
    h = util::mix64(h ^ word);
  }
  return static_cast<std::size_t>(h);
}

PhasePowerMemo::PhasePowerMemo(const PowerModel& model,
                               const sim::GpuConfig& config, double ecc_adjust)
    : model_(&model), config_(&config), ecc_adjust_(ecc_adjust) {
  // Same expressions as PowerModel::phase_power / static_power_w /
  // tail_power_w evaluate per call; deterministic, so caching the results
  // returns the identical doubles.
  const EnergyTable& t = model.table();
  leakage_w_ =
      t.leakage_nominal_w * std::pow(config.core_voltage, t.leakage_voltage_exp);
  dram_background_w_ = t.dram_background_w_per_ghz * (config.mem_mhz / 1000.0);
  static_w_ = model.static_power_w(config);
  tail_w_ = model.tail_power_w(config);
}

PhasePowerMemo::~PhasePowerMemo() {
  // Counter flush: per-phase registry updates would put a shared-lock
  // lookup and a contended atomic on the synthesis hot path (millions of
  // events per matrix batch), so the memo counts locally and publishes
  // the totals once. The reported `power.phase_power.calls` still equals
  // the logical per-phase evaluation count, same as the unmemoized model.
  if (lookups_ == 0 || !obs::enabled()) return;
  obs::Registry& registry = obs::Registry::instance();
  registry.counter("power.phase_power.calls").add(lookups_);
  registry.counter("power.phase_power.memo_hits").add(hits_);
}

double PhasePowerMemo::dynamic_energy_j(const sim::Activity& activity) {
  ++lookups_;
  const ActivityKey key{activity_bits(activity)};
  for (std::size_t i = 0; i < mru_.size(); ++i) {
    if (mru_[i].used && mru_[i].key == key) {
      ++hits_;
      const double value = mru_[i].value;
      if (i != 0) std::swap(mru_[0], mru_[i]);
      return value;
    }
  }
  const auto [it, inserted] = dynamic_j_.try_emplace(key, 0.0);
  if (inserted) {
    it->second = model_->dynamic_energy_j(activity, *config_);
  } else {
    ++hits_;
  }
  mru_[1] = mru_[0];
  mru_[0] = MruEntry{key, it->second, true};
  return it->second;
}

const ClassEnergies& PhasePowerMemo::class_energies(
    const sim::Activity& activity) {
  const auto [it, inserted] =
      class_j_.try_emplace(ActivityKey{activity_bits(activity)});
  if (inserted) {
    it->second = model_->class_energies_j(activity, *config_);
  }
  return it->second;
}

PhasePower PhasePowerMemo::phase_power(const sim::Activity& activity,
                                       double duration_s) {
  const EnergyTable& t = model_->table();
  PhasePower p;
  p.board_w = t.board_w;
  p.leakage_w = leakage_w_;
  p.dram_background_w = dram_background_w_;
  const double duration = std::max(duration_s, 1e-12);
  p.dynamic_w = dynamic_energy_j(activity) / duration;
  p.total_w = tail_w_ + p.dynamic_w;
  if (config_->ecc) p.total_w *= ecc_adjust_;
  p.total_w = std::min(p.total_w, 225.0);
  return p;
}

}  // namespace repro::power
