#include "power/model.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repro::power {

double PowerModel::dynamic_energy_j(const sim::Activity& a,
                                    const sim::GpuConfig& config) const {
  const EnergyTable& t = *table_;
  const double vc2 = config.core_voltage * config.core_voltage;
  const double vm2 = config.mem_voltage * config.mem_voltage;

  // Core-domain events.
  double core_j = a.warp_instructions * t.warp_issue_nj * 1e-9;
  core_j += a.fp32_ops * t.fp32_pj * 1e-12;
  core_j += a.fp64_ops * t.fp64_pj * 1e-12;
  core_j += a.int_ops * t.int_pj * 1e-12;
  core_j += a.sfu_ops * t.sfu_pj * 1e-12;
  core_j += a.shared_accesses * t.shared_access_nj * 1e-9;
  core_j += a.l2_transactions * t.l2_transaction_nj * 1e-9;
  core_j += a.atomic_ops * t.atomic_pj * 1e-12;

  // Memory-domain events.
  double mem_j =
      a.dram_transactions * (t.dram_transaction_nj + t.memctl_transaction_nj) * 1e-9;
  if (config.ecc) {
    mem_j += a.dram_transactions * t.ecc_transaction_nj * 1e-9;
  }

  return core_j * vc2 + mem_j * vm2;
}

double PowerModel::static_power_w(const sim::GpuConfig& config) const {
  const EnergyTable& t = *table_;
  const double leak =
      t.leakage_nominal_w * std::pow(config.core_voltage, t.leakage_voltage_exp);
  const double dram_bg = t.dram_background_w_per_ghz * (config.mem_mhz / 1000.0);
  return t.board_w + leak + dram_bg;
}

double PowerModel::tail_power_w(const sim::GpuConfig& config) const {
  const double clock_frac = config.core_mhz / 705.0;
  const double v2 = config.core_voltage * config.core_voltage;
  return static_power_w(config) + table_->tail_boost_w * clock_frac * v2;
}

PhasePower PowerModel::phase_power(const sim::Activity& activity, double duration_s,
                                   const sim::GpuConfig& config,
                                   double ecc_adjust) const {
  // Phase evaluations are the power model's unit of work; counting them
  // (observability only — no effect on any value) makes waveform-synthesis
  // cost visible per batch.
  if (obs::enabled()) {
    obs::Registry::instance().counter("power.phase_power.calls").add();
  }
  const EnergyTable& t = *table_;
  PhasePower p;
  p.board_w = t.board_w;
  p.leakage_w =
      t.leakage_nominal_w * std::pow(config.core_voltage, t.leakage_voltage_exp);
  p.dram_background_w = t.dram_background_w_per_ghz * (config.mem_mhz / 1000.0);
  const double duration = std::max(duration_s, 1e-12);
  p.dynamic_w = dynamic_energy_j(activity, config) / duration;
  // While kernels run the GPU sits in the raised clock state, so the floor
  // under the dynamic power is the same level the driver holds between
  // kernels (tail power). This is why even occupancy-starved kernels read
  // ~48-52 W on a K20 (paper §V.C).
  p.total_w = tail_power_w(config) + p.dynamic_w;
  if (config.ecc) p.total_w *= ecc_adjust;
  // K20 board power limit: the firmware clamps at the TDP.
  p.total_w = std::min(p.total_w, 225.0);
  return p;
}

}  // namespace repro::power
