// Activity-based GPU power model.
//
// P(phase) = board + leakage(Vcore) + DRAM background(f_mem)
//          + dynamic_energy(activity, V) / duration.
//
// Dynamic event energies scale with the square of the supply voltage of
// the clock domain the event belongs to (core-domain events with Vcore,
// DRAM-side events with Vmem). This is the standard CMOS E ~ C V^2 model
// and produces the paper's super-linear power reductions under DVFS.
#pragma once

#include "power/energies.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::power {

struct PhasePower {
  double total_w = 0.0;
  double dynamic_w = 0.0;
  double leakage_w = 0.0;
  double board_w = 0.0;
  double dram_background_w = 0.0;
};

class PowerModel {
 public:
  explicit PowerModel(const EnergyTable& table = default_energies()) noexcept
      : table_(&table) {}

  /// Average power of one kernel phase under `config`.
  /// `ecc_adjust` is the workload's documented ECC power anomaly factor
  /// (1.0 for all but NB); applied only when ECC is enabled.
  PhasePower phase_power(const sim::Activity& activity, double duration_s,
                         const sim::GpuConfig& config,
                         double ecc_adjust = 1.0) const;

  /// Dynamic energy (joules) of an activity bundle under `config`,
  /// independent of time.
  double dynamic_energy_j(const sim::Activity& activity,
                          const sim::GpuConfig& config) const;

  /// Static floor while the GPU is powered and clocked (no kernel running):
  /// board + leakage + DRAM background. This is also what the sensor reads
  /// while the application idles under this configuration (the driver keeps
  /// the configured clocks; at the default configuration this is ~25 W,
  /// matching the paper's "idle power less than about 26 W").
  double static_power_w(const sim::GpuConfig& config) const;

  /// Raised power state the driver holds between/after kernels (paper
  /// Fig. 1 "tail power"). Scales with the configured core clock/voltage.
  double tail_power_w(const sim::GpuConfig& config) const;

  double tail_decay_s() const noexcept { return table_->tail_decay_s; }

  const EnergyTable& table() const noexcept { return *table_; }

 private:
  const EnergyTable* table_;
};

}  // namespace repro::power
