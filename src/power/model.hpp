// Activity-based GPU power model.
//
// P(phase) = board + leakage(Vcore) + DRAM background(f_mem)
//          + dynamic_energy(activity, V) / duration.
//
// Dynamic event energies scale with the square of the supply voltage of
// the clock domain the event belongs to (core-domain events with Vcore,
// DRAM-side events with Vmem). This is the standard CMOS E ~ C V^2 model
// and produces the paper's super-linear power reductions under DVFS.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "power/energies.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::power {

struct PhasePower {
  double total_w = 0.0;
  double dynamic_w = 0.0;
  double leakage_w = 0.0;
  double board_w = 0.0;
  double dram_background_w = 0.0;
};

/// Instruction classes the dynamic (activity-proportional) energy of a
/// phase decomposes into (DESIGN.md §9). Each class groups the
/// EnergyTable event energies it is built from:
///   fp32/fp64/int/sfu — the per-op ALU energies;
///   ldst-global       — L2 transactions + atomics (core domain) and DRAM
///                       + memory-controller (+ECC) transactions (memory
///                       domain), i.e. the global-memory path end to end;
///   ldst-shared       — shared-memory bank accesses;
///   control           — per-warp-instruction issue/decode/operand
///                       delivery overhead (warp_issue_nj).
enum class InstClass : int {
  kFp32 = 0,
  kFp64,
  kInt,
  kSfu,
  kLdstGlobal,
  kLdstShared,
  kControl,
};

inline constexpr int kNumInstClasses = 7;

/// Short stable name ("fp32", ..., "ldst_global", "control") used in
/// exports, wire payloads and table printouts.
std::string_view to_string(InstClass c) noexcept;

/// Joules per instruction class for one activity bundle. The pinned
/// cross-check law (tests/power_test.cpp, tests/obs_test.cpp): total_j()
/// equals PowerModel::dynamic_energy_j for the same activity and config —
/// the classes are a partition of the component-level model, not a second
/// model.
struct ClassEnergies {
  std::array<double, kNumInstClasses> j{};

  double& operator[](InstClass c) { return j[static_cast<std::size_t>(c)]; }
  double operator[](InstClass c) const {
    return j[static_cast<std::size_t>(c)];
  }
  double total_j() const {
    double total = 0.0;
    for (const double v : j) total += v;
    return total;
  }
};

class PowerModel {
 public:
  explicit PowerModel(const EnergyTable& table = default_energies()) noexcept
      : table_(&table) {}

  /// Average power of one kernel phase under `config`.
  /// `ecc_adjust` is the workload's documented ECC power anomaly factor
  /// (1.0 for all but NB); applied only when ECC is enabled.
  PhasePower phase_power(const sim::Activity& activity, double duration_s,
                         const sim::GpuConfig& config,
                         double ecc_adjust = 1.0) const;

  /// Dynamic energy (joules) of an activity bundle under `config`,
  /// independent of time.
  double dynamic_energy_j(const sim::Activity& activity,
                          const sim::GpuConfig& config) const;

  /// The same dynamic energy split by instruction class (see InstClass).
  /// Sums to dynamic_energy_j(activity, config) up to fp rounding of the
  /// re-associated terms.
  ClassEnergies class_energies_j(const sim::Activity& activity,
                                 const sim::GpuConfig& config) const;

  /// Static floor while the GPU is powered and clocked (no kernel running):
  /// board + leakage + DRAM background. This is also what the sensor reads
  /// while the application idles under this configuration (the driver keeps
  /// the configured clocks; at the default configuration this is ~25 W,
  /// matching the paper's "idle power less than about 26 W").
  double static_power_w(const sim::GpuConfig& config) const;

  /// Raised power state the driver holds between/after kernels (paper
  /// Fig. 1 "tail power"). Scales with the configured core clock/voltage.
  double tail_power_w(const sim::GpuConfig& config) const;

  /// Leakage share of the static floor at the nominal (reference)
  /// temperature — the temperature-independent value the rest of the
  /// model uses.
  double leakage_power_w(const sim::GpuConfig& config) const;

  /// Temperature hook (DESIGN.md §16): the same leakage under the
  /// exponential law P_leak(T) = P_leak(T0) * exp(k (T - T0)). With
  /// k = 0 or T = t0_c this is exactly leakage_power_w(config).
  double leakage_power_w(const sim::GpuConfig& config, double temp_c,
                         double k_per_c, double t0_c) const;

  double tail_decay_s() const noexcept { return table_->tail_decay_s; }

  const EnergyTable& table() const noexcept { return *table_; }

 private:
  const EnergyTable* table_;
};

/// Per-experiment memoization of the power model (DESIGN.md §10).
///
/// Binds one (model, config, ecc_adjust) triple, evaluates the per-config
/// scalars (leakage, DRAM background, static and tail power) exactly once,
/// and caches dynamic energies per distinct Activity bit pattern — the
/// dynamic energy is duration-independent, so phases and repetitions that
/// share an activity bundle reuse one evaluation. Every returned double is
/// bit-identical to calling PowerModel directly: cached values are outputs
/// of the same deterministic arithmetic, and phase_power recomposes them
/// in the reference expression order. The logical evaluation count
/// (`power.phase_power.calls`) is unchanged by memoization; cache hits are
/// reported separately as `power.phase_power.memo_hits`. Both counters are
/// accumulated locally and flushed to the obs registry at destruction —
/// per-phase registry updates would dominate the memoized hot path.
///
/// Not thread-safe: one memo lives inside one experiment computation.
class PhasePowerMemo {
 public:
  PhasePowerMemo(const PowerModel& model, const sim::GpuConfig& config,
                 double ecc_adjust = 1.0);
  ~PhasePowerMemo();

  PhasePowerMemo(const PhasePowerMemo&) = delete;
  PhasePowerMemo& operator=(const PhasePowerMemo&) = delete;

  /// Bit-identical to
  /// model().phase_power(activity, duration_s, config(), ecc_adjust()).
  PhasePower phase_power(const sim::Activity& activity, double duration_s);

  /// Cached model().class_energies_j(activity, config()). Keyed by the
  /// same exact Activity bit pattern as the dynamic-energy cache; used by
  /// the attribution pass (obs/attribution.cpp), which revisits each
  /// distinct activity once per phase.
  const ClassEnergies& class_energies(const sim::Activity& activity);

  double static_power_w() const noexcept { return static_w_; }
  double tail_power_w() const noexcept { return tail_w_; }
  double leakage_w() const noexcept { return leakage_w_; }
  double ecc_adjust() const noexcept { return ecc_adjust_; }
  const PowerModel& model() const noexcept { return *model_; }
  const sim::GpuConfig& config() const noexcept { return *config_; }

  /// Dynamic-energy cache statistics.
  std::uint64_t lookups() const noexcept { return lookups_; }
  std::uint64_t hits() const noexcept { return hits_; }

 private:
  /// Exact bit patterns of every Activity field: equal keys guarantee
  /// equal dynamic energy; distinct bit patterns of equal values (e.g.
  /// ±0.0) merely miss and recompute the same double.
  struct ActivityKey {
    std::array<std::uint64_t, 10> bits;
    bool operator==(const ActivityKey&) const = default;
  };
  struct ActivityKeyHash {
    std::size_t operator()(const ActivityKey& key) const noexcept;
  };

  double dynamic_energy_j(const sim::Activity& activity);

  /// Most traces alternate between a handful of distinct activities
  /// (kernel phases vs gaps), so a two-entry MRU filter in front of the
  /// hash map answers almost every lookup with ten word compares instead
  /// of hashing the full 80-byte bit pattern. Returns the identical
  /// cached double; counters treat an MRU answer as a cache hit.
  struct MruEntry {
    ActivityKey key{};
    double value = 0.0;
    bool used = false;
  };

  const PowerModel* model_;
  const sim::GpuConfig* config_;
  double ecc_adjust_;
  double leakage_w_ = 0.0;
  double dram_background_w_ = 0.0;
  double static_w_ = 0.0;
  double tail_w_ = 0.0;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::array<MruEntry, 2> mru_{};
  std::unordered_map<ActivityKey, double, ActivityKeyHash> dynamic_j_;
  std::unordered_map<ActivityKey, ClassEnergies, ActivityKeyHash> class_j_;
};

}  // namespace repro::power
