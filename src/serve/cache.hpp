// Sharded LRU cache of served measurement results (serving layer,
// DESIGN.md §11).
//
// The characterization service keys this cache by a VERSIONED experiment
// key (Service::cache_version() + the canonical experiment key), so a
// model, seed or schema change can never serve a stale value: the version
// prefix changes and old entries simply stop being reachable until they
// age out of the LRU.
//
// Thread safety: keys are hashed onto independent shards, each guarded by
// its own mutex held only for the map/list operation — lookups from many
// client threads contend only when they collide on a shard. Counters are
// relaxed atomics, readable concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "repro/api.hpp"

namespace repro::serve {

class ResultCache {
 public:
  struct Options {
    std::size_t capacity = 1024;  // total entries across all shards
    std::size_t shards = 8;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;     // current entries
    std::size_t capacity = 0;
  };

  explicit ResultCache(Options options);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copies the cached value into `out` and refreshes its recency.
  /// Returns false (counting a miss) when absent.
  bool lookup(const std::string& key, v1::MeasurementResult& out);

  /// Inserts or refreshes `key`. Returns the number of entries evicted to
  /// make room (0 or 1).
  std::size_t insert(const std::string& key,
                     const v1::MeasurementResult& value);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    v1::MeasurementResult value;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(const std::string& key);

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace repro::serve
