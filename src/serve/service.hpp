// Embeddable characterization service (DESIGN.md §11).
//
// Accepts `v1::ExperimentRequest`s, deduplicates them against a sharded
// LRU result cache, and schedules misses through the work-stealing
// experiment scheduler. Admission is bounded: when the queue is full the
// OLDEST queued request is shed with a structured `kShed` response (the
// freshest work is the most likely to still have a live client). Requests
// carry optional deadlines — a request whose deadline passes before its
// result is ready resolves to `kDeadlineExpired` instead of blocking.
//
// Determinism: every measurement stream is seeded purely from the
// experiment key, so a served result — cold, cached, or raced by eight
// clients — is bit-identical to a direct `core::Study` computation
// (tests/serve_test.cpp pins this). Dispatch runs each batch against a
// FRESH Study instance; the service-level LRU is therefore the only
// result store, which is what makes its capacity a real memory bound.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "core/study.hpp"
#include "obs/metrics.hpp"
#include "repro/api.hpp"
#include "serve/cache.hpp"
#include "serve/wire.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::serve {

namespace detail {
struct Pending;
}

class Service {
 public:
  struct Options {
    int threads = 0;  // 0 = REPRO_SERVE_THREADS, then REPRO_THREADS / hw
    std::size_t cache_capacity = 0;  // 0 = REPRO_SERVE_CACHE (default 1024)
    std::size_t cache_shards = 8;
    std::size_t queue_limit = 0;     // 0 = REPRO_SERVE_QUEUE (default 256)
    std::size_t max_batch = 64;      // requests dispatched per cycle
    core::Study::Options study{};    // seeds/repetitions served results use
    bool start_paused = false;       // for fault-injection tests

    /// Appended to the cache-version prefix. The shard router gives every
    /// worker its own namespace ("w0".."wN-1"), so two workers' cache key
    /// spaces are provably disjoint: a result cached on worker A can never
    /// hit on worker B, even after rebalancing hands A's key range to B.
    /// Empty (the default) keeps single-process cache keys byte-identical.
    std::string cache_namespace;

    /// Resilience budget against the fault injector (DESIGN.md §12).
    /// A dispatch attempt whose job was aborted, or whose measurement the
    /// sensor site tainted, is retried up to `max_retries` times with
    /// deterministic exponential backoff (`retry_backoff_ms * 2^(n-1)` before
    /// retry n). Zero retries turns the resilience layer off: aborts fail
    /// immediately and taints degrade immediately.
    int max_retries = 2;
    double retry_backoff_ms = 1.0;
  };

  /// Handle to one submitted request. `wait()` blocks until the request
  /// reaches a terminal state (including shed/expired/cancelled — a ticket
  /// always resolves; service destruction cancels what it never ran).
  class Ticket {
   public:
    Ticket() = default;
    bool valid() const noexcept { return state_ != nullptr; }
    bool ready() const;
    const Response& wait() const;

   private:
    friend class Service;
    explicit Ticket(std::shared_ptr<detail::Pending> state);
    std::shared_ptr<detail::Pending> state_;
  };

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  // kOk responses
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;     // unknown program/config, invalid
    std::uint64_t retried = 0;    // kOk responses that needed >= 1 retry
    std::uint64_t degraded = 0;   // kOk responses with tainted metrics
    std::uint64_t faulted = 0;    // kFailed: retry budget exhausted on aborts
    std::size_t queue_depth = 0;
    ResultCache::Stats cache;
  };

  Service();  // default Options
  explicit Service(Options options);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Enqueues one request. Never blocks: over-admission sheds the oldest
  /// queued request instead.
  Ticket submit(v1::ExperimentRequest request);

  /// Submits the whole batch and waits; responses come back in request
  /// order regardless of completion order.
  std::vector<Response> run_batch(const std::vector<v1::ExperimentRequest>& requests);

  /// Resolves a still-queued request to kCancelled. Returns false when the
  /// request was already dispatched or finished (its ticket resolves with
  /// the real outcome).
  bool cancel(const Ticket& ticket);

  /// Pauses/resumes dispatch (submissions still enqueue). Test hook for
  /// deterministic deadline/shed/cancel injection.
  void pause();
  void resume();

  Stats stats() const;

  /// Point-in-time health snapshot (exposed by `repro-serve` on the wire as
  /// a `{"v":1,"health":true}` request). `faults_injected` counts faults the
  /// active plan actually applied across all sites; 0 without a plan.
  HealthSnapshot health() const;

  /// Outcome of one attribution request (Service::attribute).
  struct AttributionResult {
    Status status = Status::kOk;
    std::string key;    // canonical experiment key when resolvable
    std::string error;  // non-empty iff status != kOk
    v1::Attribution table;
  };

  /// Per-kernel instruction-class energy attribution for one experiment,
  /// computed with the service's study options (exposed by `repro-serve`
  /// as a `{"v":1,"attribution":"<program>",...}` request). Synchronous
  /// and uncached: it runs on the calling thread against a fresh Study,
  /// independent of the dispatcher, queue and result cache.
  AttributionResult attribute(const v1::ExperimentRequest& request) const;

  /// Outcome of one DVFS grid sweep (Service::sweep, DESIGN.md §15).
  struct SweepOutcome {
    Status status = Status::kOk;
    std::string error;  // non-empty iff status != kOk
    Degradation degradation = Degradation::kNone;  // worst measured point
    int retries = 0;                               // summed over points
    v1::SweepResult sweep;
  };

  /// Sweeps the requested (core, mem) grid for one program input: analytic
  /// V^2 f projection over every point, margin-relaxed Pareto pruning, and
  /// a measurement of each survivor. Synchronous (runs on the calling
  /// thread, independent of the dispatcher queue) but NOT independent of
  /// the result cache: each grid point's measurement uses the exact
  /// versioned key a direct request for that (program, input, config)
  /// would, so sweeps are warmed by earlier point requests and vice versa.
  /// Per-point faults follow the sampled-dispatch semantics: sensor taint
  /// retries with deterministic backoff and degrades (uncached) when the
  /// budget runs out.
  SweepOutcome sweep(const SweepRequest& request);

  /// Outcome of one recommendation request (Service::recommend).
  struct RecommendOutcome {
    Status status = Status::kOk;
    std::string error;
    Degradation degradation = Degradation::kNone;
    int retries = 0;
    v1::Recommendation recommendation;
  };

  /// Runs the sweep, then the exact argmin of the requested objective over
  /// its measured usable points. kFailed when no point qualifies.
  RecommendOutcome recommend(const RecommendRequest& request);

  /// Version prefix of every cache key: derived from the study options and
  /// a fingerprint of the power model's energy table, so a model or seed
  /// change can never serve a stale cached result.
  const std::string& cache_version() const noexcept { return cache_version_; }

 private:
  struct Miss;  // one cache miss scheduled in the current dispatch cycle

  /// Resolves a request's operating point: paper names first, then points
  /// interned by an earlier inline-spec request, then — when the request
  /// carries an inline spec — validates and interns it. Returns nullptr
  /// with `error` set when the name is unknown or the spec is invalid. The
  /// returned pointer is node-stable for the service's lifetime (Miss
  /// holds it across dispatch attempts).
  const sim::GpuConfig* resolve_config(const v1::ExperimentRequest& request,
                                       std::string& error) const;

  void dispatcher_loop();
  void dispatch(std::vector<std::shared_ptr<detail::Pending>> batch);
  void dispatch_sampled(std::vector<Miss> misses);
  void dispatch_thermal(std::vector<Miss> misses);
  /// Governor ladder candidates of a thermal scenario: the paper's four
  /// operating points plus every config interned so far (DESIGN.md §16).
  std::vector<sim::GpuConfig> ladder_candidates() const;
  /// Resolves one request. When `latency` is set (the dispatcher's
  /// cache-hit cycle), the request's wall time is accumulated into that
  /// local batch against `cycle_now` — one clock read and one histogram
  /// flush per cycle instead of per request — otherwise it is observed
  /// directly.
  void fulfill(const std::shared_ptr<detail::Pending>& pending,
               Response response, obs::Histogram::Batch* latency = nullptr,
               std::chrono::steady_clock::time_point cycle_now = {});

  Options options_;
  std::string cache_version_;
  ResultCache cache_;
  core::Scheduler scheduler_;

  // Operating points interned from inline request specs, keyed by their
  // canonical names. std::map for node stability: Miss::config and the
  // sweep path point into it while new points are interned concurrently.
  mutable std::mutex config_mutex_;
  mutable std::map<std::string, sim::GpuConfig> registered_configs_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<detail::Pending>> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> faulted_{0};
};

}  // namespace repro::serve
