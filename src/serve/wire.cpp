#include "serve/wire.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "api/convert.hpp"  // thermal knob range validation (§16)
#include "dvfs/dvfs.hpp"    // inline operating-point validation (§15)
#include "obs/metrics.hpp"  // RegistrySnapshot for the metrics endpoint
#include "obs/trace.hpp"    // append_json_escaped

namespace repro::serve {

std::string_view to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kShed: return "shed";
    case Status::kDeadlineExpired: return "deadline_expired";
    case Status::kCancelled: return "cancelled";
    case Status::kUnknownProgram: return "unknown_program";
    case Status::kUnknownConfig: return "unknown_config";
    case Status::kInvalidRequest: return "invalid";
    case Status::kFailed: return "failed";
  }
  return "invalid";
}

std::string_view to_string(Degradation degradation) {
  switch (degradation) {
    case Degradation::kNone: return "ok";
    case Degradation::kRetried: return "retried";
    case Degradation::kDegraded: return "degraded";
  }
  return "ok";
}

namespace {

void append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_string_field(std::string& out, std::string_view name,
                         std::string_view value) {
  out += '"';
  out += name;
  out += "\":\"";
  obs::append_json_escaped(out, value);
  out += '"';
}

// Minimal parser for one flat JSON object: string / number / bool / null
// values only. Nested objects and arrays are rejected — the wire format is
// flat by design, and rejecting keeps the parser small enough to audit.
struct Parser {
  std::string_view s;
  std::size_t i = 0;
  std::string error;

  bool fail(std::string message) {
    if (error.empty()) error = std::move(message);
    return false;
  }
  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n')) {
      ++i;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (i + 4 > s.size()) return fail("truncated \\u escape");
    out = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i >= s.size()) return fail("truncated escape");
      const char esc = s[i++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required
            if (i + 1 >= s.size() || s[i] != '\\' || s[i + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            i += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  enum class Kind { kString, kNumber, kBool, kNull };
  struct Value {
    Kind kind = Kind::kNull;
    std::string text;  // string contents or the raw number token
    bool flag = false;
  };

  bool parse_value(Value& out) {
    skip_ws();
    if (i >= s.size()) return fail("truncated value");
    const char c = s[i];
    if (c == '"') {
      out.kind = Kind::kString;
      return parse_string(out.text);
    }
    if (c == '{' || c == '[') return fail("nested values unsupported");
    if (s.substr(i, 4) == "true") {
      out.kind = Kind::kBool;
      out.flag = true;
      i += 4;
      return true;
    }
    if (s.substr(i, 5) == "false") {
      out.kind = Kind::kBool;
      out.flag = false;
      i += 5;
      return true;
    }
    if (s.substr(i, 4) == "null") {
      out.kind = Kind::kNull;
      i += 4;
      return true;
    }
    out.kind = Kind::kNumber;
    out.text.clear();
    while (i < s.size()) {
      const char d = s[i];
      if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
          d == 'e' || d == 'E') {
        out.text += d;
        ++i;
      } else {
        break;
      }
    }
    if (out.text.empty()) return fail("bad value");
    return true;
  }
};

bool to_index(const Parser::Value& value, std::size_t& out) {
  if (value.kind != Parser::Kind::kNumber || value.text.empty()) return false;
  out = 0;
  for (const char c : value.text) {
    if (c < '0' || c > '9') return false;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (out > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
      return false;
    }
    out = out * 10 + digit;
  }
  return true;
}

bool to_double(const Parser::Value& value, double& out) {
  if (value.kind != Parser::Kind::kNumber || value.text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(value.text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string_view sampling_mode_name(v1::SamplingMode mode) {
  switch (mode) {
    case v1::SamplingMode::kExact: return "exact";
    case v1::SamplingMode::kStratified: return "stratified";
    case v1::SamplingMode::kSystematic: return "systematic";
  }
  return "exact";
}

bool parse_sampling_mode(std::string_view text, v1::SamplingMode& out) {
  if (text == "exact") out = v1::SamplingMode::kExact;
  else if (text == "stratified") out = v1::SamplingMode::kStratified;
  else if (text == "systematic") out = v1::SamplingMode::kSystematic;
  else return false;
  return true;
}

// Parses the inline operating-point form "config":{...} — the single
// permitted nesting on an inbound request line (wire.hpp header). The
// parser position sits on the '{'. Validates and canonicalizes through
// dvfs::normalized so `request.config` ends up holding the point's cache
// identity; specs matching a paper operating point collapse to the plain
// name form.
bool parse_config_object(Parser& p, v1::ExperimentRequest& request,
                         std::string& error) {
  if (!p.consume('{')) {
    error = p.error;
    return false;
  }
  sim::GpuConfig config;
  config.name.clear();
  bool have_core = false, have_mem = false;
  bool have_core_voltage = false, have_mem_voltage = false;
  p.skip_ws();
  if (p.i < p.s.size() && p.s[p.i] == '}') {
    ++p.i;
  } else {
    for (;;) {
      std::string key;
      Parser::Value value;
      if (!p.parse_string(key) || !p.consume(':') || !p.parse_value(value)) {
        error = p.error;
        return false;
      }
      if (key == "name") {
        if (value.kind != Parser::Kind::kString) {
          error = "config name must be a string";
          return false;
        }
        config.name = std::move(value.text);
      } else if (key == "core_mhz") {
        if (!to_double(value, config.core_mhz)) {
          error = "bad core_mhz";
          return false;
        }
        have_core = true;
      } else if (key == "mem_mhz") {
        if (!to_double(value, config.mem_mhz)) {
          error = "bad mem_mhz";
          return false;
        }
        have_mem = true;
      } else if (key == "core_voltage") {
        if (!to_double(value, config.core_voltage)) {
          error = "bad core_voltage";
          return false;
        }
        have_core_voltage = true;
      } else if (key == "mem_voltage") {
        if (!to_double(value, config.mem_voltage)) {
          error = "bad mem_voltage";
          return false;
        }
        have_mem_voltage = true;
      } else if (key == "ecc") {
        if (value.kind != Parser::Kind::kBool) {
          error = "config ecc must be a bool";
          return false;
        }
        config.ecc = value.flag;
      } else {
        // Unlike top-level fields, an unknown *config* field is an error:
        // ignoring a typo here would silently measure (and cache) a
        // different operating point than the client asked for.
        error = "unknown config field: " + key;
        return false;
      }
      p.skip_ws();
      if (p.i < p.s.size() && p.s[p.i] == ',') {
        ++p.i;
        continue;
      }
      if (!p.consume('}')) {
        error = p.error;
        return false;
      }
      break;
    }
  }
  if (!have_core || !have_mem) {
    error = "config object requires core_mhz and mem_mhz";
    return false;
  }
  if (!have_core_voltage) {
    config.core_voltage = dvfs::core_voltage_rule(config.core_mhz);
  }
  if (!have_mem_voltage) {
    config.mem_voltage = dvfs::mem_voltage_rule(config.mem_mhz);
  }
  try {
    const sim::GpuConfig normalized = dvfs::normalized(std::move(config));
    request.config = normalized.name;
    bool paper = false;
    for (const sim::GpuConfig& standard : sim::standard_configs()) {
      if (normalized.name == standard.name) paper = true;
    }
    if (paper) {
      // Paper operating point: collapse to the name form so the request
      // re-encodes byte-identically to pre-sweep traffic.
      request.has_config_spec = false;
    } else {
      request.has_config_spec = true;
      request.config_spec.name = normalized.name;
      request.config_spec.core_mhz = normalized.core_mhz;
      request.config_spec.mem_mhz = normalized.mem_mhz;
      request.config_spec.core_voltage = normalized.core_voltage;
      request.config_spec.mem_voltage = normalized.mem_voltage;
      request.config_spec.ecc = normalized.ecc;
    }
  } catch (const std::invalid_argument& e) {
    error = std::string("bad config: ") + e.what();
    return false;
  }
  return true;
}

}  // namespace

bool parse_request_line(std::string_view line, v1::ExperimentRequest& out,
                        std::string& error) {
  Parser p;
  p.s = line;
  v1::ExperimentRequest request;
  bool have_program = false, have_config = false;
  if (!p.consume('{')) {
    error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.i < p.s.size() && p.s[p.i] == '}') {
    ++p.i;
  } else {
    for (;;) {
      std::string key;
      Parser::Value value;
      if (!p.parse_string(key) || !p.consume(':')) {
        error = p.error;
        return false;
      }
      p.skip_ws();
      const bool inline_config =
          key == "config" && p.i < p.s.size() && p.s[p.i] == '{';
      if (inline_config) {
        if (!parse_config_object(p, request, error)) return false;
        have_config = true;
      } else if (!p.parse_value(value)) {
        error = p.error;
        return false;
      } else if (key == "v") {
        std::size_t version = 0;
        if (!to_index(value, version) || version != v1::kApiVersion) {
          error = "unsupported wire version";
          return false;
        }
      } else if (key == "id") {
        std::size_t id = 0;
        if (!to_index(value, id)) {
          error = "bad id";
          return false;
        }
        request.id = id;
      } else if (key == "program") {
        if (value.kind != Parser::Kind::kString) {
          error = "program must be a string";
          return false;
        }
        request.program = std::move(value.text);
        have_program = true;
      } else if (key == "config") {
        if (value.kind != Parser::Kind::kString) {
          error = "config must be a string";
          return false;
        }
        request.config = std::move(value.text);
        have_config = true;
      } else if (key == "input") {
        if (!to_index(value, request.input_index)) {
          error = "bad input index";
          return false;
        }
      } else if (key == "deadline_ms") {
        if (!to_double(value, request.deadline_ms) ||
            request.deadline_ms < 0.0) {
          error = "bad deadline_ms";
          return false;
        }
      } else if (key == "sample_mode") {
        if (value.kind != Parser::Kind::kString ||
            !parse_sampling_mode(value.text, request.sampling.mode)) {
          error = "bad sample_mode (exact|stratified|systematic)";
          return false;
        }
      } else if (key == "sample_fraction") {
        if (!to_double(value, request.sampling.fraction) ||
            !(request.sampling.fraction > 0.0) ||
            request.sampling.fraction > 1.0) {
          error = "bad sample_fraction (must be in (0, 1])";
          return false;
        }
      } else if (key == "sample_target_rel_err") {
        if (!to_double(value, request.sampling.target_rel_error) ||
            request.sampling.target_rel_error < 0.0 ||
            request.sampling.target_rel_error >= 1.0) {
          error = "bad sample_target_rel_err (must be in [0, 1))";
          return false;
        }
      } else if (key == "sample_seed") {
        std::size_t seed = 0;
        if (!to_index(value, seed)) {
          error = "bad sample_seed";
          return false;
        }
        request.sampling.seed = seed;
      } else if (key == "thermal") {
        if (value.kind != Parser::Kind::kBool) {
          error = "thermal must be a bool";
          return false;
        }
        request.thermal.enabled = value.flag;
      } else if (key == "thermal_ambient_c") {
        if (!to_double(value, request.thermal.ambient_c)) {
          error = "bad thermal_ambient_c";
          return false;
        }
      } else if (key == "thermal_ceiling_c") {
        if (!to_double(value, request.thermal.ceiling_c)) {
          error = "bad thermal_ceiling_c";
          return false;
        }
      } else if (key == "thermal_hysteresis_c") {
        if (!to_double(value, request.thermal.hysteresis_c)) {
          error = "bad thermal_hysteresis_c";
          return false;
        }
      } else if (key == "thermal_leak_k") {
        if (!to_double(value, request.thermal.leak_k_per_c)) {
          error = "bad thermal_leak_k";
          return false;
        }
      } else if (key == "thermal_leak_t0_c") {
        if (!to_double(value, request.thermal.leak_t0_c)) {
          error = "bad thermal_leak_t0_c";
          return false;
        }
      }  // unknown fields: ignored for forward compatibility
      p.skip_ws();
      if (p.i < p.s.size() && p.s[p.i] == ',') {
        ++p.i;
        continue;
      }
      if (!p.consume('}')) {
        error = p.error;
        return false;
      }
      break;
    }
  }
  p.skip_ws();
  if (p.i != p.s.size()) {
    error = "trailing content after object";
    return false;
  }
  if (!have_program || !have_config) {
    error = "missing required field: program and config";
    return false;
  }
  if (request.thermal.enabled) {
    error = v1::detail::thermal_options_error(request.thermal);
    if (!error.empty()) return false;
    if (request.sampling.mode != v1::SamplingMode::kExact) {
      error = "thermal scenarios are exact-only; drop sample_mode";
      return false;
    }
  }
  out = std::move(request);
  return true;
}

std::string format_request_line(const v1::ExperimentRequest& request) {
  std::string line = "{\"v\":1,\"id\":";
  line += std::to_string(request.id);
  line += ',';
  append_string_field(line, "program", request.program);
  line += ",\"input\":";
  line += std::to_string(request.input_index);
  line += ',';
  if (request.has_config_spec) {
    // Inline operating point (round-trip stable: an explicit name and
    // explicit voltages re-normalize to themselves on parse).
    line += "\"config\":{";
    append_string_field(line, "name", request.config_spec.name);
    line += ",\"core_mhz\":";
    append_double(line, request.config_spec.core_mhz);
    line += ",\"mem_mhz\":";
    append_double(line, request.config_spec.mem_mhz);
    line += ",\"core_voltage\":";
    append_double(line, request.config_spec.core_voltage);
    line += ",\"mem_voltage\":";
    append_double(line, request.config_spec.mem_voltage);
    line += ",\"ecc\":";
    line += request.config_spec.ecc ? "true" : "false";
    line += '}';
  } else {
    append_string_field(line, "config", request.config);
  }
  line += ",\"deadline_ms\":";
  append_double(line, request.deadline_ms);
  // Sampling fields only appear on sampled requests, so exact request
  // lines stay byte-identical to the pre-sampling wire golden.
  if (request.sampling.mode != v1::SamplingMode::kExact) {
    line += ",\"sample_mode\":\"";
    line += sampling_mode_name(request.sampling.mode);
    line += "\",\"sample_fraction\":";
    append_double(line, request.sampling.fraction);
    line += ",\"sample_target_rel_err\":";
    append_double(line, request.sampling.target_rel_error);
    line += ",\"sample_seed\":";
    line += std::to_string(request.sampling.seed);
  }
  // Thermal fields only appear on thermal requests, so pre-thermal
  // request lines stay byte-identical to the wire golden.
  if (request.thermal.enabled) {
    line += ",\"thermal\":true,\"thermal_ambient_c\":";
    append_double(line, request.thermal.ambient_c);
    line += ",\"thermal_ceiling_c\":";
    append_double(line, request.thermal.ceiling_c);
    line += ",\"thermal_hysteresis_c\":";
    append_double(line, request.thermal.hysteresis_c);
    line += ",\"thermal_leak_k\":";
    append_double(line, request.thermal.leak_k_per_c);
    line += ",\"thermal_leak_t0_c\":";
    append_double(line, request.thermal.leak_t0_c);
  }
  line += '}';
  return line;
}

std::string format_response_line(const Response& response) {
  std::string line = "{\"v\":1,\"id\":";
  line += std::to_string(response.id);
  line += ",\"status\":\"";
  line += to_string(response.status);
  line += '"';
  if (response.status == Status::kOk) {
    line += ",\"cached\":";
    line += response.cached ? "true" : "false";
    line += ",\"degradation\":\"";
    line += to_string(response.degradation);
    line += "\",\"retries\":";
    line += std::to_string(response.retries);
    line += ',';
    append_string_field(line, "key", response.key);
    line += ",\"usable\":";
    line += response.result.usable ? "true" : "false";
    line += ",\"time_s\":";
    append_double(line, response.result.time_s);
    line += ",\"energy_j\":";
    append_double(line, response.result.energy_j);
    line += ",\"power_w\":";
    append_double(line, response.result.power_w);
    line += ",\"true_active_s\":";
    append_double(line, response.result.true_active_s);
    line += ",\"time_spread\":";
    append_double(line, response.result.time_spread);
    line += ",\"energy_spread\":";
    append_double(line, response.result.energy_spread);
    // CI fields only appear on sampled results, so exact response lines
    // stay byte-identical to the pre-sampling wire golden.
    if (response.result.sampled) {
      line += ",\"sampled\":true,\"sample_fraction\":";
      append_double(line, response.result.sample_fraction);
      line += ",\"time_ci_low\":";
      append_double(line, response.result.time_ci.low);
      line += ",\"time_ci_high\":";
      append_double(line, response.result.time_ci.high);
      line += ",\"energy_ci_low\":";
      append_double(line, response.result.energy_ci.low);
      line += ",\"energy_ci_high\":";
      append_double(line, response.result.energy_ci.high);
      line += ",\"power_ci_low\":";
      append_double(line, response.result.power_ci.low);
      line += ",\"power_ci_high\":";
      append_double(line, response.result.power_ci.high);
    }
    // Thermal telemetry only appears on thermal results, so pre-thermal
    // response lines stay byte-identical to the wire golden.
    if (response.result.thermal) {
      line += ",\"thermal\":true,\"throttled\":";
      line += response.result.throttled ? "true" : "false";
      line += ",\"peak_temp_c\":";
      append_double(line, response.result.peak_temp_c);
      line += ",\"throttle_events\":";
      line += std::to_string(response.result.throttle_events);
    }
  } else {
    if (!response.key.empty()) {
      line += ',';
      append_string_field(line, "key", response.key);
    }
    line += ',';
    append_string_field(line, "error", response.error);
  }
  line += '}';
  return line;
}

namespace {

// Scans `line` as a flat object and reports whether `name` is present
// with value true (bool flag endpoints: health, metrics). Anything that
// does not parse as a flat object does not match.
bool has_true_flag(std::string_view line, std::string_view name) {
  Parser p;
  p.s = line;
  if (!p.consume('{')) return false;
  p.skip_ws();
  if (p.i < p.s.size() && p.s[p.i] == '}') return false;  // empty object
  bool found = false;
  for (;;) {
    std::string key;
    Parser::Value value;
    if (!p.parse_string(key) || !p.consume(':') || !p.parse_value(value)) {
      return false;
    }
    if (key == name) {
      found = value.kind == Parser::Kind::kBool && value.flag;
    }
    p.skip_ws();
    if (p.i < p.s.size() && p.s[p.i] == ',') {
      ++p.i;
      continue;
    }
    if (!p.consume('}')) return false;
    break;
  }
  p.skip_ws();
  return found && p.i == p.s.size();
}

}  // namespace

bool is_health_request(std::string_view line) {
  return has_true_flag(line, "health");
}

std::string format_health_line(const HealthSnapshot& health) {
  std::string line = "{\"v\":1,\"health\":true,\"accepting\":";
  line += health.accepting ? "true" : "false";
  line += ",\"submitted\":";
  line += std::to_string(health.submitted);
  line += ",\"completed\":";
  line += std::to_string(health.completed);
  line += ",\"retried\":";
  line += std::to_string(health.retried);
  line += ",\"degraded\":";
  line += std::to_string(health.degraded);
  line += ",\"failed\":";
  line += std::to_string(health.failed);
  line += ",\"queue_depth\":";
  line += std::to_string(health.queue_depth);
  line += ",\"faults_injected\":";
  line += std::to_string(health.faults_injected);
  line += '}';
  return line;
}

bool is_metrics_request(std::string_view line) {
  return has_true_flag(line, "metrics");
}

std::string format_metrics_line(const obs::RegistrySnapshot& snap) {
  std::string line = "{\"v\":1,\"metrics\":true,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) line += ',';
    first = false;
    line += '"';
    obs::append_json_escaped(line, name);
    line += "\":";
    line += std::to_string(value);
  }
  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) line += ',';
    first = false;
    line += '"';
    obs::append_json_escaped(line, name);
    line += "\":";
    append_double(line, value);
  }
  line += "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : snap.histograms) {
    if (!first) line += ',';
    first = false;
    line += '"';
    obs::append_json_escaped(line, name);
    line += "\":{\"count\":";
    line += std::to_string(s.count);
    line += ",\"sum\":";
    append_double(line, s.sum);
    line += ",\"min\":";
    append_double(line, s.count == 0 ? 0.0 : s.min);
    line += ",\"max\":";
    append_double(line, s.max);
    line += ",\"mean\":";
    append_double(line, s.mean());
    line += ",\"p50\":";
    append_double(line, s.percentile(0.50));
    line += ",\"p95\":";
    append_double(line, s.percentile(0.95));
    line += ",\"p99\":";
    append_double(line, s.percentile(0.99));
    line += '}';
  }
  line += "}}";
  return line;
}

bool is_attribution_request(std::string_view line) {
  Parser p;
  p.s = line;
  if (!p.consume('{')) return false;
  p.skip_ws();
  if (p.i < p.s.size() && p.s[p.i] == '}') return false;
  bool found = false;
  for (;;) {
    std::string key;
    Parser::Value value;
    if (!p.parse_string(key) || !p.consume(':') || !p.parse_value(value)) {
      return false;
    }
    if (key == "attribution") {
      found = value.kind == Parser::Kind::kString;
    }
    p.skip_ws();
    if (p.i < p.s.size() && p.s[p.i] == ',') {
      ++p.i;
      continue;
    }
    if (!p.consume('}')) return false;
    break;
  }
  p.skip_ws();
  return found && p.i == p.s.size();
}

bool parse_attribution_request(std::string_view line,
                               v1::ExperimentRequest& out,
                               std::string& error) {
  Parser p;
  p.s = line;
  v1::ExperimentRequest request;
  bool have_program = false, have_config = false;
  if (!p.consume('{')) {
    error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.i < p.s.size() && p.s[p.i] == '}') {
    ++p.i;
  } else {
    for (;;) {
      std::string key;
      Parser::Value value;
      if (!p.parse_string(key) || !p.consume(':')) {
        error = p.error;
        return false;
      }
      p.skip_ws();
      const bool inline_config =
          key == "config" && p.i < p.s.size() && p.s[p.i] == '{';
      if (inline_config) {
        if (!parse_config_object(p, request, error)) return false;
        have_config = true;
      } else if (!p.parse_value(value)) {
        error = p.error;
        return false;
      } else if (key == "v") {
        std::size_t version = 0;
        if (!to_index(value, version) || version != v1::kApiVersion) {
          error = "unsupported wire version";
          return false;
        }
      } else if (key == "attribution") {
        if (value.kind != Parser::Kind::kString) {
          error = "attribution must be a program name string";
          return false;
        }
        request.program = std::move(value.text);
        have_program = true;
      } else if (key == "config") {
        if (value.kind != Parser::Kind::kString) {
          error = "config must be a string";
          return false;
        }
        request.config = std::move(value.text);
        have_config = true;
      } else if (key == "input") {
        if (!to_index(value, request.input_index)) {
          error = "bad input index";
          return false;
        }
      } else if (key == "id") {
        std::size_t id = 0;
        if (!to_index(value, id)) {
          error = "bad id";
          return false;
        }
        request.id = id;
      }  // unknown fields: ignored for forward compatibility
      p.skip_ws();
      if (p.i < p.s.size() && p.s[p.i] == ',') {
        ++p.i;
        continue;
      }
      if (!p.consume('}')) {
        error = p.error;
        return false;
      }
      break;
    }
  }
  p.skip_ws();
  if (p.i != p.s.size()) {
    error = "trailing content after object";
    return false;
  }
  if (!have_program || !have_config) {
    error = "missing required field: attribution and config";
    return false;
  }
  out = std::move(request);
  return true;
}

namespace {

void append_class_array(std::string& line,
                        const std::array<double, v1::kNumEnergyClasses>&
                            classes) {
  line += '[';
  for (int c = 0; c < v1::kNumEnergyClasses; ++c) {
    if (c != 0) line += ',';
    append_double(line, classes[static_cast<std::size_t>(c)]);
  }
  line += ']';
}

}  // namespace

std::string format_attribution_line(std::string_view key,
                                    const v1::Attribution& table) {
  std::string line = "{\"v\":1,\"attribution\":true,";
  append_string_field(line, "key", key);
  line += ",\"total_time_s\":";
  append_double(line, table.total_time_s);
  line += ",\"model_energy_j\":";
  append_double(line, table.model_energy_j);
  line += ",\"attributed_energy_j\":";
  append_double(line, table.attributed_energy_j);
  line += ",\"static_energy_j\":";
  append_double(line, table.static_energy_j);
  line += ",\"classes\":[";
  const auto& names = v1::energy_class_names();
  for (int c = 0; c < v1::kNumEnergyClasses; ++c) {
    if (c != 0) line += ',';
    line += '"';
    line += names[static_cast<std::size_t>(c)];
    line += '"';
  }
  line += "],\"class_energy_j\":";
  append_class_array(line, table.class_energy_j);
  line += ",\"kernels\":[";
  bool first = true;
  for (const v1::AttributionRow& k : table.kernels) {
    if (!first) line += ',';
    first = false;
    line += '{';
    append_string_field(line, "kernel", k.kernel);
    line += ",\"phases\":";
    line += std::to_string(k.phases);
    line += ",\"time_s\":";
    append_double(line, k.time_s);
    line += ",\"model_energy_j\":";
    append_double(line, k.model_energy_j);
    line += ",\"power_w\":";
    append_double(line, k.avg_power_w);
    line += ",\"share\":";
    append_double(line, k.energy_share);
    line += ",\"energy_j\":";
    append_double(line, k.energy_j);
    line += ",\"class_energy_j\":";
    append_class_array(line, k.class_energy_j);
    line += ",\"static_energy_j\":";
    append_double(line, k.static_energy_j);
    line += '}';
  }
  line += "]}";
  return line;
}

bool is_topology_request(std::string_view line) {
  return has_true_flag(line, "topology");
}

std::string format_topology_line(const TopologySnapshot& topology) {
  std::string line = "{\"v\":1,\"topology\":true,\"epoch\":";
  line += std::to_string(topology.epoch);
  line += ",\"workers\":";
  line += std::to_string(topology.workers);
  line += ",\"alive\":";
  line += std::to_string(topology.alive);
  line += ",\"rebalances\":";
  line += std::to_string(topology.rebalances);
  line += ",\"handoff_keys\":";
  line += std::to_string(topology.handoff_keys);
  line += ",\"ring\":[";
  bool first = true;
  for (const TopologyWorker& worker : topology.ring) {
    if (!first) line += ',';
    first = false;
    line += '{';
    append_string_field(line, "worker", worker.name);
    line += ",\"alive\":";
    line += worker.alive ? "true" : "false";
    line += ",\"vnodes\":";
    line += std::to_string(worker.virtual_nodes);
    line += ",\"owned_share\":";
    append_double(line, worker.owned_share);
    line += ",\"routed\":";
    line += std::to_string(worker.routed);
    line += '}';
  }
  line += "]}";
  return line;
}

std::string format_router_health_line(const RouterHealth& health) {
  std::string line = "{\"v\":1,\"health\":true,\"router\":true,\"accepting\":";
  line += health.accepting ? "true" : "false";
  line += ",\"workers\":";
  line += std::to_string(health.workers);
  line += ",\"alive\":";
  line += std::to_string(health.alive);
  line += ",\"epoch\":";
  line += std::to_string(health.epoch);
  line += ",\"routed\":";
  line += std::to_string(health.routed);
  line += ",\"rerouted\":";
  line += std::to_string(health.rerouted);
  line += ",\"worker_kills\":";
  line += std::to_string(health.worker_kills);
  line += ",\"handoff_keys\":";
  line += std::to_string(health.handoff_keys);
  line += ",\"failed\":";
  line += std::to_string(health.failed);
  line += '}';
  return line;
}

std::string format_attribution_error_line(Status status, std::string_view key,
                                          std::string_view error) {
  std::string line = "{\"v\":1,\"attribution\":true,\"status\":\"";
  line += to_string(status);
  line += '"';
  if (!key.empty()) {
    line += ',';
    append_string_field(line, "key", key);
  }
  line += ',';
  append_string_field(line, "error", error);
  line += '}';
  return line;
}

namespace {

// Scans `line` as a flat object and reports whether `name` is present
// holding a string (request-detection contract of is_attribution_request:
// responses carry `name`:true, so they never match).
bool has_string_key(std::string_view line, std::string_view name) {
  Parser p;
  p.s = line;
  if (!p.consume('{')) return false;
  p.skip_ws();
  if (p.i < p.s.size() && p.s[p.i] == '}') return false;
  bool found = false;
  for (;;) {
    std::string key;
    Parser::Value value;
    if (!p.parse_string(key) || !p.consume(':') || !p.parse_value(value)) {
      return false;
    }
    if (key == name) {
      found = value.kind == Parser::Kind::kString;
    }
    p.skip_ws();
    if (p.i < p.s.size() && p.s[p.i] == ',') {
      ++p.i;
      continue;
    }
    if (!p.consume('}')) return false;
    break;
  }
  p.skip_ws();
  return found && p.i == p.s.size();
}

// Shared field loop of the sweep and recommend request parsers: the grid,
// pruning and sampling fields are identical; recommend additionally
// accepts "objective" and "perf_cap_rel". `endpoint` names the key that
// carries the program ("sweep" or "recommend").
bool parse_grid_request_line(std::string_view line, std::string_view endpoint,
                             bool recommend, std::uint64_t& id,
                             std::string& program, std::size_t& input_index,
                             v1::SweepOptions& options,
                             v1::Objective& objective, double& perf_cap_rel,
                             bool& exclude_throttled, std::string& error) {
  Parser p;
  p.s = line;
  bool have_program = false;
  if (!p.consume('{')) {
    error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.i < p.s.size() && p.s[p.i] == '}') {
    ++p.i;
  } else {
    for (;;) {
      std::string key;
      Parser::Value value;
      if (!p.parse_string(key) || !p.consume(':') || !p.parse_value(value)) {
        error = p.error;
        return false;
      }
      if (key == "v") {
        std::size_t version = 0;
        if (!to_index(value, version) || version != v1::kApiVersion) {
          error = "unsupported wire version";
          return false;
        }
      } else if (key == "id") {
        std::size_t parsed = 0;
        if (!to_index(value, parsed)) {
          error = "bad id";
          return false;
        }
        id = parsed;
      } else if (key == endpoint) {
        if (value.kind != Parser::Kind::kString) {
          error = std::string(endpoint) + " must be a program name string";
          return false;
        }
        program = std::move(value.text);
        have_program = true;
      } else if (key == "input") {
        if (!to_index(value, input_index)) {
          error = "bad input index";
          return false;
        }
      } else if (key == "core_mhz_min") {
        if (!to_double(value, options.core_mhz.min)) {
          error = "bad core_mhz_min";
          return false;
        }
      } else if (key == "core_mhz_max") {
        if (!to_double(value, options.core_mhz.max)) {
          error = "bad core_mhz_max";
          return false;
        }
      } else if (key == "core_mhz_step") {
        if (!to_double(value, options.core_mhz.step)) {
          error = "bad core_mhz_step";
          return false;
        }
      } else if (key == "mem_mhz_min") {
        if (!to_double(value, options.mem_mhz.min)) {
          error = "bad mem_mhz_min";
          return false;
        }
      } else if (key == "mem_mhz_max") {
        if (!to_double(value, options.mem_mhz.max)) {
          error = "bad mem_mhz_max";
          return false;
        }
      } else if (key == "mem_mhz_step") {
        if (!to_double(value, options.mem_mhz.step)) {
          error = "bad mem_mhz_step";
          return false;
        }
      } else if (key == "ecc") {
        if (value.kind != Parser::Kind::kBool) {
          error = "ecc must be a bool";
          return false;
        }
        options.ecc = value.flag;
      } else if (key == "prune") {
        if (value.kind != Parser::Kind::kBool) {
          error = "prune must be a bool";
          return false;
        }
        options.prune = value.flag;
      } else if (key == "prune_margin") {
        if (!to_double(value, options.prune_margin) ||
            options.prune_margin < 0.0 || options.prune_margin >= 1.0) {
          error = "bad prune_margin (must be in [0, 1))";
          return false;
        }
      } else if (key == "sample_mode") {
        if (value.kind != Parser::Kind::kString ||
            !parse_sampling_mode(value.text, options.sampling.mode)) {
          error = "bad sample_mode (exact|stratified|systematic)";
          return false;
        }
      } else if (key == "sample_fraction") {
        if (!to_double(value, options.sampling.fraction) ||
            !(options.sampling.fraction > 0.0) ||
            options.sampling.fraction > 1.0) {
          error = "bad sample_fraction (must be in (0, 1])";
          return false;
        }
      } else if (key == "sample_target_rel_err") {
        if (!to_double(value, options.sampling.target_rel_error) ||
            options.sampling.target_rel_error < 0.0 ||
            options.sampling.target_rel_error >= 1.0) {
          error = "bad sample_target_rel_err (must be in [0, 1))";
          return false;
        }
      } else if (key == "sample_seed") {
        std::size_t seed = 0;
        if (!to_index(value, seed)) {
          error = "bad sample_seed";
          return false;
        }
        options.sampling.seed = seed;
      } else if (recommend && key == "objective") {
        if (value.kind != Parser::Kind::kString ||
            !v1::parse_objective(value.text, objective)) {
          error = "bad objective (min_energy|min_edp|min_ed2p|perf_cap)";
          return false;
        }
      } else if (recommend && key == "perf_cap_rel") {
        if (!to_double(value, perf_cap_rel) || !(perf_cap_rel >= 1.0)) {
          error = "bad perf_cap_rel (must be >= 1)";
          return false;
        }
      } else if (recommend && key == "exclude_throttled") {
        if (value.kind != Parser::Kind::kBool) {
          error = "exclude_throttled must be a bool";
          return false;
        }
        exclude_throttled = value.flag;
      } else if (key == "thermal") {
        if (value.kind != Parser::Kind::kBool) {
          error = "thermal must be a bool";
          return false;
        }
        options.thermal.enabled = value.flag;
      } else if (key == "thermal_ambient_c") {
        if (!to_double(value, options.thermal.ambient_c)) {
          error = "bad thermal_ambient_c";
          return false;
        }
      } else if (key == "thermal_ceiling_c") {
        if (!to_double(value, options.thermal.ceiling_c)) {
          error = "bad thermal_ceiling_c";
          return false;
        }
      } else if (key == "thermal_hysteresis_c") {
        if (!to_double(value, options.thermal.hysteresis_c)) {
          error = "bad thermal_hysteresis_c";
          return false;
        }
      } else if (key == "thermal_leak_k") {
        if (!to_double(value, options.thermal.leak_k_per_c)) {
          error = "bad thermal_leak_k";
          return false;
        }
      } else if (key == "thermal_leak_t0_c") {
        if (!to_double(value, options.thermal.leak_t0_c)) {
          error = "bad thermal_leak_t0_c";
          return false;
        }
      }  // unknown fields: ignored for forward compatibility
      p.skip_ws();
      if (p.i < p.s.size() && p.s[p.i] == ',') {
        ++p.i;
        continue;
      }
      if (!p.consume('}')) {
        error = p.error;
        return false;
      }
      break;
    }
  }
  p.skip_ws();
  if (p.i != p.s.size()) {
    error = "trailing content after object";
    return false;
  }
  if (!have_program) {
    error = "missing required field: " + std::string(endpoint);
    return false;
  }
  if (options.thermal.enabled) {
    error = v1::detail::thermal_options_error(options.thermal);
    if (!error.empty()) return false;
  }
  return true;
}

// Grid, pruning and sampling fields shared by the two canonical request
// encodings. All fields are always emitted — these line shapes are new,
// so there is no byte-compat constraint to elide defaults for.
void append_grid_fields(std::string& line, const v1::SweepOptions& options) {
  line += ",\"core_mhz_min\":";
  append_double(line, options.core_mhz.min);
  line += ",\"core_mhz_max\":";
  append_double(line, options.core_mhz.max);
  line += ",\"core_mhz_step\":";
  append_double(line, options.core_mhz.step);
  line += ",\"mem_mhz_min\":";
  append_double(line, options.mem_mhz.min);
  line += ",\"mem_mhz_max\":";
  append_double(line, options.mem_mhz.max);
  line += ",\"mem_mhz_step\":";
  append_double(line, options.mem_mhz.step);
  line += ",\"ecc\":";
  line += options.ecc ? "true" : "false";
  line += ",\"prune\":";
  line += options.prune ? "true" : "false";
  line += ",\"prune_margin\":";
  append_double(line, options.prune_margin);
  line += ",\"sample_mode\":\"";
  line += sampling_mode_name(options.sampling.mode);
  line += "\",\"sample_fraction\":";
  append_double(line, options.sampling.fraction);
  line += ",\"sample_target_rel_err\":";
  append_double(line, options.sampling.target_rel_error);
  line += ",\"sample_seed\":";
  line += std::to_string(options.sampling.seed);
  // Unlike the always-emitted fields above, the thermal block is
  // conditional: pre-thermal grid request lines must stay byte-identical
  // to the wire golden.
  if (options.thermal.enabled) {
    line += ",\"thermal\":true,\"thermal_ambient_c\":";
    append_double(line, options.thermal.ambient_c);
    line += ",\"thermal_ceiling_c\":";
    append_double(line, options.thermal.ceiling_c);
    line += ",\"thermal_hysteresis_c\":";
    append_double(line, options.thermal.hysteresis_c);
    line += ",\"thermal_leak_k\":";
    append_double(line, options.thermal.leak_k_per_c);
    line += ",\"thermal_leak_t0_c\":";
    append_double(line, options.thermal.leak_t0_c);
  }
}

void append_config_fields(std::string& line, const v1::GpuConfigSpec& config) {
  line += ",\"core_mhz\":";
  append_double(line, config.core_mhz);
  line += ",\"mem_mhz\":";
  append_double(line, config.mem_mhz);
  line += ",\"core_voltage\":";
  append_double(line, config.core_voltage);
  line += ",\"mem_voltage\":";
  append_double(line, config.mem_voltage);
  line += ",\"ecc\":";
  line += config.ecc ? "true" : "false";
}

}  // namespace

bool is_sweep_request(std::string_view line) {
  return has_string_key(line, "sweep");
}

bool parse_sweep_request(std::string_view line, SweepRequest& out,
                         std::string& error) {
  SweepRequest request;
  v1::Objective objective = v1::Objective::kMinEdp;
  double perf_cap_rel = 1.10;
  bool exclude_throttled = false;
  if (!parse_grid_request_line(line, "sweep", false, request.id,
                               request.program, request.input_index,
                               request.options, objective, perf_cap_rel,
                               exclude_throttled, error)) {
    return false;
  }
  out = std::move(request);
  return true;
}

std::string format_sweep_request_line(const SweepRequest& request) {
  std::string line = "{\"v\":1,\"id\":";
  line += std::to_string(request.id);
  line += ',';
  append_string_field(line, "sweep", request.program);
  line += ",\"input\":";
  line += std::to_string(request.input_index);
  append_grid_fields(line, request.options);
  line += '}';
  return line;
}

std::string format_sweep_line(std::uint64_t id, const v1::SweepResult& sweep,
                              Degradation degradation, int retries) {
  std::string line = "{\"v\":1,\"sweep\":true,\"id\":";
  line += std::to_string(id);
  line += ",\"status\":\"ok\",";
  append_string_field(line, "program", sweep.program);
  line += ",\"input\":";
  line += std::to_string(sweep.input_index);
  line += ",\"grid_points\":";
  line += std::to_string(sweep.grid_points);
  line += ",\"pruned\":";
  line += std::to_string(sweep.pruned);
  line += ",\"measured\":";
  line += std::to_string(sweep.measured);
  line += ",\"degradation\":\"";
  line += to_string(degradation);
  line += "\",\"retries\":";
  line += std::to_string(retries);
  line += ",\"points\":[";
  bool first = true;
  for (const v1::SweepPoint& point : sweep.points) {
    if (!first) line += ',';
    first = false;
    line += '{';
    append_string_field(line, "config", point.config.name);
    append_config_fields(line, point.config);
    line += ",\"analytic_time_s\":";
    append_double(line, point.analytic_time_s);
    line += ",\"analytic_energy_j\":";
    append_double(line, point.analytic_energy_j);
    line += ",\"analytic_power_w\":";
    append_double(line, point.analytic_power_w);
    line += ",\"pruned\":";
    line += point.pruned ? "true" : "false";
    line += ",\"measured\":";
    line += point.measured ? "true" : "false";
    if (point.measured) {
      line += ",\"cached\":";
      line += point.cached ? "true" : "false";
      line += ",\"retries\":";
      line += std::to_string(point.retries);
      line += ",\"degraded\":";
      line += point.degraded ? "true" : "false";
      line += ",\"usable\":";
      line += point.result.usable ? "true" : "false";
      line += ",\"time_s\":";
      append_double(line, point.result.time_s);
      line += ",\"energy_j\":";
      append_double(line, point.result.energy_j);
      line += ",\"power_w\":";
      append_double(line, point.result.power_w);
      if (point.result.sampled) {
        line += ",\"sampled\":true,\"sample_fraction\":";
        append_double(line, point.result.sample_fraction);
      }
      if (point.result.thermal) {
        line += ",\"thermal\":true,\"throttled\":";
        line += point.result.throttled ? "true" : "false";
        line += ",\"peak_temp_c\":";
        append_double(line, point.result.peak_temp_c);
        line += ",\"throttle_events\":";
        line += std::to_string(point.result.throttle_events);
      }
      line += ",\"pareto\":";
      line += point.pareto ? "true" : "false";
    }
    line += '}';
  }
  line += "]}";
  return line;
}

std::string format_sweep_error_line(std::uint64_t id, Status status,
                                    std::string_view error) {
  std::string line = "{\"v\":1,\"sweep\":true,\"id\":";
  line += std::to_string(id);
  line += ",\"status\":\"";
  line += to_string(status);
  line += "\",";
  append_string_field(line, "error", error);
  line += '}';
  return line;
}

bool is_recommend_request(std::string_view line) {
  return has_string_key(line, "recommend");
}

bool parse_recommend_request(std::string_view line, RecommendRequest& out,
                             std::string& error) {
  RecommendRequest request;
  if (!parse_grid_request_line(line, "recommend", true, request.id,
                               request.program, request.input_index,
                               request.options, request.objective,
                               request.perf_cap_rel,
                               request.exclude_throttled, error)) {
    return false;
  }
  out = std::move(request);
  return true;
}

std::string format_recommend_request_line(const RecommendRequest& request) {
  std::string line = "{\"v\":1,\"id\":";
  line += std::to_string(request.id);
  line += ',';
  append_string_field(line, "recommend", request.program);
  line += ",\"input\":";
  line += std::to_string(request.input_index);
  line += ",\"objective\":\"";
  line += v1::to_string(request.objective);
  line += "\",\"perf_cap_rel\":";
  append_double(line, request.perf_cap_rel);
  // Emitted only when set: pre-thermal recommend request lines stay
  // byte-identical to the wire golden.
  if (request.exclude_throttled) line += ",\"exclude_throttled\":true";
  append_grid_fields(line, request.options);
  line += '}';
  return line;
}

std::string format_recommend_line(std::uint64_t id,
                                  const v1::Recommendation& recommendation,
                                  Degradation degradation, int retries) {
  std::string line = "{\"v\":1,\"recommend\":true,\"id\":";
  line += std::to_string(id);
  line += ",\"status\":\"ok\",";
  append_string_field(line, "program", recommendation.sweep.program);
  line += ",\"input\":";
  line += std::to_string(recommendation.sweep.input_index);
  line += ",\"objective\":\"";
  line += v1::to_string(recommendation.objective);
  line += "\",\"objective_value\":";
  append_double(line, recommendation.objective_value);
  line += ',';
  append_string_field(line, "config", recommendation.config.name);
  append_config_fields(line, recommendation.config);
  line += ",\"time_s\":";
  append_double(line, recommendation.time_s);
  line += ",\"energy_j\":";
  append_double(line, recommendation.energy_j);
  line += ",\"power_w\":";
  append_double(line, recommendation.power_w);
  line += ",\"grid_points\":";
  line += std::to_string(recommendation.sweep.grid_points);
  line += ",\"pruned\":";
  line += std::to_string(recommendation.sweep.pruned);
  line += ",\"measured\":";
  line += std::to_string(recommendation.sweep.measured);
  line += ",\"degradation\":\"";
  line += to_string(degradation);
  line += "\",\"retries\":";
  line += std::to_string(retries);
  line += '}';
  return line;
}

std::string format_recommend_error_line(std::uint64_t id, Status status,
                                        std::string_view error) {
  std::string line = "{\"v\":1,\"recommend\":true,\"id\":";
  line += std::to_string(id);
  line += ",\"status\":\"";
  line += to_string(status);
  line += "\",";
  append_string_field(line, "error", error);
  line += '}';
  return line;
}

}  // namespace repro::serve
