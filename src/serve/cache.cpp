#include "serve/cache.hpp"

#include <functional>
#include <utility>

#include "fault/fault.hpp"

namespace repro::serve {

ResultCache::ResultCache(Options options)
    : per_shard_capacity_(0),
      shards_(options.shards == 0 ? 1 : options.shards) {
  // Distribute the capacity over the shards, rounding up so the total is
  // never below the requested capacity (and every shard holds >= 1 entry).
  const std::size_t n = shards_.size();
  const std::size_t capacity = options.capacity == 0 ? 1 : options.capacity;
  per_shard_capacity_ = (capacity + n - 1) / n;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ResultCache::lookup(const std::string& key, v1::MeasurementResult& out) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out = it->second->value;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::size_t ResultCache::insert(const std::string& key,
                                const v1::MeasurementResult& value) {
  Shard& shard = shard_for(key);
  std::size_t evicted = 0;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = value;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return 0;
    }
    shard.lru.push_front(Entry{key, value});
    shard.index.emplace(key, shard.lru.begin());
    while (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++evicted;
    }
    // Fault-injection site (DESIGN.md §12): an eviction storm throws away
    // up to magnitude%8+1 LRU-tail entries beyond normal capacity pressure.
    // Evicting is always safe — it only forces recomputation, so it probes
    // the cache-miss path without being able to corrupt any result.
    if (const fault::FaultPlan* plan = fault::active()) {
      const fault::Fault fault = plan->draw(fault::Site::kCache, key);
      if (fault.kind == fault::Kind::kCacheEvict) {
        std::size_t storm = fault.magnitude % 8 + 1;
        std::size_t storm_evicted = 0;
        // Never evict the entry just inserted (front of the LRU).
        while (storm-- > 0 && shard.lru.size() > 1) {
          shard.index.erase(shard.lru.back().key);
          shard.lru.pop_back();
          ++storm_evicted;
        }
        if (storm_evicted > 0) {
          plan->record_applied(fault::Site::kCache, key);
          evicted += storm_evicted;
        }
      }
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return evicted;
}

ResultCache::Stats ResultCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.capacity = per_shard_capacity_ * shards_.size();
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    stats.size += shard.lru.size();
  }
  return stats;
}

}  // namespace repro::serve
