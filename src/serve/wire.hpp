// JSONL wire format of the characterization service (DESIGN.md §11).
//
// One JSON object per line, flat (no nested values), UTF-8. The format is
// pinned by a golden test (tests/golden/serve_wire.txt): field order and
// float formatting are part of the contract. Doubles are printed with
// %.17g so every IEEE-754 double round-trips exactly — a client parsing a
// response sees bit-identical metrics to an in-process caller.
//
// Request:  {"v":1,"id":7,"program":"NB","input":2,"config":"default",
//            "deadline_ms":0}
// Response: {"v":1,"id":7,"status":"ok","cached":false,"key":"NB/2/default",
//            "usable":true,"time_s":...,"energy_j":...,"power_w":...,
//            "true_active_s":...,"time_spread":...,"energy_spread":...}
// Error:    {"v":1,"id":8,"status":"shed","key":"...","error":"..."}
//
// Unknown request fields are ignored (forward compatibility); a "v" other
// than 1 is rejected.
#pragma once

#include <string>
#include <string_view>

#include "repro/api.hpp"

namespace repro::serve {

/// Terminal state of one served request. Everything except kOk is a
/// structured error: the response carries `error` text and no metrics.
enum class Status {
  kOk,
  kShed,              // evicted from the bounded admission queue
  kDeadlineExpired,   // deadline passed before the result was ready
  kCancelled,         // cancelled by the client or by service shutdown
  kUnknownProgram,
  kUnknownConfig,
  kInvalidRequest,    // malformed line or out-of-range input index
};

std::string_view to_string(Status status);

/// One response of the service, in 1:1 correspondence with a request.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::kInvalidRequest;
  bool cached = false;       // served from the LRU without recomputation
  std::string key;           // canonical experiment key (when resolvable)
  std::string error;         // non-empty iff status != kOk
  v1::MeasurementResult result;
};

/// Parses one request line. On failure returns false and sets `error`
/// (the caller turns that into a kInvalidRequest response).
bool parse_request_line(std::string_view line, v1::ExperimentRequest& out,
                        std::string& error);

/// Canonical encodings (field order and %.17g formatting are pinned by the
/// wire golden test).
std::string format_request_line(const v1::ExperimentRequest& request);
std::string format_response_line(const Response& response);

}  // namespace repro::serve
