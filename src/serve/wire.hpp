// JSONL wire format of the characterization service (DESIGN.md §11).
//
// One JSON object per line, flat (no nested values), UTF-8. The format is
// pinned by a golden test (tests/golden/serve_wire.txt): field order and
// float formatting are part of the contract. Doubles are printed with
// %.17g so every IEEE-754 double round-trips exactly — a client parsing a
// response sees bit-identical metrics to an in-process caller.
//
// Request:  {"v":1,"id":7,"program":"NB","input":2,"config":"default",
//            "deadline_ms":0}
// Response: {"v":1,"id":7,"status":"ok","cached":false,"degradation":"ok",
//            "retries":0,"key":"NB/2/default","usable":true,"time_s":...,
//            "energy_j":...,"power_w":...,"true_active_s":...,
//            "time_spread":...,"energy_spread":...}
//
// Sampled "rabbit" requests (DESIGN.md §13) add "sample_mode"
// ("stratified"|"systematic"), "sample_fraction" in (0,1],
// "sample_target_rel_err" in [0,1) and "sample_seed"; their ok responses
// append "sampled":true, "sample_fraction" and the per-metric 95% CI
// bounds ("time_ci_low"/"time_ci_high", energy, power). Exact requests and
// responses carry none of these fields, so pre-sampling wire lines are
// byte-identical.
//
// Thermal requests (DESIGN.md §16) add "thermal":true plus
// "thermal_ambient_c", "thermal_ceiling_c", "thermal_hysteresis_c",
// "thermal_leak_k" and "thermal_leak_t0_c"; their ok responses append
// "thermal":true, "throttled", "peak_temp_c" and "throttle_events".
// Thermal scenarios are exact-only: a line carrying both thermal and a
// sampled mode is a structured parse error. Non-thermal lines carry none
// of these fields, so pre-thermal wire lines are byte-identical.
// Error:    {"v":1,"id":8,"status":"shed","key":"...","error":"..."}
// Health:   {"v":1,"health":true}  ->  format_health_line(...)
// Metrics:  {"v":1,"metrics":true} ->  format_metrics_line(...)
// Attribution: {"v":1,"attribution":"NB","input":2,"config":"default"}
//           ->  format_attribution_line(...) with per-kernel
//               instruction-class energy columns.
// Sweep:    {"v":1,"sweep":"BP","input":0,...grid/sampling fields...}
//           ->  format_sweep_line(...) with a nested per-point array.
// Recommend:{"v":1,"recommend":"BP","objective":"min_edp",...}
//           ->  format_recommend_line(...), flat (the chosen point).
//
// Measurement and attribution requests may replace the "config" name
// string with an inline operating point (DESIGN.md §15) — the single
// permitted one-level nesting on an inbound line:
//   "config":{"name":"cfg:614x2600","core_mhz":614,"mem_mhz":2600,
//             "core_voltage":0.93,"mem_voltage":1,"ecc":false}
// Only core_mhz/mem_mhz are required; absent voltages take the DVFS rule
// values and an absent name takes the canonical auto-name. Specs matching
// a paper operating point collapse to the plain name form, so paper-config
// traffic stays byte-identical however it is spelled.
//
// Otherwise only *inbound* request lines are restricted to flat JSON; the
// metrics, attribution and sweep response lines carry nested
// objects/arrays (clients of those endpoints are monitoring tools, not
// the flat-wire request path).
//
// Unknown request fields are ignored (forward compatibility); a "v" other
// than 1 is rejected. `degradation` reports how the fault-injection layer
// (DESIGN.md §12) touched this request: "ok" (clean first attempt),
// "retried" (at least one attempt was aborted or tainted, a later clean
// attempt succeeded — metrics are bit-identical to fault-free), or
// "degraded" (retries exhausted with the sensor still under fault; the
// metrics come from a faulted measurement and are not cached).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "repro/api.hpp"

namespace repro::obs {
struct RegistrySnapshot;
}

namespace repro::serve {

/// Terminal state of one served request. Everything except kOk is a
/// structured error: the response carries `error` text and no metrics.
enum class Status {
  kOk,
  kShed,              // evicted from the bounded admission queue
  kDeadlineExpired,   // deadline passed before the result was ready
  kCancelled,         // cancelled by the client or by service shutdown
  kUnknownProgram,
  kUnknownConfig,
  kInvalidRequest,    // malformed line or out-of-range input index
  kFailed,            // fault-injected aborts exhausted the retry budget
};

std::string_view to_string(Status status);

/// How the fault-injection layer touched an ok response (header comment).
enum class Degradation {
  kNone,     // "ok": clean first attempt
  kRetried,  // a retry recovered; metrics bit-identical to fault-free
  kDegraded, // retries exhausted under sensor fault; metrics are tainted
};

std::string_view to_string(Degradation degradation);

/// One response of the service, in 1:1 correspondence with a request.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::kInvalidRequest;
  bool cached = false;       // served from the LRU without recomputation
  Degradation degradation = Degradation::kNone;
  int retries = 0;           // attempts beyond the first that were made
  std::string key;           // canonical experiment key (when resolvable)
  std::string error;         // non-empty iff status != kOk
  v1::MeasurementResult result;
};

/// Parses one request line. On failure returns false and sets `error`
/// (the caller turns that into a kInvalidRequest response).
bool parse_request_line(std::string_view line, v1::ExperimentRequest& out,
                        std::string& error);

/// Canonical encodings (field order and %.17g formatting are pinned by the
/// wire golden test).
std::string format_request_line(const v1::ExperimentRequest& request);
std::string format_response_line(const Response& response);

/// True when `line` is a health request: a flat JSON object containing
/// "health":true (no program/config required). Malformed lines are not
/// health requests — they fall through to the normal parse error path.
bool is_health_request(std::string_view line);

/// Point-in-time service health snapshot, encodable on the wire.
struct HealthSnapshot {
  bool accepting = false;          // not draining / shut down
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;       // responses that needed >= 1 retry
  std::uint64_t degraded = 0;      // responses returned with tainted metrics
  std::uint64_t failed = 0;        // retry budget exhausted on aborts
  std::size_t queue_depth = 0;
  std::uint64_t faults_injected = 0;  // applied faults across all sites
};

std::string format_health_line(const HealthSnapshot& health);

/// True when `line` is a metrics request: a flat JSON object containing
/// "metrics":true. Same detection contract as is_health_request.
bool is_metrics_request(std::string_view line);

/// Encodes one metrics snapshot as a single line:
///   {"v":1,"metrics":true,"counters":{"name":N,...},
///    "gauges":{"name":V,...},
///    "histograms":{"name":{"count":N,"sum":S,"min":M,"max":X,"mean":E,
///                          "p50":...,"p95":...,"p99":...},..}}
/// Doubles use %.17g like every other wire value; a histogram with
/// count 0 reports min 0 (matching the text exporter).
std::string format_metrics_line(const obs::RegistrySnapshot& snap);

/// True when `line` is an attribution request: a flat JSON object whose
/// "attribution" key holds a program name string. Malformed lines are not
/// attribution requests — they fall through to the normal parse path.
bool is_attribution_request(std::string_view line);

/// Parses {"v":1,"attribution":"NB","input":2,"config":"default"} into a
/// request (program <- the "attribution" value; input defaults to 0).
/// On failure returns false and sets `error`.
bool parse_attribution_request(std::string_view line,
                               v1::ExperimentRequest& out, std::string& error);

/// Encodes an attribution table for canonical key `key`: totals, the
/// instruction-class column names, and one object per kernel with the
/// class-energy columns (model scale) next to the measured-scaled
/// energy_j.
std::string format_attribution_line(std::string_view key,
                                    const v1::Attribution& table);

/// Structured attribution error ({"v":1,"attribution":true,"status":...}).
std::string format_attribution_error_line(Status status,
                                          std::string_view key,
                                          std::string_view error);

/// One DVFS grid-sweep request (DESIGN.md §15):
///   {"v":1,"id":21,"sweep":"BP","input":0,
///    "core_mhz_min":324,"core_mhz_max":705,"core_mhz_step":50,
///    "mem_mhz_min":2600,"mem_mhz_max":2600,"mem_mhz_step":0,
///    "ecc":false,"prune":true,"prune_margin":0.1,
///    "sample_mode":"stratified","sample_fraction":0.1,
///    "sample_target_rel_err":0,"sample_seed":1}
/// Every field except "sweep" (the program name) is optional and defaults
/// to v1::SweepOptions; out-of-range values are structured parse errors.
struct SweepRequest {
  std::uint64_t id = 0;
  std::string program;
  std::size_t input_index = 0;
  v1::SweepOptions options;
};

/// True when `line` is a sweep request: a flat JSON object whose "sweep"
/// key holds a program name string (responses carry "sweep":true, so they
/// never match). Same detection contract as is_attribution_request.
bool is_sweep_request(std::string_view line);
bool parse_sweep_request(std::string_view line, SweepRequest& out,
                         std::string& error);
/// Canonical encoding (all fields, default or not, in the order above).
std::string format_sweep_request_line(const SweepRequest& request);

/// Ok sweep response: flat header plus a nested "points" array (one object
/// per grid point, grid order) — like the other monitoring-style payloads,
/// only *inbound* request lines are restricted to flat JSON. `degradation`
/// and `retries` aggregate over the measured points (worst degradation,
/// summed retries).
std::string format_sweep_line(std::uint64_t id, const v1::SweepResult& sweep,
                              Degradation degradation, int retries);
std::string format_sweep_error_line(std::uint64_t id, Status status,
                                    std::string_view error);

/// One recommendation request: a sweep request under the "recommend" key
/// plus "objective" ("min_energy"|"min_edp"|"min_ed2p"|"perf_cap"),
/// "perf_cap_rel" (>= 1, kPerfCap only) and "exclude_throttled" (the
/// thermal constraint: drop grid points whose governor clamped; only
/// meaningful together with the thermal fields).
struct RecommendRequest {
  std::uint64_t id = 0;
  std::string program;
  std::size_t input_index = 0;
  v1::Objective objective = v1::Objective::kMinEdp;
  double perf_cap_rel = 1.10;
  bool exclude_throttled = false;
  v1::SweepOptions options;
};

bool is_recommend_request(std::string_view line);
bool parse_recommend_request(std::string_view line, RecommendRequest& out,
                             std::string& error);
std::string format_recommend_request_line(const RecommendRequest& request);

/// Ok recommendation response: flat, the chosen operating point's values
/// plus the objective value and the sweep's grid counters.
std::string format_recommend_line(std::uint64_t id,
                                  const v1::Recommendation& recommendation,
                                  Degradation degradation, int retries);
std::string format_recommend_error_line(std::uint64_t id, Status status,
                                        std::string_view error);

/// One worker row of the shard router's hash ring (DESIGN.md §14).
struct TopologyWorker {
  std::string name;          // stable worker name ("w0".."wN-1")
  bool alive = true;         // false once removed from the ring
  int virtual_nodes = 0;     // points this worker holds on the ring
  double owned_share = 0.0;  // fraction of the key space it owns now
  std::uint64_t routed = 0;  // requests the router sent it so far
};

/// Point-in-time view of the shard ring, encodable on the wire. `epoch`
/// bumps on every topology change (worker death, rebalance), so clients
/// can detect that ownership moved between two snapshots.
struct TopologySnapshot {
  std::uint64_t epoch = 0;
  std::size_t workers = 0;         // configured worker count
  std::size_t alive = 0;
  std::uint64_t rebalances = 0;    // topology changes since start
  std::uint64_t handoff_keys = 0;  // hot keys warm-handed to new owners
  std::vector<TopologyWorker> ring;
};

/// True when `line` is a topology request: a flat JSON object containing
/// "topology":true. Same detection contract as is_health_request.
bool is_topology_request(std::string_view line);

/// Encodes one ring snapshot as a single line (monitoring endpoint, so the
/// per-worker rows are a nested array like the attribution kernels):
///   {"v":1,"topology":true,"epoch":E,"workers":N,"alive":A,
///    "rebalances":R,"handoff_keys":H,"ring":[{"worker":"w0",
///    "alive":true,"vnodes":64,"owned_share":...,"routed":...},...]}
std::string format_topology_line(const TopologySnapshot& topology);

/// Router-level health, aggregated across workers. Reported by the shard
/// front-end in place of a single worker's HealthSnapshot.
struct RouterHealth {
  bool accepting = false;
  std::size_t workers = 0;
  std::size_t alive = 0;
  std::uint64_t epoch = 0;
  std::uint64_t routed = 0;        // requests dispatched to workers
  std::uint64_t rerouted = 0;      // re-dispatched after a worker death
  std::uint64_t worker_kills = 0;  // fault-plan kills applied
  std::uint64_t handoff_keys = 0;
  std::uint64_t failed = 0;        // responses failed router-side
};

/// {"v":1,"health":true,"router":true,...} — the "router":true marker lets
/// clients of the plain health endpoint distinguish tier from worker.
std::string format_router_health_line(const RouterHealth& health);

}  // namespace repro::serve
