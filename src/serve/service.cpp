#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "api/convert.hpp"
#include "dvfs/dvfs.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "sample/sample.hpp"
#include "obs/trace.hpp"
#include "power/energies.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

namespace repro::serve {

namespace {

using Clock = std::chrono::steady_clock;

v1::MeasurementResult to_dto(const core::ExperimentResult& result) {
  v1::MeasurementResult dto;
  dto.usable = result.usable;
  dto.time_s = result.time_s;
  dto.energy_j = result.energy_j;
  dto.power_w = result.power_w;
  dto.true_active_s = result.true_active_s;
  dto.time_spread = result.time_spread;
  dto.energy_spread = result.energy_spread;
  dto.thermal = result.thermal;
  dto.throttled = result.throttled;
  dto.peak_temp_c = result.peak_temp_c;
  dto.throttle_events = result.throttle_events;
  return dto;
}

sample::Mode to_internal(v1::SamplingMode mode) {
  switch (mode) {
    case v1::SamplingMode::kStratified: return sample::Mode::kStratified;
    case v1::SamplingMode::kSystematic: return sample::Mode::kSystematic;
    case v1::SamplingMode::kExact: break;
  }
  return sample::Mode::kExact;
}

sample::SampleOptions to_internal(const v1::SamplingOptions& sampling) {
  sample::SampleOptions options;
  options.mode = to_internal(sampling.mode);
  options.fraction = sampling.fraction;
  options.target_rel_error = sampling.target_rel_error;
  options.seed = sampling.seed;
  return options;
}

v1::MeasurementResult to_dto(const sample::SampledResult& result) {
  v1::MeasurementResult dto = to_dto(result.base);
  dto.sampled = result.sampled;
  dto.sample_fraction = result.fraction;
  dto.time_ci = {result.time_ci.low, result.time_ci.high};
  dto.energy_ci = {result.energy_ci.low, result.energy_ci.high};
  dto.power_ci = {result.power_ci.low, result.power_ci.high};
  return dto;
}

// Rehydrates a cached DTO for the sweep path (the inverse of to_dto over
// the fields the wire serves; sampling bookkeeping the DTO does not carry
// stays default). A cache hit is bit-identical to the stored measurement.
sample::SampledResult from_dto(const v1::MeasurementResult& dto) {
  sample::SampledResult result;
  result.base.usable = dto.usable;
  result.base.time_s = dto.time_s;
  result.base.energy_j = dto.energy_j;
  result.base.power_w = dto.power_w;
  result.base.true_active_s = dto.true_active_s;
  result.base.time_spread = dto.time_spread;
  result.base.energy_spread = dto.energy_spread;
  result.sampled = dto.sampled;
  result.fraction = dto.sample_fraction;
  result.time_ci = {dto.time_ci.low, dto.time_ci.high};
  result.energy_ci = {dto.energy_ci.low, dto.energy_ci.high};
  result.power_ci = {dto.power_ci.low, dto.power_ci.high};
  result.base.thermal = dto.thermal;
  result.base.throttled = dto.throttled;
  result.base.peak_temp_c = dto.peak_temp_c;
  result.base.throttle_events = dto.throttle_events;
  return result;
}

// Cache namespace of sampled results. The '%' makes the prefix unreachable
// from any exact key: experiment-key escaping turns a literal '%' into
// "%25", so no canonical key can start with "sample%:". A sampled result
// therefore can never be served for an exact request (or vice versa), and
// distinct sampling parameters never alias each other.
std::string sample_namespace(const v1::SamplingOptions& sampling) {
  const char* mode = "exact";
  switch (sampling.mode) {
    case v1::SamplingMode::kStratified: mode = "stratified"; break;
    case v1::SamplingMode::kSystematic: mode = "systematic"; break;
    case v1::SamplingMode::kExact: break;
  }
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "sample%%:%s/%.17g/%.17g/%llu:", mode,
                sampling.fraction, sampling.target_rel_error,
                static_cast<unsigned long long>(sampling.seed));
  return buffer;
}

struct Fnv1a;  // forward declaration (defined below, shared by both users)

std::uint64_t ladder_fingerprint(const std::vector<sim::GpuConfig>& ladder);

// Cache namespace of thermal results (DESIGN.md §16), unreachable from any
// exact key for the same '%' reason as sample_namespace. Keyed by every
// wire-exposed thermal knob PLUS a fingerprint of the governor ladder:
// registering a new operating point changes the clamp target a throttling
// run would pick, so pre-registration entries must become unreachable
// rather than stale.
std::string thermal_namespace(const v1::ThermalOptions& thermal,
                              const std::vector<sim::GpuConfig>& ladder) {
  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "thermal%%:%.17g/%.17g/%.17g/%.17g/%.17g/%llx:",
                thermal.ambient_c, thermal.ceiling_c, thermal.hysteresis_c,
                thermal.leak_k_per_c, thermal.leak_t0_c,
                static_cast<unsigned long long>(ladder_fingerprint(ladder)));
  return buffer;
}

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  void mix(double value) { mix(std::bit_cast<std::uint64_t>(value)); }
  void mix(std::string_view text) {
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  }
};

std::uint64_t ladder_fingerprint(const std::vector<sim::GpuConfig>& ladder) {
  Fnv1a fp;
  for (const sim::GpuConfig& config : ladder) {
    fp.mix(config.name);
    fp.mix(config.core_mhz);
    fp.mix(config.core_voltage);
  }
  return fp.h;
}

// The cache-version prefix: any change to the study options or to the
// power model's calibrated energies yields a different prefix, so entries
// cached under the old model become unreachable instead of stale.
std::string compute_cache_version(const core::Study::Options& study,
                                  const std::string& cache_namespace) {
  Fnv1a fp;
  const power::EnergyTable& e = power::default_energies();
  fp.mix(e.warp_issue_nj);
  fp.mix(e.fp32_pj);
  fp.mix(e.fp64_pj);
  fp.mix(e.int_pj);
  fp.mix(e.sfu_pj);
  fp.mix(e.atomic_pj);
  fp.mix(e.shared_access_nj);
  fp.mix(e.l2_transaction_nj);
  fp.mix(e.dram_transaction_nj);
  fp.mix(e.memctl_transaction_nj);
  fp.mix(e.ecc_transaction_nj);
  fp.mix(e.board_w);
  fp.mix(e.leakage_nominal_w);
  fp.mix(e.leakage_voltage_exp);
  fp.mix(e.dram_background_w_per_ghz);
  fp.mix(e.tail_boost_w);
  fp.mix(e.tail_decay_s);
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "serve1:r%d:m%llx:s%llx:e%llx|",
                study.repetitions,
                static_cast<unsigned long long>(study.measurement_seed),
                static_cast<unsigned long long>(study.structural_seed),
                static_cast<unsigned long long>(fp.h));
  std::string version = buffer;
  // Per-worker namespace (shard tier): "ns=<name>|" after the model
  // prefix. Empty namespaces add nothing, keeping single-process keys
  // byte-identical to every pre-shard release.
  if (!cache_namespace.empty()) {
    version += "ns=";
    version += cache_namespace;
    version += '|';
  }
  return version;
}

Service::Options normalized(Service::Options options) {
  const repro::Options& global = repro::Options::global();
  if (options.cache_capacity == 0) {
    options.cache_capacity = global.serve_cache_capacity;
  }
  if (options.cache_capacity == 0) options.cache_capacity = 1;
  if (options.queue_limit == 0) options.queue_limit = global.serve_queue_limit;
  if (options.queue_limit == 0) options.queue_limit = 1;
  if (options.cache_shards == 0) options.cache_shards = 1;
  if (options.max_batch == 0) options.max_batch = 1;
  if (options.threads <= 0) options.threads = global.serve_threads;
  return options;
}

// The serve hot path touches its instruments once or more per request, so
// resolving them through the registry every time (name hash + shared_mutex,
// contended by every client thread) is the dominant obs cost. Instruments
// are never deleted — `Registry::reset()` clears values, not identity — so
// each helper resolves its instrument once and reuses the reference.
// Function-local statics keep the resolve lazy: nothing registers unless
// observability actually runs.
obs::Histogram& wall_histogram() {
  static obs::Histogram& wall =
      obs::Registry::instance().histogram("serve.request.wall_s");
  return wall;
}

void observe_latency(Clock::time_point submit_time) {
  if (!obs::enabled()) return;
  wall_histogram().observe(
      std::chrono::duration<double>(Clock::now() - submit_time).count());
}

struct HotCounter {
  explicit HotCounter(const char* name) : name_(name) {}
  void add(std::uint64_t n = 1) {
    if (n == 0 || !obs::enabled()) return;
    obs::Counter* counter = counter_.load(std::memory_order_acquire);
    if (counter == nullptr) {
      counter = &obs::Registry::instance().counter(name_);
      counter_.store(counter, std::memory_order_release);
    }
    counter->add(n);
  }

 private:
  const char* name_;
  std::atomic<obs::Counter*> counter_{nullptr};
};

HotCounter g_shed_counter{"serve.shed"};
HotCounter g_expired_counter{"serve.deadline_expired"};
HotCounter g_failed_counter{"serve.failed"};
HotCounter g_retry_success_counter{"serve.retry.success"};
HotCounter g_degraded_counter{"serve.degraded"};
HotCounter g_cache_hit_counter{"serve.cache.hits"};
HotCounter g_cache_miss_counter{"serve.cache.misses"};
HotCounter g_eviction_counter{"serve.cache.evictions"};
HotCounter g_retry_attempt_counter{"serve.retry.attempts"};

void set_queue_gauge(std::size_t depth) {
  if (!obs::enabled()) return;
  static obs::Gauge& gauge =
      obs::Registry::instance().gauge("serve.queue_depth");
  gauge.set(static_cast<double>(depth));
}

}  // namespace

namespace detail {

// Shared state of one submitted request. Its mutex orders the only race
// the service has to resolve: a cancel arriving while the dispatcher
// claims the request. Whoever transitions the state first wins; the loser
// observes the terminal state and backs off.
struct Pending {
  enum class State { kQueued, kClaimed, kDone };

  std::mutex mutex;
  std::condition_variable cv;
  State state = State::kQueued;
  v1::ExperimentRequest request;
  Clock::time_point submit_time;
  Clock::time_point deadline;  // meaningful iff has_deadline
  bool has_deadline = false;
  Response response;
};

}  // namespace detail

using detail::Pending;

Service::Ticket::Ticket(std::shared_ptr<Pending> state)
    : state_(std::move(state)) {}

bool Service::Ticket::ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard lock(state_->mutex);
  return state_->state == Pending::State::kDone;
}

const Response& Service::Ticket::wait() const {
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock,
                  [&] { return state_->state == Pending::State::kDone; });
  return state_->response;
}

Service::Service() : Service(Options()) {}

Service::Service(Options options)
    : options_(normalized(std::move(options))),
      cache_version_(
          compute_cache_version(options_.study, options_.cache_namespace)),
      cache_(ResultCache::Options{options_.cache_capacity,
                                  options_.cache_shards}),
      scheduler_(core::Scheduler::Options{options_.threads}) {
  suites::register_all_workloads();
  paused_ = options_.start_paused;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Service::~Service() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void Service::fulfill(const std::shared_ptr<Pending>& pending,
                      Response response, obs::Histogram::Batch* latency,
                      Clock::time_point cycle_now) {
  {
    std::lock_guard lock(pending->mutex);
    if (pending->state == Pending::State::kDone) return;  // cancel raced us
    pending->state = Pending::State::kDone;
    pending->response = std::move(response);
    // Counters bump before the waiter can observe the terminal state, so a
    // stats() read after a resolved wait() always reflects that request.
    switch (pending->response.status) {
      case Status::kOk:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::kShed:
        shed_.fetch_add(1, std::memory_order_relaxed);
        g_shed_counter.add();
        break;
      case Status::kDeadlineExpired:
        expired_.fetch_add(1, std::memory_order_relaxed);
        g_expired_counter.add();
        break;
      case Status::kCancelled:
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::kFailed:
        faulted_.fetch_add(1, std::memory_order_relaxed);
        g_failed_counter.add();
        break;
      default:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    if (pending->response.status == Status::kOk) {
      switch (pending->response.degradation) {
        case Degradation::kRetried:
          retried_.fetch_add(1, std::memory_order_relaxed);
          g_retry_success_counter.add();
          break;
        case Degradation::kDegraded:
          degraded_.fetch_add(1, std::memory_order_relaxed);
          g_degraded_counter.add();
          break;
        case Degradation::kNone:
          break;
      }
    }
  }
  pending->cv.notify_all();
  if (latency != nullptr) {
    // Dispatcher cache-hit cycle: accumulate against the cycle timestamp
    // (taken after every request in this batch was submitted, so the
    // duration is nonnegative); the caller flushes once per cycle.
    if (obs::enabled()) {
      latency->observe(
          std::chrono::duration<double>(cycle_now - pending->submit_time)
              .count());
    }
  } else {
    observe_latency(pending->submit_time);
  }
}

Service::Ticket Service::submit(v1::ExperimentRequest request) {
  auto pending = std::make_shared<Pending>();
  pending->submit_time = Clock::now();
  if (request.deadline_ms > 0.0) {
    pending->has_deadline = true;
    pending->deadline =
        pending->submit_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(request.deadline_ms));
  }
  pending->request = std::move(request);
  submitted_.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::shared_ptr<Pending>> victims;
  bool rejected = false;
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      rejected = true;
    } else {
      while (queue_.size() >= options_.queue_limit) {
        victims.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_.push_back(pending);
      depth = queue_.size();
    }
  }
  if (rejected) {
    Response response;
    response.id = pending->request.id;
    response.status = Status::kCancelled;
    response.error = "service is shutting down";
    fulfill(pending, std::move(response));
    return Ticket(std::move(pending));
  }
  cv_.notify_one();
  // The queue-depth gauge is dispatcher-owned (set once per claim cycle):
  // setting it here would make every client thread store to one shared
  // cache line per submit, which dominates obs cost under multi-client
  // load (bench/obs_overhead.cpp).
  (void)depth;
  for (const std::shared_ptr<Pending>& victim : victims) {
    Response response;
    response.id = victim->request.id;
    response.status = Status::kShed;
    response.key = core::experiment_key(victim->request.program,
                                        victim->request.input_index,
                                        victim->request.config);
    response.error = "admission queue full (limit " +
                     std::to_string(options_.queue_limit) +
                     "); shed by newer arrival";
    fulfill(victim, std::move(response));
  }
  return Ticket(std::move(pending));
}

bool Service::cancel(const Ticket& ticket) {
  if (!ticket.valid()) return false;
  Pending& pending = *ticket.state_;
  {
    std::lock_guard lock(pending.mutex);
    if (pending.state != Pending::State::kQueued) return false;
    pending.state = Pending::State::kDone;
    pending.response.id = pending.request.id;
    pending.response.status = Status::kCancelled;
    pending.response.error = "cancelled by client";
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  pending.cv.notify_all();
  return true;
}

void Service::pause() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Service::dispatcher_loop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) {
        batch.assign(queue_.begin(), queue_.end());
        queue_.clear();
        lock.unlock();
        for (const std::shared_ptr<Pending>& pending : batch) {
          Response response;
          response.id = pending->request.id;
          response.status = Status::kCancelled;
          response.error = "service stopped before dispatch";
          fulfill(pending, std::move(response));
        }
        return;
      }
      while (!queue_.empty() && batch.size() < options_.max_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      set_queue_gauge(queue_.size());
    }
    dispatch(std::move(batch));
  }
}

struct Service::Miss {
  std::shared_ptr<Pending> pending;
  const workloads::Workload* workload = nullptr;
  const sim::GpuConfig* config = nullptr;
  std::string key;            // bare experiment key
  std::string versioned_key;  // cache_version_ [+ namespace] + key
  bool sampled = false;       // routed through the sampled pipeline
  bool thermal = false;       // routed through the thermal pipeline
  int retries = 0;            // attempts beyond the first so far
};

std::vector<sim::GpuConfig> Service::ladder_candidates() const {
  std::vector<sim::GpuConfig> out;
  for (const sim::GpuConfig& config : sim::standard_configs()) {
    out.push_back(config);
  }
  std::lock_guard lock(config_mutex_);
  for (const auto& [name, config] : registered_configs_) out.push_back(config);
  return out;
}

const sim::GpuConfig* Service::resolve_config(
    const v1::ExperimentRequest& request, std::string& error) const {
  try {
    return &sim::config_by_name(request.config);
  } catch (const std::invalid_argument&) {
  }
  std::lock_guard lock(config_mutex_);
  const auto it = registered_configs_.find(request.config);
  if (it != registered_configs_.end()) return &it->second;
  if (!request.has_config_spec) {
    error = "unknown config: " + request.config;
    return nullptr;
  }
  sim::GpuConfig config;
  config.name = request.config_spec.name;
  config.core_mhz = request.config_spec.core_mhz;
  config.mem_mhz = request.config_spec.mem_mhz;
  config.core_voltage = request.config_spec.core_voltage;
  config.mem_voltage = request.config_spec.mem_voltage;
  config.ecc = request.config_spec.ecc;
  try {
    config = dvfs::normalized(std::move(config));
  } catch (const std::invalid_argument& e) {
    error = std::string("bad config: ") + e.what();
    return nullptr;
  }
  if (config.name != request.config) {
    // The wire parser canonicalizes before submit, so this only fires on
    // programmatic requests whose `config` and `config_spec` disagree.
    error = "config name '" + request.config +
            "' does not match its spec (canonical name '" + config.name +
            "')";
    return nullptr;
  }
  return &registered_configs_.emplace(config.name, std::move(config))
              .first->second;
}

void Service::dispatch(std::vector<std::shared_ptr<Pending>> batch) {
  obs::Span span("dispatch", "serve");
  span.arg("requests", static_cast<std::uint64_t>(batch.size()));

  const Clock::time_point now = Clock::now();
  obs::Histogram::Batch latency;  // flushed once after the claim loop
  std::uint64_t hits = 0;         // counters likewise bumped once per cycle
  std::vector<Miss> misses;
  for (std::shared_ptr<Pending>& pending : batch) {
    {
      std::lock_guard lock(pending->mutex);
      if (pending->state != Pending::State::kQueued) continue;  // cancelled
      pending->state = Pending::State::kClaimed;
    }
    const v1::ExperimentRequest& request = pending->request;
    Response response;
    response.id = request.id;

    if (pending->has_deadline && now > pending->deadline) {
      response.status = Status::kDeadlineExpired;
      response.key = core::experiment_key(request.program, request.input_index,
                                          request.config);
      response.error = "deadline expired before dispatch";
      fulfill(pending, std::move(response), &latency, now);
      continue;
    }
    const workloads::Workload* workload =
        workloads::Registry::instance().find(request.program);
    if (workload == nullptr) {
      response.status = Status::kUnknownProgram;
      response.error = "unknown program: " + request.program;
      fulfill(pending, std::move(response), &latency, now);
      continue;
    }
    if (request.input_index >= workload->inputs().size()) {
      response.status = Status::kInvalidRequest;
      response.error =
          "input index " + std::to_string(request.input_index) +
          " out of range for " + request.program + " (" +
          std::to_string(workload->inputs().size()) + " inputs)";
      fulfill(pending, std::move(response), &latency, now);
      continue;
    }
    std::string config_error;
    const sim::GpuConfig* config = resolve_config(request, config_error);
    if (config == nullptr) {
      response.status = request.has_config_spec ? Status::kInvalidRequest
                                                : Status::kUnknownConfig;
      response.error = std::move(config_error);
      fulfill(pending, std::move(response), &latency, now);
      continue;
    }

    const bool sampled = request.sampling.mode != v1::SamplingMode::kExact;
    const bool thermal = request.thermal.enabled;
    if (thermal) {
      // The wire parser rejects these before submit; this guards
      // programmatic submissions with the same contract.
      std::string thermal_error =
          v1::detail::thermal_options_error(request.thermal);
      if (thermal_error.empty() && sampled) {
        thermal_error = "thermal scenarios are exact-only; disable sampling";
      }
      if (!thermal_error.empty()) {
        response.status = Status::kInvalidRequest;
        response.error = std::move(thermal_error);
        fulfill(pending, std::move(response), &latency, now);
        continue;
      }
    }
    response.key = core::experiment_key(request.program, request.input_index,
                                        request.config);
    std::string versioned_key =
        thermal ? cache_version_ +
                      thermal_namespace(request.thermal, ladder_candidates()) +
                      response.key
        : sampled ? cache_version_ + sample_namespace(request.sampling) +
                        response.key
                  : cache_version_ + response.key;
    v1::MeasurementResult cached;
    if (cache_.lookup(versioned_key, cached)) {
      ++hits;
      response.status = Status::kOk;
      response.cached = true;
      response.result = cached;
      fulfill(pending, std::move(response), &latency, now);
      continue;
    }
    Miss miss;
    miss.pending = std::move(pending);
    miss.workload = workload;
    miss.config = config;
    miss.key = response.key;
    miss.versioned_key = std::move(versioned_key);
    miss.sampled = sampled;
    miss.thermal = thermal;
    misses.push_back(std::move(miss));
  }
  g_cache_hit_counter.add(hits);
  g_cache_miss_counter.add(misses.size());
  if (obs::enabled()) latency.flush(wall_histogram());
  if (misses.empty()) return;

  // Sampled misses take their own path: they never enter the scheduler
  // batch (sampling has no abort site, so kFailed cannot happen there) and
  // carry their own sensor-taint retry loop.
  std::vector<Miss> sampled_misses;
  std::erase_if(misses, [&](Miss& miss) {
    if (!miss.sampled) return false;
    sampled_misses.push_back(std::move(miss));
    return true;
  });
  if (!sampled_misses.empty()) dispatch_sampled(std::move(sampled_misses));
  // Thermal misses likewise: each needs a Study carrying that request's
  // scenario, so they run per-miss instead of in the shared batch.
  std::vector<Miss> thermal_misses;
  std::erase_if(misses, [&](Miss& miss) {
    if (!miss.thermal) return false;
    thermal_misses.push_back(std::move(miss));
    return true;
  });
  if (!thermal_misses.empty()) dispatch_thermal(std::move(thermal_misses));
  if (misses.empty()) return;

  // Resilience loop (DESIGN.md §12). Each attempt runs the remaining
  // misses through a FRESH Study — its internal unbounded caches live only
  // for the attempt, so the bounded LRU above stays the service's one
  // persistent result store, and a faulted measurement can never leak into
  // a later attempt. Bit-identity across Study instances is the scheduler
  // layer's core guarantee (streams are seeded purely from the experiment
  // key), so discarding the Study costs determinism nothing: a clean
  // attempt — first or retried — is bit-identical to fault-free execution.
  //
  // Two fault outcomes are retryable: an aborted job (the key is missing
  // from the batch entirely) and a tainted measurement (the sensor site
  // applied a fault while this key computed — detected as a per-attempt
  // delta of the plan's applied counter). Exhausting the budget on aborts
  // is terminal (kFailed); exhausting it on taint returns the measured-
  // but-degraded result, flagged and uncached.
  const fault::FaultPlan* plan = fault::active();
  const int max_retries = plan == nullptr ? 0 : std::max(options_.max_retries, 0);
  std::vector<Miss> remaining = std::move(misses);
  for (int attempt = 0;; ++attempt) {
    std::unordered_map<std::string, std::uint64_t> sensor_before;
    if (plan != nullptr) {
      for (const Miss& miss : remaining) {
        sensor_before.emplace(miss.key,
                              plan->applied(fault::Site::kSensor, miss.key));
      }
    }

    core::Study study{options_.study};
    std::vector<core::ExperimentJob> jobs;
    jobs.reserve(remaining.size());
    for (const Miss& miss : remaining) {
      jobs.push_back(core::ExperimentJob{miss.workload,
                                         miss.pending->request.input_index,
                                         miss.config});
    }
    const core::BatchReport report = scheduler_.run(study, jobs);
    const std::unordered_set<std::string> aborted(report.aborted.begin(),
                                                  report.aborted.end());

    std::vector<Miss> retry;
    for (Miss& miss : remaining) {
      const v1::ExperimentRequest& request = miss.pending->request;
      Response response;
      response.id = request.id;
      response.key = miss.key;
      response.retries = miss.retries;

      const bool was_aborted = aborted.count(miss.key) > 0;
      bool tainted = false;
      if (!was_aborted && plan != nullptr) {
        tainted = plan->applied(fault::Site::kSensor, miss.key) >
                  sensor_before[miss.key];
      }
      const bool deadline_passed = miss.pending->has_deadline &&
                                   Clock::now() > miss.pending->deadline;

      if ((was_aborted || tainted) && !deadline_passed &&
          attempt < max_retries) {
        miss.retries = attempt + 1;
        retry.push_back(std::move(miss));
        continue;
      }
      if (was_aborted) {
        // Budget exhausted (or deadline passed) with nothing computed.
        response.status = Status::kFailed;
        response.error = "fault-injected abort; " +
                         std::to_string(miss.retries) + " of " +
                         std::to_string(max_retries) + " retries used";
        fulfill(miss.pending, std::move(response));
        continue;
      }

      const core::ExperimentResult& result = study.measure(
          *miss.workload, request.input_index, *miss.config);  // warm lookup
      const v1::MeasurementResult dto = to_dto(result);
      if (!tainted) {
        // Only clean measurements enter the LRU: a degraded result must
        // never be served as a cache hit to a later client.
        g_eviction_counter.add(cache_.insert(miss.versioned_key, dto));
      }
      if (deadline_passed) {
        // Computed (and, when clean, cached for the next client), but this
        // client's deadline has passed: report the expiry, not a late
        // success.
        response.status = Status::kDeadlineExpired;
        response.error = "deadline expired during computation";
      } else {
        response.status = Status::kOk;
        response.cached = false;
        response.degradation = tainted ? Degradation::kDegraded
                               : miss.retries > 0 ? Degradation::kRetried
                                                  : Degradation::kNone;
        response.result = dto;
      }
      fulfill(miss.pending, std::move(response));
    }

    if (retry.empty()) break;
    g_retry_attempt_counter.add(retry.size());
    if (options_.retry_backoff_ms > 0.0) {
      // Deterministic exponential backoff: retry n sleeps base * 2^(n-1).
      const double factor = static_cast<double>(1ULL << attempt);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.retry_backoff_ms * factor));
    }
    remaining = std::move(retry);
  }
}

// Sampled misses (DESIGN.md §13). Each attempt runs against a FRESH Study,
// mirroring the exact path's taint hygiene: a sensor fault applied during
// the attempt (detected as a per-attempt delta of the plan's applied
// counter) triggers a retry with deterministic backoff; exhausting the
// budget returns the measured-but-degraded estimate flagged kDegraded and
// NEVER cached. Sampling dispatch has no abort site — every request
// resolves with a measurement or a deadline expiry, never kFailed.
void Service::dispatch_sampled(std::vector<Miss> misses) {
  obs::Span span("dispatch-sampled", "serve");
  span.arg("requests", static_cast<std::uint64_t>(misses.size()));
  const fault::FaultPlan* plan = fault::active();
  const int max_retries =
      plan == nullptr ? 0 : std::max(options_.max_retries, 0);

  for (Miss& miss : misses) {
    const v1::ExperimentRequest& request = miss.pending->request;
    const sample::SampleOptions sample_options = to_internal(request.sampling);
    for (int attempt = 0;; ++attempt) {
      const std::uint64_t sensor_before =
          plan == nullptr ? 0 : plan->applied(fault::Site::kSensor, miss.key);
      core::Study study{options_.study};
      const sample::SampledResult result = sample::measure_sampled(
          study, *miss.workload, request.input_index, *miss.config,
          sample_options);
      const bool tainted =
          plan != nullptr &&
          plan->applied(fault::Site::kSensor, miss.key) > sensor_before;
      const bool deadline_passed = miss.pending->has_deadline &&
                                   Clock::now() > miss.pending->deadline;
      if (tainted && !deadline_passed && attempt < max_retries) {
        miss.retries = attempt + 1;
        g_retry_attempt_counter.add();
        if (options_.retry_backoff_ms > 0.0) {
          const double factor = static_cast<double>(1ULL << attempt);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  options_.retry_backoff_ms * factor));
        }
        continue;
      }

      Response response;
      response.id = request.id;
      response.key = miss.key;
      response.retries = miss.retries;
      const v1::MeasurementResult dto = to_dto(result);
      if (!tainted) {
        g_eviction_counter.add(cache_.insert(miss.versioned_key, dto));
      }
      if (deadline_passed) {
        response.status = Status::kDeadlineExpired;
        response.error = "deadline expired during computation";
      } else {
        response.status = Status::kOk;
        response.cached = false;
        response.degradation = tainted ? Degradation::kDegraded
                               : miss.retries > 0 ? Degradation::kRetried
                                                  : Degradation::kNone;
        response.result = dto;
      }
      fulfill(miss.pending, std::move(response));
      break;
    }
  }
}

// Thermal misses (DESIGN.md §16). Each measurement runs against a FRESH
// Study carrying that request's thermal scenario (scenarios differ per
// request, so thermal misses never share the exact path's batch Study).
// Fault semantics mirror dispatch_sampled: a sensor fault applied during
// the attempt retries with deterministic backoff; exhausting the budget
// returns the measured-but-degraded result flagged kDegraded and NEVER
// cached. Study::measure has no abort site, so kFailed cannot happen here.
void Service::dispatch_thermal(std::vector<Miss> misses) {
  obs::Span span("dispatch-thermal", "serve");
  span.arg("requests", static_cast<std::uint64_t>(misses.size()));
  const fault::FaultPlan* plan = fault::active();
  const int max_retries =
      plan == nullptr ? 0 : std::max(options_.max_retries, 0);

  for (Miss& miss : misses) {
    const v1::ExperimentRequest& request = miss.pending->request;
    core::Study::Options study_options = options_.study;
    study_options.thermal =
        v1::detail::thermal_to_internal(request.thermal, ladder_candidates());
    for (int attempt = 0;; ++attempt) {
      const std::uint64_t sensor_before =
          plan == nullptr ? 0 : plan->applied(fault::Site::kSensor, miss.key);
      core::Study study{study_options};
      const core::ExperimentResult& result = study.measure(
          *miss.workload, request.input_index, *miss.config);
      const bool tainted =
          plan != nullptr &&
          plan->applied(fault::Site::kSensor, miss.key) > sensor_before;
      const bool deadline_passed = miss.pending->has_deadline &&
                                   Clock::now() > miss.pending->deadline;
      if (tainted && !deadline_passed && attempt < max_retries) {
        miss.retries = attempt + 1;
        g_retry_attempt_counter.add();
        if (options_.retry_backoff_ms > 0.0) {
          const double factor = static_cast<double>(1ULL << attempt);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  options_.retry_backoff_ms * factor));
        }
        continue;
      }

      Response response;
      response.id = request.id;
      response.key = miss.key;
      response.retries = miss.retries;
      const v1::MeasurementResult dto = to_dto(result);
      if (!tainted) {
        g_eviction_counter.add(cache_.insert(miss.versioned_key, dto));
      }
      if (deadline_passed) {
        response.status = Status::kDeadlineExpired;
        response.error = "deadline expired during computation";
      } else {
        response.status = Status::kOk;
        response.cached = false;
        response.degradation = tainted ? Degradation::kDegraded
                               : miss.retries > 0 ? Degradation::kRetried
                                                  : Degradation::kNone;
        response.result = dto;
      }
      fulfill(miss.pending, std::move(response));
      break;
    }
  }
}

std::vector<Response> Service::run_batch(
    const std::vector<v1::ExperimentRequest>& requests) {
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (const v1::ExperimentRequest& request : requests) {
    tickets.push_back(submit(request));
  }
  std::vector<Response> responses;
  responses.reserve(tickets.size());
  for (const Ticket& ticket : tickets) responses.push_back(ticket.wait());
  return responses;
}

Service::Stats Service::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.retried = retried_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.faulted = faulted_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    stats.queue_depth = queue_.size();
  }
  stats.cache = cache_.stats();
  return stats;
}

HealthSnapshot Service::health() const {
  HealthSnapshot health;
  health.submitted = submitted_.load(std::memory_order_relaxed);
  health.completed = completed_.load(std::memory_order_relaxed);
  health.retried = retried_.load(std::memory_order_relaxed);
  health.degraded = degraded_.load(std::memory_order_relaxed);
  health.failed = faulted_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    health.accepting = !stopping_;
    health.queue_depth = queue_.size();
  }
  if (const fault::FaultPlan* plan = fault::active()) {
    health.faults_injected = plan->applied_total();
  }
  return health;
}

Service::AttributionResult Service::attribute(
    const v1::ExperimentRequest& request) const {
  AttributionResult out;
  const workloads::Workload* workload =
      workloads::Registry::instance().find(request.program);
  if (workload == nullptr) {
    out.status = Status::kUnknownProgram;
    out.error = "unknown program: " + request.program;
    return out;
  }
  if (request.input_index >= workload->inputs().size()) {
    out.status = Status::kInvalidRequest;
    out.error = "input index out of range: " +
                std::to_string(request.input_index);
    return out;
  }
  std::string config_error;
  const sim::GpuConfig* config = resolve_config(request, config_error);
  if (config == nullptr) {
    out.status = request.has_config_spec ? Status::kInvalidRequest
                                         : Status::kUnknownConfig;
    out.error = std::move(config_error);
    return out;
  }
  out.key = core::experiment_key(request.program, request.input_index,
                                 request.config);
  // Fresh Study, same options as every dispatch attempt: the attribution
  // (trace + measurement + per-phase model evaluation) is bit-identical
  // to what a direct Study caller would compute for this key.
  core::Study study{options_.study};
  const obs::AttributionTable table =
      study.attribution(*workload, request.input_index, *config);
  out.table = v1::detail::attribution_to_v1(table);
  if (obs::enabled()) {
    obs::Registry::instance().counter("serve.attribution.requests").add();
  }
  return out;
}

Service::SweepOutcome Service::sweep(const SweepRequest& request) {
  obs::Span span("sweep", "serve");
  SweepOutcome out;
  const workloads::Workload* workload =
      workloads::Registry::instance().find(request.program);
  if (workload == nullptr) {
    out.status = Status::kUnknownProgram;
    out.error = "unknown program: " + request.program;
    return out;
  }
  if (request.input_index >= workload->inputs().size()) {
    out.status = Status::kInvalidRequest;
    out.error = "input index out of range: " +
                std::to_string(request.input_index);
    return out;
  }
  const sample::SampleOptions sample_options =
      to_internal(request.options.sampling);
  const bool sampled =
      request.options.sampling.mode != v1::SamplingMode::kExact;
  const bool thermal = request.options.thermal.enabled;
  // Every point of a thermal sweep measures against this scenario; the
  // sample layer's exact-only guard turns a sampled mode into an honest
  // exact passthrough, so the thermal namespace keys the cache regardless
  // of the sampling fields (the results are identical either way).
  core::Study::Options study_options = options_.study;
  if (thermal) {
    study_options.thermal = v1::detail::thermal_to_internal(
        request.options.thermal, ladder_candidates());
  }
  const std::string key_prefix =
      thermal ? cache_version_ + thermal_namespace(request.options.thermal,
                                                   ladder_candidates())
      : sampled ? cache_version_ + sample_namespace(request.options.sampling)
                : cache_version_;
  const fault::FaultPlan* plan = fault::active();
  const int max_retries =
      plan == nullptr ? 0 : std::max(options_.max_retries, 0);

  // Measures one surviving grid point, per-point cache first. The key is
  // exactly what a direct request for (program, input, config-name) uses,
  // so sweeps warm the point cache and vice versa. Misses follow the
  // sampled-dispatch fault semantics: measure_sampled has no abort site,
  // sensor taint retries with deterministic backoff, and a degraded
  // result is returned flagged but NEVER cached.
  const auto measure_point = [&](const sim::GpuConfig& config,
                                 dvfs::PointStatus& status) {
    const std::string key = core::experiment_key(
        request.program, request.input_index, config.name);
    const std::string versioned_key = key_prefix + key;
    v1::MeasurementResult cached;
    if (cache_.lookup(versioned_key, cached)) {
      g_cache_hit_counter.add();
      status.cached = true;
      return from_dto(cached);
    }
    g_cache_miss_counter.add();
    for (int attempt = 0;; ++attempt) {
      const std::uint64_t sensor_before =
          plan == nullptr ? 0 : plan->applied(fault::Site::kSensor, key);
      core::Study study{study_options};
      const sample::SampledResult result = sample::measure_sampled(
          study, *workload, request.input_index, config, sample_options);
      const bool tainted =
          plan != nullptr &&
          plan->applied(fault::Site::kSensor, key) > sensor_before;
      if (tainted && attempt < max_retries) {
        status.retries = attempt + 1;
        g_retry_attempt_counter.add();
        if (options_.retry_backoff_ms > 0.0) {
          const double factor = static_cast<double>(1ULL << attempt);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  options_.retry_backoff_ms * factor));
        }
        continue;
      }
      if (!tainted) {
        g_eviction_counter.add(cache_.insert(versioned_key, to_dto(result)));
      }
      status.degraded = tainted;
      return result;
    }
  };

  try {
    // Fresh Study for the analytic projection pass, mirroring every other
    // service-side computation; point measurements use their own fresh
    // Study per attempt inside measure_point.
    core::Study study{study_options};
    const dvfs::Sweep swept = dvfs::run_sweep(
        study, *workload, request.input_index,
        v1::detail::sweep_settings_to_internal(request.options),
        measure_point);
    out.sweep = v1::detail::sweep_to_v1(request.program, request.input_index,
                                        swept);
  } catch (const std::invalid_argument& e) {
    out.status = Status::kInvalidRequest;
    out.error = e.what();
    return out;
  }
  for (const v1::SweepPoint& point : out.sweep.points) {
    out.retries += point.retries;
    if (point.degraded) {
      out.degradation = Degradation::kDegraded;
    } else if (point.retries > 0 &&
               out.degradation == Degradation::kNone) {
      out.degradation = Degradation::kRetried;
    }
  }
  out.status = Status::kOk;
  if (obs::enabled()) {
    obs::Registry::instance().counter("serve.sweep.requests").add();
  }
  return out;
}

Service::RecommendOutcome Service::recommend(const RecommendRequest& request) {
  RecommendOutcome out;
  SweepRequest sweep_request;
  sweep_request.id = request.id;
  sweep_request.program = request.program;
  sweep_request.input_index = request.input_index;
  sweep_request.options = request.options;
  SweepOutcome swept = sweep(sweep_request);
  out.status = swept.status;
  out.error = std::move(swept.error);
  out.degradation = swept.degradation;
  out.retries = swept.retries;
  if (out.status != Status::kOk) return out;
  try {
    out.recommendation = v1::detail::recommend_over(
        request.objective, request.perf_cap_rel, std::move(swept.sweep),
        request.exclude_throttled);
  } catch (const std::invalid_argument& e) {
    out.status = Status::kInvalidRequest;
    out.error = e.what();
    return out;
  }
  if (!out.recommendation.ok) {
    // Swept fine but nothing qualified (e.g. every point unusable): a
    // structured failure, not a malformed request.
    out.status = Status::kFailed;
    out.error = out.recommendation.error;
  }
  if (obs::enabled()) {
    obs::Registry::instance().counter("serve.recommend.requests").add();
  }
  return out;
}

}  // namespace repro::serve
