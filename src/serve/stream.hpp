// JSONL stream serving over arbitrary transports (DESIGN.md §11, §14).
//
// The request/response loop that `repro-serve` runs on stdin/stdout and on
// every unix-socket connection, as a library: the shard router (src/shard/)
// forks worker processes that serve one full-duplex fd each, and tests spin
// in-process workers on socketpairs. One loop implementation means the
// ordering guarantee (responses in request order, streamed as they resolve)
// is stated — and hardened — exactly once.
//
// Hardening for real load (the polite-smoke-client era is over):
//  - every fd read/write retries EINTR and resumes partial transfers;
//  - socket writes use MSG_NOSIGNAL, so a client that disconnects while a
//    response is in flight surfaces as EPIPE to this connection's loop
//    instead of a process-killing SIGPIPE;
//  - a client that disconnects mid-line (trailing bytes with no newline)
//    has the fragment discarded — a half-request is never parsed, and the
//    listener keeps accepting;
//  - a failed response write keeps draining tickets (output discarded) so
//    every submitted request still resolves and the service queue drains.
#pragma once

#include <cstddef>
#include <functional>
#include <istream>
#include <ostream>
#include <string>

namespace repro::serve {

class Service;

/// Retries EINTR. Returns bytes read, 0 on EOF, -1 on error.
long fd_read_some(int fd, char* buffer, std::size_t size) noexcept;

/// Writes all of `data`, resuming partial writes and retrying EINTR.
/// Sockets are written with MSG_NOSIGNAL (no SIGPIPE); non-socket fds fall
/// back to plain write. Returns false when the peer is gone.
bool fd_write_all(int fd, const char* data, std::size_t size) noexcept;

/// Buffered newline-delimited reader over an fd. `next` strips the
/// terminating '\n' (and a preceding '\r'); a trailing unterminated
/// fragment at EOF — the signature of a client dying mid-line — is
/// discarded, never returned as a line.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) noexcept : fd_(fd) {}

  /// Reads the next complete line. False on EOF or read error.
  bool next(std::string& line);

 private:
  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool eof_ = false;
};

/// Per-stream hooks of the serve loop.
struct StreamHooks {
  /// Called once per non-empty inbound line (repro-serve --metrics-every).
  std::function<void()> on_line;
};

/// Serves one JSONL stream: requests from `next_line`, responses through
/// `write_line` in request order (submission and output overlap; a writer
/// thread drains tickets FIFO). `next_line` returns false at end of
/// stream; `write_line` returns false when the peer is gone, after which
/// remaining responses are discarded but still awaited.
void serve_lines(Service& service,
                 const std::function<bool(std::string&)>& next_line,
                 const std::function<bool(const std::string&)>& write_line,
                 const StreamHooks& hooks = {});

/// iostream transport (repro-serve stdin/stdout).
void serve_stream(Service& service, std::istream& in, std::ostream& out,
                  const StreamHooks& hooks = {});

/// Full-duplex fd transport (socket connections, socketpair workers).
void serve_fd(Service& service, int fd, const StreamHooks& hooks = {});

/// Binds a unix listener at `path` and runs `handle(fd)` on a detached
/// thread per connection (the fd is closed after `handle` returns).
/// Accept errors that do not invalidate the listener (EINTR,
/// ECONNABORTED) are retried — one dying client never takes the listener
/// down. Returns nonzero on setup failure. The shard router reuses this
/// with its own per-connection routing loop.
int serve_unix_listener_with(const std::string& path,
                             const std::function<void(int fd)>& handle);

/// serve_unix_listener_with bound to serve_fd: every connection is one
/// JSONL stream sharing `service` (one cache, one queue).
int serve_unix_listener(Service& service, const std::string& path,
                        const StreamHooks& hooks = {});

}  // namespace repro::serve
