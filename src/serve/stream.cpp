#include "serve/stream.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <variant>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace repro::serve {

long fd_read_some(int fd, char* buffer, std::size_t size) noexcept {
  for (;;) {
    const ssize_t n = ::read(fd, buffer, size);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    return -1;
  }
}

bool fd_write_all(int fd, const char* data, std::size_t size) noexcept {
  std::size_t off = 0;
  while (off < size) {
    // MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE; pipes
    // and regular files answer ENOTSOCK and fall back to plain write.
    ssize_t wrote = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (wrote < 0 && errno == ENOTSOCK) {
      wrote = ::write(fd, data + off, size - off);
    }
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (wrote == 0) return false;
    off += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool FdLineReader::next(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      std::size_t end = newline;
      if (end > pos_ && buffer_[end - 1] == '\r') --end;
      line.assign(buffer_, pos_, end - pos_);
      pos_ = newline + 1;
      if (pos_ >= buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
      }
      return true;
    }
    if (eof_) return false;  // trailing fragment without '\n': discarded
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    char chunk[4096];
    const long n = fd_read_some(fd_, chunk, sizeof chunk);
    if (n <= 0) {
      eof_ = true;
      continue;  // one more pass flushes a complete buffered line, if any
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

namespace {

// One submitted line: a ticket still in flight, an immediate response
// (parse errors resolve without touching the service), or a raw
// pre-formatted line (health/metrics/attribution answers).
using Slot = std::variant<Service::Ticket, Response, std::string>;

Response invalid_response(std::uint64_t id, std::string error) {
  Response response;
  response.id = id;
  response.status = Status::kInvalidRequest;
  response.error = std::move(error);
  return response;
}

}  // namespace

void serve_lines(Service& service,
                 const std::function<bool(std::string&)>& next_line,
                 const std::function<bool(const std::string&)>& write_line,
                 const StreamHooks& hooks) {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Slot> slots;
  bool done = false;

  std::thread writer([&] {
    bool peer_alive = true;
    for (;;) {
      Slot slot;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return done || !slots.empty(); });
        if (slots.empty()) return;
        slot = std::move(slots.front());
        slots.pop_front();
      }
      std::string line;
      if (std::holds_alternative<std::string>(slot)) {
        line = std::move(std::get<std::string>(slot));
      } else {
        const Response& response =
            std::holds_alternative<Response>(slot)
                ? std::get<Response>(slot)
                : std::get<Service::Ticket>(slot).wait();
        line = format_response_line(response);
      }
      // A peer that disconnected mid-stream stops receiving output, but
      // tickets are still awaited: every submitted request resolves and
      // the admission queue drains instead of wedging on a dead client.
      if (peer_alive) peer_alive = write_line(line);
    }
  });

  std::string line;
  std::uint64_t line_number = 0;
  while (next_line(line)) {
    ++line_number;
    if (line.empty()) continue;
    // Wire fault-injection site (DESIGN.md §12): inbound lines may be
    // truncated or byte-corrupted by an installed plan. Mutated lines fall
    // through the normal parser and resolve as structured kInvalidRequest
    // responses (or, rarely, as a different-but-valid request) — the
    // stream itself never desynchronizes.
    line = fault::filter_wire_line("inbound", line);
    if (line.empty()) continue;  // truncated to nothing: like a blank line
    Slot slot;
    if (is_health_request(line)) {
      slot = format_health_line(service.health());
    } else if (is_metrics_request(line)) {
      slot = format_metrics_line(obs::Registry::instance().snapshot());
    } else if (is_attribution_request(line)) {
      // Attribution runs synchronously on the reader thread: it is a
      // monitoring/analysis endpoint, and computing it inline keeps the
      // response-in-request-order guarantee without a ticket type.
      v1::ExperimentRequest request;
      std::string error;
      if (parse_attribution_request(line, request, error)) {
        const Service::AttributionResult result = service.attribute(request);
        slot = result.status == Status::kOk
                   ? format_attribution_line(result.key, result.table)
                   : format_attribution_error_line(result.status, result.key,
                                                   result.error);
      } else {
        slot = format_attribution_error_line(Status::kInvalidRequest, "",
                                             error);
      }
    } else if (is_sweep_request(line)) {
      // Sweeps and recommendations run synchronously on the reader thread
      // like attribution: they are analysis endpoints whose per-point
      // measurements already flow through the service's result cache.
      SweepRequest request;
      std::string error;
      if (parse_sweep_request(line, request, error)) {
        if (request.id == 0) request.id = line_number;
        const Service::SweepOutcome outcome = service.sweep(request);
        slot = outcome.status == Status::kOk
                   ? format_sweep_line(request.id, outcome.sweep,
                                       outcome.degradation, outcome.retries)
                   : format_sweep_error_line(request.id, outcome.status,
                                             outcome.error);
      } else {
        slot = format_sweep_error_line(line_number, Status::kInvalidRequest,
                                       error);
      }
    } else if (is_recommend_request(line)) {
      RecommendRequest request;
      std::string error;
      if (parse_recommend_request(line, request, error)) {
        if (request.id == 0) request.id = line_number;
        const Service::RecommendOutcome outcome = service.recommend(request);
        slot = outcome.status == Status::kOk
                   ? format_recommend_line(request.id, outcome.recommendation,
                                           outcome.degradation,
                                           outcome.retries)
                   : format_recommend_error_line(request.id, outcome.status,
                                                 outcome.error);
      } else {
        slot = format_recommend_error_line(line_number,
                                           Status::kInvalidRequest, error);
      }
    } else {
      v1::ExperimentRequest request;
      std::string error;
      if (parse_request_line(line, request, error)) {
        if (request.id == 0) request.id = line_number;
        slot = service.submit(std::move(request));
      } else {
        slot = invalid_response(line_number, std::move(error));
      }
    }
    {
      std::lock_guard lock(mutex);
      slots.push_back(std::move(slot));
    }
    cv.notify_one();
    if (hooks.on_line) hooks.on_line();
  }
  {
    std::lock_guard lock(mutex);
    done = true;
  }
  cv.notify_one();
  writer.join();
}

void serve_stream(Service& service, std::istream& in, std::ostream& out,
                  const StreamHooks& hooks) {
  serve_lines(
      service,
      [&](std::string& line) {
        if (!std::getline(in, line)) return false;
        // A final line with no terminator on an interactive transport means
        // the peer died mid-line; dropping it mirrors FdLineReader. (Well-
        // formed producers always end with '\n', so this is unreachable for
        // them.)
        if (in.eof() && !line.empty()) return false;
        return true;
      },
      [&](const std::string& line) {
        out << line << '\n';
        out.flush();
        return out.good();
      },
      hooks);
}

void serve_fd(Service& service, int fd, const StreamHooks& hooks) {
  FdLineReader reader(fd);
  serve_lines(
      service, [&](std::string& line) { return reader.next(line); },
      [&](const std::string& line) {
        return fd_write_all(fd, line.c_str(), line.size()) &&
               fd_write_all(fd, "\n", 1);
      },
      hooks);
}

int serve_unix_listener_with(const std::string& path,
                             const std::function<void(int fd)>& handle) {
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("repro-serve: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "repro-serve: socket path too long: %s\n",
                 path.c_str());
    ::close(listener);
    return 1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 64) != 0) {
    std::perror("repro-serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "repro-serve: listening on %s\n", path.c_str());
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      // A connection that died between connect and accept (ECONNABORTED)
      // or a signal (EINTR) must not take the listener down.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // `handle` is copied: a connection thread may outlive the accept loop.
    std::thread([handle, fd] {
      handle(fd);
      ::close(fd);
    }).detach();
  }
  ::close(listener);
  return 0;
}

int serve_unix_listener(Service& service, const std::string& path,
                        const StreamHooks& hooks) {
  return serve_unix_listener_with(
      path, [&service, hooks](int fd) { serve_fd(service, fd, hooks); });
}

}  // namespace repro::serve
