#include "core/aggregate.hpp"

namespace repro::core {

std::vector<EntryRatio> suite_ratios(Study& study, std::string_view suite_name,
                                     const sim::GpuConfig& config_a,
                                     const sim::GpuConfig& config_b) {
  std::vector<EntryRatio> out;
  for (const workloads::Workload* w :
       workloads::Registry::instance().by_suite(suite_name)) {
    if (!w->variant().empty()) continue;  // alternate implementations: Table 3
    const auto inputs = w->inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const ExperimentResult& a = study.measure(*w, i, config_a);
      const ExperimentResult& b = study.measure(*w, i, config_b);
      EntryRatio entry;
      entry.program = std::string(w->name());
      entry.input = inputs[i].name;
      entry.ratio = ratios(b, a);
      out.push_back(std::move(entry));
    }
  }
  return out;
}

SuiteRatioBox summarize(std::string_view suite_name,
                        const std::vector<EntryRatio>& entries) {
  SuiteRatioBox box;
  box.suite = std::string(suite_name);
  std::vector<double> times, energies, powers;
  for (const EntryRatio& e : entries) {
    if (!e.ratio.usable) continue;
    times.push_back(e.ratio.time);
    energies.push_back(e.ratio.energy);
    powers.push_back(e.ratio.power);
  }
  box.entries = static_cast<int>(times.size());
  if (box.entries > 0) {
    box.time = util::box_stats(times);
    box.energy = util::box_stats(energies);
    box.power = util::box_stats(powers);
  }
  return box;
}

std::vector<double> suite_powers(Study& study, std::string_view suite_name,
                                 const sim::GpuConfig& config) {
  std::vector<double> out;
  for (const workloads::Workload* w :
       workloads::Registry::instance().by_suite(suite_name)) {
    if (!w->variant().empty()) continue;
    const auto inputs = w->inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const ExperimentResult& r = study.measure(*w, i, config);
      if (r.usable) out.push_back(r.power_w);
    }
  }
  return out;
}

}  // namespace repro::core
