// Run-to-run measurement variability model (paper Table 2).
//
// Real hardware runs differ by up to ~8.7% in active runtime between the
// best and worst of three repetitions. The paper attributes this to timing
// noise, sampling alignment and (controlled-away) temperature effects. We
// model: (a) a global multiplicative runtime jitter per run, (b) small
// independent per-phase jitter, (c) an occasional heavier-tailed outlier
// run, and (d) activity jitter that decouples energy noise from time
// noise. Sensor sampling-phase jitter comes from the sensor itself.
#pragma once

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace repro::core {

struct VariabilityOptions {
  double time_sigma_regular = 0.005;
  double time_sigma_irregular = 0.009;
  double phase_sigma = 0.004;
  double activity_sigma = 0.006;
  double outlier_probability = 0.10;
  double outlier_scale = 0.022;
};

/// Returns a perturbed copy of `trace` for one repetition.
sim::TraceResult perturb(const sim::TraceResult& trace,
                         workloads::Regularity regularity, util::Rng& rng,
                         const VariabilityOptions& options = {});

}  // namespace repro::core
