// Suite-level aggregation for the paper's figures.
//
// Figures 2-4 show, per benchmark suite, box stats (median bar, quartile
// box, min/max whiskers) of the relative change in active runtime, energy
// and power between two GPU configurations, over all program-input
// combinations that produced usable measurements under both. Figure 6
// shows the box of absolute power per suite per configuration.
#pragma once

#include <string>
#include <vector>

#include "core/study.hpp"
#include "util/stats.hpp"

namespace repro::core {

/// One program-input entry of a suite aggregation.
struct EntryRatio {
  std::string program;
  std::string input;
  MetricRatios ratio;
};

struct SuiteRatioBox {
  std::string suite;
  int entries = 0;  // usable program-input pairs
  util::BoxStats time;
  util::BoxStats energy;
  util::BoxStats power;
};

/// Computes config-B / config-A metric ratios for every primary program
/// (variants excluded) and input of `suite_name`, skipping entries that are
/// unusable under either configuration (the paper's 324 exclusions).
std::vector<EntryRatio> suite_ratios(Study& study, std::string_view suite_name,
                                     const sim::GpuConfig& config_a,
                                     const sim::GpuConfig& config_b);

/// Box stats over the usable entries. Returns entries == 0 when nothing
/// survived.
SuiteRatioBox summarize(std::string_view suite_name,
                        const std::vector<EntryRatio>& entries);

/// Absolute average power of every usable program-input pair of a suite
/// under one configuration (Figure 6).
std::vector<double> suite_powers(Study& study, std::string_view suite_name,
                                 const sim::GpuConfig& config);

}  // namespace repro::core
