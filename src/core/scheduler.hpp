// Parallel experiment scheduler (the paper's §IV matrix, concurrently).
//
// The full experiment matrix (34 programs x 4 GPU configurations x 3
// repetitions) is embarrassingly parallel: every experiment's measurement
// stream is seeded purely from its cache key (core/study.hpp), so no RNG
// state crosses experiment boundaries and execution order cannot change
// any measured value. The scheduler exploits this with a work-stealing
// thread pool over a shared, thread-safe Study, and guarantees:
//
//   1. bit-identical results to serial Study::measure for the same seeds
//      (tests/scheduler_test.cpp proves this at several thread counts),
//   2. deterministic output across invocations and thread counts, and
//   3. stable aggregation order: BatchReport.results is sorted by
//      experiment key regardless of completion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/study.hpp"

namespace repro::core {

/// One unit of schedulable work: a (program, input, config) experiment.
struct ExperimentJob {
  const workloads::Workload* workload = nullptr;
  std::size_t input_index = 0;
  const sim::GpuConfig* config = nullptr;
};

/// Per-worker execution metrics for the batch report.
struct WorkerMetrics {
  std::uint64_t jobs = 0;    // jobs this worker executed
  std::uint64_t steals = 0;  // of which were taken from another worker's queue
  double busy_s = 0.0;       // wall time spent inside Study::measure
};

/// One experiment of a finished batch, in stable (key-sorted) order.
struct BatchEntry {
  std::string key;
  const ExperimentJob* job = nullptr;       // points into the submitted batch
  const ExperimentResult* result = nullptr; // owned by the Study
};

/// Wall-time spent in one pipeline stage over a batch (delta of the
/// observability layer's per-stage histograms, DESIGN.md §9). Only
/// populated while obs is enabled (REPRO_OBS=1 / --obs).
struct StageTiming {
  std::string stage;
  std::uint64_t count = 0;
  double total_s = 0.0;

  double mean_s() const {
    return count == 0 ? 0.0 : total_s / static_cast<double>(count);
  }
};

/// Everything the scheduler knows about a finished batch.
struct BatchReport {
  int threads = 1;
  std::size_t jobs = 0;        // submitted jobs (may contain duplicate keys)
  double wall_s = 0.0;
  Study::CacheStats stats;     // cache counter delta over this batch
  std::vector<WorkerMetrics> workers;
  std::vector<BatchEntry> results;  // deduplicated, sorted by key
  std::vector<StageTiming> stage_timing;  // empty unless obs was enabled
  /// Keys whose every job this batch was aborted by the fault injector
  /// (src/fault/): never computed, absent from `results`, retryable by the
  /// caller. Sorted, deduplicated. Always empty without an active plan.
  std::vector<std::string> aborted;

  double busy_s() const;
  /// Total jobs / steals over all workers.
  std::uint64_t total_jobs() const;
  std::uint64_t total_steals() const;
  /// Fraction of result-cache lookups served without computing, in [0, 1].
  /// 0 for an empty batch (no lookups).
  double hit_rate() const;
  /// The metrics surface printed at batch end: jobs done, cache hit rate,
  /// per-worker busy time and steals, per-stage timing when obs is on.
  /// Every ratio is guarded against zero-job batches (see DESIGN.md §8).
  void print(std::ostream& os) const;
};

class Scheduler {
 public:
  struct Options {
    /// Worker count; <= 0 selects the REPRO_THREADS environment variable
    /// if set, else std::thread::hardware_concurrency().
    int threads = 0;
  };

  Scheduler() : Scheduler(Options{}) {}
  explicit Scheduler(Options options);

  /// Runs every job (deduplicated by the Study's cache) and blocks until
  /// the batch is done. Safe to call repeatedly and from multiple
  /// schedulers sharing one Study.
  BatchReport run(Study& study, const std::vector<ExperimentJob>& jobs) const;

  int threads() const noexcept { return threads_; }

  /// Resolution rule documented on Options::threads.
  static int resolve_threads(int requested);

 private:
  int threads_;
};

/// The cross product of `workloads` inputs and `configs` as a job batch.
std::vector<ExperimentJob> experiment_matrix(
    const std::vector<const workloads::Workload*>& workloads,
    const std::vector<const sim::GpuConfig*>& configs);

/// The registry-wide matrix over the named configurations; variants
/// (alternate implementations, paper §V.B.1) are included only on request.
std::vector<ExperimentJob> registry_matrix(
    const std::vector<std::string>& config_names, bool include_variants = false);

}  // namespace repro::core
