#include "core/study.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/variability.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace repro::core {

Study::Study(Options options) : options_(options) {}

namespace {

// Percent-escapes the key separator so parts can never bleed into each
// other: "x/0" + input 0 + config "y" and "x" + input 0 + config "0/y"
// must produce different keys (they would alias with naive joining).
void append_escaped(std::string& out, std::string_view part) {
  for (const char c : part) {
    if (c == '%') {
      out += "%25";
    } else if (c == '/') {
      out += "%2F";
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string experiment_key(std::string_view program, std::size_t input_index,
                           std::string_view config_name) {
  std::string key;
  key.reserve(program.size() + config_name.size() + 8);
  append_escaped(key, program);
  key += '/';
  key += std::to_string(input_index);
  key += '/';
  append_escaped(key, config_name);
  return key;
}

namespace {

// Inverse of append_escaped. Strict: only the exact sequences the encoder
// emits ("%25", "%2F") are accepted, so non-canonical spellings ("%2f",
// a trailing '%') are rejected rather than silently normalized — a
// normalizing decoder would let two different byte strings decode to the
// same triple, breaking the round-trip property the cache relies on.
bool unescape_part(std::string_view part, std::string& out) {
  out.clear();
  out.reserve(part.size());
  for (std::size_t i = 0; i < part.size(); ++i) {
    const char c = part[i];
    if (c == '/') return false;  // raw separators never survive encoding
    if (c != '%') {
      out += c;
      continue;
    }
    if (part.substr(i, 3) == "%25") {
      out += '%';
    } else if (part.substr(i, 3) == "%2F") {
      out += '/';
    } else {
      return false;
    }
    i += 2;
  }
  return true;
}

}  // namespace

bool parse_experiment_key(std::string_view key, ExperimentKeyParts& out) {
  const std::size_t first = key.find('/');
  if (first == std::string_view::npos) return false;
  const std::size_t second = key.find('/', first + 1);
  if (second == std::string_view::npos) return false;
  if (key.find('/', second + 1) != std::string_view::npos) return false;

  const std::string_view index_part = key.substr(first + 1, second - first - 1);
  if (index_part.empty()) return false;
  std::size_t index = 0;
  for (const char c : index_part) {
    if (c < '0' || c > '9') return false;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (index > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
      return false;  // overflow: no real input index is this large
    }
    index = index * 10 + digit;
  }
  // Canonical keys never zero-pad the index ("01" is not a key we emit).
  if (index_part.size() > 1 && index_part.front() == '0') return false;

  ExperimentKeyParts parts;
  parts.input_index = index;
  if (!unescape_part(key.substr(0, first), parts.program)) return false;
  if (!unescape_part(key.substr(second + 1), parts.config)) return false;
  out = std::move(parts);
  return true;
}

Study::Shard& Study::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShardCount];
}

const sim::TraceResult& Study::trace_result(const workloads::Workload& workload,
                                            std::size_t input_index,
                                            const sim::GpuConfig& config) {
  const std::string key = experiment_key(workload, input_index, config);
  Shard& shard = shard_for(key);
  TraceCell* cell = nullptr;
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.traces.find(key);
    if (it != shard.traces.end()) cell = &it->second;
  }
  if (cell == nullptr) {
    std::unique_lock lock(shard.mutex);
    cell = &shard.traces.try_emplace(key).first->second;
  }
  bool computed = false;
  std::call_once(cell->once, [&] {
    computed = true;
    workloads::ExecContext ctx;
    ctx.core_mhz = config.core_mhz;
    ctx.mem_mhz = config.mem_mhz;
    ctx.ecc = config.ecc;
    ctx.structural_seed = options_.structural_seed;
    workloads::LaunchTrace trace;
    {
      obs::Span span("trace-build");
      span.arg("key", key);
      trace = workload.trace(input_index, ctx);
    }
    cell->value = sim::run_trace(sim::k20c(), config, trace);
  });
  (computed ? trace_misses_ : trace_hits_).fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::Registry::instance()
        .counter(computed ? "study.trace_cache.misses"
                          : "study.trace_cache.hits")
        .add();
  }
  return cell->value;
}

ExperimentResult Study::compute_measurement(const workloads::Workload& workload,
                                            std::size_t input_index,
                                            const sim::GpuConfig& config,
                                            const std::string& key) {
  obs::Span span("experiment", "experiment");
  span.arg("key", key);
  // Fault-injection context (DESIGN.md §12): deep pipeline sites (the
  // sensor) attribute their fault draws to this experiment's key. Inert
  // without an installed plan.
  fault::KeyScope fault_scope{key};

  const sim::TraceResult& ground_truth =
      trace_result(workload, input_index, config);

  ExperimentResult result;
  result.true_active_s = ground_truth.active_time_s;

  // One deterministic measurement stream per experiment, derived purely
  // from the experiment key. This is what makes the parallel scheduler
  // trivially equivalent to serial execution: no RNG state is shared
  // between experiments, so execution order cannot influence results.
  util::Rng stream{util::mix64(options_.measurement_seed ^
                               util::mix64(std::hash<std::string>{}(key)))};
  const sensor::Sensor sensor;

  // Fast path (DESIGN.md §10): per-config power scalars and per-activity
  // dynamic energies are evaluated once through the memo, the analyzer
  // threshold floor is hoisted out of the repetition loop, and the
  // waveform/sample buffers are recycled across repetitions. All values
  // stay bit-identical to the reference pipeline (golden tests enforce
  // this; the memo keeps the logical phase_power call count unchanged).
  power::PhasePowerMemo memo{power_model_, config,
                             config.ecc ? workload.ecc_power_adjustment() : 1.0};
  const k20power::AnalyzeOptions analyze_options =
      k20power::options_for_tail(memo.tail_power_w());
  sensor::Waveform waveform;
  std::vector<sensor::Sample> samples;

  std::vector<double> times, energies, powers;
  for (int rep = 0; rep < options_.repetitions; ++rep) {
    obs::Span rep_span("repetition");
    rep_span.arg("rep", static_cast<std::uint64_t>(rep));
    util::Rng rep_rng = stream.fork(static_cast<std::uint64_t>(rep) + 1);
    sim::TraceResult perturbed;
    {
      obs::Span variability_span("variability");
      perturbed = perturb(ground_truth, workload.regularity(), rep_rng);
    }
    sensor::synthesize_into(waveform, perturbed, memo);
    // Thermal scenario (DESIGN.md §16): simulate the RC network over this
    // repetition's waveform and, when leakage feedback or throttling
    // changed the applied power, rewrite the trace before the sensor reads
    // it. With the scenario off the waveform is byte-untouched.
    if (options_.thermal.enabled) {
      const thermal::ThermalResult th =
          thermal::simulate(waveform, options_.thermal, config,
                            memo.static_power_w(), memo.leakage_w());
      result.thermal = true;
      result.peak_temp_c = std::max(result.peak_temp_c, th.peak_die_c);
      result.throttled = result.throttled || th.throttled;
      result.throttle_events = std::max(result.throttle_events,
                                        static_cast<int>(th.events.size()));
    }
    sensor.record_into(waveform, rep_rng, samples);
    k20power::Measurement m = k20power::analyze(samples, analyze_options);
    result.repetitions.push_back(m);
    if (m.usable) {
      times.push_back(m.active_time_s);
      energies.push_back(m.energy_j);
      powers.push_back(m.avg_power_w);
    }
  }

  if (times.size() >= 2) {
    result.usable = true;
    result.time_s = util::median(times);
    result.energy_j = util::median(energies);
    result.power_w = util::median(powers);
    result.time_spread = util::relative_spread(times);
    result.energy_spread = util::relative_spread(energies);
  }
  return result;
}

const ExperimentResult& Study::measure(const workloads::Workload& workload,
                                       std::size_t input_index,
                                       const sim::GpuConfig& config) {
  const std::string key = experiment_key(workload, input_index, config);
  Shard& shard = shard_for(key);
  ResultCell* cell = nullptr;
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.results.find(key);
    if (it != shard.results.end()) cell = &it->second;
  }
  if (cell == nullptr) {
    std::unique_lock lock(shard.mutex);
    cell = &shard.results.try_emplace(key).first->second;
  }
  bool computed = false;
  std::call_once(cell->once, [&] {
    computed = true;
    cell->value = compute_measurement(workload, input_index, config, key);
  });
  (computed ? result_misses_ : result_hits_).fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::Registry::instance()
        .counter(computed ? "study.result_cache.misses"
                          : "study.result_cache.hits")
        .add();
  }
  return cell->value;
}

obs::AttributionTable Study::attribution(const workloads::Workload& workload,
                                         std::size_t input_index,
                                         const sim::GpuConfig& config) {
  const sim::TraceResult& trace = trace_result(workload, input_index, config);
  const ExperimentResult& result = measure(workload, input_index, config);
  const double measured = result.usable ? result.energy_j : 0.0;
  if (!options_.thermal.enabled) {
    return obs::attribute(trace, config, power_model_,
                          workload.ecc_power_adjustment(), measured);
  }
  // Thermal attribution (DESIGN.md §16): one deterministic thermal pass
  // over the ground-truth waveform yields each phase's extra static energy
  // (leakage delta + throttle delta) inside its timeline window; attribute
  // adds it to the phase's static and model columns so the decomposition
  // law keeps holding with temperature-dependent static power.
  const double ecc_adjust =
      config.ecc ? workload.ecc_power_adjustment() : 1.0;
  sensor::Waveform waveform =
      sensor::synthesize(trace, config, power_model_, ecc_adjust);
  power::PhasePowerMemo memo{power_model_, config, ecc_adjust};
  const thermal::ThermalResult th =
      thermal::simulate(waveform, options_.thermal, config,
                        memo.static_power_w(), memo.leakage_w());
  const sensor::WaveformOptions wave_options{};
  std::vector<double> extra_j(trace.phases.size(), 0.0);
  double t = wave_options.lead_in_idle_s + wave_options.init_phase_s;
  for (std::size_t i = 0; i < trace.phases.size(); ++i) {
    const sim::Phase& phase = trace.phases[i];
    t += phase.host_gap_before_s;
    extra_j[i] = thermal::window_extra_j(th, t, t + phase.duration_s);
    t += phase.duration_s;
  }
  return obs::attribute(trace, config, power_model_,
                        workload.ecc_power_adjustment(), measured, &extra_j);
}

Study::CacheStats Study::cache_stats() const {
  CacheStats stats;
  stats.trace_hits = trace_hits_.load(std::memory_order_relaxed);
  stats.trace_misses = trace_misses_.load(std::memory_order_relaxed);
  stats.result_hits = result_hits_.load(std::memory_order_relaxed);
  stats.result_misses = result_misses_.load(std::memory_order_relaxed);
  return stats;
}

MetricRatios ratios(const ExperimentResult& numerator,
                    const ExperimentResult& denominator) {
  MetricRatios r;
  if (!numerator.usable || !denominator.usable || denominator.time_s <= 0.0 ||
      denominator.energy_j <= 0.0 || denominator.power_w <= 0.0) {
    return r;
  }
  r.usable = true;
  r.time = numerator.time_s / denominator.time_s;
  r.energy = numerator.energy_j / denominator.energy_j;
  r.power = numerator.power_w / denominator.power_w;
  return r;
}

}  // namespace repro::core
