#include "core/study.hpp"

#include <string>

#include "core/variability.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace repro::core {

Study::Study(Options options) : options_(options) {}

namespace {

std::string cache_key(const workloads::Workload& w, std::size_t input,
                      const sim::GpuConfig& config) {
  return std::string(w.name()) + "/" + std::to_string(input) + "/" + config.name;
}

}  // namespace

const sim::TraceResult& Study::trace_result(const workloads::Workload& workload,
                                            std::size_t input_index,
                                            const sim::GpuConfig& config) {
  const std::string key = cache_key(workload, input_index, config);
  auto it = trace_cache_.find(key);
  if (it != trace_cache_.end()) return it->second;

  workloads::ExecContext ctx;
  ctx.core_mhz = config.core_mhz;
  ctx.mem_mhz = config.mem_mhz;
  ctx.ecc = config.ecc;
  ctx.structural_seed = options_.structural_seed;
  const workloads::LaunchTrace trace = workload.trace(input_index, ctx);
  sim::TraceResult result = sim::run_trace(sim::k20c(), config, trace);
  return trace_cache_.emplace(key, std::move(result)).first->second;
}

const ExperimentResult& Study::measure(const workloads::Workload& workload,
                                       std::size_t input_index,
                                       const sim::GpuConfig& config) {
  const std::string key = cache_key(workload, input_index, config);
  auto it = result_cache_.find(key);
  if (it != result_cache_.end()) return it->second;

  const sim::TraceResult& ground_truth =
      trace_result(workload, input_index, config);

  ExperimentResult result;
  result.true_active_s = ground_truth.active_time_s;

  // One deterministic measurement stream per experiment.
  util::Rng stream{util::mix64(options_.measurement_seed ^
                               util::mix64(std::hash<std::string>{}(key)))};
  const sensor::Sensor sensor;

  std::vector<double> times, energies, powers;
  for (int rep = 0; rep < options_.repetitions; ++rep) {
    util::Rng rep_rng = stream.fork(static_cast<std::uint64_t>(rep) + 1);
    const sim::TraceResult perturbed =
        perturb(ground_truth, workload.regularity(), rep_rng);
    const sensor::Waveform waveform =
        sensor::synthesize(perturbed, config, power_model_,
                           config.ecc ? workload.ecc_power_adjustment() : 1.0);
    const auto samples = sensor.record(waveform, rep_rng);
    k20power::Measurement m = k20power::analyze(
        samples, k20power::options_for_tail(power_model_.tail_power_w(config)));
    result.repetitions.push_back(m);
    if (m.usable) {
      times.push_back(m.active_time_s);
      energies.push_back(m.energy_j);
      powers.push_back(m.avg_power_w);
    }
  }

  if (times.size() >= 2) {
    result.usable = true;
    result.time_s = util::median(times);
    result.energy_j = util::median(energies);
    result.power_w = util::median(powers);
    result.time_spread = util::relative_spread(times);
    result.energy_spread = util::relative_spread(energies);
  }
  return result_cache_.emplace(key, std::move(result)).first->second;
}

MetricRatios ratios(const ExperimentResult& numerator,
                    const ExperimentResult& denominator) {
  MetricRatios r;
  if (!numerator.usable || !denominator.usable || denominator.time_s <= 0.0 ||
      denominator.energy_j <= 0.0 || denominator.power_w <= 0.0) {
    return r;
  }
  r.usable = true;
  r.time = numerator.time_s / denominator.time_s;
  r.energy = numerator.energy_j / denominator.energy_j;
  r.power = numerator.power_w / denominator.power_w;
  return r;
}

}  // namespace repro::core
