#include "core/variability.hpp"

#include <cmath>

namespace repro::core {

namespace {

void scale_activity(sim::Activity& a, double s) {
  a.warp_instructions *= s;
  a.fp32_ops *= s;
  a.fp64_ops *= s;
  a.int_ops *= s;
  a.sfu_ops *= s;
  a.shared_accesses *= s;
  a.l2_transactions *= s;
  a.dram_transactions *= s;
  a.dram_bus_bytes *= s;
  a.atomic_ops *= s;
}

}  // namespace

sim::TraceResult perturb(const sim::TraceResult& trace,
                         workloads::Regularity regularity, util::Rng& rng,
                         const VariabilityOptions& options) {
  const double sigma_t = regularity == workloads::Regularity::kIrregular
                             ? options.time_sigma_irregular
                             : options.time_sigma_regular;
  double run_jitter = rng.lognormal_jitter(sigma_t);
  if (rng.bernoulli(options.outlier_probability)) {
    run_jitter *= 1.0 + std::abs(rng.normal()) * options.outlier_scale;
  }
  const double activity_jitter = rng.lognormal_jitter(options.activity_sigma);

  sim::TraceResult out = trace;
  out.active_time_s = 0.0;
  out.total_span_s = 0.0;
  for (sim::Phase& phase : out.phases) {
    const double phase_jitter = rng.lognormal_jitter(options.phase_sigma);
    phase.duration_s *= run_jitter * phase_jitter;
    scale_activity(phase.activity, activity_jitter);
    out.active_time_s += phase.duration_s;
    out.total_span_s += phase.duration_s + phase.host_gap_before_s;
  }
  scale_activity(out.total_activity, activity_jitter);
  return out;
}

}  // namespace repro::core
