#include "core/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iterator>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "repro/api.hpp"

namespace repro::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One mutex-guarded deque per worker. A lock-free Chase-Lev deque would be
// overkill: each job is a full measurement pipeline (milliseconds), so
// queue operations are nowhere near the critical path.
struct WorkQueue {
  std::mutex mutex;
  std::deque<std::size_t> jobs;  // indices into the submitted batch

  void push(std::size_t index) {
    std::lock_guard lock(mutex);
    jobs.push_back(index);
  }
  bool pop_back(std::size_t& index) {
    std::lock_guard lock(mutex);
    if (jobs.empty()) return false;
    index = jobs.back();
    jobs.pop_back();
    return true;
  }
  bool steal_front(std::size_t& index) {
    std::lock_guard lock(mutex);
    if (jobs.empty()) return false;
    index = jobs.front();
    jobs.pop_front();
    return true;
  }
};

// The pipeline stages whose per-batch wall time the report surfaces
// (their histograms are fed by the stage spans, obs/trace.hpp).
constexpr const char* kStageNames[] = {
    "trace-build",     "timing",            "variability",
    "power-synthesis", "sensor-sampling",   "k20power-analysis",
};

}  // namespace

double BatchReport::busy_s() const {
  double total = 0.0;
  for (const WorkerMetrics& w : workers) total += w.busy_s;
  return total;
}

std::uint64_t BatchReport::total_jobs() const {
  std::uint64_t total = 0;
  for (const WorkerMetrics& w : workers) total += w.jobs;
  return total;
}

std::uint64_t BatchReport::total_steals() const {
  std::uint64_t total = 0;
  for (const WorkerMetrics& w : workers) total += w.steals;
  return total;
}

double BatchReport::hit_rate() const {
  const std::uint64_t lookups = stats.result_hits + stats.result_misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(stats.result_hits) /
                            static_cast<double>(lookups);
}

void BatchReport::print(std::ostream& os) const {
  os << "-- experiment scheduler: " << jobs << " jobs on " << threads
     << (threads == 1 ? " thread" : " threads") << " --\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "   wall %.2f s, busy %.2f s; cache: %llu computed, %llu hits "
                "(%.1f%% hit rate), %llu traces reused\n",
                wall_s, busy_s(),
                static_cast<unsigned long long>(stats.result_misses),
                static_cast<unsigned long long>(stats.result_hits),
                100.0 * hit_rate(),
                static_cast<unsigned long long>(stats.trace_hits));
  os << line;
  const std::uint64_t executed = total_jobs();
  std::snprintf(line, sizeof line,
                "   executed %llu (%llu stolen, %.1f%%)\n",
                static_cast<unsigned long long>(executed),
                static_cast<unsigned long long>(total_steals()),
                executed == 0 ? 0.0
                              : 100.0 * static_cast<double>(total_steals()) /
                                    static_cast<double>(executed));
  os << line;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerMetrics& w = workers[i];
    // Both per-worker averages are guarded: a zero-job batch (or an idle
    // worker) must print zeros, not NaN.
    const double avg_ms =
        w.jobs == 0 ? 0.0 : 1e3 * w.busy_s / static_cast<double>(w.jobs);
    std::snprintf(line, sizeof line,
                  "   worker %2zu: %4llu jobs (%llu stolen), %.2f s busy "
                  "(%.0f%%), %.1f ms/job\n",
                  i, static_cast<unsigned long long>(w.jobs),
                  static_cast<unsigned long long>(w.steals), w.busy_s,
                  wall_s > 0.0 ? 100.0 * w.busy_s / wall_s : 0.0, avg_ms);
    os << line;
  }
  if (!stage_timing.empty()) {
    os << "   stage timing (obs):\n";
    for (const StageTiming& s : stage_timing) {
      std::snprintf(line, sizeof line,
                    "     %-18s n=%6llu  total %8.3f s  mean %8.3f ms\n",
                    s.stage.c_str(), static_cast<unsigned long long>(s.count),
                    s.total_s, 1e3 * s.mean_s());
      os << line;
    }
  }
}

Scheduler::Scheduler(Options options)
    : threads_(resolve_threads(options.threads)) {}

int Scheduler::resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const int n = repro::Options::global().threads; n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

BatchReport Scheduler::run(Study& study,
                           const std::vector<ExperimentJob>& jobs) const {
  const int n = threads_;
  BatchReport report;
  report.threads = n;
  report.jobs = jobs.size();
  report.workers.resize(static_cast<std::size_t>(n));

  const Study::CacheStats before = study.cache_stats();
  const auto batch_start = Clock::now();

  // Observability wiring (inert unless REPRO_OBS/--obs): a batch span,
  // counters and an outstanding-jobs gauge resolved once up front, plus a
  // before-snapshot of the stage histograms so the report can show this
  // batch's per-stage timing delta.
  const bool obs_on = obs::enabled();
  obs::Span batch_span("batch", "scheduler");
  batch_span.arg("jobs", static_cast<std::uint64_t>(jobs.size()))
      .arg("threads", static_cast<std::uint64_t>(n));
  obs::Counter* jobs_counter = nullptr;
  obs::Counter* steals_counter = nullptr;
  obs::Gauge* queue_depth = nullptr;
  std::atomic<std::int64_t> outstanding{static_cast<std::int64_t>(jobs.size())};
  std::vector<obs::HistogramSnapshot> stage_before;
  if (obs_on) {
    obs::Registry& registry = obs::Registry::instance();
    jobs_counter = &registry.counter("scheduler.jobs");
    steals_counter = &registry.counter("scheduler.steals");
    queue_depth = &registry.gauge("scheduler.queue_depth");
    queue_depth->set(static_cast<double>(jobs.size()));
    for (const char* stage : kStageNames) {
      stage_before.push_back(
          registry.histogram_snapshot(std::string("stage.") + stage +
                                      ".wall_s"));
    }
  }

  // Round-robin initial distribution; workers drain their own queue from
  // the back and steal from other queues' fronts once empty. The batch is
  // closed (no job spawns jobs), so a worker may exit after one full
  // unsuccessful scan of every queue.
  std::vector<WorkQueue> queues(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    queues[i % static_cast<std::size_t>(n)].push(i);
  }

  // Fault-injection site (DESIGN.md §12): with a plan installed, each job
  // attempt may be aborted (skipped, reported via BatchReport.aborted for
  // the caller to retry) or delayed. Each job index is executed by exactly
  // one worker, so per-index writes into `job_ok` are race-free.
  const fault::FaultPlan* plan = fault::active();
  std::vector<unsigned char> job_ok(jobs.size(), 1);

  const auto worker_body = [&](int worker_id) {
    WorkerMetrics& metrics = report.workers[static_cast<std::size_t>(worker_id)];
    obs::Span worker_span("worker", "scheduler");
    worker_span.arg("worker", static_cast<std::uint64_t>(worker_id));
    const auto run_job = [&](std::size_t index, bool stolen) {
      const ExperimentJob& job = jobs[index];
      if (plan != nullptr) {
        const std::string key =
            experiment_key(*job.workload, job.input_index, *job.config);
        const fault::Fault fault = plan->draw(fault::Site::kScheduler, key);
        if (fault.kind == fault::Kind::kJobAbort) {
          plan->record_applied(fault::Site::kScheduler, key);
          job_ok[index] = 0;
          return;
        }
        if (fault.kind == fault::Kind::kJobDelay) {
          plan->record_applied(fault::Site::kScheduler, key);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fault.magnitude % 8 + 1));
        }
      }
      const auto job_start = Clock::now();
      {
        obs::Span job_span("job", "scheduler");
        if (job_span.active()) {
          job_span
              .arg("key", experiment_key(*job.workload, job.input_index,
                                         *job.config))
              .arg("stolen", static_cast<std::uint64_t>(stolen ? 1 : 0));
        }
        study.measure(*job.workload, job.input_index, *job.config);
      }
      metrics.busy_s += seconds_since(job_start);
      ++metrics.jobs;
      if (stolen) ++metrics.steals;
      if (jobs_counter != nullptr) {
        jobs_counter->add();
        if (stolen) {
          steals_counter->add();
          obs::instant("steal");
        }
        queue_depth->set(static_cast<double>(
            outstanding.fetch_sub(1, std::memory_order_relaxed) - 1));
      }
    };
    for (;;) {
      std::size_t index = 0;
      if (queues[static_cast<std::size_t>(worker_id)].pop_back(index)) {
        run_job(index, /*stolen=*/false);
        continue;
      }
      bool stole = false;
      for (int offset = 1; offset < n; ++offset) {
        const int victim = (worker_id + offset) % n;
        if (queues[static_cast<std::size_t>(victim)].steal_front(index)) {
          run_job(index, /*stolen=*/true);
          stole = true;
          break;
        }
      }
      if (!stole) return;  // every queue empty: batch drained
    }
  };

  if (n == 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) workers.emplace_back(worker_body, i);
    for (std::thread& t : workers) t.join();
  }

  report.wall_s = seconds_since(batch_start);
  if (obs_on) {
    obs::Registry& registry = obs::Registry::instance();
    for (std::size_t i = 0; i < std::size(kStageNames); ++i) {
      const obs::HistogramSnapshot now = registry.histogram_snapshot(
          std::string("stage.") + kStageNames[i] + ".wall_s");
      StageTiming timing;
      timing.stage = kStageNames[i];
      timing.count = now.count - stage_before[i].count;
      timing.total_s = now.sum - stage_before[i].sum;
      report.stage_timing.push_back(std::move(timing));
    }
  }
  const Study::CacheStats after = study.cache_stats();
  report.stats.trace_hits = after.trace_hits - before.trace_hits;
  report.stats.trace_misses = after.trace_misses - before.trace_misses;
  report.stats.result_hits = after.result_hits - before.result_hits;
  report.stats.result_misses = after.result_misses - before.result_misses;

  // Stable aggregation order: deduplicate by key and sort, independent of
  // completion order, then resolve results from the (now warm) cache. A
  // key counts as aborted only when EVERY job carrying it was aborted —
  // resolving it here would silently compute what the injector skipped.
  std::vector<std::pair<std::string, const ExperimentJob*>> keyed;
  keyed.reserve(jobs.size());
  std::map<std::string, bool> key_computed;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ExperimentJob& job = jobs[i];
    std::string key =
        experiment_key(*job.workload, job.input_index, *job.config);
    if (plan != nullptr) key_computed[key] |= (job_ok[i] != 0);
    keyed.emplace_back(std::move(key), &job);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  keyed.erase(std::unique(keyed.begin(), keyed.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              keyed.end());
  report.results.reserve(keyed.size());
  for (auto& [key, job] : keyed) {
    if (plan != nullptr && !key_computed[key]) {
      report.aborted.push_back(std::move(key));
      continue;
    }
    BatchEntry entry;
    entry.result = &study.measure(*job->workload, job->input_index, *job->config);
    entry.key = std::move(key);
    entry.job = job;
    report.results.push_back(std::move(entry));
  }
  return report;
}

std::vector<ExperimentJob> experiment_matrix(
    const std::vector<const workloads::Workload*>& workloads,
    const std::vector<const sim::GpuConfig*>& configs) {
  std::vector<ExperimentJob> jobs;
  for (const workloads::Workload* w : workloads) {
    const std::size_t num_inputs = w->inputs().size();
    for (std::size_t i = 0; i < num_inputs; ++i) {
      for (const sim::GpuConfig* config : configs) {
        jobs.push_back(ExperimentJob{w, i, config});
      }
    }
  }
  return jobs;
}

std::vector<ExperimentJob> registry_matrix(
    const std::vector<std::string>& config_names, bool include_variants) {
  std::vector<const sim::GpuConfig*> configs;
  configs.reserve(config_names.size());
  for (const std::string& name : config_names) {
    configs.push_back(&sim::config_by_name(name));
  }
  std::vector<const workloads::Workload*> selected;
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    if (!include_variants && !w->variant().empty()) continue;
    selected.push_back(w);
  }
  return experiment_matrix(selected, configs);
}

}  // namespace repro::core
