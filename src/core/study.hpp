// The study harness: end-to-end experiment execution (paper §IV).
//
// One experiment = (program, input, GPU configuration). Running it:
//   workload trace  ->  timing engine  ->  variability perturbation
//   ->  power model + waveform synthesis  ->  sensor sampling
//   ->  K20Power analysis  ->  Measurement.
// Each experiment is repeated (3x like the paper) and the medians of
// active runtime, energy and average power are reported. Structural traces
// are cached per (program, input, config) because repetitions only differ
// in measurement noise, not algorithmic behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "k20power/analyze.hpp"
#include "power/model.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace repro::core {

/// Median-of-repetitions result of one experiment.
struct ExperimentResult {
  bool usable = false;          // enough sensor samples in >= 2 repetitions
  double time_s = 0.0;          // median active runtime
  double energy_j = 0.0;        // median energy
  double power_w = 0.0;         // median average power
  double true_active_s = 0.0;   // simulator ground truth (pre-sensor)
  std::vector<k20power::Measurement> repetitions;

  /// Relative spreads across repetitions (Table 2).
  double time_spread = 0.0;
  double energy_spread = 0.0;
};

class Study {
 public:
  struct Options {
    int repetitions = 3;
    std::uint64_t measurement_seed = 0xC0FFEE;
    std::uint64_t structural_seed = 0x5eed;
  };

  Study() : Study(Options{}) {}
  explicit Study(Options options);

  /// Runs (or returns the cached result of) one experiment.
  const ExperimentResult& measure(const workloads::Workload& workload,
                                  std::size_t input_index,
                                  const sim::GpuConfig& config);

  /// Ground-truth trace execution without sensor/noise (for tests and the
  /// per-item metrics of Table 4 where the paper normalizes by work).
  const sim::TraceResult& trace_result(const workloads::Workload& workload,
                                       std::size_t input_index,
                                       const sim::GpuConfig& config);

  const power::PowerModel& power_model() const noexcept { return power_model_; }

 private:
  Options options_;
  power::PowerModel power_model_;
  std::map<std::string, sim::TraceResult> trace_cache_;
  std::map<std::string, ExperimentResult> result_cache_;
};

/// Ratio of two experiment metrics with usability propagation.
struct MetricRatios {
  bool usable = false;
  double time = 0.0;
  double energy = 0.0;
  double power = 0.0;
};

MetricRatios ratios(const ExperimentResult& numerator,
                    const ExperimentResult& denominator);

}  // namespace repro::core
