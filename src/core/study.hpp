// The study harness: end-to-end experiment execution (paper §IV).
//
// One experiment = (program, input, GPU configuration). Running it:
//   workload trace  ->  timing engine  ->  variability perturbation
//   ->  power model + waveform synthesis  ->  sensor sampling
//   ->  K20Power analysis  ->  Measurement.
// Each experiment is repeated (3x like the paper) and the medians of
// active runtime, energy and average power are reported. Structural traces
// are cached per (program, input, config) because repetitions only differ
// in measurement noise, not algorithmic behaviour.
//
// Thread safety: `measure` and `trace_result` may be called concurrently
// from many threads (see core/scheduler.hpp). Both caches are sharded by
// key hash; each shard is guarded by a std::shared_mutex that is only held
// while locating or inserting a cache cell, never while computing. A
// per-cell std::once_flag guarantees every experiment is computed exactly
// once even when several threads request the same key simultaneously.
// Returned references are stable for the lifetime of the Study (node-based
// map storage).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "k20power/analyze.hpp"
#include "obs/attribution.hpp"
#include "power/model.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "thermal/thermal.hpp"
#include "workloads/registry.hpp"
#include "workloads/workload.hpp"

namespace repro::core {

/// Median-of-repetitions result of one experiment.
struct ExperimentResult {
  bool usable = false;          // enough sensor samples in >= 2 repetitions
  double time_s = 0.0;          // median active runtime
  double energy_j = 0.0;        // median energy
  double power_w = 0.0;         // median average power
  double true_active_s = 0.0;   // simulator ground truth (pre-sensor)
  std::vector<k20power::Measurement> repetitions;

  /// Relative spreads across repetitions (Table 2).
  double time_spread = 0.0;
  double energy_spread = 0.0;

  /// Thermal telemetry (DESIGN.md §16). All zero/false unless the study
  /// ran with a thermal scenario enabled; `throttled` is true only when
  /// the governor actually clamped during at least one repetition.
  bool thermal = false;
  bool throttled = false;
  double peak_temp_c = 0.0;  // max die temperature across repetitions
  int throttle_events = 0;   // max clamp count across repetitions
};

/// Canonical cache key of one experiment. The key doubles as the seed
/// material of the experiment's measurement stream, so it must be
/// injective: '/' and '%' inside the program or configuration name are
/// percent-escaped so that distinct (program, input, config) triples can
/// never alias (names in use today contain neither, keeping historical
/// keys — and therefore all measured values — unchanged).
std::string experiment_key(std::string_view program, std::size_t input_index,
                           std::string_view config_name);

inline std::string experiment_key(const workloads::Workload& workload,
                                  std::size_t input_index,
                                  const sim::GpuConfig& config) {
  return experiment_key(workload.name(), input_index, config.name);
}

/// Decoded (program, input, config) triple of one experiment key.
struct ExperimentKeyParts {
  std::string program;
  std::size_t input_index = 0;
  std::string config;
};

/// Inverse of `experiment_key`: decodes a canonical key back into its
/// parts. Returns false (leaving `out` untouched) for anything that is not
/// a canonical key — wrong part count, non-numeric input index, stray '%'
/// escapes — so that parse(experiment_key(p, i, c)) == (p, i, c) is a
/// total round trip and malformed keys can never alias a real experiment
/// (the serving layer's cache depends on this, tests/properties_test.cpp).
bool parse_experiment_key(std::string_view key, ExperimentKeyParts& out);

class Study {
 public:
  struct Options {
    int repetitions = 3;
    std::uint64_t measurement_seed = 0xC0FFEE;
    std::uint64_t structural_seed = 0x5eed;
    /// Off by default: with `thermal.enabled == false` every measurement
    /// is bit-identical to a study without the field (DESIGN.md §16).
    thermal::ThermalScenario thermal;
  };

  /// Monotone counters over both caches; readable concurrently.
  struct CacheStats {
    std::uint64_t trace_hits = 0;
    std::uint64_t trace_misses = 0;
    std::uint64_t result_hits = 0;
    std::uint64_t result_misses = 0;
  };

  Study() : Study(Options{}) {}
  explicit Study(Options options);

  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  /// Runs (or returns the cached result of) one experiment. Thread-safe.
  const ExperimentResult& measure(const workloads::Workload& workload,
                                  std::size_t input_index,
                                  const sim::GpuConfig& config);

  /// Ground-truth trace execution without sensor/noise (for tests and the
  /// per-item metrics of Table 4 where the paper normalizes by work).
  /// Thread-safe.
  const sim::TraceResult& trace_result(const workloads::Workload& workload,
                                       std::size_t input_index,
                                       const sim::GpuConfig& config);

  const power::PowerModel& power_model() const noexcept { return power_model_; }

  /// The study's seeds/repetitions (the sampling layer mirrors the exact
  /// measurement stream from these, src/sample/sample.cpp).
  const Options& options() const noexcept { return options_; }

  /// Per-kernel energy/runtime breakdown of one experiment (observability
  /// layer, DESIGN.md §9): the model's energy shares over the structural
  /// trace, scaled to the measured energy when the experiment is usable.
  /// Thread-safe (runs or reuses the cached trace and measurement).
  obs::AttributionTable attribution(const workloads::Workload& workload,
                                    std::size_t input_index,
                                    const sim::GpuConfig& config);

  CacheStats cache_stats() const;

 private:
  // One cache cell per experiment key. The once_flag serializes the first
  // computation; `value` is immutable afterwards. std::map nodes never
  // move, so references handed out stay valid.
  struct TraceCell {
    std::once_flag once;
    sim::TraceResult value;
  };
  struct ResultCell {
    std::once_flag once;
    ExperimentResult value;
  };
  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::string, TraceCell> traces;
    std::map<std::string, ResultCell> results;
  };
  static constexpr std::size_t kShardCount = 16;

  Shard& shard_for(const std::string& key);
  ExperimentResult compute_measurement(const workloads::Workload& workload,
                                       std::size_t input_index,
                                       const sim::GpuConfig& config,
                                       const std::string& key);

  Options options_;
  power::PowerModel power_model_;
  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint64_t> trace_hits_{0};
  std::atomic<std::uint64_t> trace_misses_{0};
  std::atomic<std::uint64_t> result_hits_{0};
  std::atomic<std::uint64_t> result_misses_{0};
};

/// Ratio of two experiment metrics with usability propagation.
struct MetricRatios {
  bool usable = false;
  double time = 0.0;
  double energy = 0.0;
  double power = 0.0;
};

MetricRatios ratios(const ExperimentResult& numerator,
                    const ExperimentResult& denominator);

}  // namespace repro::core
