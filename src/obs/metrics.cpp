#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "obs/trace.hpp"  // append_json_escaped

namespace repro::obs {

namespace {

// Relaxed CAS update loops for the double-valued aggregates. Relaxed
// ordering is enough: readers only consume snapshots after the writers
// have been joined (batch end / export), and TSan sees the atomics.
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;
  const int exponent = std::ilogb(v);  // v in [2^exponent, 2^(exponent+1))
  const int index = exponent + 1 + kZeroBucket;
  return index < 0 ? 0 : index >= kBuckets ? kBuckets - 1 : index;
}

double Histogram::bucket_upper_bound(int i) noexcept {
  return std::ldexp(1.0, i - kZeroBucket);
}

void Histogram::observe(double v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry;  // never destroyed, see trace.cpp
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] =
      counters_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Histogram>();
  return *it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

HistogramSnapshot Registry::histogram_snapshot(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSnapshot empty;
    empty.min = 0.0;
    return empty;
  }
  return it->second->snapshot();
}

void Registry::reset() {
  std::unique_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::export_text(std::ostream& os) const {
  std::shared_lock lock(mutex_);
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof line, "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    os << line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof line, "gauge %s %.9g\n", name.c_str(),
                  g->value());
    os << line;
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    std::snprintf(line, sizeof line,
                  "histogram %s count=%llu sum=%.9g min=%.9g max=%.9g "
                  "mean=%.9g\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.sum, s.count == 0 ? 0.0 : s.min, s.max, s.mean());
    os << line;
  }
}

void Registry::export_jsonl(std::ostream& os) const {
  std::shared_lock lock(mutex_);
  std::string line;
  const auto emit_name = [&](std::string_view type, const std::string& name) {
    line = "{\"type\":\"";
    line += type;
    line += "\",\"name\":\"";
    append_json_escaped(line, name);
    line += "\"";
  };
  char number[96];
  for (const auto& [name, c] : counters_) {
    emit_name("counter", name);
    std::snprintf(number, sizeof number, ",\"value\":%llu}",
                  static_cast<unsigned long long>(c->value()));
    os << line << number << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    emit_name("gauge", name);
    std::snprintf(number, sizeof number, ",\"value\":%.9g}", g->value());
    os << line << number << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    emit_name("histogram", name);
    std::snprintf(number, sizeof number,
                  ",\"count\":%llu,\"sum\":%.9g,\"min\":%.9g,\"max\":%.9g",
                  static_cast<unsigned long long>(s.count), s.sum,
                  s.count == 0 ? 0.0 : s.min, s.max);
    line += number;
    line += ",\"buckets\":[";
    bool first = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = s.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      if (!first) line += ',';
      first = false;
      std::snprintf(number, sizeof number, "[%.9g,%llu]",
                    Histogram::bucket_upper_bound(i),
                    static_cast<unsigned long long>(n));
      line += number;
    }
    line += "]}";
    os << line << "\n";
  }
}

}  // namespace repro::obs
