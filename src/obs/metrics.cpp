#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "obs/trace.hpp"  // append_json_escaped

namespace repro::obs {

namespace {

// Relaxed CAS update loops for the double-valued aggregates
// (atomic<double>::fetch_add has no portable pre-C++20 semantics here).
// Relaxed ordering is enough for these: the only cross-field guarantee a
// snapshot makes is count >= sum(buckets), carried by the release/acquire
// pair on the bucket slot (see Histogram::observe / snapshot).
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

namespace detail {

std::size_t assign_cell_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

double Histogram::bucket_upper_bound(int i) noexcept {
  return std::ldexp(1.0, i - kZeroBucket);
}

double Histogram::bucket_lower_bound(int i) noexcept {
  return i <= 0 ? 0.0 : bucket_upper_bound(i - 1);
}

double HistogramSnapshot::percentile(double q) const {
  const std::uint64_t total = bucket_total();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [0, total]; linear interpolation within the bucket that
  // carries the rank. rank == cumulative-count boundaries land exactly on
  // bucket edges, which the unit tests pin.
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  double value = 0.0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    const double lower = Histogram::bucket_lower_bound(i);
    const double upper = Histogram::bucket_upper_bound(i);
    if (rank <= cumulative + static_cast<double>(n)) {
      const double within =
          rank <= cumulative
              ? 0.0
              : (rank - cumulative) / static_cast<double>(n);
      value = lower + within * (upper - lower);
      break;
    }
    cumulative += static_cast<double>(n);
    value = upper;  // rank beyond the last populated bucket: its top edge
  }
  // Clamp into the observed envelope: the log2 edge buckets are coarse,
  // but no estimate should leave [min, max] of real observations.
  if (count > 0 && max >= min) {
    if (value < min) value = min;
    if (value > max) value = max;
  }
  return value;
}

void Histogram::observe(double v) noexcept {
  Cell& cell = cells_[detail::cell_slot() % detail::kHistogramCells];
  // Order matters for the count >= sum(buckets) snapshot invariant: the
  // count is bumped first and the bucket last, with release so that a
  // snapshot that acquires the bucket increment also sees the count.
  cell.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(cell.sum, v);
  atomic_min(cell.min, v);
  atomic_max(cell.max, v);
  cell.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_release);
}

void Histogram::Batch::flush(Histogram& into) noexcept {
  if (local_.count == 0) return;
  Cell& cell = into.cells_[detail::cell_slot() % detail::kHistogramCells];
  // Same ordering discipline as observe(): the batch count lands first and
  // the buckets last (release), so count >= sum(buckets) holds in any
  // snapshot taken mid-merge.
  cell.count.fetch_add(local_.count, std::memory_order_relaxed);
  atomic_add(cell.sum, local_.sum);
  atomic_min(cell.min, local_.min);
  atomic_max(cell.max, local_.max);
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = local_.buckets[static_cast<std::size_t>(i)];
    if (n != 0) {
      cell.buckets[static_cast<std::size_t>(i)].fetch_add(
          n, std::memory_order_release);
    }
  }
  local_ = HistogramSnapshot{};
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  // Buckets are read first (acquire pairs with the release in observe):
  // every bucket increment visible here happens-after its count
  // increment, and counts read below are at least as new, so
  // s.count >= s.bucket_total() in any snapshot.
  for (const Cell& cell : cells_) {
    for (int i = 0; i < kBuckets; ++i) {
      s.buckets[static_cast<std::size_t>(i)] +=
          cell.buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_acquire);
    }
  }
  for (const Cell& cell : cells_) {
    s.count += cell.count.load(std::memory_order_relaxed);
    s.sum += cell.sum.load(std::memory_order_relaxed);
    const double lo = cell.min.load(std::memory_order_relaxed);
    const double hi = cell.max.load(std::memory_order_relaxed);
    if (lo < s.min) s.min = lo;
    if (hi > s.max) s.max = hi;
  }
  return s;
}

HistogramSnapshot Histogram::take() {
  HistogramSnapshot s;
  for (Cell& cell : cells_) {
    for (int i = 0; i < kBuckets; ++i) {
      s.buckets[static_cast<std::size_t>(i)] +=
          cell.buckets[static_cast<std::size_t>(i)].exchange(
              0, std::memory_order_acquire);
    }
  }
  for (Cell& cell : cells_) {
    s.count += cell.count.exchange(0, std::memory_order_relaxed);
    s.sum += cell.sum.exchange(0.0, std::memory_order_relaxed);
    const double lo = cell.min.exchange(std::numeric_limits<double>::infinity(),
                                        std::memory_order_relaxed);
    const double hi = cell.max.exchange(0.0, std::memory_order_relaxed);
    if (lo < s.min) s.min = lo;
    if (hi > s.max) s.max = hi;
  }
  return s;
}

void Histogram::reset() noexcept { take(); }

Registry& Registry::instance() {
  static Registry* registry = new Registry;  // never destroyed, see trace.cpp
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] =
      counters_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(std::string(name), nullptr);
  if (inserted) it->second = std::make_unique<Histogram>();
  return *it->second;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

HistogramSnapshot Registry::histogram_snapshot(std::string_view name) const {
  std::shared_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSnapshot empty;
    empty.min = 0.0;
    return empty;
  }
  return it->second->snapshot();
}

RegistrySnapshot Registry::collect(bool reset_cells) const {
  RegistrySnapshot out;
  // The shared lock protects the maps, not the cells: instrument updates
  // keep flowing while we aggregate. Zeroing happens via per-cell atomic
  // exchanges (see the reset contract in metrics.hpp).
  std::shared_lock lock(mutex_);
  out.counters.reserve(counters_.size());
  out.gauges.reserve(gauges_.size());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, reset_cells ? c->take() : c->value());
  }
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
    if (reset_cells) g->reset();
  }
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name,
                                reset_cells ? h->take() : h->snapshot());
  }
  return out;
}

RegistrySnapshot Registry::snapshot() const { return collect(false); }

RegistrySnapshot Registry::snapshot_and_reset() { return collect(true); }

void Registry::reset() { (void)snapshot_and_reset(); }

void export_text(const RegistrySnapshot& snap, std::ostream& os) {
  char line[256];
  for (const auto& [name, value] : snap.counters) {
    std::snprintf(line, sizeof line, "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    os << line;
  }
  for (const auto& [name, value] : snap.gauges) {
    std::snprintf(line, sizeof line, "gauge %s %.9g\n", name.c_str(), value);
    os << line;
  }
  for (const auto& [name, s] : snap.histograms) {
    std::snprintf(line, sizeof line,
                  "histogram %s count=%llu sum=%.9g min=%.9g max=%.9g "
                  "mean=%.9g p50=%.9g p95=%.9g p99=%.9g\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.sum, s.count == 0 ? 0.0 : s.min, s.max, s.mean(),
                  s.percentile(0.50), s.percentile(0.95), s.percentile(0.99));
    os << line;
  }
}

void export_jsonl(const RegistrySnapshot& snap, std::ostream& os) {
  std::string line;
  const auto emit_name = [&](std::string_view type, const std::string& name) {
    line = "{\"type\":\"";
    line += type;
    line += "\",\"name\":\"";
    append_json_escaped(line, name);
    line += "\"";
  };
  char number[96];
  for (const auto& [name, value] : snap.counters) {
    emit_name("counter", name);
    std::snprintf(number, sizeof number, ",\"value\":%llu}",
                  static_cast<unsigned long long>(value));
    os << line << number << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    emit_name("gauge", name);
    std::snprintf(number, sizeof number, ",\"value\":%.9g}", value);
    os << line << number << "\n";
  }
  for (const auto& [name, s] : snap.histograms) {
    emit_name("histogram", name);
    std::snprintf(number, sizeof number,
                  ",\"count\":%llu,\"sum\":%.9g,\"min\":%.9g,\"max\":%.9g"
                  ",\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g",
                  static_cast<unsigned long long>(s.count), s.sum,
                  s.count == 0 ? 0.0 : s.min, s.max, s.percentile(0.50),
                  s.percentile(0.95), s.percentile(0.99));
    line += number;
    line += ",\"buckets\":[";
    bool first = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = s.buckets[static_cast<std::size_t>(i)];
      if (n == 0) continue;
      if (!first) line += ',';
      first = false;
      std::snprintf(number, sizeof number, "[%.9g,%llu]",
                    Histogram::bucket_upper_bound(i),
                    static_cast<unsigned long long>(n));
      line += number;
    }
    line += "]}";
    os << line << "\n";
  }
}

void Registry::export_text(std::ostream& os) const {
  obs::export_text(snapshot(), os);
}

void Registry::export_jsonl(std::ostream& os) const {
  obs::export_jsonl(snapshot(), os);
}

}  // namespace repro::obs
