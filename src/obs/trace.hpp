// Scoped span tracer (observability layer, DESIGN.md §9).
//
// Records a per-process tree of timed spans — experiment pipeline stages
// (trace-build, timing, power-synthesis, sensor-sampling,
// k20power-analysis), scheduler batches/workers/jobs and steal events —
// and exports them as Chrome trace_event JSON loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Design constraints, in order:
//  1. Must never perturb measured values. No instrumentation touches an
//     RNG or a measured quantity; spans only read the wall clock. The
//     golden tests prove runs are bit-identical with tracing on or off.
//  2. Near-zero cost when disabled: every entry point checks one relaxed
//     atomic load and constructs nothing else (tests/obs_test.cpp and the
//     bench overhead gates keep this honest).
//  3. Safe to leave ON in production serve traffic: events land in a
//     fixed-capacity ring (drop-oldest, exact dropped counter), so memory
//     is bounded no matter how long the process runs, and recording is one
//     atomic ticket plus an uncontended per-slot spinlock — no global
//     mutex, no allocation beyond the event's own strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace repro::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Whether the observability layer records anything. Initialised from the
/// REPRO_OBS environment variable ("" or "0" = off, anything else = on);
/// bench drivers additionally enable it for --obs (bench/figcommon.hpp).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// Microseconds since the process trace epoch (first use).
double now_us();

/// One exported trace event. `phase` follows the Chrome trace_event
/// format: 'X' = complete (has dur_us), 'i' = instant.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::string args;  // pre-rendered JSON members ("\"k\":\"v\",..."), may be empty
};

/// Process-wide bounded collector of the most recent events.
///
/// Events live in a fixed ring of `capacity()` slots: `record()` takes a
/// ticket from one relaxed fetch_add, writes slot `ticket % capacity`
/// under that slot's spinlock, and skips the write if a newer ticket got
/// there first — so the ring always retains the newest events and
/// `dropped_count()` is exactly `recorded - retained`. All methods are
/// thread-safe except `set_capacity()` (see below); `event_count()` and
/// `snapshot()` are exact once in-flight `record()` calls have finished
/// (e.g. after worker threads join).
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  static Tracer& instance();

  void record(TraceEvent event);
  /// Drops all events and zeroes the ticket/dropped counters (capacity
  /// and thread ids are unchanged).
  void clear();
  /// Events currently retained: min(recorded_count(), capacity()).
  std::size_t event_count() const;
  /// Tickets issued since the last clear() (= events ever recorded).
  std::uint64_t recorded_count() const;
  /// Events overwritten because the ring wrapped (exact).
  std::uint64_t dropped_count() const;
  std::size_t capacity() const;
  /// Replaces the ring with an empty one of `capacity` slots (>= 1).
  /// NOT safe concurrently with any other method — for tests and process
  /// startup only.
  void set_capacity(std::size_t capacity);
  /// Retained events, sorted by start timestamp (ties in record order).
  std::vector<TraceEvent> snapshot() const;
  /// Writes {"traceEvents":[...]} JSON for Perfetto / chrome://tracing.
  void export_chrome_json(std::ostream& os) const;

  /// Small dense id of the calling thread (assigned on first trace use).
  static std::uint32_t this_thread_id();

 private:
  Tracer();
  struct Impl;
  Impl* impl_;  // never destroyed (the singleton itself is heap-leaked)
};

/// Appends `text` to `out` with JSON string escaping (no quotes added).
void append_json_escaped(std::string& out, std::string_view text);

/// RAII scoped span. Construction snapshots the clock; destruction records
/// a complete ('X') event. Spans with category "stage" or "experiment"
/// additionally feed the "stage.<name>.wall_s" duration histogram
/// (obs/metrics.hpp). When tracing is disabled the span is inert.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "stage");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const noexcept { return active_; }

  Span& arg(std::string_view key, std::string_view value);
  Span& arg(std::string_view key, double value);
  Span& arg(std::string_view key, std::uint64_t value);

 private:
  bool active_;
  double start_us_ = 0.0;
  TraceEvent event_;
};

/// Records an instant event (e.g. a work steal) at the current time.
void instant(std::string_view name, std::string_view cat = "scheduler",
             std::string_view args = {});

}  // namespace repro::obs
