// Scoped span tracer (observability layer, DESIGN.md §9).
//
// Records a per-process tree of timed spans — experiment pipeline stages
// (trace-build, timing, power-synthesis, sensor-sampling,
// k20power-analysis), scheduler batches/workers/jobs and steal events —
// and exports them as Chrome trace_event JSON loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Design constraints, in order:
//  1. Must never perturb measured values. No instrumentation touches an
//     RNG or a measured quantity; spans only read the wall clock. The
//     golden tests prove runs are bit-identical with tracing on or off.
//  2. Near-zero cost when disabled: every entry point checks one relaxed
//     atomic load and constructs nothing else (tests/obs_test.cpp and the
//     bench_micro overhead check keep this honest).
//  3. Thread-safe under the work-stealing scheduler: each thread owns a
//     buffer guarded by its own mutex (contended only during export);
//     buffer registration takes a global mutex once per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace repro::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Whether the observability layer records anything. Initialised from the
/// REPRO_OBS environment variable ("" or "0" = off, anything else = on);
/// bench drivers additionally enable it for --obs (bench/figcommon.hpp).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// Microseconds since the process trace epoch (first use).
double now_us();

/// One exported trace event. `phase` follows the Chrome trace_event
/// format: 'X' = complete (has dur_us), 'i' = instant.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::string args;  // pre-rendered JSON members ("\"k\":\"v\",..."), may be empty
};

/// Process-wide event collector. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  void record(TraceEvent event);
  /// Drops all recorded events (buffers stay registered; outstanding
  /// thread-local pointers remain valid).
  void clear();
  std::size_t event_count() const;
  /// All events so far, sorted by start timestamp.
  std::vector<TraceEvent> snapshot() const;
  /// Writes {"traceEvents":[...]} JSON for Perfetto / chrome://tracing.
  void export_chrome_json(std::ostream& os) const;

  /// Small dense id of the calling thread (assigned on first trace use).
  static std::uint32_t this_thread_id();

  struct ThreadBuffer;  // public only for the implementation's registry

 private:
  Tracer() = default;
  ThreadBuffer& local_buffer();
};

/// Appends `text` to `out` with JSON string escaping (no quotes added).
void append_json_escaped(std::string& out, std::string_view text);

/// RAII scoped span. Construction snapshots the clock; destruction records
/// a complete ('X') event. Spans with category "stage" or "experiment"
/// additionally feed the "stage.<name>.wall_s" duration histogram
/// (obs/metrics.hpp). When tracing is disabled the span is inert.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "stage");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const noexcept { return active_; }

  Span& arg(std::string_view key, std::string_view value);
  Span& arg(std::string_view key, double value);
  Span& arg(std::string_view key, std::uint64_t value);

 private:
  bool active_;
  double start_us_ = 0.0;
  TraceEvent event_;
};

/// Records an instant event (e.g. a work steal) at the current time.
void instant(std::string_view name, std::string_view cat = "scheduler",
             std::string_view args = {});

}  // namespace repro::obs
