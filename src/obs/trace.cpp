#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "repro/api.hpp"

namespace repro::obs {

namespace detail {

// The REPRO_OBS knob is parsed by repro::Options (the single env-parsing
// point, include/repro/api.hpp).
std::atomic<bool> g_enabled{Options::global().obs};

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - trace_epoch())
      .count();
}

namespace {

// One ring slot. `locked` is a tiny test-and-set spinlock: it is held for
// the few instructions of a struct move/copy, contended only when two
// tickets `capacity` apart collide or a snapshot reads the slot — both
// rare by construction. TSan understands the acquire/release pair.
struct Slot {
  std::atomic<bool> locked{false};
  bool filled = false;
  std::uint64_t ticket = 0;
  TraceEvent event;

  void lock() noexcept {
    while (locked.exchange(true, std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { locked.store(false, std::memory_order_release); }
};

}  // namespace

struct Tracer::Impl {
  std::atomic<std::uint64_t> next{0};
  std::size_t capacity = kDefaultCapacity;
  std::vector<Slot> slots{kDefaultCapacity};
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer;  // never destroyed: worker threads
  // may record during static destruction of other objects.
  return *tracer;
}

std::uint32_t Tracer::this_thread_id() {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local const std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void Tracer::record(TraceEvent event) {
  event.tid = this_thread_id();
  Impl& im = *impl_;
  const std::uint64_t ticket = im.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = im.slots[static_cast<std::size_t>(ticket % im.capacity)];
  slot.lock();
  // Drop-oldest: a slot only ever moves forward in ticket order, so if a
  // delayed writer reaches a slot a newer ticket already claimed, the
  // *delayed* event is the one dropped.
  if (!slot.filled || ticket >= slot.ticket) {
    slot.filled = true;
    slot.ticket = ticket;
    slot.event = std::move(event);
  }
  slot.unlock();
}

void Tracer::clear() {
  Impl& im = *impl_;
  for (Slot& slot : im.slots) {
    slot.lock();
    slot.filled = false;
    slot.ticket = 0;
    slot.event = TraceEvent{};
    slot.unlock();
  }
  im.next.store(0, std::memory_order_relaxed);
}

std::uint64_t Tracer::recorded_count() const {
  return impl_->next.load(std::memory_order_relaxed);
}

std::size_t Tracer::event_count() const {
  const std::uint64_t recorded = recorded_count();
  return static_cast<std::size_t>(
      recorded < impl_->capacity ? recorded : impl_->capacity);
}

std::uint64_t Tracer::dropped_count() const {
  const std::uint64_t recorded = recorded_count();
  return recorded > impl_->capacity ? recorded - impl_->capacity : 0;
}

std::size_t Tracer::capacity() const { return impl_->capacity; }

void Tracer::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  Impl& im = *impl_;
  im.slots.clear();
  std::vector<Slot> fresh(capacity);
  im.slots.swap(fresh);
  im.capacity = capacity;
  im.next.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  Impl& im = *impl_;
  std::vector<std::pair<std::uint64_t, TraceEvent>> retained;
  retained.reserve(im.capacity);
  for (Slot& slot : im.slots) {
    slot.lock();
    if (slot.filled) retained.emplace_back(slot.ticket, slot.event);
    slot.unlock();
  }
  // Restore record order first (the ring scrambles it after a wrap), then
  // a stable sort by timestamp keeps record order among equal timestamps.
  std::sort(retained.begin(), retained.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TraceEvent> events;
  events.reserve(retained.size());
  for (auto& [ticket, event] : retained) events.push_back(std::move(event));
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void Tracer::export_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  std::string line;
  for (const TraceEvent& e : events) {
    line.clear();
    if (!first) line += ",";
    first = false;
    line += "\n{\"name\":\"";
    append_json_escaped(line, e.name);
    line += "\",\"cat\":\"";
    append_json_escaped(line, e.cat);
    line += "\",\"ph\":\"";
    line += e.phase;
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(e.tid);
    char number[64];
    std::snprintf(number, sizeof number, ",\"ts\":%.3f", e.ts_us);
    line += number;
    if (e.phase == 'X') {
      std::snprintf(number, sizeof number, ",\"dur\":%.3f", e.dur_us);
      line += number;
    } else if (e.phase == 'i') {
      line += ",\"s\":\"t\"";  // thread-scoped instant
    }
    line += ",\"args\":{";
    line += e.args;
    line += "}}";
    os << line;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Span::Span(std::string_view name, std::string_view cat) : active_(enabled()) {
  if (!active_) return;
  event_.name.assign(name.data(), name.size());
  event_.cat.assign(cat.data(), cat.size());
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  const double end_us = now_us();
  event_.ts_us = start_us_;
  event_.dur_us = end_us - start_us_;
  // Stage-category spans double as the per-stage wall-time histograms of
  // the metrics registry (DESIGN.md §9).
  if (event_.cat == "stage" || event_.cat == "experiment") {
    Registry::instance()
        .histogram("stage." + event_.name + ".wall_s")
        .observe(event_.dur_us * 1e-6);
  }
  Tracer::instance().record(std::move(event_));
}

Span& Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  append_json_escaped(event_.args, key);
  event_.args += "\":\"";
  append_json_escaped(event_.args, value);
  event_.args += '"';
  return *this;
}

Span& Span::arg(std::string_view key, double value) {
  if (!active_) return *this;
  char number[64];
  std::snprintf(number, sizeof number, "%.9g", value);
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  append_json_escaped(event_.args, key);
  event_.args += "\":";
  event_.args += number;
  return *this;
}

Span& Span::arg(std::string_view key, std::uint64_t value) {
  if (!active_) return *this;
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  append_json_escaped(event_.args, key);
  event_.args += "\":";
  event_.args += std::to_string(value);
  return *this;
}

void instant(std::string_view name, std::string_view cat,
             std::string_view args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name.assign(name.data(), name.size());
  event.cat.assign(cat.data(), cat.size());
  event.phase = 'i';
  event.ts_us = now_us();
  event.args.assign(args.data(), args.size());
  Tracer::instance().record(std::move(event));
}

}  // namespace repro::obs
